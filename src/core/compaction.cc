// Background maintenance for UniKVDB: memtable flushes, UnsortedStore ->
// SortedStore merges with partial KV separation, size-based scan merges,
// value-log garbage collection, and dynamic range-partition splits.

#include <algorithm>
#include <chrono>

#include "core/filename.h"
#include "core/merging_iterator.h"
#include "core/unikv_db.h"
#include "util/env.h"

namespace unikv {

// ------------------------------------------------------------- scheduling

void UniKVDB::MaybeScheduleWork() { bg_work_cv_.SignalAll(); }

bool UniKVDB::HasWorkPending() {
  for (const auto& shard : shards_) {
    if (shard->has_imm.load(std::memory_order_acquire)) return true;
  }
  VersionPtr ver = versions_->current();
  for (const auto& p : ver->partitions) {
    const uint64_t unsorted_bytes = p->UnsortedBytes();
    if (unsorted_bytes >= options_.unsorted_limit) return true;
    if (compact_all_ && !p->unsorted.empty()) return true;
    if (options_.enable_partitioning && p->sorted.size() >= 2 &&
        p->LogicalBytes() >= options_.partition_size_limit) {
      return true;
    }
    if (options_.enable_scan_optimization &&
        static_cast<int>(p->unsorted.size()) >= options_.scan_merge_limit) {
      return true;
    }
    auto git = vlog_garbage_.find(p->id);
    const uint64_t garbage = git == vlog_garbage_.end() ? 0 : git->second;
    if (garbage >= options_.gc_garbage_threshold && !p->vlogs.empty()) {
      return true;
    }
    if (compact_all_ && garbage > 0 && !p->vlogs.empty()) return true;
  }
  return false;
}

UniKVDB::WorkItem UniKVDB::PickWork() {
  WorkItem item;
  // Flushes of different shards run concurrently (their key ranges are
  // disjoint hash stripes); a given shard's flushes are serialized by its
  // flush_in_progress claim.
  for (size_t i = 0; i < shards_.size(); i++) {
    if (shards_[i]->has_imm.load(std::memory_order_acquire) &&
        !shards_[i]->flush_in_progress) {
      item.kind = WorkKind::kFlush;
      item.shard = static_cast<int>(i);
      return item;
    }
  }
  VersionPtr ver = versions_->current();

  // 1. Merges (paper: UnsortedLimit reached), largest backlog first.
  uint64_t best = 0;
  for (const auto& p : ver->partitions) {
    if (busy_partitions_.count(p->id)) continue;
    const uint64_t unsorted_bytes = p->UnsortedBytes();
    const bool want =
        unsorted_bytes >= options_.unsorted_limit ||
        (compact_all_ && !p->unsorted.empty());
    if (want && unsorted_bytes >= best) {
      best = unsorted_bytes;
      item.kind = WorkKind::kMerge;
      item.partition = p;
    }
  }
  if (item.kind != WorkKind::kNone) return item;

  // 2. Splits (dynamic range partitioning). A partition with unsorted data
  //    is merged first (the paper treats a split as compaction + GC run
  //    sequentially).
  if (options_.enable_partitioning) {
    for (const auto& p : ver->partitions) {
      if (busy_partitions_.count(p->id)) continue;
      if (p->LogicalBytes() >= options_.partition_size_limit) {
        if (!p->unsorted.empty()) {
          item.kind = WorkKind::kMerge;
        } else if (p->sorted.size() >= 2) {
          item.kind = WorkKind::kSplit;
        } else {
          continue;
        }
        item.partition = p;
        return item;
      }
    }
  }

  // 3. Size-based scan merge (scanMergeLimit unsorted tables).
  if (options_.enable_scan_optimization) {
    for (const auto& p : ver->partitions) {
      if (busy_partitions_.count(p->id)) continue;
      if (static_cast<int>(p->unsorted.size()) >= options_.scan_merge_limit) {
        item.kind = WorkKind::kScanMerge;
        item.partition = p;
        return item;
      }
    }
  }

  // 4. GC: greedy — the partition with the most reclaimable garbage.
  best = 0;
  for (const auto& p : ver->partitions) {
    if (busy_partitions_.count(p->id)) continue;
    auto git = vlog_garbage_.find(p->id);
    const uint64_t garbage = git == vlog_garbage_.end() ? 0 : git->second;
    const bool want = garbage >= options_.gc_garbage_threshold ||
                      (compact_all_ && garbage > 0 && !p->vlogs.empty());
    if (want && garbage >= best && !p->vlogs.empty()) {
      best = garbage;
      item.kind = WorkKind::kGc;
      item.partition = p;
    }
  }
  return item;
}

void UniKVDB::BackgroundWorker() {
  MutexLock lock(&mu_);
  while (true) {
    WorkItem item;
    while (true) {
      if (shutting_down_) break;
      if (!has_bg_error_.load(std::memory_order_acquire)) {
        item = PickWork();
        if (item.kind != WorkKind::kNone) break;
      }
      // Writers signal a rotation (has_imm) without holding mu_, so a
      // notify can slip between this thread's predicate check and its
      // sleep; the timeout bounds that lost-wakeup window.
      bg_work_cv_.TimedWaitFor(std::chrono::milliseconds(100));
    }
    if (shutting_down_) break;

    // Claim the job's target before releasing the mutex so no peer picks
    // the same partition (or the same shard's flush) while this one runs.
    if (item.kind == WorkKind::kFlush) {
      shards_[item.shard]->flush_in_progress = true;
    } else {
      busy_partitions_.insert(item.partition->id);
    }
    bg_jobs_running_++;
    lock.Unlock();

    // Fold what the job itself observed (cache hits, bloom checks, table
    // opens...) into the engine counters; each worker thread has its own
    // PerfContext, so foreground folds never see this work.
    PerfContext* perf = GetPerfContext();
    const PerfContext perf_before = *perf;
    Status s = DispatchWork(item);
    metrics_.FoldPerf(perf->DeltaSince(perf_before));
    if (!s.ok()) {
      RecordBackgroundError(s);
    }
    RemoveObsoleteFiles();

    lock.Lock();
    if (item.kind == WorkKind::kFlush) {
      shards_[item.shard]->flush_in_progress = false;
    } else {
      busy_partitions_.erase(item.partition->id);
    }
    bg_jobs_running_--;
    bg_cv_.SignalAll();
    // Finishing a job can unblock peers: a partition leaving the busy set
    // may be the one a waiting worker needs.
    bg_work_cv_.SignalAll();
  }
  bg_cv_.SignalAll();
}

Status UniKVDB::DispatchWork(const WorkItem& item) {
  switch (item.kind) {
    case WorkKind::kFlush:
      return CompactMemTable(static_cast<size_t>(item.shard));
    case WorkKind::kMerge:
      return MergePartition(item.partition);
    case WorkKind::kScanMerge:
      return ScanMergePartition(item.partition);
    case WorkKind::kGc:
      return GcPartition(item.partition);
    case WorkKind::kSplit:
      return SplitPartition(item.partition);
    case WorkKind::kNone:
      break;
  }
  return Status::OK();
}

void UniKVDB::RecordBackgroundError(const Status& s) {
  // Callers may hold shard locks but never mu_ or err_mu_. err_mu_ is a
  // leaf: nothing else is acquired while it is held.
  {
    MutexLock lock(&err_mu_);
    if (bg_error_.ok()) {
      bg_error_ = s;
    }
    has_bg_error_.store(true, std::memory_order_release);
  }
  // Wake every waiter. The empty lock holds order the flag store before
  // each waiter's predicate re-check, closing the lost-wakeup window for
  // threads already inside their wait.
  { MutexLock lock(&mu_); }
  bg_cv_.SignalAll();
  bg_work_cv_.SignalAll();
  for (auto& shard : shards_) {
    { MutexLock shard_lock(&shard->mu); }
    shard->cv.SignalAll();
  }
}

Status UniKVDB::FlushMemTable() {
  // Rotate via each shard's writer queue: a null batch is the rotation
  // sentinel. Rotating here directly (as this method once did) swapped the
  // WAL under the front group writer's feet — a use-after-free. At the
  // queue front no concurrent append can be in flight.
  Status s = WriteImpl(WriteOptions(), nullptr);
  if (!s.ok()) return s;
  MutexLock lock(&mu_);
  bg_work_cv_.SignalAll();
  while (true) {
    if (has_bg_error_.load(std::memory_order_acquire)) break;
    bool imm_pending = false;
    for (const auto& shard : shards_) {
      if (shard->has_imm.load(std::memory_order_acquire)) {
        imm_pending = true;
        break;
      }
    }
    if (!imm_pending) break;
    bg_cv_.Wait();
  }
  return GetBackgroundError();
}

Status UniKVDB::CompactAll() {
  Status s = FlushMemTable();
  if (!s.ok()) return s;
  MutexLock lock(&mu_);
  compact_all_++;
  bg_work_cv_.SignalAll();
  while (!((!HasWorkPending() && bg_jobs_running_ == 0) ||
           has_bg_error_.load(std::memory_order_acquire))) {
    bg_cv_.Wait();
  }
  compact_all_--;
  return GetBackgroundError();
}

// ------------------------------------------------------------------ flush

Status UniKVDB::FlushMemTableToUnsorted(MemTable* mem, const VersionPtr& base,
                                        std::vector<FlushOutput>* outputs) {
  const VersionPtr& ver = base;
  std::unique_ptr<Iterator> iter(mem->NewIterator());
  iter->SeekToFirst();
  Status s;

  // Entries come out in internal-key order; route each run of keys to its
  // partition, building one table per partition touched.
  struct Builder {
    FlushOutput out;
    std::unique_ptr<WritableFile> file;
    std::unique_ptr<TableBuilder> builder;
    std::string first_key, last_key;
  };
  std::unordered_map<uint32_t, Builder> builders;

  for (; iter->Valid(); iter->Next()) {
    Slice internal_key = iter->key();
    Slice user_key = ExtractUserKey(internal_key);
    int pi = ver->FindPartition(user_key);
    const PartitionState& p = *ver->partitions[pi];

    Builder& b = builders[p.id];
    if (b.builder == nullptr) {
      uint64_t number;
      {
        MutexLock lock(&mu_);
        number = versions_->NewFileNumber();
        pending_outputs_.insert(number);
      }
      b.out.pid = p.id;
      b.out.meta.number = number;
      // table_id is assigned by the caller at install time, under mu_,
      // from the then-current version: a concurrent merge may clear this
      // partition's epoch (or a peer flush may not exist — there is only
      // one flush at a time, but merges race with it), so an id computed
      // from `base` here could collide or break newest-first probe order.
      s = env_->NewWritableFile(TableFileName(dbname_, number), &b.file);
      if (!s.ok()) break;
      b.builder =
          std::make_unique<TableBuilder>(options_.table_options, b.file.get());
    }
    b.builder->Add(internal_key, iter->value());
    b.out.meta.logical += user_key.size() + iter->value().size();
    if (b.first_key.empty()) {
      b.first_key = user_key.ToString();
    }
    b.last_key = user_key.ToString();
    if (b.out.keys.empty() || Slice(b.out.keys.back()) != user_key) {
      b.out.keys.push_back(user_key.ToString());
    }
  }
  if (s.ok()) s = iter->status();

  for (auto& [pid, b] : builders) {
    if (b.builder == nullptr) continue;  // Output file creation failed.
    if (s.ok()) {
      s = b.builder->Finish();
    } else {
      b.builder->Abandon();
    }
    if (s.ok()) s = b.file->Sync();
    if (s.ok()) s = b.file->Close();
    if (s.ok()) {
      b.out.meta.size = b.builder->FileSize();
      b.out.meta.smallest = b.first_key;
      b.out.meta.largest = b.last_key;
      outputs->push_back(std::move(b.out));
    }
  }
  if (!s.ok()) {
    // Nothing installs: release the output numbers so RemoveObsoleteFiles
    // can sweep the partial files once the error state clears.
    MutexLock lock(&mu_);
    for (auto& [pid, b] : builders) {
      (void)pid;
      pending_outputs_.erase(b.out.meta.number);
    }
  }
  return s;
}

// ---------------------------------------------------------------- helpers

namespace {

// Layout for SortedStore tables (merge and GC outputs): every entry a
// restart point, so point probes binary-search full keys instead of
// prefix-decoding a scan run (Options::sorted_block_restart_interval).
TableOptions SortedTableOptions(const Options& options) {
  TableOptions opt = options.table_options;
  if (options.sorted_block_restart_interval > 0) {
    opt.block_restart_interval = options.sorted_block_restart_interval;
  }
  if (options.sorted_block_size > 0) {
    opt.block_size = options.sorted_block_size;
  }
  return opt;
}

// Writes a hash-index checkpoint image with an explicit covered-id list.
Status WriteCheckpointFile(Env* env, const std::string& fname,
                           const HashIndex& index,
                           const std::vector<uint16_t>& covered_ids) {
  std::string image;
  PutVarint32(&image, static_cast<uint32_t>(covered_ids.size()));
  for (uint16_t id : covered_ids) PutVarint32(&image, id);
  index.EncodeTo(&image);

  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(image);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  return s;
}

}  // namespace

bool UniKVDB::RoutingStillValid(const VersionData& ver,
                                const std::vector<FlushOutput>& outputs) {
  for (const FlushOutput& out : outputs) {
    // Partition ranges are contiguous, so if both endpoints of the table
    // still map to the partition it was built for, every key in between
    // does too.
    const int pi = ver.FindPartition(Slice(out.meta.smallest));
    if (ver.partitions[pi]->id != out.pid) return false;
    if (ver.FindPartition(Slice(out.meta.largest)) != pi) return false;
  }
  return true;
}

Status UniKVDB::CompactMemTable(size_t shard_idx) {
  const uint64_t start_us = env_->NowMicros();
  WriteShard* shard = shards_[shard_idx].get();
  MemTable* mem;
  {
    MutexLock shard_lock(&shard->mu);
    mem = shard->imm;
  }
  VersionPtr base = versions_->current();
  assert(mem != nullptr);

  // Durability ceiling for the manifest floor. Every sequence allocated
  // before this load is fully appended once the sync-all below has passed
  // its shard's log_mu, and is then durable — so advancing LastSequence
  // to flush_ceiling can never let gap-cut recovery drop an op below the
  // floor. The sync also covers this shard's retiring WAL before the
  // install makes it deletable.
  const uint64_t flush_ceiling = seq_alloc_.load(std::memory_order_acquire);
  Status s = SyncAllShardWals(flush_ceiling, /*force=*/true);
  if (!s.ok()) return s;

  std::vector<FlushOutput> outputs;
  s = FlushMemTableToUnsorted(mem, base, &outputs);
  if (!s.ok()) return s;

  MutexLock lock(&mu_);

  // A concurrent split may have moved partition boundaries while the
  // tables were building; an output routed by the old boundaries could
  // span a new partition edge and must not be installed. Discard and
  // rebuild against the fresh version (splits are rare — in practice this
  // loop body never runs).
  while (!RoutingStillValid(*versions_->current(), outputs)) {
    for (const FlushOutput& out : outputs) {
      pending_outputs_.erase(out.meta.number);
    }
    outputs.clear();
    base = versions_->current();
    lock.Unlock();
    s = FlushMemTableToUnsorted(mem, base, &outputs);
    lock.Lock();
    if (!s.ok()) return s;
  }

  VersionEdit edit;
  // Manifest log-number floor: the smallest WAL that may still hold
  // un-flushed records across all shards. The flushing shard's retiring
  // WAL is covered by this install, so it contributes its *current* WAL;
  // a shard mid-flush elsewhere contributes its retiring one. Rotation
  // publishes imm_wal_number before wal_number (both under the shard's
  // mu, which we hold while reading), so the floor never moves backwards
  // across installs — VersionSet::Apply has no monotonicity guard.
  uint64_t min_wal = 0;
  for (size_t i = 0; i < shards_.size(); i++) {
    WriteShard* t = shards_[i].get();
    MutexLock tl(&t->mu);
    uint64_t n;
    if (i == shard_idx || t->imm == nullptr) {
      n = t->wal_number.load(std::memory_order_relaxed);
    } else {
      n = t->imm_wal_number.load(std::memory_order_relaxed);
    }
    if (min_wal == 0 || n < min_wal) min_wal = n;
  }
  edit.SetLogNumber(min_wal);

  // Assign table ids from the current version, under the same mutex hold
  // that installs the edit. Ids must be allocated here — not while the
  // tables were building — because a merge may have cleared the
  // partition's epoch (restarting ids from 0) or consumed the tables an
  // earlier snapshot-based id was computed against; probe order depends
  // on ids being newest-largest within the installed epoch.
  {
    VersionPtr cur = versions_->current();
    for (FlushOutput& out : outputs) {
      auto p = cur->FindById(out.pid);
      uint16_t next_id = 0;
      if (p != nullptr) {
        for (const FileMeta& f : p->unsorted) {
          if (f.table_id >= next_id) next_id = f.table_id + 1;
        }
      }
      out.meta.table_id = next_id;
      edit.AddUnsortedFile(out.pid, out.meta);
    }
  }

  // Bring the hash indexes up to date before the new version becomes
  // visible (both are installed under this same mutex hold, so readers
  // always observe a consistent pair).
  for (const FlushOutput& out : outputs) {
    auto index = GetOrCreateIndex(out.pid);
    for (const std::string& key : out.keys) {
      index->Insert(key, out.meta.table_id);
    }
  }

  // Maintain each affected partition's anchor view: when the existing
  // view covers the pre-flush tables, one merge pass folds the new table
  // in; otherwise rebuild from the post-flush set (DESIGN.md §12). Apply
  // appends added files after the survivors, so the post-install order is
  // exactly current unsorted + new meta.
  {
    VersionPtr cur = versions_->current();
    for (const FlushOutput& out : outputs) {
      auto cp = cur->FindById(out.pid);
      std::vector<FileMeta> post;
      if (cp != nullptr) post = cp->unsorted;
      post.push_back(out.meta);
      const AnchorView* base_view = nullptr;
      auto it = anchor_views_.find(out.pid);
      if (it != anchor_views_.end() && cp != nullptr &&
          it->second->Covers(cp->unsorted)) {
        base_view = it->second.get();
      }
      MaintainAnchorViewLocked(out.pid, post, base_view,
                               base_view != nullptr ? &out.meta : nullptr,
                               &edit);
    }
  }

  // Periodic hash-index checkpointing (paper: every UnsortedLimit/2 of
  // flushed tables).
  std::vector<uint64_t> checkpoint_numbers;
  if (options_.index_checkpoint_interval > 0) {
    VersionPtr ver = versions_->current();
    for (const FlushOutput& out : outputs) {
      int& counter = flushes_since_checkpoint_[out.pid];
      counter++;
      if (counter < options_.index_checkpoint_interval) continue;

      std::vector<uint16_t> covered;
      for (const auto& p : ver->partitions) {
        if (p->id == out.pid) {
          for (const FileMeta& f : p->unsorted) covered.push_back(f.table_id);
        }
      }
      for (const FlushOutput& o2 : outputs) {
        if (o2.pid == out.pid) covered.push_back(o2.meta.table_id);
      }
      uint64_t number = versions_->NewFileNumber();
      pending_outputs_.insert(number);
      auto index = GetOrCreateIndex(out.pid);
      Status cs = WriteCheckpointFile(
          env_, IndexCheckpointFileName(dbname_, number), *index, covered);
      if (cs.ok()) {
        edit.SetIndexCheckpoint(out.pid, number);
        checkpoint_numbers.push_back(number);
        counter = 0;
      } else {
        pending_outputs_.erase(number);
      }
    }
  }

  // Advance the recovery floor only as far as the sync-all made durable
  // (LogAndApply stamps the manifest from VersionSet's own counter, so it
  // must be raised here, before the install).
  if (flush_ceiling > versions_->LastSequence()) {
    versions_->SetLastSequence(flush_ceiling);
  }
  s = versions_->LogAndApply(&edit);
  for (const FlushOutput& out : outputs) {
    pending_outputs_.erase(out.meta.number);
  }
  for (uint64_t number : checkpoint_numbers) {
    pending_outputs_.erase(number);
  }
  if (s.ok()) {
    stats_.flushes++;
    {
      MutexLock shard_lock(&shard->mu);
      shard->imm->Unref();
      shard->imm = nullptr;
      shard->has_imm.store(false, std::memory_order_release);
      shard->imm_wal_number.store(0, std::memory_order_relaxed);
      shard->cv.SignalAll();  // Stalled writers wait on the shard cv.
    }

    const uint64_t dur = env_->NowMicros() - start_us;
    metrics_.flush_latency->Add(static_cast<double>(dur));
    uint64_t bytes_written = 0;
    for (const FlushOutput& out : outputs) {
      PartitionCounters& pc = partition_stats_[out.pid];
      pc.flushes++;
      pc.flush_bytes += out.meta.size;
      // Heat + write-amp inputs: entries and logical user bytes landing
      // in the partition. Flush routing is where keys first meet
      // partition boundaries, so update frequency is measured here.
      pc.heat_writes += out.keys.size();
      pc.user_bytes_flushed += out.meta.logical;
      bytes_written += out.meta.size;
    }
    // Accounted here, under mu_, rather than in FlushMemTableToUnsorted:
    // stats_ is mutex-guarded and the builder runs unlocked.
    stats_.flush_bytes += bytes_written;
    JsonBuilder ev;
    ev.AddUint("duration_micros", dur);
    ev.AddUint("bytes_written", bytes_written);
    ev.AddUint("output_tables", outputs.size());
    event_log_->Log("flush", &ev);
  }
  bg_cv_.SignalAll();
  return s;
}

// ------------------------------------------------------------------ merge

Status UniKVDB::MergePartition(std::shared_ptr<const PartitionState> p) {
  const uint64_t start_us = env_->NowMicros();
  const uint32_t pid = p->id;
  const bool separate = options_.enable_kv_separation;

  // Inputs: every unsorted table + the sorted run.
  std::vector<Iterator*> children;
  uint64_t bytes_read = 0;
  for (const FileMeta& f : p->unsorted) {
    children.push_back(table_cache_->NewIterator(f.number, f.size));
    bytes_read += f.size;
  }
  if (!p->sorted.empty()) {
    std::vector<Iterator*> run;
    for (const FileMeta& f : p->sorted) {
      run.push_back(table_cache_->NewIterator(f.number, f.size));
      bytes_read += f.size;
    }
    children.push_back(NewConcatenatingIterator(icmp_, std::move(run)));
  }
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(icmp_, std::move(children)));

  // Output value log (partial KV separation: only values arriving from
  // the UnsortedStore are appended; SortedStore values keep their existing
  // pointers).
  std::unique_ptr<ValueLogWriter> vlog;
  uint64_t vlog_number = 0;
  if (separate) {
    MutexLock lock(&mu_);
    vlog_number = versions_->NewFileNumber();
    pending_outputs_.insert(vlog_number);
  }
  if (separate) {
    std::unique_ptr<WritableFile> vfile;
    Status s =
        env_->NewWritableFile(ValueLogFileName(dbname_, vlog_number), &vfile);
    if (!s.ok()) {
      MutexLock lock(&mu_);
      pending_outputs_.erase(vlog_number);
      return s;
    }
    vlog = std::make_unique<ValueLogWriter>(std::move(vfile), pid,
                                            vlog_number);
  }

  // Output tables.
  struct Output {
    FileMeta meta;
  };
  std::vector<Output> outputs;
  std::unique_ptr<WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  std::string first_key;
  uint64_t garbage_added = 0;
  uint64_t bytes_written = 0;
  Status s;

  auto rotate_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status rs = builder->Finish();
    if (rs.ok()) rs = out_file->Sync();
    if (rs.ok()) rs = out_file->Close();
    if (rs.ok()) {
      outputs.back().meta.size = builder->FileSize();
      bytes_written += builder->FileSize();
    }
    builder.reset();
    out_file.reset();
    return rs;
  };
  auto open_output = [&]() -> Status {
    uint64_t number;
    {
      MutexLock lock(&mu_);
      number = versions_->NewFileNumber();
      pending_outputs_.insert(number);
    }
    outputs.emplace_back();
    outputs.back().meta.number = number;
    Status rs = env_->NewWritableFile(TableFileName(dbname_, number), &out_file);
    if (!rs.ok()) return rs;
    builder = std::make_unique<TableBuilder>(SortedTableOptions(options_),
                                             out_file.get());
    first_key.clear();
    return Status::OK();
  };

  std::string current_user_key;
  bool has_current_user_key = false;
  std::string rewritten;

  for (merged->SeekToFirst(); s.ok() && merged->Valid(); merged->Next()) {
    Slice internal_key = merged->key();
    ParsedInternalKey ikey;
    if (!ParseInternalKey(internal_key, &ikey)) {
      s = Status::Corruption("corrupt internal key during merge");
      break;
    }

    const bool first_occurrence =
        !has_current_user_key ||
        ikey.user_key.compare(Slice(current_user_key)) != 0;
    if (first_occurrence) {
      current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
      has_current_user_key = true;
    } else {
      // An older, shadowed version: drop it. If it pointed into a value
      // log, its record becomes garbage.
      if (ikey.type == kTypeValuePointer) {
        ValuePointer ptr;
        Slice encoded = merged->value();
        if (ptr.DecodeFrom(&encoded)) garbage_added += ptr.size;
      }
      continue;
    }

    if (ikey.type == kTypeDeletion) {
      // The SortedStore is the terminal level: tombstones die here.
      continue;
    }

    Slice out_value = merged->value();
    ValueType out_type = ikey.type;
    if (ikey.type == kTypeValue && separate &&
        out_value.size() >= options_.value_separation_threshold) {
      // Value arriving from the UnsortedStore: separate it. Values below
      // the separation threshold stay inline (differentiated management
      // of small KVs, paper §Memory overhead discussion).
      ValuePointer ptr;
      s = vlog->Add(ikey.user_key, out_value, &ptr);
      if (!s.ok()) break;
      rewritten.clear();
      ptr.EncodeTo(&rewritten);
      out_value = Slice(rewritten);
      out_type = kTypeValuePointer;
    }

    if (builder == nullptr) {
      s = open_output();
      if (!s.ok()) break;
    }
    std::string out_key;
    AppendInternalKey(&out_key,
                      ParsedInternalKey(ikey.user_key, ikey.sequence,
                                        out_type));
    builder->Add(out_key, out_value);
    // Logical bytes: key plus the value the entry governs (the pointed-to
    // record for separated values).
    uint64_t governed = ikey.user_key.size();
    if (out_type == kTypeValuePointer) {
      ValuePointer p2;
      Slice encoded2(out_value);
      if (p2.DecodeFrom(&encoded2)) governed += p2.size;
    } else {
      governed += out_value.size();
    }
    outputs.back().meta.logical += governed;
    if (first_key.empty()) first_key = ikey.user_key.ToString();
    outputs.back().meta.smallest = first_key;
    outputs.back().meta.largest = ikey.user_key.ToString();

    // Rotate on physical size OR governed logical size, so a partition
    // large in *values* still produces multiple tables (split points).
    const uint64_t rotation_logical =
        std::max<uint64_t>(options_.sorted_table_size,
                           options_.partition_size_limit / 8);
    if (builder->FileSize() >= options_.sorted_table_size ||
        outputs.back().meta.logical >= rotation_logical) {
      s = rotate_output();
      if (!s.ok()) break;
    }
  }
  if (s.ok()) s = merged->status();
  if (s.ok()) {
    s = rotate_output();
  } else if (builder != nullptr) {
    builder->Abandon();
    builder.reset();
  }

  uint64_t vlog_size = 0;
  if (s.ok() && vlog != nullptr) {
    vlog_size = vlog->CurrentOffset();
    if (vlog_size > 0) {
      s = vlog->Sync();
      if (s.ok()) s = vlog->Close();
      bytes_written += vlog_size;
    }
  }
  if (!s.ok()) {
    MutexLock lock(&mu_);
    for (const Output& out : outputs) pending_outputs_.erase(out.meta.number);
    if (separate) pending_outputs_.erase(vlog_number);
    return s;
  }

  // Install: the snapshot's unsorted files and previous sorted files are
  // replaced wholesale; old value logs stay (their dead records are GC'ed
  // later). Removals are by file number, so unsorted tables flushed into
  // this partition *while the merge ran* — which are not in the snapshot —
  // survive the edit untouched.
  VersionEdit edit;
  for (const FileMeta& f : p->unsorted) edit.RemoveUnsortedFile(pid, f.number);
  for (const FileMeta& f : p->sorted) edit.RemoveSortedFile(pid, f.number);
  for (const Output& out : outputs) edit.AddSortedFile(pid, out.meta);
  if (separate && vlog_size > 0) {
    VlogMeta v;
    v.number = vlog_number;
    v.size = vlog_size;
    edit.AddValueLog(pid, v);
  }
  edit.SetIndexCheckpoint(pid, 0);

  MutexLock lock(&mu_);

  // Re-validate the snapshot against the current version. The busy set
  // excludes other merges/GCs/splits on this partition, but flushes are
  // not partition-scoped: any unsorted table present now that was not in
  // the snapshot is a survivor, and the hash index must be rebuilt to
  // cover exactly the survivors (the snapshot tables' entries die with
  // the epoch).
  std::shared_ptr<const PartitionState> cur_p =
      versions_->current()->FindById(pid);
  if (cur_p == nullptr) {
    // Partition vanished (unreachable today: nothing removes partitions).
    for (const Output& out : outputs) pending_outputs_.erase(out.meta.number);
    if (separate) pending_outputs_.erase(vlog_number);
    return Status::OK();
  }
  std::set<uint64_t> consumed;
  for (const FileMeta& f : p->unsorted) consumed.insert(f.number);
  std::vector<FileMeta> survivors;
  for (const FileMeta& f : cur_p->unsorted) {
    if (!consumed.count(f.number)) survivors.push_back(f);
  }

  // Build the replacement index before installing the edit so a failed
  // table scan leaves both the version and the old index untouched.
  // Survivor scans do I/O under mu_, but survivors exist only when a
  // flush landed during this merge and each is at most one memtable.
  std::shared_ptr<HashIndex> new_index;
  if (!survivors.empty()) {
    new_index = std::make_shared<HashIndex>(IndexExpectedEntries(),
                                            options_.index_num_hashes);
    for (const FileMeta& f : survivors) {
      s = InsertTableIntoIndex(new_index.get(), f);
      if (!s.ok()) {
        for (const Output& out : outputs) {
          pending_outputs_.erase(out.meta.number);
        }
        if (separate) pending_outputs_.erase(vlog_number);
        return s;
      }
    }
  }

  // The consumed tables' anchor view dies with the epoch; survivors get a
  // fresh view (or none, if fewer than two remain).
  MaintainAnchorViewLocked(pid, survivors, nullptr, nullptr, &edit);

  s = versions_->LogAndApply(&edit);
  for (const Output& out : outputs) pending_outputs_.erase(out.meta.number);
  if (separate) pending_outputs_.erase(vlog_number);
  if (s.ok()) {
    if (new_index != nullptr) {
      indexes_[pid] = new_index;
    } else {
      auto it = indexes_.find(pid);
      if (it != indexes_.end()) it->second->Clear();
    }
    flushes_since_checkpoint_[pid] = 0;
    vlog_garbage_[pid] += garbage_added;
    stats_.merges++;
    stats_.merge_bytes_read += bytes_read;
    stats_.merge_bytes_written += bytes_written;
    partition_stats_[pid].merges++;
    partition_stats_[pid].merge_bytes_written += bytes_written;

    const uint64_t dur = env_->NowMicros() - start_us;
    metrics_.merge_latency->Add(static_cast<double>(dur));
    JsonBuilder ev;
    ev.AddUint("partition", pid);
    ev.AddUint("duration_micros", dur);
    ev.AddUint("bytes_read", bytes_read);
    ev.AddUint("bytes_written", bytes_written);
    ev.AddUint("input_tables", p->unsorted.size() + p->sorted.size());
    ev.AddUint("output_tables", outputs.size());
    ev.AddUint("surviving_tables", survivors.size());
    ev.AddUint("vlog_bytes", vlog_size);
    ev.AddUint("garbage_added", garbage_added);
    event_log_->Log("merge", &ev);
  }
  bg_cv_.SignalAll();
  return s;
}

// ------------------------------------------------------------- scan merge

Status UniKVDB::ScanMergePartition(std::shared_ptr<const PartitionState> p) {
  const uint64_t start_us = env_->NowMicros();
  const uint32_t pid = p->id;
  if (p->unsorted.size() < 2) return Status::OK();

  // The consolidated table reuses the *largest consumed* table_id (free
  // to reuse — every consumed id is removed in the same edit). Taking
  // max+1 instead would collide with, or outrank, tables flushed into the
  // partition while this job runs: those get ids above the snapshot max
  // and are strictly newer, so they must keep the higher probe priority.
  std::vector<Iterator*> children;
  uint16_t new_table_id = 0;
  for (const FileMeta& f : p->unsorted) {
    children.push_back(table_cache_->NewIterator(f.number, f.size));
    if (f.table_id > new_table_id) new_table_id = f.table_id;
  }
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(icmp_, std::move(children)));

  uint64_t number;
  {
    MutexLock lock(&mu_);
    number = versions_->NewFileNumber();
    pending_outputs_.insert(number);
  }
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(TableFileName(dbname_, number), &file);
  if (!s.ok()) {
    MutexLock lock(&mu_);
    pending_outputs_.erase(number);
    return s;
  }
  TableBuilder builder(options_.table_options, file.get());

  FileMeta meta;
  meta.number = number;
  meta.table_id = new_table_id;
  std::vector<std::string> keys;
  std::string current_user_key;
  bool has_current = false;

  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    Slice internal_key = merged->key();
    Slice user_key = ExtractUserKey(internal_key);
    if (has_current && user_key.compare(Slice(current_user_key)) == 0) {
      continue;  // Older version within the UnsortedStore: drop.
    }
    current_user_key.assign(user_key.data(), user_key.size());
    has_current = true;
    // Tombstones are preserved: they still shadow the SortedStore.
    builder.Add(internal_key, merged->value());
    keys.push_back(current_user_key);
    if (meta.smallest.empty()) meta.smallest = current_user_key;
    meta.largest = current_user_key;
  }
  s = merged->status();
  if (s.ok()) {
    s = builder.Finish();
  } else {
    builder.Abandon();
  }
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) {
    MutexLock lock(&mu_);
    pending_outputs_.erase(number);
    return s;
  }
  meta.size = builder.FileSize();

  VersionEdit edit;
  for (const FileMeta& f : p->unsorted) edit.RemoveUnsortedFile(pid, f.number);
  edit.AddUnsortedFile(pid, meta);
  edit.SetIndexCheckpoint(pid, 0);

  MutexLock lock(&mu_);

  // Tables flushed into this partition while the job ran survive the edit
  // (removals are by number); the rebuilt index must cover them too.
  std::shared_ptr<const PartitionState> cur_p =
      versions_->current()->FindById(pid);
  if (cur_p == nullptr) {
    pending_outputs_.erase(number);
    return Status::OK();
  }
  std::set<uint64_t> consumed;
  for (const FileMeta& f : p->unsorted) consumed.insert(f.number);
  std::vector<FileMeta> survivors;
  for (const FileMeta& f : cur_p->unsorted) {
    if (!consumed.count(f.number)) survivors.push_back(f);
  }

  // Build the replacement index before installing the edit (see
  // MergePartition for the failure-ordering rationale).
  auto new_index = std::make_shared<HashIndex>(IndexExpectedEntries(),
                                               options_.index_num_hashes);
  for (const std::string& key : keys) {
    new_index->Insert(key, new_table_id);
  }
  for (const FileMeta& f : survivors) {
    s = InsertTableIntoIndex(new_index.get(), f);
    if (!s.ok()) {
      pending_outputs_.erase(number);
      return s;
    }
  }

  // Post-install unsorted set: survivors (in current order) followed by
  // the consolidated table (Apply appends adds, then erases removals).
  {
    std::vector<FileMeta> post = survivors;
    post.push_back(meta);
    MaintainAnchorViewLocked(pid, post, nullptr, nullptr, &edit);
  }

  s = versions_->LogAndApply(&edit);
  pending_outputs_.erase(number);
  if (s.ok()) {
    indexes_[pid] = new_index;
    flushes_since_checkpoint_[pid] = 0;
    stats_.scan_merges++;
    partition_stats_[pid].scan_merges++;

    const uint64_t dur = env_->NowMicros() - start_us;
    metrics_.scan_merge_latency->Add(static_cast<double>(dur));
    JsonBuilder ev;
    ev.AddUint("partition", pid);
    ev.AddUint("duration_micros", dur);
    ev.AddUint("input_tables", p->unsorted.size());
    ev.AddUint("output_tables", 1);
    ev.AddUint("bytes_written", meta.size);
    event_log_->Log("scan_merge", &ev);
  }
  bg_cv_.SignalAll();
  return s;
}

// --------------------------------------------------------------------- GC

Status UniKVDB::GcPartition(std::shared_ptr<const PartitionState> p) {
  const uint64_t start_us = env_->NowMicros();
  const uint32_t pid = p->id;
  if (p->sorted.empty() || p->vlogs.empty()) {
    MutexLock lock(&mu_);
    vlog_garbage_[pid] = 0;
    return Status::OK();
  }

  // New value log for the rewritten live values.
  uint64_t vlog_number;
  {
    MutexLock lock(&mu_);
    vlog_number = versions_->NewFileNumber();
    pending_outputs_.insert(vlog_number);
  }
  std::unique_ptr<WritableFile> vfile;
  Status s =
      env_->NewWritableFile(ValueLogFileName(dbname_, vlog_number), &vfile);
  if (!s.ok()) {
    MutexLock lock(&mu_);
    pending_outputs_.erase(vlog_number);
    return s;
  }
  ValueLogWriter vlog(std::move(vfile), pid, vlog_number);

  // Scan the SortedStore (the authority on liveness), fetch every live
  // value, append it to the new log, and write back keys + new pointers.
  std::vector<Iterator*> run;
  uint64_t bytes_read = 0;
  for (const FileMeta& f : p->sorted) {
    run.push_back(table_cache_->NewIterator(f.number, f.size));
    bytes_read += f.size;
  }
  std::unique_ptr<Iterator> iter(
      NewConcatenatingIterator(icmp_, std::move(run)));

  std::vector<FileMeta> outputs;
  std::unique_ptr<WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  uint64_t bytes_written = 0;

  auto rotate_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status rs = builder->Finish();
    if (rs.ok()) rs = out_file->Sync();
    if (rs.ok()) rs = out_file->Close();
    if (rs.ok()) {
      outputs.back().size = builder->FileSize();
      bytes_written += builder->FileSize();
    }
    builder.reset();
    out_file.reset();
    return rs;
  };
  auto open_output = [&]() -> Status {
    uint64_t number;
    {
      MutexLock lock(&mu_);
      number = versions_->NewFileNumber();
      pending_outputs_.insert(number);
    }
    outputs.emplace_back();
    outputs.back().number = number;
    Status rs = env_->NewWritableFile(TableFileName(dbname_, number), &out_file);
    if (!rs.ok()) return rs;
    builder = std::make_unique<TableBuilder>(SortedTableOptions(options_),
                                             out_file.get());
    return Status::OK();
  };

  // Batched parallel fetch of live values through the thread pool.
  struct Entry {
    std::string internal_key;
    std::string value;  // Encoded pointer (in) -> value bytes (out).
    bool is_pointer = false;
    ValuePointer ptr;
    Status status;
  };
  std::vector<Entry> batch;
  const size_t kBatchSize = 256;
  std::string rewritten;

  auto flush_batch = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    if (options_.enable_scan_optimization && batch.size() > 1) {
      // Wait on this batch's own completion group, not the whole pool:
      // the pool is shared with foreground scans, and a global WaitIdle
      // would block GC behind an unrelated scan's fetches (and vice
      // versa) for as long as the other caller keeps the pool busy.
      ThreadPool::TaskGroup group;
      for (Entry& e : batch) {
        if (!e.is_pointer) continue;
        fetch_pool_->Schedule(&group, [this, &e] {
          std::string stored_key;
          e.status = vlog_cache_->Get(e.ptr, &e.value, &stored_key);
        });
      }
      group.Wait();
    } else {
      for (Entry& e : batch) {
        if (!e.is_pointer) continue;
        e.status = vlog_cache_->Get(e.ptr, &e.value);
      }
    }
    for (Entry& e : batch) {
      if (!e.status.ok()) return e.status;
      Slice user_key = ExtractUserKey(e.internal_key);
      Slice out_value(e.value);
      std::string encoded;
      if (e.is_pointer) {
        bytes_read += e.ptr.size;
        ValuePointer new_ptr;
        Status rs = vlog.Add(user_key, e.value, &new_ptr);
        if (!rs.ok()) return rs;
        encoded.clear();
        new_ptr.EncodeTo(&encoded);
        out_value = Slice(encoded);
      }
      if (builder == nullptr) {
        Status rs = open_output();
        if (!rs.ok()) return rs;
      }
      builder->Add(e.internal_key, out_value);
      uint64_t governed = user_key.size();
      if (e.is_pointer) {
        governed += e.value.size();
      } else {
        governed += out_value.size();
      }
      outputs.back().logical += governed;
      if (outputs.back().smallest.empty()) {
        outputs.back().smallest = user_key.ToString();
      }
      outputs.back().largest = user_key.ToString();
      const uint64_t rotation_logical =
          std::max<uint64_t>(options_.sorted_table_size,
                             options_.partition_size_limit / 8);
      if (builder->FileSize() >= options_.sorted_table_size ||
          outputs.back().logical >= rotation_logical) {
        Status rs = rotate_output();
        if (!rs.ok()) return rs;
      }
    }
    batch.clear();
    return Status::OK();
  };

  for (iter->SeekToFirst(); s.ok() && iter->Valid(); iter->Next()) {
    Entry e;
    e.internal_key = iter->key().ToString();
    ValueType type = ExtractValueType(iter->key());
    if (type == kTypeValuePointer) {
      Slice encoded = iter->value();
      if (!e.ptr.DecodeFrom(&encoded)) {
        s = Status::Corruption("bad value pointer during GC");
        break;
      }
      e.is_pointer = true;
    } else {
      e.value = iter->value().ToString();
    }
    batch.push_back(std::move(e));
    if (batch.size() >= kBatchSize) {
      s = flush_batch();
    }
  }
  if (s.ok()) s = iter->status();
  if (s.ok()) s = flush_batch();
  if (s.ok()) s = rotate_output();

  uint64_t vlog_size = vlog.CurrentOffset();
  if (s.ok() && vlog_size > 0) {
    s = vlog.Sync();
    if (s.ok()) s = vlog.Close();
    bytes_written += vlog_size;
  }
  if (!s.ok()) {
    MutexLock lock(&mu_);
    for (const FileMeta& f : outputs) pending_outputs_.erase(f.number);
    pending_outputs_.erase(vlog_number);
    if (builder != nullptr) builder->Abandon();
    return s;
  }

  // Install atomically: old sorted tables and this partition's references
  // to the old logs go away; shared logs survive physically until the
  // sibling partition GCs too (lazy split completion).
  VersionEdit edit;
  for (const FileMeta& f : p->sorted) edit.RemoveSortedFile(pid, f.number);
  for (const VlogMeta& v : p->vlogs) edit.RemoveValueLog(pid, v.number);
  for (const FileMeta& f : outputs) edit.AddSortedFile(pid, f);
  if (vlog_size > 0) {
    VlogMeta v;
    v.number = vlog_number;
    v.size = vlog_size;
    edit.AddValueLog(pid, v);
  }

  MutexLock lock(&mu_);

  // Re-validate: per-partition exclusivity means no other job can have
  // touched this partition's sorted run or value logs, but verify rather
  // than assume — installing over a changed sorted run would lose data.
  {
    std::shared_ptr<const PartitionState> cur_p =
        versions_->current()->FindById(pid);
    bool unchanged = cur_p != nullptr &&
                     cur_p->sorted.size() == p->sorted.size() &&
                     cur_p->vlogs.size() == p->vlogs.size();
    for (size_t i = 0; unchanged && i < p->sorted.size(); i++) {
      unchanged = cur_p->sorted[i].number == p->sorted[i].number;
    }
    for (size_t i = 0; unchanged && i < p->vlogs.size(); i++) {
      unchanged = cur_p->vlogs[i].number == p->vlogs[i].number;
    }
    if (!unchanged) {
      assert(false && "partition changed under an exclusive GC");
      for (const FileMeta& f : outputs) pending_outputs_.erase(f.number);
      pending_outputs_.erase(vlog_number);
      return Status::OK();
    }
  }

  if (TEST_gc_unsafe_delete_before_install_.load(std::memory_order_relaxed)) {
    // Deliberately wrong ordering, enabled only by the crash harness: the
    // old logs must outlive a durable manifest install (the safe path
    // defers deletion to RemoveObsoleteFiles). Deleting first loses live
    // values if we crash before the install becomes durable. Logs still
    // shared with a sibling partition stay (they are not obsolete even
    // after this edit), matching what the buggy ordering would delete.
    VersionPtr cur = versions_->current();
    for (const VlogMeta& v : p->vlogs) {
      bool shared = false;
      for (const auto& other : cur->partitions) {
        if (other->id == pid) continue;
        for (const VlogMeta& ov : other->vlogs) {
          if (ov.number == v.number) {
            shared = true;
            break;
          }
        }
      }
      if (shared) continue;
      vlog_cache_->Evict(0, v.number);
      // Best-effort: a survivor costs disk until the next obsolete-file
      // sweep retries it; GC itself already succeeded.
      (void)env_->RemoveFile(ValueLogFileName(dbname_, v.number));
    }
  }
  s = versions_->LogAndApply(&edit);
  for (const FileMeta& f : outputs) pending_outputs_.erase(f.number);
  pending_outputs_.erase(vlog_number);
  if (s.ok()) {
    vlog_garbage_[pid] = 0;
    stats_.gcs++;
    stats_.gc_bytes_read += bytes_read;
    stats_.gc_bytes_written += bytes_written;
    partition_stats_[pid].gcs++;
    partition_stats_[pid].gc_bytes_written += bytes_written;

    const uint64_t dur = env_->NowMicros() - start_us;
    metrics_.gc_latency->Add(static_cast<double>(dur));
    JsonBuilder ev;
    ev.AddUint("partition", pid);
    ev.AddUint("duration_micros", dur);
    ev.AddUint("bytes_read", bytes_read);
    ev.AddUint("bytes_written", bytes_written);
    ev.AddUint("input_vlogs", p->vlogs.size());
    ev.AddUint("output_tables", outputs.size());
    ev.AddUint("vlog_bytes", vlog_size);
    event_log_->Log("gc", &ev);
  }
  bg_cv_.SignalAll();
  return s;
}

// ------------------------------------------------------------------ split

Status UniKVDB::SplitPartition(std::shared_ptr<const PartitionState> p) {
  // Preconditions: no unsorted tables, >= 2 sorted tables. The key split
  // is metadata-only because the sorted run already consists of disjoint
  // tables; values are split lazily by later GC (paper: lazy split scheme
  // integrated with GC). The whole job is metadata work, so it runs under
  // one mutex hold against the *current* partition state — the snapshot
  // PickWork saw may be stale by now (a flush can add unsorted tables at
  // any time, and those would straddle the boundary).
  const uint64_t start_us = env_->NowMicros();
  MutexLock lock(&mu_);
  std::shared_ptr<const PartitionState> cur_p =
      versions_->current()->FindById(p->id);
  if (cur_p == nullptr || !cur_p->unsorted.empty() ||
      cur_p->sorted.size() < 2) {
    // Preconditions no longer hold; bail out. The scheduler will merge
    // the new unsorted data first and revisit the split.
    return Status::OK();
  }
  p = cur_p;

  uint64_t total = 0;
  for (const FileMeta& f : p->sorted) total += f.logical;
  uint64_t cum = 0;
  size_t k = 0;
  for (; k + 1 < p->sorted.size(); k++) {
    cum += p->sorted[k].logical;
    if (cum >= total / 2) {
      k++;
      break;
    }
  }
  if (k == 0 || k >= p->sorted.size()) k = p->sorted.size() / 2;
  if (k == 0) k = 1;
  const std::string boundary = p->sorted[k].smallest;

  uint32_t npid = versions_->NewPartitionId();
  VersionEdit edit;
  edit.AddPartition(npid, boundary);
  for (size_t i = k; i < p->sorted.size(); i++) {
    edit.RemoveSortedFile(p->id, p->sorted[i].number);
    edit.AddSortedFile(npid, p->sorted[i]);
  }
  // Both children reference the old value logs until lazy GC segregates
  // the live values.
  for (const VlogMeta& v : p->vlogs) {
    edit.AddValueLog(npid, v);
  }

  // Split preconditions guarantee no unsorted tables, hence no view on
  // either side; drop any stale entry defensively.
  InstallAnchorViewLocked(p->id, nullptr);
  InstallAnchorViewLocked(npid, nullptr);

  Status s = versions_->LogAndApply(&edit);
  if (s.ok()) {
    indexes_[npid] = std::make_shared<HashIndex>(IndexExpectedEntries(),
                                                 options_.index_num_hashes);
    uint64_t garbage = vlog_garbage_[p->id];
    vlog_garbage_[p->id] = garbage / 2;
    vlog_garbage_[npid] = garbage - garbage / 2;
    flushes_since_checkpoint_[npid] = 0;
    stats_.splits++;
    partition_stats_[p->id].splits++;

    const uint64_t dur = env_->NowMicros() - start_us;
    metrics_.split_latency->Add(static_cast<double>(dur));
    JsonBuilder ev;
    ev.AddUint("partition", p->id);
    ev.AddUint("new_partition", npid);
    ev.AddUint("duration_micros", dur);
    ev.AddString("boundary", boundary);
    ev.AddUint("tables_moved", p->sorted.size() - k);
    event_log_->Log("split", &ev);
  }
  bg_cv_.SignalAll();
  return s;
}

// --------------------------------------------------------- obsolete files

void UniKVDB::RemoveObsoleteFiles() {
  const uint64_t start_us = env_->NowMicros();
  std::set<uint64_t> live;
  uint64_t log_number, manifest_number;
  std::vector<std::string> children;
  {
    MutexLock lock(&mu_);
    if (has_bg_error_.load(std::memory_order_acquire)) {
      return;  // Unsure about state: keep everything.
    }
    versions_->AddLiveFiles(&live);
    live.insert(pending_outputs_.begin(), pending_outputs_.end());
    log_number = versions_->LogNumber();
    manifest_number = versions_->ManifestFileNumber();
    // The directory listing must happen while the live set is
    // authoritative. Peer workers register a pending output (under mu_)
    // *before* creating the file, so any file this listing can observe is
    // covered by the snapshot above; with the mutex dropped between the
    // two, a peer could register and create a fresh output in the window
    // and this sweep would delete it.
    if (!env_->GetChildren(dbname_, &children).ok()) return;
  }

  std::string removed;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    bool keep = true;
    switch (type) {
      case FileType::kWalFile:
      case FileType::kShardWalFile:
        keep = number >= log_number;
        break;
      case FileType::kManifestFile:
        keep = number == manifest_number;
        break;
      case FileType::kTableFile:
      case FileType::kValueLogFile:
      case FileType::kIndexCheckpoint:
      case FileType::kAnchorsFile:
        keep = live.count(number) > 0;
        break;
      case FileType::kTempFile:
        keep = false;
        break;
      case FileType::kCurrentFile:
      case FileType::kUnknown:
        keep = true;
        break;
    }
    if (!keep) {
      if (type == FileType::kTableFile) {
        table_cache_->Evict(number);
      } else if (type == FileType::kValueLogFile) {
        vlog_cache_->Evict(0, number);
      }
      // Best-effort sweep; re-attempted on every pass.
      (void)env_->RemoveFile(dbname_ + "/" + child);
      if (!removed.empty()) removed += ' ';
      removed += child;
    }
  }
  if (!removed.empty()) {
    JsonBuilder ev;
    ev.AddUint("duration_micros", env_->NowMicros() - start_us);
    ev.AddUint("live", live.size());
    ev.AddString("files", removed);
    event_log_->Log("sweep", &ev);
  }
}

}  // namespace unikv
