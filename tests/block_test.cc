// Block builder/reader tests: restart-point prefix compression, seeks,
// reverse iteration, corruption behavior.

#include "table/block.h"
#include "table/block_builder.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/dbformat.h"
#include "util/random.h"

namespace unikv {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq = 100,
                 ValueType type = kTypeValue) {
  std::string result;
  AppendInternalKey(&result, ParsedInternalKey(user_key, seq, type));
  return result;
}

class BlockTest : public testing::TestWithParam<int> {
 protected:
  // Builds a block from the given map (keys get internal-key trailers).
  std::unique_ptr<Block> Build(const std::map<std::string, std::string>& kvs,
                               std::string* storage) {
    BlockBuilder builder(GetParam());
    for (const auto& [key, value] : kvs) {
      builder.Add(IKey(key), value);
    }
    *storage = builder.Finish().ToString();
    BlockContents contents;
    contents.data = Slice(*storage);
    contents.cachable = false;
    contents.heap_allocated = false;
    return std::make_unique<Block>(contents);
  }

  InternalKeyComparator icmp_;
};

TEST_P(BlockTest, EmptyBlock) {
  std::string storage;
  auto block = Build({}, &storage);
  std::unique_ptr<Iterator> iter(block->NewIterator(icmp_));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  iter->SeekToLast();
  EXPECT_FALSE(iter->Valid());
  iter->Seek(IKey("x"));
  EXPECT_FALSE(iter->Valid());
}

TEST_P(BlockTest, ForwardIteration) {
  std::map<std::string, std::string> kvs;
  Random rnd(17);
  for (int i = 0; i < 200; i++) {
    // Shared prefixes stress the delta encoding.
    std::string key = "prefix/" + std::to_string(1000 + i);
    kvs[key] = std::string(rnd.Uniform(64), 'v');
  }
  std::string storage;
  auto block = Build(kvs, &storage);
  std::unique_ptr<Iterator> iter(block->NewIterator(icmp_));
  auto mit = kvs.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, kvs.end());
    EXPECT_EQ(mit->first, ExtractUserKey(iter->key()).ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, kvs.end());
}

TEST_P(BlockTest, ReverseIteration) {
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 100; i++) {
    kvs["key" + std::to_string(100 + i)] = "value" + std::to_string(i);
  }
  std::string storage;
  auto block = Build(kvs, &storage);
  std::unique_ptr<Iterator> iter(block->NewIterator(icmp_));
  auto mit = kvs.rbegin();
  for (iter->SeekToLast(); iter->Valid(); iter->Prev(), ++mit) {
    ASSERT_NE(mit, kvs.rend());
    EXPECT_EQ(mit->first, ExtractUserKey(iter->key()).ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, kvs.rend());
}

TEST_P(BlockTest, SeekSemantics) {
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 100; i += 2) {  // Even keys only.
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    kvs[buf] = "v";
  }
  std::string storage;
  auto block = Build(kvs, &storage);
  std::unique_ptr<Iterator> iter(block->NewIterator(icmp_));

  iter->Seek(IKey("k050", kMaxSequenceNumber, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k050", ExtractUserKey(iter->key()).ToString());

  // Seeking an absent key lands on the next greater one.
  iter->Seek(IKey("k051", kMaxSequenceNumber, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k052", ExtractUserKey(iter->key()).ToString());

  // Before the first key.
  iter->Seek(IKey("a", kMaxSequenceNumber, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k000", ExtractUserKey(iter->key()).ToString());

  // Past the last key.
  iter->Seek(IKey("zzz", kMaxSequenceNumber, kValueTypeForSeek));
  EXPECT_FALSE(iter->Valid());
}

TEST_P(BlockTest, LargeValues) {
  std::map<std::string, std::string> kvs;
  kvs["big"] = std::string(100000, 'B');
  kvs["small"] = "s";
  std::string storage;
  auto block = Build(kvs, &storage);
  std::unique_ptr<Iterator> iter(block->NewIterator(icmp_));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(100000u, iter->value().size());
}

TEST_P(BlockTest, MixedPrefixCompression) {
  // Keys deliberately alternating between shared and unshared prefixes.
  std::map<std::string, std::string> kvs = {
      {"", "empty-key"},          {"a", "1"},
      {"aa", "2"},                {"aaaaaaaaaaaaaaaa", "3"},
      {"ab", "4"},                {"b", "5"},
      {std::string(300, 'c'), "6"},
  };
  std::string storage;
  auto block = Build(kvs, &storage);
  std::unique_ptr<Iterator> iter(block->NewIterator(icmp_));
  auto mit = kvs.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, kvs.end());
    EXPECT_EQ(mit->first, ExtractUserKey(iter->key()).ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, kvs.end());
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockTest,
                         testing::Values(1, 2, 16, 128));

TEST(BlockCorruption, GarbageContentsYieldErrorIterator) {
  std::string garbage = "this is not a block";
  BlockContents contents;
  contents.data = Slice(garbage);
  contents.cachable = false;
  contents.heap_allocated = false;
  Block block(contents);
  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> iter(block.NewIterator(icmp));
  iter->SeekToFirst();
  // Either invalid or error status — never a crash or bogus data.
  EXPECT_FALSE(iter->Valid() && iter->status().ok() &&
               iter->key().size() > 1000);
}

TEST(BlockBuilderProps, SizeEstimateGrows) {
  BlockBuilder builder(16);
  size_t prev = builder.CurrentSizeEstimate();
  for (int i = 0; i < 50; i++) {
    builder.Add(IKey("key" + std::to_string(1000 + i)), "value");
    EXPECT_GT(builder.CurrentSizeEstimate(), prev);
    prev = builder.CurrentSizeEstimate();
  }
  size_t final_size = builder.Finish().size();
  EXPECT_GE(final_size, prev);
  EXPECT_FALSE(builder.empty());
  builder.Reset();
  EXPECT_TRUE(builder.empty());
}

}  // namespace
}  // namespace unikv
