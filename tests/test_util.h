#ifndef UNIKV_TESTS_TEST_UTIL_H_
#define UNIKV_TESTS_TEST_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/env.h"
#include "util/random.h"

namespace unikv {
namespace test {

/// Returns a fresh scratch directory path for the calling test (removed
/// first if it already exists).
inline std::string NewTestDir(const std::string& name) {
  const char* base = std::getenv("TEST_TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/unikv_test_" + name;
  RemoveDirRecursively(Env::Default(), dir);
  Env::Default()->CreateDir(dir);
  return dir;
}

/// Deterministic key of fixed width: "key0000001234".
inline std::string TestKey(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%010llu",
                static_cast<unsigned long long>(i));
  return buf;
}

/// Deterministic value derived from (i, len).
inline std::string TestValue(uint64_t i, size_t len = 64) {
  Random rnd(static_cast<uint32_t>(i * 2654435761u + 1));
  std::string v;
  v.reserve(len);
  for (size_t j = 0; j < len; j++) {
    v.push_back(static_cast<char>('a' + rnd.Uniform(26)));
  }
  return v;
}

}  // namespace test
}  // namespace unikv

#endif  // UNIKV_TESTS_TEST_UTIL_H_
