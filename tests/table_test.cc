// SSTable round-trip tests: builder + reader, iterators, point gets,
// bloom filters, block cache integration, corruption detection.

#include "table/table.h"
#include "table/table_builder.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "table/cache.h"
#include "util/env.h"
#include "util/random.h"

namespace unikv {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq = 100,
                 ValueType type = kTypeValue) {
  std::string result;
  AppendInternalKey(&result, ParsedInternalKey(user_key, seq, type));
  return result;
}

class TableTest : public testing::Test {
 protected:
  TableTest() : env_(NewMemEnv()) { env_->CreateDir("/t"); }

  // Builds a table from sorted user-key kvs; returns its size.
  uint64_t BuildTable(const std::map<std::string, std::string>& kvs,
                      const TableOptions& opt, const std::string& fname) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile(fname, &file).ok());
    TableBuilder builder(opt, file.get());
    for (const auto& [key, value] : kvs) {
      builder.Add(IKey(key), value);
    }
    EXPECT_TRUE(builder.Finish().ok());
    EXPECT_TRUE(file->Close().ok());
    EXPECT_EQ(kvs.size(), builder.NumEntries());
    return builder.FileSize();
  }

  Table* OpenTable(const TableOptions& opt, const std::string& fname,
                   uint64_t size, Cache* cache = nullptr) {
    std::unique_ptr<RandomAccessFile> file;
    EXPECT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());
    Table* table = nullptr;
    EXPECT_TRUE(
        Table::Open(opt, std::move(file), size, cache, &table).ok());
    return table;
  }

  std::unique_ptr<MemEnv> env_;
};

TEST_F(TableTest, RoundTrip) {
  std::map<std::string, std::string> kvs;
  Random rnd(11);
  for (int i = 0; i < 2000; i++) {
    kvs["key" + std::to_string(100000 + i)] =
        std::string(rnd.Uniform(200), 'v');
  }
  TableOptions opt;
  uint64_t size = BuildTable(kvs, opt, "/t/1");
  std::unique_ptr<Table> table(OpenTable(opt, "/t/1", size));

  std::unique_ptr<Iterator> iter(table->NewIterator());
  auto mit = kvs.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, kvs.end());
    EXPECT_EQ(mit->first, ExtractUserKey(iter->key()).ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, kvs.end());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(TableTest, PointGets) {
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 500; i += 2) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i);
    kvs[buf] = "value" + std::to_string(i);
  }
  TableOptions opt;
  uint64_t size = BuildTable(kvs, opt, "/t/2");
  std::unique_ptr<Table> table(OpenTable(opt, "/t/2", size));

  for (int i = 0; i < 500; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i);
    bool found = false;
    std::string key_out, value_out;
    ASSERT_TRUE(table
                    ->Get(IKey(buf, kMaxSequenceNumber, kValueTypeForSeek),
                          &found, &key_out, &value_out)
                    .ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(found);
      EXPECT_EQ(buf, ExtractUserKey(key_out).ToString());
      EXPECT_EQ("value" + std::to_string(i), value_out);
    } else if (found) {
      // Absent keys may land on the next entry; user key must differ.
      EXPECT_NE(buf, ExtractUserKey(key_out).ToString());
    }
  }
  EXPECT_GT(table->AccessCount(), 0u);
}

TEST_F(TableTest, SeekAndReverse) {
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 1000; i++) {
    kvs["key" + std::to_string(10000 + i)] = std::to_string(i);
  }
  TableOptions opt;
  opt.block_size = 256;  // Many small blocks to exercise the index.
  uint64_t size = BuildTable(kvs, opt, "/t/3");
  std::unique_ptr<Table> table(OpenTable(opt, "/t/3", size));

  std::unique_ptr<Iterator> iter(table->NewIterator());
  iter->Seek(IKey("key10500", kMaxSequenceNumber, kValueTypeForSeek));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key10500", ExtractUserKey(iter->key()).ToString());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("key10499", ExtractUserKey(iter->key()).ToString());
  iter->SeekToLast();
  EXPECT_EQ("key10999", ExtractUserKey(iter->key()).ToString());

  // Walk the whole table backwards.
  int count = 0;
  for (iter->SeekToLast(); iter->Valid(); iter->Prev()) count++;
  EXPECT_EQ(1000, count);
}

TEST_F(TableTest, BloomFilter) {
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 1000; i++) {
    kvs["present" + std::to_string(i)] = "v";
  }
  TableOptions opt;
  opt.bloom_bits_per_key = 10;
  uint64_t size = BuildTable(kvs, opt, "/t/4");
  std::unique_ptr<Table> table(OpenTable(opt, "/t/4", size));

  for (int i = 0; i < 1000; i++) {
    EXPECT_TRUE(table->KeyMayMatch("present" + std::to_string(i)));
  }
  int false_positives = 0;
  for (int i = 0; i < 1000; i++) {
    if (table->KeyMayMatch("absent" + std::to_string(i))) false_positives++;
  }
  EXPECT_LT(false_positives, 50);

  // Without a filter, KeyMayMatch is always true.
  TableOptions no_bloom;
  uint64_t size2 = BuildTable(kvs, no_bloom, "/t/4b");
  std::unique_ptr<Table> table2(OpenTable(no_bloom, "/t/4b", size2));
  EXPECT_TRUE(table2->KeyMayMatch("absolutely-absent"));
}

TEST_F(TableTest, BlockCacheSharing) {
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 2000; i++) {
    kvs["key" + std::to_string(10000 + i)] = std::string(100, 'x');
  }
  TableOptions opt;
  uint64_t size = BuildTable(kvs, opt, "/t/5");
  std::unique_ptr<Cache> cache(NewLRUCache(1 << 20));
  std::unique_ptr<Table> table(OpenTable(opt, "/t/5", size, cache.get()));

  // Two full iterations: the second should be served from the cache.
  for (int round = 0; round < 2; round++) {
    std::unique_ptr<Iterator> iter(table->NewIterator());
    int n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
    EXPECT_EQ(2000, n);
  }
  EXPECT_GT(cache->TotalCharge(), 0u);
}

TEST_F(TableTest, EmptyTable) {
  TableOptions opt;
  uint64_t size = BuildTable({}, opt, "/t/6");
  std::unique_ptr<Table> table(OpenTable(opt, "/t/6", size));
  std::unique_ptr<Iterator> iter(table->NewIterator());
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(TableTest, HugeValues) {
  std::map<std::string, std::string> kvs;
  kvs["big"] = std::string(1 << 20, 'B');
  TableOptions opt;
  uint64_t size = BuildTable(kvs, opt, "/t/7");
  std::unique_ptr<Table> table(OpenTable(opt, "/t/7", size));
  bool found = false;
  std::string key_out, value_out;
  ASSERT_TRUE(table
                  ->Get(IKey("big", kMaxSequenceNumber, kValueTypeForSeek),
                        &found, &key_out, &value_out)
                  .ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(kvs["big"], value_out);
}

TEST_F(TableTest, CorruptFooterRejected) {
  std::map<std::string, std::string> kvs{{"a", "1"}};
  TableOptions opt;
  uint64_t size = BuildTable(kvs, opt, "/t/8");

  // Truncate: too short to be a table.
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile("/t/8", &file).ok());
  Table* table = nullptr;
  Status s = Table::Open(opt, std::move(file), 10, nullptr, &table);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(nullptr, table);

  // Flip a byte in the footer's magic.
  std::string contents(size, 0);
  {
    std::unique_ptr<RandomAccessFile> reader;
    ASSERT_TRUE(env_->NewRandomAccessFile("/t/8", &reader).ok());
    Slice data;
    reader->Read(0, size, &data, contents.data());
    contents.assign(data.data(), data.size());
  }
  contents[size - 1] ^= 0xff;
  std::unique_ptr<WritableFile> w;
  env_->NewWritableFile("/t/8c", &w);
  w->Append(contents);
  w->Close();
  std::unique_ptr<RandomAccessFile> file2;
  ASSERT_TRUE(env_->NewRandomAccessFile("/t/8c", &file2).ok());
  s = Table::Open(opt, std::move(file2), size, nullptr, &table);
  EXPECT_TRUE(s.IsCorruption());
}

TEST_F(TableTest, CorruptDataBlockDetectedByCrc) {
  std::map<std::string, std::string> kvs;
  for (int i = 0; i < 100; i++) {
    kvs["key" + std::to_string(i)] = std::string(50, 'v');
  }
  TableOptions opt;
  uint64_t size = BuildTable(kvs, opt, "/t/9");
  // Corrupt a byte early in the file (inside the first data block).
  std::string contents(size, 0);
  {
    std::unique_ptr<RandomAccessFile> reader;
    ASSERT_TRUE(env_->NewRandomAccessFile("/t/9", &reader).ok());
    Slice data;
    reader->Read(0, size, &data, contents.data());
    contents.assign(data.data(), data.size());
  }
  contents[20] ^= 0x01;
  std::unique_ptr<WritableFile> w;
  env_->NewWritableFile("/t/9c", &w);
  w->Append(contents);
  w->Close();

  std::unique_ptr<Table> table(OpenTable(opt, "/t/9c", size));
  std::unique_ptr<Iterator> iter(table->NewIterator());
  iter->SeekToFirst();
  // Either the block read fails immediately or the iterator carries a
  // corruption status; silent wrong data is not acceptable.
  bool surfaced_error = !iter->status().ok();
  while (iter->Valid()) {
    iter->Next();
  }
  surfaced_error = surfaced_error || !iter->status().ok();
  EXPECT_TRUE(surfaced_error);
}

}  // namespace
}  // namespace unikv
