file(REMOVE_RECURSE
  "CMakeFiles/db_recovery_test.dir/db_recovery_test.cc.o"
  "CMakeFiles/db_recovery_test.dir/db_recovery_test.cc.o.d"
  "db_recovery_test"
  "db_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
