#ifndef UNIKV_CORE_UNIKV_DB_H_
#define UNIKV_CORE_UNIKV_DB_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/db.h"
#include "core/dbformat.h"
#include "core/table_cache.h"
#include "core/version.h"
#include "index/hash_index.h"
#include "mem/memtable.h"
#include "util/thread_pool.h"
#include "vlog/value_log.h"
#include "wal/log_writer.h"

namespace unikv {

class Cache;

/// Counters describing the background work a UniKV instance has done.
/// Exposed through GetProperty("db.stats").
struct UniKVStats {
  uint64_t flushes = 0;
  uint64_t merges = 0;
  uint64_t scan_merges = 0;
  uint64_t gcs = 0;
  uint64_t splits = 0;
  uint64_t flush_bytes = 0;
  uint64_t merge_bytes_written = 0;
  uint64_t merge_bytes_read = 0;
  uint64_t gc_bytes_written = 0;
  uint64_t gc_bytes_read = 0;
};

/// The UniKV store: differentiated indexing (hash-indexed UnsortedStore +
/// fully-sorted SortedStore with partial KV separation), dynamic range
/// partitioning, and scan/GC machinery. See DESIGN.md.
class UniKVDB : public DB {
 public:
  UniKVDB(const Options& options, const std::string& dbname);
  ~UniKVDB() override;

  static Status Open(const Options& options, const std::string& name,
                     DB** dbptr);

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  Status Scan(const ReadOptions& options, const Slice& start, int count,
              std::vector<std::pair<std::string, std::string>>* out) override;
  Status CompactAll() override;
  Status FlushMemTable() override;
  bool GetProperty(const Slice& property, std::string* value) override;

 private:
  friend class DB;
  struct Writer;

  Status Recover();
  Status ReplayWal(uint64_t number, MemTable* mem, SequenceNumber* max_seq);
  Status RebuildHashIndexes();
  Status InsertTableIntoIndex(HashIndex* index, const FileMeta& f);

  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock);
  WriteBatch* BuildBatchGroup(Writer** last_writer);
  Status SwitchWal();

  enum class WorkKind {
    kNone,
    kFlush,
    kMerge,
    kScanMerge,
    kGc,
    kSplit,
  };
  struct WorkItem {
    WorkKind kind = WorkKind::kNone;
    std::shared_ptr<const PartitionState> partition;
  };

  void MaybeScheduleWork();
  void BackgroundLoop();
  WorkItem PickWork();     // Requires mu_ held.
  bool HasWorkPending();   // Requires mu_ held.
  Status DispatchWork(const WorkItem& item);

  struct FlushOutput {
    uint32_t pid = 0;
    FileMeta meta;
    std::vector<std::string> keys;  // Deduplicated user keys, table order.
  };

  /// Flushes `mem` contents to per-partition UnsortedStore tables and
  /// fills *edit + *outputs. Called without holding mu_ (takes it briefly
  /// for metadata allocation). Does not touch the hash indexes.
  Status FlushMemTableToUnsorted(MemTable* mem, VersionEdit* edit,
                                 std::vector<FlushOutput>* outputs);
  Status CompactMemTable();

  Status MergePartition(std::shared_ptr<const PartitionState> p);
  Status ScanMergePartition(std::shared_ptr<const PartitionState> p);
  Status GcPartition(std::shared_ptr<const PartitionState> p);
  Status SplitPartition(std::shared_ptr<const PartitionState> p);

  void RemoveObsoleteFiles();
  void RecordBackgroundError(const Status& s);

  Status GetFromUnsorted(const PartitionState& p,
                         std::vector<uint16_t> candidates,
                         const LookupKey& lkey, std::string* value,
                         bool* found);
  Status GetFromSorted(const PartitionState& p, const LookupKey& lkey,
                       std::string* value, bool* found);

  /// Builds a merged internal iterator over memtables and all partitions;
  /// *latest_seq receives the snapshot sequence.
  Iterator* NewInternalIterator(SequenceNumber* latest_seq);

  // ---- Immutable after Open ----
  Options options_;
  const std::string dbname_;
  Env* env_;
  InternalKeyComparator icmp_;
  std::unique_ptr<Cache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<ValueLogCache> vlog_cache_;
  std::unique_ptr<ThreadPool> fetch_pool_;

  // ---- State guarded by mu_ ----
  std::mutex mu_;
  std::condition_variable bg_cv_;      // Signalled when bg work finishes.
  std::condition_variable bg_work_cv_; // Wakes the background thread.

  MemTable* mem_ = nullptr;
  MemTable* imm_ = nullptr;
  std::unique_ptr<WritableFile> wal_file_;
  std::unique_ptr<log::Writer> wal_;
  uint64_t wal_number_ = 0;

  std::unique_ptr<VersionSet> versions_;
  std::deque<Writer*> writers_;
  WriteBatch batch_group_scratch_;

  // Mutable per-partition side state (not versioned).
  std::unordered_map<uint32_t, std::shared_ptr<HashIndex>> indexes_;
  std::unordered_map<uint32_t, uint64_t> vlog_garbage_;
  std::unordered_map<uint32_t, int> flushes_since_checkpoint_;

  std::set<uint64_t> pending_outputs_;
  Status bg_error_;
  bool bg_work_scheduled_ = false;
  bool shutting_down_ = false;
  bool compact_all_ = false;
  UniKVStats stats_;

  std::thread bg_thread_;

  size_t IndexExpectedEntries() const {
    size_t n = options_.unsorted_limit / options_.index_expected_entry_size;
    return n < 1024 ? 1024 : n;
  }
  std::shared_ptr<HashIndex> GetOrCreateIndex(uint32_t pid);
};

}  // namespace unikv

#endif  // UNIKV_CORE_UNIKV_DB_H_
