file(REMOVE_RECURSE
  "CMakeFiles/bench_scan.dir/bench_scan.cc.o"
  "CMakeFiles/bench_scan.dir/bench_scan.cc.o.d"
  "bench_scan"
  "bench_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
