#include "util/hash.h"

#include <cstring>

#include "util/coding.h"

namespace unikv {

uint32_t Hash(const char* data, size_t n, uint32_t seed) {
  // Murmur-like hash (as in LevelDB).
  const uint32_t m = 0xc6a4a793;
  const uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w = DecodeFixed32(data);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  // A 64-bit mixing hash in the spirit of xxhash64 / splitmix64 finalizers.
  const uint64_t kMul = 0x9ddfea08eb382d69ULL;
  uint64_t h = seed ^ (n * kMul);
  const char* limit = data + n;
  while (data + 8 <= limit) {
    uint64_t w = DecodeFixed64(data);
    data += 8;
    h ^= w * kMul;
    h = (h << 31) | (h >> 33);
    h *= kMul;
  }
  uint64_t tail = 0;
  int shift = 0;
  while (data < limit) {
    tail |= static_cast<uint64_t>(static_cast<uint8_t>(*data)) << shift;
    shift += 8;
    data++;
  }
  h ^= tail * kMul;
  // splitmix64 finalizer
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace unikv
