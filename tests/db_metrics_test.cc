// End-to-end tests of the engine metrics surface: PerfContext tracing
// through Get/Put/Scan, the db.metrics / db.metrics.json properties, and
// GetProperty's contract over known and unknown names.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/db.h"
#include "test_util.h"
#include "util/event_logger.h"
#include "util/perf_context.h"

namespace unikv {
namespace {

// All EVENTS lines for a given event name, in file order.
std::vector<std::string> ReadEventLines(const std::string& dir,
                                        const std::string& event_name) {
  std::vector<std::string> matches;
  std::FILE* f =
      std::fopen((dir + "/" + EventLogger::kFileName).c_str(), "r");
  if (f == nullptr) return matches;
  std::string current;
  int c;
  const std::string needle = "\"event\":\"" + event_name + "\"";
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      if (current.find(needle) != std::string::npos) {
        matches.push_back(current);
      }
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  std::fclose(f);
  return matches;
}

// Extracts the unsigned value of `"field":<num>` from a JSON line.
uint64_t JsonUint(const std::string& line, const std::string& field) {
  size_t pos = line.find("\"" + field + "\":");
  EXPECT_NE(pos, std::string::npos) << field << " missing from " << line;
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + field.size() + 3, nullptr, 10);
}

Options SmallOptions() {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.partition_size_limit = 4 * 1024 * 1024;
  opt.sorted_table_size = 64 * 1024;
  opt.gc_garbage_threshold = 128 * 1024;
  return opt;
}

class DbMetricsTest : public testing::Test {
 protected:
  void OpenDb(const Options& opt, const std::string& suffix = "") {
    dir_ = test::NewTestDir("db_metrics_test" + suffix);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }

  // Loads enough data that both stores are populated: flushed tables in
  // the UnsortedStore and (after CompactAll) a merged SortedStore.
  void LoadBothStores() {
    for (int i = 0; i < 1500; i++) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 256))
              .ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());  // -> SortedStore.
    for (int i = 1500; i < 2000; i++) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 256))
              .ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());  // -> UnsortedStore tables.
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbMetricsTest, GetThroughBothStoresBumpsCounters) {
  OpenDb(SmallOptions());
  LoadBothStores();

  PerfContext* perf = GetPerfContext();
  perf->Reset();

  // A key now living in the UnsortedStore: the hash index must be probed
  // and at least one unsorted table touched.
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(1600), &value).ok());
  EXPECT_EQ(value, test::TestValue(1600, 256));
  EXPECT_EQ(perf->gets, 1u);
  EXPECT_GE(perf->hash_index_lookups, 1u);
  EXPECT_GE(perf->hash_index_probes, 1u);
  EXPECT_GE(perf->unsorted_tables_probed, 1u);

  PerfContext before = *perf;
  // A key living only in the SortedStore: one binary-searched table seek.
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(10), &value).ok());
  EXPECT_EQ(value, test::TestValue(10, 256));
  PerfContext d = perf->DeltaSince(before);
  EXPECT_EQ(d.gets, 1u);
  EXPECT_GE(d.sorted_seeks, 1u);

  // The same activity must be visible in the engine-wide registry.
  std::string json;
  ASSERT_TRUE(db_->GetProperty("db.metrics.json", &json));
  EXPECT_NE(json.find("\"gets\":"), std::string::npos);
  EXPECT_EQ(json.find("\"gets\":0,"), std::string::npos) << json;
}

TEST_F(DbMetricsTest, MetricsJsonIsParseableAndComplete) {
  OpenDb(SmallOptions(), "_json");
  LoadBothStores();
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(1), &value).ok());
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db_->Scan(ReadOptions(), test::TestKey(0), 50, &out).ok());

  std::string json;
  ASSERT_TRUE(db_->GetProperty("db.metrics.json", &json));
  ASSERT_TRUE(test::IsValidJson(json)) << json;

  // Top-level sections.
  EXPECT_NE(json.find("\"engine\":"), std::string::npos);
  EXPECT_NE(json.find("\"stats\":"), std::string::npos);
  EXPECT_NE(json.find("\"partitions\":["), std::string::npos);

  // At least 10 engine counters are reported by name.
  const char* counters[] = {
      "\"gets\"",          "\"writes\"",       "\"scans\"",
      "\"memtable_hits\"", "\"hash_index_lookups\"",
      "\"hash_index_probes\"", "\"unsorted_tables_probed\"",
      "\"sorted_seeks\"",  "\"table_cache_hits\"",
      "\"vlog_reads\"",    "\"write_bytes\"",  "\"bloom_checks\""};
  int present = 0;
  for (const char* name : counters) {
    if (json.find(name) != std::string::npos) present++;
  }
  EXPECT_GE(present, 10) << json;

  // Per-partition stats carry structural fields and job counters.
  EXPECT_NE(json.find("\"unsorted_tables\":"), std::string::npos);
  EXPECT_NE(json.find("\"sorted_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"vlog_garbage_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"garbage_ratio\":"), std::string::npos);
  EXPECT_NE(json.find("\"index_entries\":"), std::string::npos);
  EXPECT_NE(json.find("\"flushes\":"), std::string::npos);

  // Stall fields (satellite of the write-path instrumentation).
  EXPECT_NE(json.find("\"write_stalls\":"), std::string::npos);
  EXPECT_NE(json.find("\"stall_micros\":"), std::string::npos);
}

TEST_F(DbMetricsTest, MetricsTextProperty) {
  OpenDb(SmallOptions(), "_text");
  LoadBothStores();
  std::string text;
  ASSERT_TRUE(db_->GetProperty("db.metrics", &text));
  EXPECT_NE(text.find("writes"), std::string::npos);
  EXPECT_NE(text.find("-- partitions --"), std::string::npos);
  EXPECT_NE(text.find("partition"), std::string::npos);
}

TEST_F(DbMetricsTest, GetPropertyContract) {
  OpenDb(SmallOptions(), "_prop");
  LoadBothStores();

  // Unknown names return false and leave no obligation on *value.
  std::string value;
  EXPECT_FALSE(db_->GetProperty("db.no-such-property", &value));
  EXPECT_FALSE(db_->GetProperty("", &value));
  EXPECT_FALSE(db_->GetProperty("db.metrics.jso", &value));
  EXPECT_FALSE(db_->GetProperty("db.metrics.jsonx", &value));

  // Every supported name returns true with non-empty output.
  const char* props[] = {"db.num-partitions", "db.hash-index-bytes",
                         "db.hash-index-entries", "db.num-files",
                         "db.stats",          "db.sstables",
                         "db.table-accesses", "db.metrics",
                         "db.metrics.json",   "db.stats.history"};
  for (const char* p : props) {
    value.clear();
    EXPECT_TRUE(db_->GetProperty(p, &value)) << p;
    EXPECT_FALSE(value.empty()) << p;
  }

  // db.stats now reports write-stall visibility.
  ASSERT_TRUE(db_->GetProperty("db.stats", &value));
  EXPECT_NE(value.find("write_stalls="), std::string::npos);
  EXPECT_NE(value.find("stall_micros="), std::string::npos);
}

TEST_F(DbMetricsTest, PropertiesRenderLongPartitionBounds) {
  // Regression: db.sstables and db.metrics used to render partition lines
  // through a fixed snprintf buffer, silently truncating a long partition
  // lower bound and everything after it on the line. Force a split with
  // long keys so a partition's lower bound is itself a long key, then
  // check every partition line is complete.
  Options opt = SmallOptions();
  opt.partition_size_limit = 128 * 1024;
  opt.sorted_table_size = 16 * 1024;
  OpenDb(opt, "_longkeys");
  const std::string prefix(300, 'k');
  for (int i = 0; i < 600; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), prefix + test::TestKey(i),
                         test::TestValue(i, 256))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string np;
  ASSERT_TRUE(db_->GetProperty("db.num-partitions", &np));
  ASSERT_GE(std::stoi(np), 2) << "split did not happen; test is vacuous";

  std::string tables;
  ASSERT_TRUE(db_->GetProperty("db.sstables", &tables));
  // The split partition's lower bound is one of the long keys and must
  // appear in full.
  EXPECT_NE(tables.find(prefix), std::string::npos) << tables;
  // Every partition line must survive past its bound: "[<bound>..):" and
  // the trailing counters.
  size_t start = 0;
  int lines = 0;
  while (start < tables.size()) {
    size_t end = tables.find('\n', start);
    if (end == std::string::npos) end = tables.size();
    std::string line = tables.substr(start, end - start);
    EXPECT_NE(line.find("..): unsorted="), std::string::npos) << line;
    EXPECT_NE(line.find(" vlogs="), std::string::npos) << line;
    lines++;
    start = end + 1;
  }
  EXPECT_GE(lines, 2);

  // The human-readable metrics text renders the same bounds.
  std::string text;
  ASSERT_TRUE(db_->GetProperty("db.metrics", &text));
  EXPECT_NE(text.find(prefix), std::string::npos);
}

TEST_F(DbMetricsTest, ScanAndWriteCountersAdvance) {
  OpenDb(SmallOptions(), "_ops");
  PerfContext* perf = GetPerfContext();
  perf->Reset();

  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 64))
            .ok());
  }
  EXPECT_EQ(perf->writes, 100u);
  EXPECT_GT(perf->write_memtable_micros + perf->write_wal_micros +
                perf->write_micros,
            0u);

  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db_->Scan(ReadOptions(), test::TestKey(0), 10, &out).ok());
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(perf->scans, 1u);
  perf->Reset();
}

TEST_F(DbMetricsTest, StatsSamplerOffByDefault) {
  // Options default to stats_sample_interval_ms == 0: no sampler thread,
  // an empty history, and no stats_sample lines in EVENTS.
  OpenDb(SmallOptions(), "_sampler_off");
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 64))
            .ok());
  }
  Env::Default()->SleepForMicroseconds(60 * 1000);

  std::string history;
  ASSERT_TRUE(db_->GetProperty("db.stats.history", &history));
  EXPECT_EQ(history, "[]");
  EXPECT_TRUE(ReadEventLines(dir_, "stats_sample").empty());
}

TEST_F(DbMetricsTest, StatsSamplerProducesHistoryAndEvents) {
  Options opt = SmallOptions();
  opt.stats_sample_interval_ms = 25;
  OpenDb(opt, "_sampler_on");

  // Several rounds of work with sleeps longer than the interval so the
  // sampler observes distinct cumulative states.
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(round * 500 + i),
                           test::TestValue(i, 256))
                      .ok());
    }
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(round * 500), &value)
                    .ok());
    Env::Default()->SleepForMicroseconds(40 * 1000);
  }

  // The in-memory ring: valid JSON, >= 2 entries, cumulative counters
  // non-decreasing across entries and consistent with the work done.
  std::string history;
  ASSERT_TRUE(db_->GetProperty("db.stats.history", &history));
  ASSERT_TRUE(test::IsValidJson(history)) << history;
  std::vector<size_t> entry_starts;
  for (size_t pos = history.find("{\"ts_micros\":"); pos != std::string::npos;
       pos = history.find("{\"ts_micros\":", pos + 1)) {
    entry_starts.push_back(pos);
  }
  ASSERT_GE(entry_starts.size(), 2u) << history;
  uint64_t prev_writes = 0, prev_ts = 0;
  for (size_t start : entry_starts) {
    std::string entry = history.substr(start);
    uint64_t w = JsonUint(entry, "writes");
    uint64_t ts = JsonUint(entry, "ts_micros");
    EXPECT_GE(w, prev_writes);
    EXPECT_GE(ts, prev_ts);
    prev_writes = w;
    prev_ts = ts;
  }
  EXPECT_LE(prev_writes, 1500u);
  EXPECT_GT(prev_writes, 0u);

  // EVENTS carries one stats_sample line per interval; each is valid JSON
  // with the delta/cumulative/heat fields, and the deltas telescope
  // exactly to the cumulative counters.
  std::vector<std::string> lines = ReadEventLines(dir_, "stats_sample");
  ASSERT_GE(lines.size(), 2u);
  uint64_t d_writes_sum = 0;
  for (const std::string& line : lines) {
    EXPECT_TRUE(test::IsValidJson(line)) << line;
    EXPECT_NE(line.find("\"interval_micros\":"), std::string::npos);
    EXPECT_NE(line.find("\"stall_causes\":{\"memtable_wait\":"),
              std::string::npos);
    EXPECT_NE(line.find("\"cache_hit_ratio\":"), std::string::npos);
    EXPECT_NE(line.find("\"partitions\":["), std::string::npos);
    d_writes_sum += JsonUint(line, "d_writes");
  }
  const std::string& first = lines.front();
  const std::string& last = lines.back();
  uint64_t baseline = JsonUint(first, "cum_writes") - JsonUint(first, "d_writes");
  EXPECT_EQ(d_writes_sum, JsonUint(last, "cum_writes") - baseline);

  // Closing the DB joins the sampler thread without hanging; history
  // survives until then.
  db_.reset();
}

TEST_F(DbMetricsTest, MultiGetReusesTableHandlesWithinBatch) {
  // Regression for table-cache handle churn: the looped-Get path does one
  // cache Lookup/Release round-trip per key, so 64 gets cost >= 64 cache
  // lookups even when every key lives in the same table. MultiGet pins
  // each table handle once per batch (TableCache::BatchPin), so the same
  // 64 keys must cost only one lookup per distinct table.
  OpenDb(SmallOptions(), "_mget");
  LoadBothStores();

  // Keys 100..163 were loaded before CompactAll, so they live only in the
  // SortedStore: no unsorted candidates, exactly one table probe per key.
  std::vector<std::string> key_bufs;
  for (int i = 100; i < 164; i++) key_bufs.push_back(test::TestKey(i));
  std::vector<Slice> keys(key_bufs.begin(), key_bufs.end());

  PerfContext* perf = GetPerfContext();
  perf->Reset();
  std::string value;
  for (const Slice& k : keys) {
    ASSERT_TRUE(db_->Get(ReadOptions(), k, &value).ok());
  }
  const uint64_t get_lookups = perf->table_cache_hits + perf->table_cache_misses;
  EXPECT_GE(get_lookups, keys.size()) << "one cache lookup per looped Get";

  PerfContext before = *perf;
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_TRUE(db_->MultiGet(ReadOptions(), keys, &values, &statuses).ok());
  PerfContext d = perf->DeltaSince(before);
  const uint64_t mget_lookups = d.table_cache_hits + d.table_cache_misses;
  // 64 adjacent keys span at most a handful of sorted tables; the batch
  // must do one lookup per table, not per key.
  EXPECT_LT(mget_lookups * 4, get_lookups)
      << "BatchPin no longer suppresses per-key cache churn";
  EXPECT_EQ(d.multigets, 1u);
  EXPECT_EQ(d.multiget_keys, keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok());
    EXPECT_EQ(values[i], test::TestValue(static_cast<uint64_t>(i) + 100, 256));
  }

  // The batched-read metrics surface in both metrics properties; adjacent
  // log-resident values coalesce, so the span counters are non-zero.
  std::string json;
  ASSERT_TRUE(db_->GetProperty("db.metrics.json", &json));
  ASSERT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"multigets\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"multiget_latency_us\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"multiget_keys_per_batch\":"), std::string::npos)
      << json;
  EXPECT_EQ(json.find("\"multigets\":0,"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"multiget_coalesced_reads\":0,"), std::string::npos)
      << json;
  EXPECT_EQ(json.find("\"multiget_io_bytes_saved\":0,"), std::string::npos)
      << json;
}

TEST_F(DbMetricsTest, HeatAndAmpGaugesInMetricsJson) {
  OpenDb(SmallOptions(), "_heat");
  LoadBothStores();
  std::string value;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(i), &value).ok());
  }

  std::string json;
  ASSERT_TRUE(db_->GetProperty("db.metrics.json", &json));
  ASSERT_TRUE(test::IsValidJson(json)) << json;
  // Per-partition heat counters and amplification gauges.
  EXPECT_NE(json.find("\"heat_reads\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"heat_writes\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"write_amp\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"space_amp\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"user_bytes_flushed\":"), std::string::npos) << json;
  // The 50 gets above landed on some partition's read-heat counter.
  EXPECT_EQ(json.find("\"heat_reads\":0,"), std::string::npos) << json;

  // The human-readable db.metrics text renders the same gauges.
  std::string text;
  ASSERT_TRUE(db_->GetProperty("db.metrics", &text));
  EXPECT_NE(text.find("heat_r="), std::string::npos) << text;
  EXPECT_NE(text.find("wamp="), std::string::npos) << text;
  EXPECT_NE(text.find("samp="), std::string::npos) << text;
}

}  // namespace
}  // namespace unikv
