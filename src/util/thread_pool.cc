#include "util/thread_pool.h"

namespace unikv {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> l(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Schedule(TaskGroup* group, std::function<void()> task) {
  // Count the task before it becomes runnable so a Wait() issued right
  // after Schedule() can never slip past an unstarted task.
  group->TaskStarted();
  Schedule([group, task = std::move(task)] {
    task();
    group->TaskFinished();
  });
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> l(mu_);
  idle_cv_.wait(l, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  while (true) {
    work_cv_.wait(l, [this] { return shutting_down_ || !queue_.empty(); });
    if (shutting_down_ && queue_.empty()) {
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    active_++;
    l.unlock();
    task();
    l.lock();
    active_--;
    if (queue_.empty() && active_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace unikv
