// Motivation experiments (paper Figures 1 and 2).
//
// F1: hash-index store vs LSM as the dataset grows. With a fixed memory
// budget (bucket count), the hash store's chains lengthen and its reads
// collapse past a crossover, while the LSM degrades gracefully — the
// scalability limitation motivating UniKV's two-layer design.
//
// F2: SSTable access-frequency skew in an LSM under zipfian reads: the
// recently flushed, low-level tables absorb most accesses while the last
// level holds most tables but a small share of the requests — the
// locality motivating a hash index over recent data only.

#include <map>

#include "baseline/baselines.h"
#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("motivation");
  const size_t kValueSize = 1024;

  // ---- F1: crossover between hash store and LSM ----
  PrintTableHeader("F1 hash store vs LSM as data grows (read kops/s)",
                   {"keys", "HashLog", "LeveledLSM", "hashlog chain stats"});
  for (uint64_t keys :
       {Scaled(5000), Scaled(10000), Scaled(20000), Scaled(40000),
        Scaled(80000)}) {
    std::vector<std::string> row;
    row.push_back(std::to_string(keys));
    std::string chain_stats;
    for (Engine engine : {Engine::kHashLog, Engine::kLeveled}) {
      // Fixed memory budget for the hash store: the bucket directory does
      // not grow with the data, so chains lengthen (SkimpyStash premise).
      Options opt = BenchOptions();
      opt.hashlog_buckets = 4096;
      auto bdb = std::make_unique<BenchDb>(engine, opt, root);
      LoadSpec load;
      load.num_keys = keys;
      load.value_size = kValueSize;
      RunLoad(bdb.get(), load);

      PointReadSpec reads;
      reads.num_ops = Scaled(5000);
      reads.key_space = keys;
      reads.dist = Distribution::kUniform;
      reads.value_size = kValueSize;
      PhaseResult r = RunPointReads(bdb.get(), reads);
      row.push_back(Fmt(r.kops_per_sec));
      if (engine == Engine::kHashLog) {
        bdb->db()->GetProperty("db.stats", &chain_stats);
      }
    }
    row.push_back(chain_stats);
    PrintTableRow(row);
  }

  // ---- F2: per-level access skew under zipfian reads ----
  {
    BenchDb bdb(Engine::kLeveled, BenchOptions(), root);
    const uint64_t keys = Scaled(40000);
    LoadSpec load;
    load.num_keys = keys;
    load.value_size = kValueSize;
    // Plain load without CompactAll so a natural level hierarchy remains.
    for (uint64_t i = 0; i < keys; i++) {
      OrDie(bdb.db()->Put(WriteOptions(), KeyGenerator::Key(i),
                          MakeValue(i, kValueSize)),
            "Put");
    }
    OrDie(bdb.db()->FlushMemTable(), "FlushMemTable");

    KeyGenerator gen(Distribution::kZipfian, keys, 99);
    std::string value;
    for (uint64_t i = 0; i < Scaled(20000); i++) {
      // Zipfian over the loaded space: every key exists, but the read
      // is measurement, not verification.
      (void)bdb.db()->Get(ReadOptions(), KeyGenerator::Key(gen.NextId()),
                          &value);
    }

    std::string accesses;
    bdb.db()->GetProperty("db.table-accesses", &accesses);
    // Aggregate by level.
    std::map<std::string, std::pair<uint64_t, uint64_t>> by_level;
    size_t pos = 0;
    while (pos < accesses.size()) {
      size_t eol = accesses.find('\n', pos);
      if (eol == std::string::npos) break;
      std::string line = accesses.substr(pos, eol - pos);
      pos = eol + 1;
      char level[32];
      unsigned long long number, count;
      if (std::sscanf(line.c_str(), "%31s %llu %llu", level, &number,
                      &count) == 3) {
        by_level[level].first += 1;
        by_level[level].second += count;
      }
    }
    uint64_t total_tables = 0, total_accesses = 0;
    for (const auto& [level, stats] : by_level) {
      total_tables += stats.first;
      total_accesses += stats.second;
    }
    PrintTableHeader("F2 SSTable access skew (zipfian reads on LeveledLSM)",
                     {"level", "tables", "tables%", "accesses", "accesses%"});
    for (const auto& [level, stats] : by_level) {
      PrintTableRow(
          {level, std::to_string(stats.first),
           Fmt(total_tables ? 100.0 * stats.first / total_tables : 0),
           std::to_string(stats.second),
           Fmt(total_accesses ? 100.0 * stats.second / total_accesses : 0)});
    }
  }
  return 0;
}
