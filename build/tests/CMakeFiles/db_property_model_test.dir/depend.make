# Empty dependencies file for db_property_model_test.
# This may be replaced when dependencies are built.
