// Edge cases and configuration-compatibility tests for the UniKV DB.

#include <gtest/gtest.h>

#include <memory>

#include "core/db.h"
#include "test_util.h"

namespace unikv {
namespace {

Options SmallOptions() {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.partition_size_limit = 1024 * 1024;
  opt.sorted_table_size = 32 * 1024;
  return opt;
}

class DbEdgeTest : public testing::Test {
 protected:
  void Open(const Options& opt, const std::string& name) {
    opt_ = opt;
    dir_ = test::NewTestDir(name);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }
  void Reopen(const Options& opt) {
    db_.reset();
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }

  Options opt_;
  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbEdgeTest, EmptyKey) {
  Open(SmallOptions(), "edge_empty_key");
  ASSERT_TRUE(db_->Put(WriteOptions(), "", "empty-key-value").ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "", &value).ok());
  EXPECT_EQ("empty-key-value", value);
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->Get(ReadOptions(), "", &value).ok());
  EXPECT_EQ("empty-key-value", value);
  ASSERT_TRUE(db_->Delete(WriteOptions(), "").ok());
  EXPECT_TRUE(db_->Get(ReadOptions(), "", &value).IsNotFound());
}

TEST_F(DbEdgeTest, ScanEdgeCases) {
  Open(SmallOptions(), "edge_scan");
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> out;

  // Count 0 returns nothing.
  ASSERT_TRUE(db_->Scan(ReadOptions(), test::TestKey(0), 0, &out).ok());
  EXPECT_TRUE(out.empty());

  // Start beyond the last key.
  ASSERT_TRUE(db_->Scan(ReadOptions(), "zzzz", 10, &out).ok());
  EXPECT_TRUE(out.empty());

  // Start at "" covers from the first key.
  ASSERT_TRUE(db_->Scan(ReadOptions(), "", 5, &out).ok());
  ASSERT_EQ(5u, out.size());
  EXPECT_EQ(test::TestKey(0), out[0].first);

  // Count exceeding the live set returns everything.
  ASSERT_TRUE(db_->Scan(ReadOptions(), "", 1000, &out).ok());
  EXPECT_EQ(50u, out.size());

  // Negative counts are an empty scan, not an error. Regression: the
  // optimized scan path once fed `count` straight into a reserve(), where
  // a negative int converts to a near-SIZE_MAX size_t.
  ASSERT_TRUE(db_->Scan(ReadOptions(), "", -1, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(db_->Scan(ReadOptions(), test::TestKey(0), -1000000, &out).ok());
  EXPECT_TRUE(out.empty());

  // A huge positive count must not pre-allocate for `count` entries.
  ASSERT_TRUE(
      db_->Scan(ReadOptions(), "", 2000000000, &out).ok());
  EXPECT_EQ(50u, out.size());
}

TEST_F(DbEdgeTest, ScanBoundsOnSeparatedValues) {
  // Same bounds but with values big enough to be separated into the value
  // logs, so the scan exercises the parallel-fetch path end to end.
  Options opt = SmallOptions();
  opt.value_separation_threshold = 32;
  Open(opt, "edge_scan_separated");
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 256))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());

  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db_->Scan(ReadOptions(), "", -7, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(db_->Scan(ReadOptions(), "", 0, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(db_->Scan(ReadOptions(), "", 1000000000, &out).ok());
  ASSERT_EQ(200u, out.size());
  EXPECT_EQ(test::TestValue(0, 256), out[0].second);
  EXPECT_EQ(test::TestValue(199, 256), out[199].second);
}

TEST_F(DbEdgeTest, HugeWriteBatch) {
  Open(SmallOptions(), "edge_big_batch");
  WriteBatch batch;
  for (int i = 0; i < 5000; i++) {
    batch.Put(test::TestKey(i), test::TestValue(i, 64));
  }
  // One batch several times the memtable budget: must apply atomically.
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(4999), &value).ok());
  EXPECT_EQ(test::TestValue(4999, 64), value);
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(0), &value).ok());
}

TEST_F(DbEdgeTest, KeysAtPartitionBoundaries) {
  Options opt = SmallOptions();
  opt.partition_size_limit = 384 * 1024;
  Open(opt, "edge_boundary");
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                         test::TestValue(i, 512))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string parts;
  ASSERT_TRUE(db_->GetProperty("db.num-partitions", &parts));
  ASSERT_GT(std::stoi(parts), 1);

  // Overwrite and delete every 100th key, then verify routing still hits
  // the right partition for keys adjacent to any boundary.
  for (int i = 0; i < 2000; i += 100) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "boundary").ok());
    ASSERT_TRUE(db_->Delete(WriteOptions(), test::TestKey(i + 1)).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string value;
  for (int i = 0; i < 2000; i += 100) {
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ("boundary", value);
    EXPECT_TRUE(
        db_->Get(ReadOptions(), test::TestKey(i + 1), &value).IsNotFound())
        << i;
  }
}

TEST_F(DbEdgeTest, ReopenWithDifferentSeparationSettings) {
  // Data written with KV separation on must stay readable when the store
  // is reopened with separation off (existing pointers still resolve),
  // and vice versa.
  Options on = SmallOptions();
  on.enable_kv_separation = true;
  on.value_separation_threshold = 0;
  Open(on, "edge_sep_switch");
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                         test::TestValue(i, 512))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());

  Options off = on;
  off.enable_kv_separation = false;
  Reopen(off);
  std::string value;
  for (int i = 0; i < 500; i += 17) {
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i, 512), value);
  }
  // New writes merge inline; everything still consistent afterwards.
  for (int i = 500; i < 700; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                         test::TestValue(i, 512))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  for (int i = 0; i < 700; i += 23) {
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i, 512), value);
  }
}

TEST_F(DbEdgeTest, ReopenWithDifferentLimits) {
  Options opt = SmallOptions();
  Open(opt, "edge_limits");
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                         test::TestValue(i, 256))
                    .ok());
  }
  Options bigger = opt;
  bigger.unsorted_limit = 16 * 1024 * 1024;
  bigger.write_buffer_size = 1024 * 1024;
  bigger.index_num_hashes = 4;
  Reopen(bigger);
  std::string value;
  for (int i = 0; i < 1000; i += 31) {
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i, 256), value);
  }
}

TEST_F(DbEdgeTest, ManySmallValuesStayInline) {
  Options opt = SmallOptions();
  opt.value_separation_threshold = 100;
  Open(opt, "edge_small_values");
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "tiny").ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(1500), &value).ok());
  EXPECT_EQ("tiny", value);
  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db_->Scan(ReadOptions(), test::TestKey(0), 3000, &out).ok());
  EXPECT_EQ(3000u, out.size());
}

TEST_F(DbEdgeTest, RepeatedOverwritesOfOneKey) {
  Open(SmallOptions(), "edge_hotkey");
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "the-one-key",
                         "version" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "the-one-key", &value).ok());
  EXPECT_EQ("version4999", value);
  // Exactly one live key.
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  int n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
  EXPECT_EQ(1, n);
}

}  // namespace
}  // namespace unikv
