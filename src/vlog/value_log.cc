#include "vlog/value_log.h"

#include "core/filename.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/perf_context.h"

namespace unikv {

void ValuePointer::EncodeTo(std::string* dst) const {
  PutVarint32(dst, partition);
  PutVarint64(dst, log_number);
  PutVarint64(dst, offset);
  PutVarint32(dst, size);
}

bool ValuePointer::DecodeFrom(Slice* input) {
  return GetVarint32(input, &partition) && GetVarint64(input, &log_number) &&
         GetVarint64(input, &offset) && GetVarint32(input, &size);
}

ValueLogWriter::ValueLogWriter(std::unique_ptr<WritableFile> file,
                               uint32_t partition, uint64_t log_number)
    : file_(std::move(file)), partition_(partition), log_number_(log_number) {}

Status ValueLogWriter::Add(const Slice& key, const Slice& value,
                           ValuePointer* ptr) {
  scratch_.clear();
  scratch_.resize(4);  // Space for the crc.
  PutVarint32(&scratch_, static_cast<uint32_t>(key.size()));
  PutVarint32(&scratch_, static_cast<uint32_t>(value.size()));
  scratch_.append(key.data(), key.size());
  scratch_.append(value.data(), value.size());
  uint32_t crc = crc32c::Value(scratch_.data() + 4, scratch_.size() - 4);
  EncodeFixed32(&scratch_[0], crc32c::Mask(crc));

  Status s = file_->Append(Slice(scratch_));
  if (!s.ok()) return s;

  ptr->partition = partition_;
  ptr->log_number = log_number_;
  ptr->offset = offset_;
  ptr->size = static_cast<uint32_t>(scratch_.size());
  offset_ += scratch_.size();
  return Status::OK();
}

Status DecodeValueRecord(const Slice& record, Slice* key, Slice* value) {
  Slice input = record;
  uint32_t crc_stored;
  if (!GetFixed32(&input, &crc_stored)) {
    return Status::Corruption("value record too short");
  }
  uint32_t crc = crc32c::Value(input.data(), input.size());
  if (crc32c::Unmask(crc_stored) != crc) {
    return Status::Corruption("value record checksum mismatch");
  }
  uint32_t key_len, val_len;
  if (!GetVarint32(&input, &key_len) || !GetVarint32(&input, &val_len) ||
      input.size() != static_cast<size_t>(key_len) + val_len) {
    return Status::Corruption("malformed value record");
  }
  *key = Slice(input.data(), key_len);
  *value = Slice(input.data() + key_len, val_len);
  return Status::OK();
}

ValueLogCache::ValueLogCache(Env* env, std::string dbname)
    : env_(env), dbname_(std::move(dbname)) {}

Status ValueLogCache::GetFile(const ValuePointer& ptr,
                              std::shared_ptr<RandomAccessFile>* file) {
  MutexLock l(&mu_);
  auto it = files_.find(ptr.log_number);
  if (it != files_.end()) {
    *file = it->second;
    return Status::OK();
  }
  std::unique_ptr<RandomAccessFile> f;
  Status s =
      env_->NewRandomAccessFile(ValueLogFileName(dbname_, ptr.log_number), &f);
  if (!s.ok()) return s;
  std::shared_ptr<RandomAccessFile> shared(f.release());
  files_[ptr.log_number] = shared;
  *file = std::move(shared);
  return Status::OK();
}

Status ValueLogCache::Get(const ValuePointer& ptr, std::string* value,
                          std::string* stored_key) {
  PerfContext* perf = GetPerfContext();
  perf->vlog_reads++;
  perf->vlog_read_bytes += ptr.size;
  if (reads_counter_ != nullptr) reads_counter_->Inc();
  if (read_bytes_counter_ != nullptr) read_bytes_counter_->Add(ptr.size);
  std::shared_ptr<RandomAccessFile> file;
  Status s = GetFile(ptr, &file);
  if (!s.ok()) return s;

  std::string buf;
  buf.resize(ptr.size);
  Slice record;
  s = file->Read(ptr.offset, ptr.size, &record, buf.data());
  if (!s.ok()) return s;
  if (record.size() != ptr.size) {
    return Status::Corruption("short value log read");
  }
  Slice key, val;
  s = DecodeValueRecord(record, &key, &val);
  if (!s.ok()) return s;
  value->assign(val.data(), val.size());
  if (stored_key != nullptr) {
    stored_key->assign(key.data(), key.size());
  }
  return Status::OK();
}

Status ValueLogCache::GetSpan(uint64_t log_number, uint64_t offset,
                              size_t size, std::string* buffer) {
  std::shared_ptr<RandomAccessFile> file;
  Status s = PinLog(log_number, &file);
  if (!s.ok()) return s;
  return GetSpanPinned(file.get(), offset, size, buffer);
}

Status ValueLogCache::PinLog(uint64_t log_number,
                             std::shared_ptr<RandomAccessFile>* file) {
  ValuePointer ptr;
  ptr.log_number = log_number;
  return GetFile(ptr, file);
}

Status ValueLogCache::GetSpanPinned(RandomAccessFile* file, uint64_t offset,
                                    size_t size, std::string* buffer) {
  buffer->resize(size);
  Slice result;
  Status s = GetSpanPinned(file, offset, size, &result, buffer->data());
  if (!s.ok()) return s;
  if (result.data() != buffer->data()) {
    buffer->assign(result.data(), result.size());
  }
  return Status::OK();
}

Status ValueLogCache::GetSpanPinned(RandomAccessFile* file, uint64_t offset,
                                    size_t size, Slice* result,
                                    char* scratch) {
  PerfContext* perf = GetPerfContext();
  perf->vlog_span_reads++;
  perf->vlog_read_bytes += size;
  if (span_reads_counter_ != nullptr) span_reads_counter_->Inc();
  if (read_bytes_counter_ != nullptr) read_bytes_counter_->Add(size);
  // Batched span fetches prefer the file's mapping when one is available:
  // no syscall, and the gap bytes a coalesced span covers are never
  // copied — members are sliced straight out of the page cache. The
  // pointed-at bytes stay valid while the caller's log pin is held.
  if (file->ReadZeroCopy(offset, size, result)) {
    perf->vlog_mmap_reads++;
    if (mmap_reads_counter_ != nullptr) mmap_reads_counter_->Inc();
    return Status::OK();
  }
  Status s = file->Read(offset, size, result, scratch);
  if (!s.ok()) return s;
  if (result->size() != size) {
    return Status::Corruption("short value log span read");
  }
  return Status::OK();
}

void ValueLogCache::Readahead(const ValuePointer& ptr, size_t bytes) {
  std::shared_ptr<RandomAccessFile> file;
  if (GetFile(ptr, &file).ok()) {
    file->ReadaheadHint(ptr.offset, bytes);
  }
}

void ValueLogCache::Evict(uint32_t /*partition*/, uint64_t log_number) {
  MutexLock l(&mu_);
  files_.erase(log_number);
}

Status ScanValueLog(
    Env* env, const std::string& fname,
    const std::function<void(uint64_t, uint32_t, const Slice&, const Slice&)>&
        fn) {
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;

  uint64_t file_size;
  s = env->GetFileSize(fname, &file_size);
  if (!s.ok()) return s;

  std::string contents;
  contents.resize(file_size);
  Slice data;
  s = file->Read(file_size, &data, contents.data());
  if (!s.ok()) return s;

  uint64_t offset = 0;
  Slice input = data;
  while (input.size() > 4) {
    // Peek the lengths after the crc to find the record extent.
    Slice peek(input.data() + 4, input.size() - 4);
    uint32_t key_len, val_len;
    if (!GetVarint32(&peek, &key_len) || !GetVarint32(&peek, &val_len)) {
      break;  // Torn tail.
    }
    size_t header = 4 + (peek.data() - (input.data() + 4)) + 4;
    (void)header;
    size_t record_size =
        (peek.data() - input.data()) + static_cast<size_t>(key_len) + val_len;
    if (record_size > input.size()) {
      break;  // Torn tail.
    }
    Slice record(input.data(), record_size);
    Slice key, value;
    if (!DecodeValueRecord(record, &key, &value).ok()) {
      break;  // Corrupt record: stop scanning (crash-truncated tail).
    }
    fn(offset, static_cast<uint32_t>(record_size), key, value);
    input.remove_prefix(record_size);
    offset += record_size;
  }
  return Status::OK();
}

}  // namespace unikv
