#ifndef UNIKV_UTIL_HISTOGRAM_H_
#define UNIKV_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace unikv {

/// Latency histogram with exponential buckets; reports mean, percentiles,
/// min/max. Used by the benchmark drivers.
class Histogram {
 public:
  Histogram() { Clear(); }

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  double Median() const { return Percentile(50.0); }
  double Percentile(double p) const;
  double Average() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  uint64_t Count() const { return num_; }

  std::string ToString() const;

 private:
  // ConcurrentHistogram shards the same exponential buckets across
  // threads and folds them into a plain Histogram on Snapshot().
  friend class ConcurrentHistogram;

  static constexpr int kNumBuckets = 154;
  static const double kBucketLimit[kNumBuckets];

  /// Index of the exponential bucket that holds `value`.
  static int BucketIndex(double value);

  double min_;
  double max_;
  uint64_t num_;
  double sum_;
  double sum_squares_;
  std::vector<double> buckets_;
};

}  // namespace unikv

#endif  // UNIKV_UTIL_HISTOGRAM_H_
