// Experiment F10 — Scalability with dataset size (dynamic range
// partitioning at work).
//
// Paper: as the store grows, UniKV splits partitions (scale-out) instead
// of deepening a level hierarchy, so load and read throughput stay flat
// while LeveledLSM read cost grows with the level count. The partition
// count is reported to show splits actually happened.

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("scalability");
  const size_t kValueSize = 1024;

  PrintTableHeader(
      "F10 dataset-size sweep (load kops/s | read kops/s | partitions)",
      {"keys", "UniKV", "LeveledLSM", "TieredLSM", "UniKV parts"});
  for (uint64_t keys :
       {Scaled(10000), Scaled(20000), Scaled(40000), Scaled(80000)}) {
    std::vector<std::string> row;
    row.push_back(std::to_string(keys));
    std::string partitions = "-";
    for (Engine engine :
         {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
      BenchDb bdb(engine, BenchOptions(), root);
      LoadSpec load;
      load.num_keys = keys;
      load.value_size = kValueSize;
      PhaseResult lr = RunLoad(&bdb, load);

      PointReadSpec reads;
      reads.num_ops = Scaled(8000);
      reads.key_space = keys;
      reads.dist = Distribution::kUniform;
      reads.value_size = kValueSize;
      PhaseResult rr = RunPointReads(&bdb, reads);

      row.push_back(Fmt(lr.kops_per_sec) + "|" + Fmt(rr.kops_per_sec));
      if (engine == Engine::kUniKV) {
        bdb.db()->GetProperty("db.num-partitions", &partitions);
      }
    }
    row.push_back(partitions);
    PrintTableRow(row);
  }
  return 0;
}
