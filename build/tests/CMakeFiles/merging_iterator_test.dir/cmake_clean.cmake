file(REMOVE_RECURSE
  "CMakeFiles/merging_iterator_test.dir/merging_iterator_test.cc.o"
  "CMakeFiles/merging_iterator_test.dir/merging_iterator_test.cc.o.d"
  "merging_iterator_test"
  "merging_iterator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merging_iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
