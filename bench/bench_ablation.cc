// Experiment F12 — Ablation of UniKV's design contributions.
//
// Each row disables one technique from the paper and reruns the core
// phases. Expected shape: no-hash-index hurts point reads; no-KV-
// separation inflates merge writes (write amp); no-partitioning makes
// merges grow with DB size (load slows as data accumulates); no-scan-
// optimization hurts scans.

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

namespace {

struct Variant {
  const char* name;
  void (*apply)(Options*);
};

const Variant kVariants[] = {
    {"full UniKV", [](Options*) {}},
    {"no hash index",
     [](Options* o) { o->enable_hash_index = false; }},
    {"no KV separation",
     [](Options* o) { o->enable_kv_separation = false; }},
    {"no partitioning",
     [](Options* o) { o->enable_partitioning = false; }},
    {"no scan opts",
     [](Options* o) { o->enable_scan_optimization = false; }},
};

}  // namespace

int main() {
  const std::string root = BenchRoot("ablation");
  const uint64_t kKeys = Scaled(25000);
  const size_t kValueSize = 1024;

  PrintTableHeader("F12 UniKV ablation (dataset " + std::to_string(kKeys) +
                       " x 1KiB)",
                   {"variant", "load kops/s", "write_amp", "read kops/s",
                    "scan kentr/s"});
  for (const Variant& variant : kVariants) {
    Options opt = BenchOptions();
    variant.apply(&opt);
    BenchDb bdb(Engine::kUniKV, opt, root);

    LoadSpec load;
    load.num_keys = kKeys;
    load.value_size = kValueSize;
    PhaseResult lr = RunLoad(&bdb, load);

    // Refresh a hot subset WITHOUT compacting, so the recently written
    // data sits in the UnsortedStore — the hash index's domain (reads of
    // merged-down data go through the SortedStore path regardless of the
    // index, so reading right after CompactAll would measure nothing).
    const uint64_t kHot = kKeys / 8;  // ~3 MiB: stays under unsorted_limit.
    for (uint64_t i = 0; i < kHot; i++) {
      // Ids 0..kHot are exactly the zipfian-hot prefix the reads favor.
      OrDie(bdb.db()->Put(WriteOptions(), KeyGenerator::Key(i),
                          MakeValue(i, kValueSize)),
            "Put");
    }
    OrDie(bdb.db()->FlushMemTable(), "FlushMemTable");

    PointReadSpec reads;
    reads.num_ops = Scaled(10000);
    reads.key_space = kKeys;
    reads.dist = Distribution::kZipfian;
    reads.value_size = kValueSize;
    PhaseResult rr = RunPointReads(&bdb, reads);

    ScanSpec scans;
    scans.num_ops = Scaled(200);
    scans.scan_len = 100;
    scans.key_space = kKeys;
    PhaseResult sr = RunScans(&bdb, scans);

    PrintTableRow({variant.name, Fmt(lr.kops_per_sec), Fmt(lr.write_amp, 2),
                   Fmt(rr.kops_per_sec), Fmt(sr.kops_per_sec)});
  }

  // F12b: the hash index's value grows with the number of overlapping
  // UnsortedStore tables (the paper's UnsortedStore holds up to 128 GiB /
  // 2 MiB tables; "existing KV stores check 7.6 SSTables per lookup").
  // Without the index a lookup probes tables newest-to-oldest; with it,
  // one candidate probe. Sweep the table count with consolidation off.
  PrintTableHeader("F12b point reads vs overlapping UnsortedStore tables",
                   {"tables", "with index", "without", "(kops/s)"});
  for (int tables : {2, 8, 24}) {
    std::vector<std::string> row;
    row.push_back(std::to_string(tables));
    for (bool with_index : {true, false}) {
      Options opt = BenchOptions();
      opt.unsorted_limit = 256ull * 1024 * 1024;  // No merges.
      opt.scan_merge_limit = 1 << 20;             // No consolidation.
      opt.enable_hash_index = with_index;
      opt.index_expected_entry_size = kValueSize;
      BenchDb bdb(Engine::kUniKV, opt, root);

      // Each flush writes ~1000 random keys spanning the whole range, so
      // every table overlaps every other.
      const uint64_t kRange = 10000;
      Random rnd(42);  // Same sequence for both variants.
      for (int t = 0; t < tables; t++) {
        for (int j = 0; j < 1000; j++) {
          uint64_t id = rnd.Next64() % kRange;
          OrDie(bdb.db()->Put(WriteOptions(), KeyGenerator::Key(id),
                              MakeValue(id ^ t, kValueSize)),
                "Put");
        }
        OrDie(bdb.db()->FlushMemTable(), "FlushMemTable");
      }

      Env* env = Env::Default();
      Random read_rnd(7);
      std::string value;
      const uint64_t kReads = Scaled(10000);
      uint64_t t0 = env->NowMicros();
      for (uint64_t i = 0; i < kReads; i++) {
        // Random id over a sparse range: NotFound is expected.
        (void)bdb.db()->Get(
            ReadOptions(), KeyGenerator::Key(read_rnd.Next64() % kRange),
            &value);
      }
      double secs = (env->NowMicros() - t0) / 1e6;
      row.push_back(Fmt(kReads / secs / 1000.0));
    }
    row.push_back("");
    PrintTableRow(row);
  }
  return 0;
}
