# Empty dependencies file for db_partition_test.
# This may be replaced when dependencies are built.
