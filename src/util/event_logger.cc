#include "util/event_logger.h"

namespace unikv {

EventLogger::EventLogger(Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

EventLogger::~EventLogger() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    file_->Close();
  }
}

void EventLogger::Log(const Slice& event_name, JsonBuilder* event) {
  event->AddString("event", event_name);
  std::string line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (disabled_) return;
    if (!opened_) {
      opened_ = true;
      Status s = env_->NewAppendableFile(dir_ + "/" + kFileName, &file_);
      if (!s.ok()) {
        disabled_ = true;
        return;
      }
    }
    event->AddUint("ts_micros", env_->NowMicros());
    line = event->Finish();
    line.push_back('\n');
    if (!file_->Append(line).ok() || !file_->Flush().ok()) {
      disabled_ = true;
      file_->Close();
      file_.reset();
    }
  }
}

}  // namespace unikv
