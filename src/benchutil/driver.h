#ifndef UNIKV_BENCHUTIL_DRIVER_H_
#define UNIKV_BENCHUTIL_DRIVER_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/workload.h"
#include "core/db.h"
#include "util/env.h"
#include "util/histogram.h"
#include "util/perf_context.h"

namespace unikv {
namespace bench {

/// Engines compared across experiments (paper: UniKV vs LevelDB, RocksDB,
/// HyperLevelDB, PebblesDB — we build LevelDB/RocksDB-shaped `kLeveled`
/// and HyperLevelDB/PebblesDB-shaped `kTiered` baselines on the same
/// substrates, plus the SkimpyStash-shaped `kHashLog` for motivation).
enum class Engine { kUniKV, kLeveled, kTiered, kHashLog };

const char* EngineName(Engine e);

/// A benchmark that silently drops a failed mutation reports numbers for
/// work it did not do; fail loudly instead.
inline void OrDie(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

/// Result of one workload phase against one engine.
struct PhaseResult {
  std::string phase;
  int threads = 1;  // Client threads that drove the phase.
  int batch = 0;    // MultiGet batch size; 0 = not a batched phase.
  double seconds = 0;
  uint64_t ops = 0;
  double kops_per_sec = 0;
  Histogram latency_us;
  // I/O accounting from the instrumented Env over the phase.
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t user_bytes = 0;  // Logical bytes the workload wrote.
  double write_amp = 0;     // bytes_written / user_bytes.
  double read_amp = 0;      // bytes_read / user logical bytes read.
  /// What the engine did during the phase, as seen by this thread's
  /// PerfContext (hash-index probes, bloom checks, vlog reads, ...).
  PerfContext perf;
};

/// A DB under test with an instrumented Env wrapped around the real one.
class BenchDb {
 public:
  /// Opens `engine` at <root>/<engine-name>, destroying previous contents
  /// unless `keep_existing`.
  BenchDb(Engine engine, const Options& base_options,
          const std::string& root, bool keep_existing = false);
  ~BenchDb();

  DB* db() { return db_.get(); }
  Engine engine() const { return engine_; }
  IoStats* io() { return env_->stats(); }
  const std::string& path() const { return path_; }
  const Options& options() const { return options_; }

  /// Closes and reopens (recovery benchmarks). Returns elapsed seconds.
  double Reopen();

 private:
  Engine engine_;
  Options options_;
  std::string path_;
  std::unique_ptr<InstrumentedEnv> env_;
  std::unique_ptr<DB> db_;
};

/// Workload phases -----------------------------------------------------

struct LoadSpec {
  uint64_t num_keys = 100000;
  size_t value_size = 1024;
  bool sequential = false;
  bool sync_every = false;
  uint32_t seed = 1;
};

/// Loads num_keys distinct keys; returns throughput + write amplification.
PhaseResult RunLoad(BenchDb* bdb, const LoadSpec& spec);

struct PointReadSpec {
  std::string phase = "read";  // Phase label in tables and BENCH JSON.
  uint64_t num_ops = 20000;
  uint64_t key_space = 100000;
  Distribution dist = Distribution::kUniform;
  uint32_t seed = 2;
  size_t value_size = 1024;  // For read-amp accounting.
};

PhaseResult RunPointReads(BenchDb* bdb, const PointReadSpec& spec);

struct MultiGetSpec {
  std::string phase = "multiget";
  uint64_t num_keys = 20000;  // Total keys fetched (num_keys/batch batches).
  int batch = 64;
  uint64_t key_space = 100000;
  Distribution dist = Distribution::kUniform;
  uint32_t seed = 7;
  int parallelism = 1;  // ReadOptions::multiget_parallelism.
};

/// Issues MultiGet batches of `batch` keys until num_keys keys have been
/// fetched. `ops`/`kops_per_sec` count *keys*, not batches, so the phase
/// is directly comparable against a looped-Get phase; the latency
/// histogram is per batch.
PhaseResult RunMultiGet(BenchDb* bdb, const MultiGetSpec& spec);

/// Runs the looped-Get phase and each MultiGet phase as `rounds`
/// interleaved slices (get, mget[0], mget[1], ..., repeated) and merges
/// each phase's slices into one PhaseResult, in input order with the Get
/// phase first. Back-to-back full phases fold machine drift into the
/// comparison — on a busy host, a phase measured during a slow minute
/// loses to one measured during a fast minute regardless of the code
/// under test. Interleaving samples every phase across the same
/// conditions. Each round draws fresh keys (seed advanced per round);
/// ops counts divide evenly across rounds.
std::vector<PhaseResult> RunInterleavedBatchedReads(
    BenchDb* bdb, const PointReadSpec& get_spec,
    const std::vector<MultiGetSpec>& mget_specs, int rounds = 5);

struct ScanSpec {
  std::string phase = "scan";  // Phase label in tables and BENCH JSON.
  uint64_t num_ops = 500;
  int scan_len = 100;
  uint64_t key_space = 100000;
  uint32_t seed = 3;
  bool use_optimized_scan = true;  // DB::Scan vs iterator loop.
};

PhaseResult RunScans(BenchDb* bdb, const ScanSpec& spec);

struct UpdateSpec {
  uint64_t num_ops = 100000;
  uint64_t key_space = 100000;
  size_t value_size = 1024;
  Distribution dist = Distribution::kZipfian;
  uint32_t seed = 4;
};

PhaseResult RunUpdates(BenchDb* bdb, const UpdateSpec& spec);

struct MixedSpec {
  uint64_t num_ops = 50000;
  uint64_t key_space = 100000;
  size_t value_size = 1024;
  double read_fraction = 0.5;
  Distribution dist = Distribution::kZipfian;
  uint32_t seed = 5;
};

PhaseResult RunMixed(BenchDb* bdb, const MixedSpec& spec);

struct ConcurrentWriteSpec {
  std::string phase = "concurrent_write";
  int threads = 1;
  uint64_t total_ops = 40000;  // Split evenly across the threads.
  uint64_t key_base = 0;       // First key id; ids are distinct per op.
  size_t value_size = 256;
  bool sync = false;
};

/// `threads` client threads issue `total_ops / threads` Puts each over
/// disjoint key ranges (so shard spread comes from the key hash, not from
/// overwrites). Per-thread latency histograms are merged after the join;
/// the phase's throughput is wall-clock over all threads — the foreground
/// write-path scalability measurement. Background work is NOT settled
/// inside the timed window; callers wanting a settled store between
/// phases should CompactAll afterwards.
PhaseResult RunConcurrentWrites(BenchDb* bdb, const ConcurrentWriteSpec& spec);

struct YcsbRunSpec {
  char workload = 'A';
  uint64_t num_ops = 30000;
  uint64_t key_space = 100000;
  size_t value_size = 1024;
  uint32_t seed = 6;
};

PhaseResult RunYcsb(BenchDb* bdb, const YcsbRunSpec& spec);

/// Output helpers ------------------------------------------------------

/// Prints the phase's nonzero PerfContext counters, one indented line.
void PrintPhasePerf(const char* engine, const PhaseResult& r);

/// Writes GetProperty("db.metrics.json") to `<db path>.metrics.json`
/// (next to the bench DB directory). No-op for engines that do not
/// support the property. Returns the path written, or "" on failure.
std::string DumpMetricsJson(BenchDb* bdb);

/// Benchmark-trajectory emitter. Every bench run can persist a
/// schema-versioned JSON document capturing what ran, where, and how
/// fast, so the repo's performance over time is diffable. The schema is
/// documented in DESIGN.md §9 ("Observability v2").

/// Bumped whenever a field in the BENCH JSON changes shape.
/// v2: phases[] entries carry "threads" (client threads driving the
/// phase), params carries "write_shards".
/// v3: phases[] entries carry "batch" (MultiGet batch size; 0 for
/// non-batched phases, whose ops are single keys).
/// v4: params carries "scan_merge_limit" and "enable_anchor_view" (the
/// sorted anchor view over the UnsortedStore, DESIGN.md §12).
constexpr int kBenchJsonSchemaVersion = 4;

/// Renders the BENCH JSON document for one workload run: schema_version,
/// workload name, engine, environment (cores, build type, sanitizer,
/// bench scale), engine params, per-phase results (driver-side latency
/// histograms, throughput, write/read amp), run totals, stall totals,
/// and the live DB's full db.metrics.json (in-engine histograms with
/// p50/p95/p99/p999) under "engine_metrics".
std::string BenchTrajectoryJson(const std::string& workload, BenchDb* bdb,
                                const std::vector<PhaseResult>& phases);

/// Writes BenchTrajectoryJson() to `<out_dir>/BENCH_<workload>.json`.
/// With an empty `out_dir`, $UNIKV_BENCH_OUT is used when set, else the
/// current directory (run the trajectory suite from the repo root to
/// accumulate BENCH_*.json there). Returns the path written, or "" on
/// failure (a warning is printed; failures never abort the bench).
std::string WriteBenchTrajectory(const std::string& workload, BenchDb* bdb,
                                 const std::vector<PhaseResult>& phases,
                                 const std::string& out_dir = "");

/// Prints a paper-style table: header row then one row per entry.
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

std::string Fmt(double v, int precision = 1);

/// Benchmark scale factor from UNIKV_BENCH_SCALE (default 1.0): every
/// bench multiplies its op counts by this, so `UNIKV_BENCH_SCALE=10` runs
/// the full-size experiments.
double BenchScale();

}  // namespace bench
}  // namespace unikv

#endif  // UNIKV_BENCHUTIL_DRIVER_H_
