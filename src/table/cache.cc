#include "table/cache.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "util/hash.h"
#include "util/sync.h"

namespace unikv {

Cache::~Cache() {}

namespace {

// LRU cache implementation: entries are in the hash table, and either on
// the in-use list (pinned) or the lru list (evictable), ordered by recency.

struct LRUHandle {
  void* value;
  void (*deleter)(const Slice&, void* value);
  LRUHandle* next_hash;
  LRUHandle* next;
  LRUHandle* prev;
  size_t charge;
  size_t key_length;
  bool in_cache;     // Whether the entry is referenced by the cache.
  uint32_t refs;     // References, including the cache's own if in_cache.
  uint32_t hash;     // Hash of key(); used for fast sharding and comparisons.
  char key_data[1];  // Beginning of key.

  Slice key() const { return Slice(key_data, key_length); }
};

// A simple open-chaining hash table of LRUHandle*.
class HandleTable {
 public:
  HandleTable() : length_(0), elems_(0), list_(nullptr) { Resize(); }
  ~HandleTable() { delete[] list_; }

  LRUHandle* Lookup(const Slice& key, uint32_t hash) {
    return *FindPointer(key, hash);
  }

  LRUHandle* Insert(LRUHandle* h) {
    LRUHandle** ptr = FindPointer(h->key(), h->hash);
    LRUHandle* old = *ptr;
    h->next_hash = (old == nullptr ? nullptr : old->next_hash);
    *ptr = h;
    if (old == nullptr) {
      ++elems_;
      if (elems_ > length_) {
        Resize();
      }
    }
    return old;
  }

  LRUHandle* Remove(const Slice& key, uint32_t hash) {
    LRUHandle** ptr = FindPointer(key, hash);
    LRUHandle* result = *ptr;
    if (result != nullptr) {
      *ptr = result->next_hash;
      --elems_;
    }
    return result;
  }

 private:
  uint32_t length_;
  uint32_t elems_;
  LRUHandle** list_;

  LRUHandle** FindPointer(const Slice& key, uint32_t hash) {
    LRUHandle** ptr = &list_[hash & (length_ - 1)];
    while (*ptr != nullptr && ((*ptr)->hash != hash || key != (*ptr)->key())) {
      ptr = &(*ptr)->next_hash;
    }
    return ptr;
  }

  void Resize() {
    uint32_t new_length = 4;
    while (new_length < elems_) {
      new_length *= 2;
    }
    LRUHandle** new_list = new LRUHandle*[new_length];
    memset(new_list, 0, sizeof(new_list[0]) * new_length);
    uint32_t count = 0;
    for (uint32_t i = 0; i < length_; i++) {
      LRUHandle* h = list_ ? list_[i] : nullptr;
      while (h != nullptr) {
        LRUHandle* next = h->next_hash;
        uint32_t hash = h->hash;
        LRUHandle** ptr = &new_list[hash & (new_length - 1)];
        h->next_hash = *ptr;
        *ptr = h;
        h = next;
        count++;
      }
    }
    assert(elems_ == count);
    delete[] list_;
    list_ = new_list;
    length_ = new_length;
  }
};

class LRUCache {
 public:
  LRUCache();
  ~LRUCache();

  void SetCapacity(size_t capacity) { capacity_ = capacity; }

  Cache::Handle* Insert(const Slice& key, uint32_t hash, void* value,
                        size_t charge,
                        void (*deleter)(const Slice& key, void* value));
  Cache::Handle* Lookup(const Slice& key, uint32_t hash);
  void Release(Cache::Handle* handle);
  void Erase(const Slice& key, uint32_t hash);
  size_t TotalCharge() const {
    MutexLock l(&mutex_);
    return usage_;
  }

 private:
  void LRU_Remove(LRUHandle* e);
  void LRU_Append(LRUHandle* list, LRUHandle* e);
  void Ref(LRUHandle* e) REQUIRES(mutex_);
  void Unref(LRUHandle* e) REQUIRES(mutex_);
  bool FinishErase(LRUHandle* e) REQUIRES(mutex_);

  size_t capacity_ = 0;

  mutable Mutex mutex_;
  size_t usage_ GUARDED_BY(mutex_) = 0;

  // Dummy head of LRU list: lru_.prev is the newest, lru_.next the oldest.
  // Entries have refs==1 and in_cache==true.
  LRUHandle lru_ GUARDED_BY(mutex_);

  // Dummy head of in-use list: entries in use by clients, refs >= 2.
  LRUHandle in_use_ GUARDED_BY(mutex_);

  HandleTable table_ GUARDED_BY(mutex_);
};

LRUCache::LRUCache() {
  lru_.next = &lru_;
  lru_.prev = &lru_;
  in_use_.next = &in_use_;
  in_use_.prev = &in_use_;
}

LRUCache::~LRUCache() {
  // Destruction is single-threaded by definition, but Unref requires the
  // capability; taking it keeps the annotations honest at zero real cost.
  MutexLock l(&mutex_);
  assert(in_use_.next == &in_use_);  // All handles must be released.
  for (LRUHandle* e = lru_.next; e != &lru_;) {
    LRUHandle* next = e->next;
    assert(e->in_cache);
    e->in_cache = false;
    assert(e->refs == 1);
    Unref(e);
    e = next;
  }
}

void LRUCache::Ref(LRUHandle* e) {
  if (e->refs == 1 && e->in_cache) {  // On lru_ list: move to in_use_.
    LRU_Remove(e);
    LRU_Append(&in_use_, e);
  }
  e->refs++;
}

void LRUCache::Unref(LRUHandle* e) {
  assert(e->refs > 0);
  e->refs--;
  if (e->refs == 0) {
    assert(!e->in_cache);
    (*e->deleter)(e->key(), e->value);
    free(e);
  } else if (e->in_cache && e->refs == 1) {
    // No longer in use: move to lru_ list.
    LRU_Remove(e);
    LRU_Append(&lru_, e);
  }
}

void LRUCache::LRU_Remove(LRUHandle* e) {
  e->next->prev = e->prev;
  e->prev->next = e->next;
}

void LRUCache::LRU_Append(LRUHandle* list, LRUHandle* e) {
  // Make "e" newest entry by inserting just before *list.
  e->next = list;
  e->prev = list->prev;
  e->prev->next = e;
  e->next->prev = e;
}

Cache::Handle* LRUCache::Lookup(const Slice& key, uint32_t hash) {
  MutexLock l(&mutex_);
  LRUHandle* e = table_.Lookup(key, hash);
  if (e != nullptr) {
    Ref(e);
  }
  return reinterpret_cast<Cache::Handle*>(e);
}

void LRUCache::Release(Cache::Handle* handle) {
  MutexLock l(&mutex_);
  Unref(reinterpret_cast<LRUHandle*>(handle));
}

Cache::Handle* LRUCache::Insert(const Slice& key, uint32_t hash, void* value,
                                size_t charge,
                                void (*deleter)(const Slice& key,
                                                void* value)) {
  MutexLock l(&mutex_);

  LRUHandle* e =
      reinterpret_cast<LRUHandle*>(malloc(sizeof(LRUHandle) - 1 + key.size()));
  e->value = value;
  e->deleter = deleter;
  e->charge = charge;
  e->key_length = key.size();
  e->hash = hash;
  e->in_cache = false;
  e->refs = 1;  // For the returned handle.
  std::memcpy(e->key_data, key.data(), key.size());

  if (capacity_ > 0) {
    e->refs++;  // For the cache's own reference.
    e->in_cache = true;
    LRU_Append(&in_use_, e);
    usage_ += charge;
    FinishErase(table_.Insert(e));
  }
  while (usage_ > capacity_ && lru_.next != &lru_) {
    LRUHandle* old = lru_.next;
    assert(old->refs == 1);
    bool erased = FinishErase(table_.Remove(old->key(), old->hash));
    assert(erased);
    (void)erased;
  }

  return reinterpret_cast<Cache::Handle*>(e);
}

// Removes *e from the cache if e != nullptr; e must already have been
// removed from the hash table. Returns whether e != nullptr.
bool LRUCache::FinishErase(LRUHandle* e) {
  if (e != nullptr) {
    assert(e->in_cache);
    LRU_Remove(e);
    e->in_cache = false;
    usage_ -= e->charge;
    Unref(e);
  }
  return e != nullptr;
}

void LRUCache::Erase(const Slice& key, uint32_t hash) {
  MutexLock l(&mutex_);
  FinishErase(table_.Remove(key, hash));
}

constexpr int kNumShardBits = 4;
constexpr int kNumShards = 1 << kNumShardBits;

class ShardedLRUCache : public Cache {
 public:
  explicit ShardedLRUCache(size_t capacity) : last_id_(0) {
    const size_t per_shard = (capacity + (kNumShards - 1)) / kNumShards;
    for (int s = 0; s < kNumShards; s++) {
      shard_[s].SetCapacity(per_shard);
    }
  }

  Handle* Insert(const Slice& key, void* value, size_t charge,
                 void (*deleter)(const Slice& key, void* value)) override {
    const uint32_t hash = HashSlice(key, 0);
    return shard_[Shard(hash)].Insert(key, hash, value, charge, deleter);
  }
  Handle* Lookup(const Slice& key) override {
    const uint32_t hash = HashSlice(key, 0);
    return shard_[Shard(hash)].Lookup(key, hash);
  }
  void Release(Handle* handle) override {
    LRUHandle* h = reinterpret_cast<LRUHandle*>(handle);
    shard_[Shard(h->hash)].Release(handle);
  }
  void Erase(const Slice& key) override {
    const uint32_t hash = HashSlice(key, 0);
    shard_[Shard(hash)].Erase(key, hash);
  }
  void* Value(Handle* handle) override {
    return reinterpret_cast<LRUHandle*>(handle)->value;
  }
  uint64_t NewId() override {
    MutexLock l(&id_mutex_);
    return ++last_id_;
  }
  size_t TotalCharge() const override {
    size_t total = 0;
    for (int s = 0; s < kNumShards; s++) {
      total += shard_[s].TotalCharge();
    }
    return total;
  }

 private:
  static uint32_t Shard(uint32_t hash) { return hash >> (32 - kNumShardBits); }

  LRUCache shard_[kNumShards];
  Mutex id_mutex_;
  uint64_t last_id_ GUARDED_BY(id_mutex_);
};

}  // namespace

Cache* NewLRUCache(size_t capacity) { return new ShardedLRUCache(capacity); }

}  // namespace unikv
