file(REMOVE_RECURSE
  "CMakeFiles/db_property_model_test.dir/db_property_model_test.cc.o"
  "CMakeFiles/db_property_model_test.dir/db_property_model_test.cc.o.d"
  "db_property_model_test"
  "db_property_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_property_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
