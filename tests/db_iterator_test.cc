// Iterator semantics over the full UniKV stack: ordering, tombstone
// hiding, value-pointer resolution, forward/backward mixes, Scan().

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/db.h"
#include "test_util.h"
#include "util/random.h"

namespace unikv {
namespace {

Options SmallOptions() {
  Options opt;
  opt.write_buffer_size = 64 * 1024;
  opt.unsorted_limit = 256 * 1024;
  opt.partition_size_limit = 2 * 1024 * 1024;
  opt.sorted_table_size = 64 * 1024;
  opt.scan_merge_limit = 4;
  return opt;
}

class DbIteratorTest : public testing::Test {
 protected:
  void Open(const Options& opt, const std::string& name) {
    dir_ = test::NewTestDir(name);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }

  // Populates the DB and a model, with data spread over memtable,
  // UnsortedStore and SortedStore.
  void FillLayered(std::map<std::string, std::string>* model) {
    // Oldest batch -> SortedStore.
    for (int i = 0; i < 300; i++) {
      std::string key = test::TestKey(i * 3);
      std::string value = "sorted" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
      (*model)[key] = value;
    }
    ASSERT_TRUE(db_->CompactAll().ok());
    // Middle batch -> UnsortedStore.
    for (int i = 0; i < 200; i++) {
      std::string key = test::TestKey(i * 5 + 1);
      std::string value = "unsorted" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
      (*model)[key] = value;
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
    // Newest batch -> memtable (plus some overwrites and deletes).
    for (int i = 0; i < 100; i++) {
      std::string key = test::TestKey(i * 7 + 2);
      std::string value = "mem" + std::to_string(i);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
      (*model)[key] = value;
    }
    for (int i = 0; i < 50; i++) {
      std::string key = test::TestKey(i * 6);
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
      model->erase(key);
    }
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbIteratorTest, EmptyDbIterator) {
  Open(SmallOptions(), "iter_empty");
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  iter->SeekToLast();
  EXPECT_FALSE(iter->Valid());
  iter->Seek("anything");
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(DbIteratorTest, FullForwardMatchesModel) {
  Open(SmallOptions(), "iter_fwd");
  std::map<std::string, std::string> model;
  FillLayered(&model);

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(mit->first, iter->key().ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, model.end());
  EXPECT_TRUE(iter->status().ok());
}

TEST_F(DbIteratorTest, FullBackwardMatchesModel) {
  Open(SmallOptions(), "iter_bwd");
  std::map<std::string, std::string> model;
  FillLayered(&model);

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  auto mit = model.rbegin();
  for (iter->SeekToLast(); iter->Valid(); iter->Prev(), ++mit) {
    ASSERT_NE(mit, model.rend());
    EXPECT_EQ(mit->first, iter->key().ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, model.rend());
}

TEST_F(DbIteratorTest, SeekLandsOnLowerBound) {
  Open(SmallOptions(), "iter_seek");
  std::map<std::string, std::string> model;
  FillLayered(&model);

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  Random rnd(5);
  for (int trial = 0; trial < 50; trial++) {
    std::string target = test::TestKey(rnd.Uniform(1200));
    iter->Seek(target);
    auto mit = model.lower_bound(target);
    if (mit == model.end()) {
      EXPECT_FALSE(iter->Valid()) << target;
    } else {
      ASSERT_TRUE(iter->Valid()) << target;
      EXPECT_EQ(mit->first, iter->key().ToString());
      EXPECT_EQ(mit->second, iter->value().ToString());
    }
  }
}

TEST_F(DbIteratorTest, DirectionSwitches) {
  Open(SmallOptions(), "iter_switch");
  std::map<std::string, std::string> model;
  FillLayered(&model);

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  std::string first = iter->key().ToString();
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(first, iter->key().ToString());
  iter->Prev();
  EXPECT_FALSE(iter->Valid());

  // Zigzag in the middle.
  iter->Seek(test::TestKey(500));
  ASSERT_TRUE(iter->Valid());
  std::string a = iter->key().ToString();
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  std::string b = iter->key().ToString();
  EXPECT_LT(a, b);
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(a, iter->key().ToString());
}

TEST_F(DbIteratorTest, SnapshotIsolationFromLaterWrites) {
  Open(SmallOptions(), "iter_snapshot");
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "before").ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  // Writes after iterator creation are invisible to it.
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "after").ok());
  }
  ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(200), "new-key").ok());
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), count++) {
    EXPECT_EQ("before", iter->value().ToString());
  }
  EXPECT_EQ(100, count);
}

TEST_F(DbIteratorTest, IteratorSurvivesConcurrentCompaction) {
  Open(SmallOptions(), "iter_compact");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    std::string key = test::TestKey(i);
    std::string value = test::TestValue(i, 128);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  // Force merges that rewrite everything underneath the iterator.
  ASSERT_TRUE(db_->CompactAll().ok());
  auto mit = model.begin();
  for (; iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(mit->first, iter->key().ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, model.end());
}

TEST_F(DbIteratorTest, ScanMatchesIterator) {
  Open(SmallOptions(), "iter_scan");
  std::map<std::string, std::string> model;
  FillLayered(&model);

  Random rnd(17);
  for (int trial = 0; trial < 20; trial++) {
    std::string start = test::TestKey(rnd.Uniform(1000));
    int count = 1 + rnd.Uniform(60);
    std::vector<std::pair<std::string, std::string>> scan_result;
    ASSERT_TRUE(db_->Scan(ReadOptions(), start, count, &scan_result).ok());

    auto mit = model.lower_bound(start);
    size_t i = 0;
    for (; mit != model.end() && i < static_cast<size_t>(count);
         ++mit, ++i) {
      ASSERT_LT(i, scan_result.size());
      EXPECT_EQ(mit->first, scan_result[i].first);
      EXPECT_EQ(mit->second, scan_result[i].second);
    }
    EXPECT_EQ(i, scan_result.size());
  }
}

TEST_F(DbIteratorTest, ScanWithOptimizationsOffMatches) {
  Options opt = SmallOptions();
  opt.enable_scan_optimization = false;
  Open(opt, "iter_scan_noopt");
  std::map<std::string, std::string> model;
  FillLayered(&model);

  std::vector<std::pair<std::string, std::string>> result;
  ASSERT_TRUE(db_->Scan(ReadOptions(), test::TestKey(0), 100, &result).ok());
  auto mit = model.lower_bound(test::TestKey(0));
  for (size_t i = 0; i < result.size(); i++, ++mit) {
    EXPECT_EQ(mit->first, result[i].first);
    EXPECT_EQ(mit->second, result[i].second);
  }
}

}  // namespace
}  // namespace unikv
