#include "core/table_cache.h"

#include "core/filename.h"
#include "table/cache.h"
#include "table/table.h"
#include "util/coding.h"
#include "util/env.h"
#include "util/perf_context.h"

namespace unikv {

static void DeleteTableEntry(const Slice& /*key*/, void* value) {
  delete reinterpret_cast<Table*>(value);
}

TableCache::TableCache(Env* env, std::string dbname,
                       const TableOptions& table_options, Cache* block_cache,
                       int max_open_tables)
    : env_(env),
      dbname_(std::move(dbname)),
      table_options_(table_options),
      block_cache_(block_cache),
      cache_(NewLRUCache(max_open_tables)) {}

TableCache::~TableCache() = default;

Status TableCache::FindTable(uint64_t file_number, uint64_t file_size,
                             void** handle_out) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  Slice key(buf, sizeof(buf));
  Cache::Handle* handle = cache_->Lookup(key);
  if (handle == nullptr) {
    GetPerfContext()->table_cache_misses++;
    std::string fname = TableFileName(dbname_, file_number);
    std::unique_ptr<RandomAccessFile> file;
    Status s = env_->NewRandomAccessFile(fname, &file);
    if (!s.ok()) return s;
    Table* table = nullptr;
    s = Table::Open(table_options_, std::move(file), file_size, block_cache_,
                    &table);
    if (!s.ok()) return s;
    handle = cache_->Insert(key, table, 1, &DeleteTableEntry);
  } else {
    GetPerfContext()->table_cache_hits++;
  }
  *handle_out = handle;
  return Status::OK();
}

Iterator* TableCache::NewIterator(uint64_t file_number, uint64_t file_size,
                                  const Table** tableptr, bool fill_cache) {
  if (tableptr != nullptr) *tableptr = nullptr;
  void* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) return NewErrorIterator(s);

  Cache::Handle* h = reinterpret_cast<Cache::Handle*>(handle);
  Table* table = reinterpret_cast<Table*>(cache_->Value(h));
  Iterator* result = table->NewIterator(fill_cache);
  Cache* cache = cache_.get();
  result->RegisterCleanup([cache, h] { cache->Release(h); });
  if (tableptr != nullptr) *tableptr = table;
  return result;
}

Status TableCache::Get(uint64_t file_number, uint64_t file_size,
                       const Slice& internal_key, bool* found,
                       std::string* key_out, std::string* value_out) {
  void* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) return s;
  Cache::Handle* h = reinterpret_cast<Cache::Handle*>(handle);
  Table* table = reinterpret_cast<Table*>(cache_->Value(h));
  s = table->Get(internal_key, found, key_out, value_out);
  cache_->Release(h);
  return s;
}

TableCache::BatchPin::~BatchPin() {
  for (const auto& [number, handle] : handles_) {
    cache_->cache_->Release(reinterpret_cast<Cache::Handle*>(handle));
  }
}

Status TableCache::GetPinned(BatchPin* pin, uint64_t file_number,
                             uint64_t file_size, const Slice& internal_key,
                             bool* found, std::string* key_out,
                             std::string* value_out, Table::Probe* probe) {
  void* handle = nullptr;
  auto it = pin->handles_.find(file_number);
  if (it != pin->handles_.end()) {
    handle = it->second;
  } else {
    Status s = FindTable(file_number, file_size, &handle);
    if (!s.ok()) return s;
    pin->handles_.emplace(file_number, handle);
  }
  Cache::Handle* h = reinterpret_cast<Cache::Handle*>(handle);
  Table* table = reinterpret_cast<Table*>(cache_->Value(h));
  return table->Get(internal_key, found, key_out, value_out, probe);
}

bool TableCache::KeyMayMatch(uint64_t file_number, uint64_t file_size,
                             const Slice& user_key) {
  void* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) return true;  // Be conservative.
  Cache::Handle* h = reinterpret_cast<Cache::Handle*>(handle);
  Table* table = reinterpret_cast<Table*>(cache_->Value(h));
  bool may = table->KeyMayMatch(user_key);
  cache_->Release(h);
  return may;
}

uint64_t TableCache::AccessCount(uint64_t file_number, uint64_t file_size) {
  void* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) return 0;
  Cache::Handle* h = reinterpret_cast<Cache::Handle*>(handle);
  Table* table = reinterpret_cast<Table*>(cache_->Value(h));
  uint64_t n = table->AccessCount();
  cache_->Release(h);
  return n;
}

void TableCache::Evict(uint64_t file_number) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  cache_->Erase(Slice(buf, sizeof(buf)));
}

}  // namespace unikv
