#include "benchutil/workload.h"

#include <cstdio>

namespace unikv {
namespace bench {

KeyGenerator::KeyGenerator(Distribution dist, uint64_t num_keys,
                           uint32_t seed, double zipf_theta)
    : dist_(dist), num_keys_(num_keys), rnd_(seed), frontier_(num_keys) {
  if (dist == Distribution::kZipfian || dist == Distribution::kLatest) {
    zipf_ = std::make_unique<ZipfianGenerator>(num_keys, zipf_theta, seed);
  }
}

uint64_t KeyGenerator::NextId() {
  switch (dist_) {
    case Distribution::kSequential:
      return next_seq_++ % num_keys_;
    case Distribution::kUniform:
      return rnd_.Next64() % num_keys_;
    case Distribution::kZipfian:
      return zipf_->Next() % num_keys_;
    case Distribution::kLatest: {
      // Hot end = most recently inserted ids.
      uint64_t off = zipf_->Next() % num_keys_;
      uint64_t frontier = frontier_ == 0 ? 1 : frontier_;
      return (frontier - 1 - (off % frontier));
    }
  }
  return 0;
}

std::string KeyGenerator::Key(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string MakeValue(uint64_t id, size_t value_size) {
  std::string v;
  v.reserve(value_size);
  Random rnd(static_cast<uint32_t>(id * 2654435761u + 97));
  while (v.size() < value_size) {
    v.push_back(static_cast<char>(' ' + rnd.Uniform(95)));
  }
  return v;
}

const YcsbSpec* GetYcsbSpec(char name) {
  static const YcsbSpec kSpecs[] = {
      {'A', 0.50, 0.50, 0.0, 0.0, 0.0, Distribution::kZipfian, 100},
      {'B', 0.95, 0.05, 0.0, 0.0, 0.0, Distribution::kZipfian, 100},
      {'C', 1.00, 0.00, 0.0, 0.0, 0.0, Distribution::kZipfian, 100},
      {'D', 0.95, 0.00, 0.05, 0.0, 0.0, Distribution::kLatest, 100},
      {'E', 0.00, 0.00, 0.05, 0.95, 0.0, Distribution::kZipfian, 100},
      {'F', 0.50, 0.00, 0.0, 0.0, 0.50, Distribution::kZipfian, 100},
  };
  for (const YcsbSpec& spec : kSpecs) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace bench
}  // namespace unikv
