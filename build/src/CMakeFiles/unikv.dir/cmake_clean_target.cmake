file(REMOVE_RECURSE
  "libunikv.a"
)
