// HashLogDB: a SkimpyStash-style hash-indexed log store used by the
// motivation experiment (paper Fig. 1). An in-memory bucket directory
// holds the head offset of a per-bucket chain threaded through an
// append-only on-disk log; each record stores the previous offset of its
// bucket. Point lookups walk the chain from newest to oldest, so read
// cost grows with the chain length (dataset size / bucket count) — the
// scalability cliff the paper demonstrates for hash stores.

#include <atomic>
#include <memory>
#include <vector>

#include "baseline/baselines.h"
#include "core/filename.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/env.h"
#include "util/hash.h"
#include "util/sync.h"

namespace unikv {
namespace baseline {

namespace {

constexpr uint64_t kNoChain = ~0ull;

// Record: crc(4B) flags(1B) prev(8B fixed) keylen(varint) vallen(varint)
//         key value
constexpr uint8_t kFlagValue = 0;
constexpr uint8_t kFlagTombstone = 1;

class HashLogDB : public DB {
 public:
  HashLogDB(const Options& options, const HashLogConfig& config,
            std::string dbname)
      : options_(options), dbname_(std::move(dbname)) {
    env_ = options_.env != nullptr ? options_.env : Env::Default();
    buckets_.assign(config.num_buckets, kNoChain);
  }

  Status Init() EXCLUDES(mu_) {
    // Open-time: no concurrency yet, but RebuildDirectory and the handle
    // installs touch mu_-guarded state, so hold the capability anyway.
    MutexLock lock(&mu_);
    // Usually exists already; a real failure surfaces on the log open.
    (void)env_->CreateDir(dbname_);
    log_name_ = dbname_ + "/hashlog.dat";
    // Rebuild the directory by scanning the existing log (recovery).
    if (env_->FileExists(log_name_)) {
      if (options_.error_if_exists) {
        return Status::InvalidArgument(dbname_, "exists");
      }
      Status s = RebuildDirectory();
      if (!s.ok()) return s;
    } else if (!options_.create_if_missing) {
      return Status::InvalidArgument(dbname_, "does not exist");
    }
    Status s = env_->NewAppendableFile(log_name_, &log_);
    if (!s.ok()) return s;
    return env_->NewRandomAccessFile(log_name_, &reader_);
  }

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override {
    return Append(options, key, value, kFlagValue);
  }

  Status Delete(const WriteOptions& options, const Slice& key) override {
    return Append(options, key, Slice(), kFlagTombstone);
  }

  Status Write(const WriteOptions& options, WriteBatch* updates) override {
    struct Applier : public WriteBatch::Handler {
      HashLogDB* db;
      const WriteOptions* wo;
      Status status;
      void Put(const Slice& key, const Slice& value) override {
        if (status.ok()) status = db->Put(*wo, key, value);
      }
      void Delete(const Slice& key) override {
        if (status.ok()) status = db->Delete(*wo, key);
      }
    };
    Applier applier;
    applier.db = this;
    applier.wo = &options;
    Status s = updates->Iterate(&applier);
    return s.ok() ? applier.status : s;
  }

  Status Get(const ReadOptions& /*options*/, const Slice& key,
             std::string* value) override {
    uint64_t head;
    {
      MutexLock lock(&mu_);
      head = buckets_[BucketFor(key)];
      Status s = log_->Flush();  // Make appended bytes visible to reads.
      if (!s.ok()) return s;
    }
    // Walk the bucket chain, newest record first.
    std::string scratch;
    while (head != kNoChain) {
      Slice rec_key, rec_value;
      // Initialized defensively: gcc cannot see that ReadRecord assigns
      // these on every ok() path, and an uninitialized `prev` would walk
      // the chain to a garbage offset.
      uint8_t flags = 0;
      uint64_t prev = kNoChain;
      Status s =
          ReadRecord(head, &scratch, &flags, &prev, &rec_key, &rec_value);
      if (!s.ok()) return s;
      chain_hops_.fetch_add(1, std::memory_order_relaxed);
      if (rec_key == key) {
        if (flags == kFlagTombstone) return Status::NotFound(Slice());
        value->assign(rec_value.data(), rec_value.size());
        return Status::OK();
      }
      head = prev;
    }
    return Status::NotFound(Slice());
  }

  Iterator* NewIterator(const ReadOptions& /*options*/) override {
    // Hash stores do not support ordered scans (the paper's point).
    return NewErrorIterator(
        Status::NotSupported("HashLogDB does not support range scans"));
  }

  Status CompactAll() override { return Status::OK(); }

  Status FlushMemTable() override {
    MutexLock lock(&mu_);
    return log_->Flush();
  }

  bool GetProperty(const Slice& property, std::string* value) override {
    if (property == Slice("db.stats")) {
      // records_/offset_ are mu_-guarded; a concurrent Append must not
      // race this read (caught by the annotation pass).
      uint64_t records, log_bytes;
      {
        MutexLock lock(&mu_);
        records = records_;
        log_bytes = offset_;
      }
      char buf[120];
      std::snprintf(buf, sizeof(buf),
                    "records=%llu chain_hops=%llu log_bytes=%llu",
                    static_cast<unsigned long long>(records),
                    static_cast<unsigned long long>(
                        chain_hops_.load(std::memory_order_relaxed)),
                    static_cast<unsigned long long>(log_bytes));
      *value = buf;
      return true;
    }
    if (property == Slice("db.hash-index-bytes")) {
      *value = std::to_string(buckets_.size() * sizeof(uint64_t));
      return true;
    }
    return false;
  }

 private:
  size_t BucketFor(const Slice& key) const {
    return Hash64(key.data(), key.size(), 0x5bd1e995) % buckets_.size();
  }

  Status Append(const WriteOptions& options, const Slice& key,
                const Slice& value, uint8_t flags) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    size_t bucket = BucketFor(key);
    std::string rec;
    rec.resize(4);
    rec.push_back(static_cast<char>(flags));
    PutFixed64(&rec, buckets_[bucket]);
    PutVarint32(&rec, static_cast<uint32_t>(key.size()));
    PutVarint32(&rec, static_cast<uint32_t>(value.size()));
    rec.append(key.data(), key.size());
    rec.append(value.data(), value.size());
    uint32_t crc = crc32c::Value(rec.data() + 4, rec.size() - 4);
    EncodeFixed32(rec.data(), crc32c::Mask(crc));

    Status s = log_->Append(rec);
    if (!s.ok()) return s;
    if (options.sync) {
      s = log_->Sync();
      if (!s.ok()) return s;
    }
    buckets_[bucket] = offset_;
    offset_ += rec.size();
    records_++;
    return Status::OK();
  }

  Status ReadRecord(uint64_t offset, std::string* scratch, uint8_t* flags,
                    uint64_t* prev, Slice* key, Slice* value) {
    // Read the fixed header plus a guess of the payload; extend if short.
    const size_t kHeaderGuess = 4 + 1 + 8 + 5 + 5;
    scratch->resize(kHeaderGuess);
    Slice header;
    Status s = reader_->Read(offset, kHeaderGuess, &header, scratch->data());
    if (!s.ok()) return s;
    if (header.size() < 4 + 1 + 8 + 2) {
      return Status::Corruption("short hashlog record header");
    }
    Slice input(header.data() + 5, header.size() - 5);
    *prev = DecodeFixed64(input.data());
    input.remove_prefix(8);
    uint32_t key_len, val_len;
    if (!GetVarint32(&input, &key_len) || !GetVarint32(&input, &val_len)) {
      return Status::Corruption("bad hashlog record lengths");
    }
    size_t header_size = (input.data() - header.data());
    size_t total = header_size + key_len + val_len;
    scratch->resize(total);
    Slice record;
    s = reader_->Read(offset, total, &record, scratch->data());
    if (!s.ok()) return s;
    if (record.size() != total) {
      return Status::Corruption("short hashlog record");
    }
    uint32_t crc = crc32c::Unmask(DecodeFixed32(record.data()));
    if (crc32c::Value(record.data() + 4, record.size() - 4) != crc) {
      return Status::Corruption("hashlog checksum mismatch");
    }
    *flags = static_cast<uint8_t>(record.data()[4]);
    *key = Slice(record.data() + header_size, key_len);
    *value = Slice(record.data() + header_size + key_len, val_len);
    return Status::OK();
  }

  Status RebuildDirectory() REQUIRES(mu_) {
    uint64_t size;
    Status s = env_->GetFileSize(log_name_, &size);
    if (!s.ok()) return s;
    std::unique_ptr<SequentialFile> file;
    s = env_->NewSequentialFile(log_name_, &file);
    if (!s.ok()) return s;
    std::string contents;
    contents.resize(size);
    Slice data;
    s = file->Read(size, &data, contents.data());
    if (!s.ok()) return s;

    uint64_t offset = 0;
    Slice input = data;
    while (input.size() > 4 + 1 + 8 + 2) {
      Slice peek(input.data() + 4 + 1 + 8, input.size() - 4 - 1 - 8);
      uint32_t key_len, val_len;
      if (!GetVarint32(&peek, &key_len) || !GetVarint32(&peek, &val_len)) {
        break;
      }
      size_t total = (peek.data() - input.data()) + key_len + val_len;
      if (total > input.size()) break;  // Torn tail.
      uint32_t crc = crc32c::Unmask(DecodeFixed32(input.data()));
      if (crc32c::Value(input.data() + 4, total - 4) != crc) break;
      Slice key(peek.data(), key_len);
      buckets_[BucketFor(key)] = offset;
      records_++;
      input.remove_prefix(total);
      offset += total;
    }
    offset_ = offset;
    return Status::OK();
  }

  Options options_;
  const std::string dbname_;
  Env* env_;
  std::string log_name_;

  Mutex mu_;
  std::vector<uint64_t> buckets_ GUARDED_BY(mu_);
  std::unique_ptr<WritableFile> log_ GUARDED_BY(mu_);
  // Immutable after Init(); pread is thread-safe, so chain walks read
  // through it without mu_.
  std::unique_ptr<RandomAccessFile> reader_;
  uint64_t offset_ GUARDED_BY(mu_) = 0;
  uint64_t records_ GUARDED_BY(mu_) = 0;
  // Relaxed atomic: bumped on the (lock-free) chain walk in Get.
  mutable std::atomic<uint64_t> chain_hops_{0};
};

}  // namespace

Status OpenHashLogDB(const Options& options, const HashLogConfig& config,
                     const std::string& name, DB** dbptr) {
  *dbptr = nullptr;
  auto db = std::make_unique<HashLogDB>(options, config, name);
  Status s = db->Init();
  if (!s.ok()) return s;
  *dbptr = db.release();
  return Status::OK();
}

Status OpenHashLogDB(const Options& options, const std::string& name,
                     DB** dbptr) {
  HashLogConfig config;
  config.num_buckets = options.hashlog_buckets;
  return OpenHashLogDB(options, config, name, dbptr);
}

}  // namespace baseline
}  // namespace unikv
