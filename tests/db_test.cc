// End-to-end tests of the UniKV DB: basic operations, flush/merge cycles,
// overwrite/delete semantics, reopen durability, and configuration
// variants (ablation switches).

#include "core/db.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "test_util.h"
#include "util/random.h"

namespace unikv {
namespace {

Options SmallOptions() {
  Options opt;
  opt.write_buffer_size = 64 * 1024;
  opt.unsorted_limit = 256 * 1024;
  opt.partition_size_limit = 4 * 1024 * 1024;
  opt.sorted_table_size = 64 * 1024;
  opt.gc_garbage_threshold = 128 * 1024;
  opt.scan_merge_limit = 4;
  return opt;
}

class DbTest : public testing::Test {
 protected:
  void OpenDb(const Options& opt, const std::string& suffix = "") {
    dir_ = test::NewTestDir("db_test" + suffix);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }

  void Reopen(const Options& opt) {
    db_.reset();
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERR: " + s.ToString();
    return value;
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbTest, EmptyDb) {
  OpenDb(SmallOptions());
  EXPECT_EQ("NOT_FOUND", Get("missing"));
}

TEST_F(DbTest, PutGet) {
  OpenDb(SmallOptions());
  ASSERT_TRUE(db_->Put(WriteOptions(), "foo", "v1").ok());
  EXPECT_EQ("v1", Get("foo"));
  ASSERT_TRUE(db_->Put(WriteOptions(), "bar", "v2").ok());
  EXPECT_EQ("v2", Get("bar"));
  EXPECT_EQ("v1", Get("foo"));
}

TEST_F(DbTest, Overwrite) {
  OpenDb(SmallOptions());
  ASSERT_TRUE(db_->Put(WriteOptions(), "foo", "v1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "foo", "v2").ok());
  EXPECT_EQ("v2", Get("foo"));
}

TEST_F(DbTest, DeleteBasic) {
  OpenDb(SmallOptions());
  ASSERT_TRUE(db_->Put(WriteOptions(), "foo", "v1").ok());
  ASSERT_TRUE(db_->Delete(WriteOptions(), "foo").ok());
  EXPECT_EQ("NOT_FOUND", Get("foo"));
  // Deleting a missing key is fine.
  ASSERT_TRUE(db_->Delete(WriteOptions(), "nope").ok());
}

TEST_F(DbTest, WriteBatchAtomicity) {
  OpenDb(SmallOptions());
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  batch.Put("c", "3");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  EXPECT_EQ("NOT_FOUND", Get("a"));
  EXPECT_EQ("2", Get("b"));
  EXPECT_EQ("3", Get("c"));
}

TEST_F(DbTest, GetAfterFlush) {
  OpenDb(SmallOptions());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(test::TestValue(i), Get(test::TestKey(i))) << i;
  }
  EXPECT_EQ("NOT_FOUND", Get(test::TestKey(100)));
}

TEST_F(DbTest, GetAfterMerge) {
  OpenDb(SmallOptions());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 256))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string prop;
  ASSERT_TRUE(db_->GetProperty("db.sstables", &prop));
  for (int i = 0; i < 500; i++) {
    EXPECT_EQ(test::TestValue(i, 256), Get(test::TestKey(i))) << i << " " << prop;
  }
}

TEST_F(DbTest, OverwritesAcrossFlushes) {
  OpenDb(SmallOptions());
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                           "round" + std::to_string(round) + "-" +
                               std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  for (int i = 0; i < 200; i++) {
    EXPECT_EQ("round4-" + std::to_string(i), Get(test::TestKey(i))) << i;
  }
}

TEST_F(DbTest, DeleteShadowsMergedData) {
  OpenDb(SmallOptions());
  ASSERT_TRUE(db_->Put(WriteOptions(), "doomed", "value").ok());
  ASSERT_TRUE(db_->CompactAll().ok());  // Pushes it into the SortedStore.
  ASSERT_TRUE(db_->Delete(WriteOptions(), "doomed").ok());
  EXPECT_EQ("NOT_FOUND", Get("doomed"));
  ASSERT_TRUE(db_->CompactAll().ok());  // Tombstone merges down and dies.
  EXPECT_EQ("NOT_FOUND", Get("doomed"));
}

TEST_F(DbTest, ReopenPreservesData) {
  Options opt = SmallOptions();
  OpenDb(opt);
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i)).ok());
  }
  Reopen(opt);
  for (int i = 0; i < 300; i++) {
    EXPECT_EQ(test::TestValue(i), Get(test::TestKey(i))) << i;
  }
  // And again after compaction.
  ASSERT_TRUE(db_->CompactAll().ok());
  Reopen(opt);
  for (int i = 0; i < 300; i++) {
    EXPECT_EQ(test::TestValue(i), Get(test::TestKey(i))) << i;
  }
}

TEST_F(DbTest, LargeValues) {
  OpenDb(SmallOptions());
  std::string big1 = test::TestValue(1, 100 * 1024);
  std::string big2 = test::TestValue(2, 300 * 1024);
  ASSERT_TRUE(db_->Put(WriteOptions(), "big1", big1).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "big2", big2).ok());
  EXPECT_EQ(big1, Get("big1"));
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ(big1, Get("big1"));
  EXPECT_EQ(big2, Get("big2"));
}

TEST_F(DbTest, BinaryKeysAndValues) {
  OpenDb(SmallOptions());
  std::string key("\0\1\2\xff\xfe", 5);
  std::string value("\0\0\0", 3);
  ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ(value, Get(key));
}

TEST_F(DbTest, EmptyValue) {
  OpenDb(SmallOptions());
  ASSERT_TRUE(db_->Put(WriteOptions(), "empty", "").ok());
  EXPECT_EQ("", Get("empty"));
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ("", Get("empty"));
}

TEST_F(DbTest, SyncWrites) {
  OpenDb(SmallOptions());
  WriteOptions wo;
  wo.sync = true;
  ASSERT_TRUE(db_->Put(wo, "synced", "v").ok());
  EXPECT_EQ("v", Get("synced"));
}

TEST_F(DbTest, StatsProperties) {
  OpenDb(SmallOptions());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 256))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string v;
  EXPECT_TRUE(db_->GetProperty("db.num-partitions", &v));
  EXPECT_GE(std::stoi(v), 1);
  EXPECT_TRUE(db_->GetProperty("db.hash-index-bytes", &v));
  EXPECT_TRUE(db_->GetProperty("db.stats", &v));
  EXPECT_NE(v.find("merges="), std::string::npos);
  EXPECT_FALSE(db_->GetProperty("db.nonexistent", &v));
}

// The same workload must behave identically with each feature disabled
// (the ablation configurations trade performance, not correctness).
class DbAblationTest : public DbTest,
                       public testing::WithParamInterface<int> {};

TEST_P(DbAblationTest, CorrectUnderFeatureToggles) {
  Options opt = SmallOptions();
  switch (GetParam()) {
    case 0: opt.enable_hash_index = false; break;
    case 1: opt.enable_kv_separation = false; break;
    case 2: opt.enable_partitioning = false; break;
    case 3: opt.enable_scan_optimization = false; break;
    case 4: opt.index_checkpoint_interval = 0; break;
    case 5: opt.index_num_hashes = 4; break;
  }
  OpenDb(opt, "_ablation" + std::to_string(GetParam()));

  std::map<std::string, std::string> model;
  Random rnd(301 + GetParam());
  for (int i = 0; i < 3000; i++) {
    std::string key = test::TestKey(rnd.Uniform(500));
    if (rnd.OneIn(4)) {
      model.erase(key);
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else {
      std::string value = test::TestValue(i, 64 + rnd.Uniform(256));
      model[key] = value;
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    }
    if (i % 1000 == 999) {
      ASSERT_TRUE(db_->FlushMemTable().ok());
    }
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  for (int i = 0; i < 500; i++) {
    std::string key = test::TestKey(i);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_EQ("NOT_FOUND", Get(key)) << key;
    } else {
      EXPECT_EQ(it->second, Get(key)) << key;
    }
  }
  Reopen(opt);
  for (int i = 0; i < 500; i++) {
    std::string key = test::TestKey(i);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_EQ("NOT_FOUND", Get(key)) << key;
    } else {
      EXPECT_EQ(it->second, Get(key)) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllToggles, DbAblationTest, testing::Range(0, 6));

TEST_F(DbTest, DestroyDb) {
  Options opt = SmallOptions();
  OpenDb(opt);
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());
  db_.reset();
  ASSERT_TRUE(DestroyDB(opt, dir_).ok());
  EXPECT_FALSE(Env::Default()->FileExists(dir_ + "/CURRENT"));
}

TEST_F(DbTest, ErrorIfExists) {
  Options opt = SmallOptions();
  OpenDb(opt);
  db_.reset();
  opt.error_if_exists = true;
  DB* raw = nullptr;
  EXPECT_FALSE(DB::Open(opt, dir_, &raw).ok());
  EXPECT_EQ(raw, nullptr);
}

TEST_F(DbTest, MissingDbWithoutCreate) {
  Options opt = SmallOptions();
  opt.create_if_missing = false;
  DB* raw = nullptr;
  std::string dir = test::NewTestDir("db_test_missing");
  EXPECT_FALSE(DB::Open(opt, dir, &raw).ok());
}

TEST_F(DbTest, SecondOpenOnSameDirRefused) {
  OpenDb(SmallOptions(), "_lock");
  ASSERT_TRUE(db_->Put(WriteOptions(), "k", "v").ok());

  // A second instance on the live directory must be refused outright:
  // its obsolete-file sweep would delete tables the first instance still
  // serves. (Exactly this happened when two test binaries shared a
  // scratch directory.)
  DB* second = nullptr;
  Status s = DB::Open(SmallOptions(), dir_, &second);
  EXPECT_FALSE(s.ok()) << "second Open must fail while the first is live";
  EXPECT_EQ(second, nullptr);

  // The first instance is unharmed, and closing it releases the claim.
  EXPECT_EQ("v", Get("k"));
  db_.reset();
  ASSERT_TRUE(DB::Open(SmallOptions(), dir_, &second).ok());
  std::unique_ptr<DB> reopened(second);
  std::string value;
  EXPECT_TRUE(reopened->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ("v", value);
}

}  // namespace
}  // namespace unikv
