// Experiment F7 — Range-scan performance vs. scan length.
//
// Paper: scans of varying length after sequential and random loads.
// Expected shape: UniKV scans land in the same ballpark as LeveledLSM
// (value-pointer dereferences are recovered by size-based merge,
// readahead and the parallel fetch pool), while TieredLSM pays for its
// many overlapping runs. The optimized Scan() path is also compared with
// a plain iterator loop to isolate the paper's scan optimizations.

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("scan");
  const uint64_t kKeys = Scaled(30000);
  const size_t kValueSize = 1024;

  for (int scan_len : {10, 50, 100, 500}) {
    PrintTableHeader("F7 scans of length " + std::to_string(scan_len) +
                         " (random-loaded dataset)",
                     {"engine", "kentries/s", "p99_us"});
    for (Engine engine :
         {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
      BenchDb bdb(engine, BenchOptions(), root);
      LoadSpec load;
      load.num_keys = kKeys;
      load.value_size = kValueSize;
      RunLoad(&bdb, load);

      ScanSpec spec;
      spec.num_ops = Scaled(300);
      spec.scan_len = scan_len;
      spec.key_space = kKeys;
      PhaseResult r = RunScans(&bdb, spec);
      PrintTableRow({EngineName(engine), Fmt(r.kops_per_sec),
                     Fmt(r.latency_us.Percentile(99), 0)});
    }
  }

  // Ablation of the scan path itself: optimized Scan() vs iterator loop
  // on UniKV.
  PrintTableHeader("F7b UniKV scan path (length 100)",
                   {"path", "kentries/s"});
  {
    BenchDb bdb(Engine::kUniKV, BenchOptions(), root);
    LoadSpec load;
    load.num_keys = kKeys;
    load.value_size = kValueSize;
    RunLoad(&bdb, load);
    for (bool optimized : {true, false}) {
      ScanSpec spec;
      spec.num_ops = Scaled(300);
      spec.scan_len = 100;
      spec.key_space = kKeys;
      spec.use_optimized_scan = optimized;
      PhaseResult r = RunScans(&bdb, spec);
      PrintTableRow({optimized ? "Scan()+pool" : "iterator",
                     Fmt(r.kops_per_sec)});
    }
  }
  return 0;
}
