#include "util/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace unikv {

// ---------------------------------------------------- ConcurrentHistogram

namespace {

// CAS helpers: atomic<double>::fetch_add is C++20-only and min/max RMWs
// do not exist at all, so all double accumulation goes through explicit
// compare-exchange loops. Relaxed ordering everywhere — the histograms
// are reporting-only, no cross-metric ordering is implied.
void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (cur > v &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (cur < v &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

ConcurrentHistogram::ConcurrentHistogram() : shards_(new Shard[kShards]) {
  Reset();
}

ConcurrentHistogram::Shard* ConcurrentHistogram::ShardForThisThread() const {
  // Round-robin shard assignment on first use, shared by every histogram
  // in the process: with kShards a power of two this spreads recording
  // threads evenly without per-histogram thread state.
  static std::atomic<unsigned> next_slot{0};
  thread_local unsigned slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return &shards_[slot % kShards];
}

void ConcurrentHistogram::Add(double value) {
  Shard* s = ShardForThisThread();
  s->buckets[Histogram::BucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  s->count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&s->sum, value);
  AtomicAddDouble(&s->sum_squares, value * value);
  AtomicMinDouble(&s->min, value);
  AtomicMaxDouble(&s->max, value);
}

void ConcurrentHistogram::Merge(const Histogram& other) {
  if (other.num_ == 0) return;
  // Bulk merges are rare (one per bench phase / background fold); folding
  // everything into shard 0 keeps Add() contention-free.
  Shard* s = &shards_[0];
  for (int b = 0; b < Histogram::kNumBuckets; b++) {
    const uint64_t n = static_cast<uint64_t>(other.buckets_[b]);
    if (n != 0) s->buckets[b].fetch_add(n, std::memory_order_relaxed);
  }
  s->count.fetch_add(other.num_, std::memory_order_relaxed);
  AtomicAddDouble(&s->sum, other.sum_);
  AtomicAddDouble(&s->sum_squares, other.sum_squares_);
  AtomicMinDouble(&s->min, other.min_);
  AtomicMaxDouble(&s->max, other.max_);
}

Histogram ConcurrentHistogram::Snapshot() const {
  Histogram h;  // Clear()ed: min_ holds the empty sentinel.
  for (int si = 0; si < kShards; si++) {
    const Shard& s = shards_[si];
    for (int b = 0; b < Histogram::kNumBuckets; b++) {
      h.buckets_[b] += static_cast<double>(
          s.buckets[b].load(std::memory_order_relaxed));
    }
    h.num_ += s.count.load(std::memory_order_relaxed);
    h.sum_ += s.sum.load(std::memory_order_relaxed);
    h.sum_squares_ += s.sum_squares.load(std::memory_order_relaxed);
    const double mn = s.min.load(std::memory_order_relaxed);
    const double mx = s.max.load(std::memory_order_relaxed);
    if (mn < h.min_) h.min_ = mn;
    if (mx > h.max_) h.max_ = mx;
  }
  return h;
}

void ConcurrentHistogram::Reset() {
  const double kMinSentinel =
      Histogram::kBucketLimit[Histogram::kNumBuckets - 1];
  for (int si = 0; si < kShards; si++) {
    Shard& s = shards_[si];
    for (int b = 0; b < Histogram::kNumBuckets; b++) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.sum_squares.store(0.0, std::memory_order_relaxed);
    s.min.store(kMinSentinel, std::memory_order_relaxed);
    s.max.store(0.0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------ JsonBuilder

void JsonBuilder::AppendEscaped(std::string* dst, const Slice& s) {
  dst->push_back('"');
  for (size_t i = 0; i < s.size(); i++) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        dst->append("\\\"");
        break;
      case '\\':
        dst->append("\\\\");
        break;
      case '\n':
        dst->append("\\n");
        break;
      case '\r':
        dst->append("\\r");
        break;
      case '\t':
        dst->append("\\t");
        break;
      default:
        if (c < 0x20 || c >= 0x7F) {
          // Escape control and non-ASCII bytes; user keys are arbitrary
          // binary and must not corrupt the JSON line.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          dst->append(buf);
        } else {
          dst->push_back(static_cast<char>(c));
        }
    }
  }
  dst->push_back('"');
}

void JsonBuilder::Key(const Slice& key) {
  if (!first_) out_.push_back(',');
  first_ = false;
  AppendEscaped(&out_, key);
  out_.push_back(':');
}

void JsonBuilder::AddUint(const Slice& key, uint64_t v) {
  Key(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_.append(buf);
}

void JsonBuilder::AddInt(const Slice& key, int64_t v) {
  Key(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_.append(buf);
}

void JsonBuilder::AddDouble(const Slice& key, double v) {
  Key(key);
  if (!std::isfinite(v)) {
    out_.append("0");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_.append(buf);
}

void JsonBuilder::AddBool(const Slice& key, bool v) {
  Key(key);
  out_.append(v ? "true" : "false");
}

void JsonBuilder::AddString(const Slice& key, const Slice& v) {
  Key(key);
  AppendEscaped(&out_, v);
}

void JsonBuilder::AddRaw(const Slice& key, const Slice& raw) {
  Key(key);
  out_.append(raw.data(), raw.size());
}

std::string JsonBuilder::Finish() {
  out_.push_back('}');
  return std::move(out_);
}

// -------------------------------------------------------- MetricsRegistry

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

ConcurrentHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<ConcurrentHistogram>();
  return slot.get();
}

size_t MetricsRegistry::NumCounters() const {
  MutexLock lock(&mu_);
  return counters_.size();
}

std::string MetricsRegistry::ToString() const {
  MutexLock lock(&mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-28s %" PRIu64 "\n", name.c_str(),
                  c->Value());
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%-28s %" PRId64 "\n", name.c_str(),
                  g->Value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    Histogram snap = h->Snapshot();
    if (snap.Count() == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-28s count=%" PRIu64 " avg=%.1f p50=%.1f p95=%.1f"
                  " p99=%.1f p999=%.1f max=%.1f\n",
                  name.c_str(), snap.Count(), snap.Average(),
                  snap.Percentile(50), snap.Percentile(95),
                  snap.Percentile(99), snap.Percentile(99.9), snap.Max());
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  JsonBuilder counters;
  for (const auto& [name, c] : counters_) {
    counters.AddUint(name, c->Value());
  }
  JsonBuilder gauges;
  for (const auto& [name, g] : gauges_) {
    gauges.AddInt(name, g->Value());
  }
  JsonBuilder hists;
  for (const auto& [name, h] : histograms_) {
    Histogram snap = h->Snapshot();
    JsonBuilder one;
    one.AddUint("count", snap.Count());
    one.AddDouble("avg", snap.Average());
    one.AddDouble("p50", snap.Percentile(50));
    one.AddDouble("p95", snap.Percentile(95));
    one.AddDouble("p99", snap.Percentile(99));
    one.AddDouble("p999", snap.Percentile(99.9));
    one.AddDouble("min", snap.Count() > 0 ? snap.Min() : 0);
    one.AddDouble("max", snap.Count() > 0 ? snap.Max() : 0);
    hists.AddRaw(name, one.Finish());
  }
  JsonBuilder root;
  root.AddRaw("counters", counters.Finish());
  root.AddRaw("gauges", gauges.Finish());
  root.AddRaw("histograms", hists.Finish());
  return root.Finish();
}

}  // namespace unikv
