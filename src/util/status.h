#ifndef UNIKV_UTIL_STATUS_H_
#define UNIKV_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace unikv {

/// Status represents success or one of several classes of error, with an
/// attached human-readable message. It is returned by most operations that
/// can fail; exceptions are not used on hot paths.
///
/// The class is [[nodiscard]]: silently dropping a Status is how write
/// errors turn into data loss, so every call site must either check the
/// result or cast it to void with a comment saying why ignoring it is
/// sound.
class [[nodiscard]] Status {
 public:
  Status() : code_(kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(kBusy, msg, msg2);
  }

  bool ok() const { return code_ == kOk; }
  bool IsNotFound() const { return code_ == kNotFound; }
  bool IsCorruption() const { return code_ == kCorruption; }
  bool IsIOError() const { return code_ == kIOError; }
  bool IsNotSupported() const { return code_ == kNotSupported; }
  bool IsInvalidArgument() const { return code_ == kInvalidArgument; }
  bool IsBusy() const { return code_ == kBusy; }

  /// Returns a string like "Corruption: bad block checksum".
  std::string ToString() const;

 private:
  enum Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code_;
  std::string msg_;
};

}  // namespace unikv

#endif  // UNIKV_UTIL_STATUS_H_
