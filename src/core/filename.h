#ifndef UNIKV_CORE_FILENAME_H_
#define UNIKV_CORE_FILENAME_H_

#include <cstdint>
#include <string>

namespace unikv {

/// File kinds living inside a DB directory.
enum class FileType {
  kWalFile,        // %06llu.wal (legacy single-queue WAL; still replayed)
  kShardWalFile,   // %06llu.swal (per-shard WAL, written since write_shards)
  kTableFile,      // %06llu.sst
  kValueLogFile,   // %06llu.vlog
  kIndexCheckpoint,  // %06llu.hidx
  kAnchorsFile,    // %06llu.anchors (sorted anchor view over unsorted tables)
  kManifestFile,   // MANIFEST-%06llu
  kCurrentFile,    // CURRENT
  kTempFile,       // %06llu.tmp
  kUnknown,
};

std::string WalFileName(const std::string& dbname, uint64_t number);
std::string ShardWalFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string ValueLogFileName(const std::string& dbname, uint64_t number);
std::string IndexCheckpointFileName(const std::string& dbname,
                                    uint64_t number);
std::string AnchorViewFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string LockFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);

/// Parses a bare filename (no directory). On success fills *number (0 for
/// CURRENT) and *type.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

}  // namespace unikv

#endif  // UNIKV_CORE_FILENAME_H_
