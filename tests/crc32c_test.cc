#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace unikv {
namespace crc32c {
namespace {

TEST(Crc32c, StandardVectors) {
  // From RFC 3720 (iSCSI) / the CRC-32C test vectors used by LevelDB.
  char buf[32];

  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(0x8a9136aa, Value(buf, sizeof(buf)));

  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(0x62a8ab43, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) {
    buf[i] = static_cast<char>(i);
  }
  EXPECT_EQ(0x46dd794e, Value(buf, sizeof(buf)));

  for (int i = 0; i < 32; i++) {
    buf[i] = static_cast<char>(31 - i);
  }
  EXPECT_EQ(0x113fdb5c, Value(buf, sizeof(buf)));

  uint8_t data[48] = {
      0x01, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  EXPECT_EQ(0xd9963a56, Value(reinterpret_cast<char*>(data), sizeof(data)));
}

TEST(Crc32c, Values) {
  EXPECT_NE(Value("a", 1), Value("foo", 3));
}

TEST(Crc32c, Extend) {
  EXPECT_EQ(Value("hello world", 11), Extend(Value("hello ", 6), "world", 5));
}

TEST(Crc32c, ExtendInArbitraryChunks) {
  std::string data(1000, '\0');
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(i * 37);
  }
  uint32_t whole = Value(data.data(), data.size());
  for (size_t split : {1ul, 7ul, 64ul, 999ul}) {
    uint32_t crc = Value(data.data(), split);
    crc = Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(whole, crc) << split;
  }
}

TEST(Crc32c, Mask) {
  uint32_t crc = Value("foo", 3);
  EXPECT_NE(crc, Mask(crc));
  EXPECT_NE(crc, Mask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Mask(crc)));
  EXPECT_EQ(crc, Unmask(Unmask(Mask(Mask(crc)))));
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(0u, Value("", 0));
  EXPECT_EQ(Value("x", 1), Extend(Value("", 0), "x", 1));
}

}  // namespace
}  // namespace crc32c
}  // namespace unikv
