#include "util/crc32c.h"

#include <array>

namespace unikv {
namespace crc32c {

namespace {

// Table-driven CRC-32C (Castagnoli polynomial 0x82F63B78, reflected),
// generated at static-init time into a constexpr 8-way sliced table.
struct Tables {
  uint32_t t[8][256];
  constexpr Tables() : t{} {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      for (int k = 1; k < 8; k++) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

constexpr Tables kTables;

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  // Process 8 bytes at a time using the sliced tables.
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         (static_cast<uint32_t>(p[1]) << 8) |
                         (static_cast<uint32_t>(p[2]) << 16) |
                         (static_cast<uint32_t>(p[3]) << 24));
    crc = kTables.t[7][lo & 0xFF] ^ kTables.t[6][(lo >> 8) & 0xFF] ^
          kTables.t[5][(lo >> 16) & 0xFF] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace unikv
