#include "core/merging_iterator.h"

#include <cassert>

namespace unikv {

namespace {

class MergingIterator : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator& comparator,
                  std::vector<Iterator*> children)
      : comparator_(comparator),
        children_(std::move(children)),
        current_(nullptr),
        direction_(kForward) {}

  ~MergingIterator() override {
    for (Iterator* child : children_) {
      delete child;
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (Iterator* child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (Iterator* child : children_) {
      child->SeekToLast();
    }
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (Iterator* child : children_) {
      child->Seek(target);
    }
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    assert(Valid());

    // Ensure all children are positioned after key(): if we were moving
    // backwards, children other than current_ sit at entries < key().
    if (direction_ != kForward) {
      for (Iterator* child : children_) {
        if (child != current_) {
          child->Seek(key());
          if (child->Valid() &&
              comparator_.Compare(key(), child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }

    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());

    if (direction_ != kReverse) {
      for (Iterator* child : children_) {
        if (child != current_) {
          child->Seek(key());
          if (child->Valid()) {
            // Child is at the first entry >= key(); step back one.
            child->Prev();
          } else {
            // Child has no entries >= key(); position at last.
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }

    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    for (Iterator* child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (Iterator* child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_.Compare(child->key(), smallest->key()) < 0) {
          smallest = child;
        }
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    // Iterate in reverse so earlier children win ties.
    for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
      Iterator* child = *it;
      if (child->Valid()) {
        if (largest == nullptr ||
            comparator_.Compare(child->key(), largest->key()) >= 0) {
          largest = child;
        }
      }
    }
    current_ = largest;
  }

  const InternalKeyComparator comparator_;
  std::vector<Iterator*> children_;
  Iterator* current_;
  Direction direction_;
};

class ConcatenatingIterator : public Iterator {
 public:
  ConcatenatingIterator(const InternalKeyComparator& comparator,
                        std::vector<Iterator*> children)
      : comparator_(comparator), children_(std::move(children)) {}

  ~ConcatenatingIterator() override {
    for (Iterator* child : children_) {
      delete child;
    }
  }

  bool Valid() const override {
    return cur_ < children_.size() && children_[cur_]->Valid();
  }

  void SeekToFirst() override {
    cur_ = 0;
    if (!children_.empty()) {
      children_[cur_]->SeekToFirst();
      SkipEmptyForward();
    }
  }

  void SeekToLast() override {
    cur_ = children_.empty() ? 0 : children_.size() - 1;
    if (!children_.empty()) {
      children_[cur_]->SeekToLast();
      SkipEmptyBackward();
    }
  }

  void Seek(const Slice& target) override {
    // Children are ordered and disjoint: find the first child whose
    // entries may include keys >= target by probing sequentially.
    for (cur_ = 0; cur_ < children_.size(); cur_++) {
      children_[cur_]->Seek(target);
      if (children_[cur_]->Valid()) {
        return;
      }
    }
  }

  void Next() override {
    assert(Valid());
    children_[cur_]->Next();
    SkipEmptyForward();
  }

  void Prev() override {
    assert(Valid());
    children_[cur_]->Prev();
    SkipEmptyBackward();
  }

  Slice key() const override { return children_[cur_]->key(); }
  Slice value() const override { return children_[cur_]->value(); }

  Status status() const override {
    for (Iterator* child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void SkipEmptyForward() {
    while (cur_ < children_.size() && !children_[cur_]->Valid()) {
      cur_++;
      if (cur_ < children_.size()) {
        children_[cur_]->SeekToFirst();
      }
    }
  }

  void SkipEmptyBackward() {
    while (cur_ < children_.size() && !children_[cur_]->Valid()) {
      if (cur_ == 0) {
        cur_ = children_.size();  // Invalid.
        return;
      }
      cur_--;
      children_[cur_]->SeekToLast();
    }
  }

  const InternalKeyComparator comparator_;
  std::vector<Iterator*> children_;
  size_t cur_ = 0;
};

}  // namespace

Iterator* NewMergingIterator(const InternalKeyComparator& comparator,
                             std::vector<Iterator*> children) {
  if (children.empty()) {
    return NewEmptyIterator();
  }
  if (children.size() == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, std::move(children));
}

Iterator* NewConcatenatingIterator(const InternalKeyComparator& comparator,
                                   std::vector<Iterator*> children) {
  if (children.empty()) {
    return NewEmptyIterator();
  }
  return new ConcatenatingIterator(comparator, std::move(children));
}

}  // namespace unikv
