#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace unikv {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; i++) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(1000, count.load());
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPool, TasksRunConcurrentlyWithCaller) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.Schedule([&ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ran.store(true);
  });
  // The caller is not blocked by Schedule.
  EXPECT_TRUE(true);
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; wave++) {
    for (int i = 0; i < 100; i++) {
      pool.Schedule([&count] { count.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ((wave + 1) * 100, count.load());
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; i++) {
      pool.Schedule([&count] { count.fetch_add(1); });
    }
    // Destructor runs here; all queued tasks must complete.
  }
  EXPECT_EQ(50, count.load());
}

TEST(ThreadPool, MinimumOneThread) {
  ThreadPool pool(0);  // Clamped to 1.
  EXPECT_EQ(1, pool.num_threads());
  std::atomic<int> count{0};
  pool.Schedule([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(1, count.load());
}

}  // namespace
}  // namespace unikv
