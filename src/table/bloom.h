#ifndef UNIKV_TABLE_BLOOM_H_
#define UNIKV_TABLE_BLOOM_H_

#include <string>
#include <vector>

#include "util/slice.h"

namespace unikv {

/// Standard double-hashing bloom filter (as in LevelDB). UniKV's own
/// stores do not use bloom filters (the unified index replaces them); the
/// LSM baselines attach one per table.
class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(const Slice& key);

  /// Appends the encoded filter for all added keys to *dst and resets.
  void Finish(std::string* dst);

  size_t NumKeys() const { return hashes_.size(); }

 private:
  int bits_per_key_;
  int k_;  // Number of probes.
  std::vector<uint32_t> hashes_;
};

/// Returns true if the key may be in the set encoded in `filter`
/// (false positives possible, false negatives not).
bool BloomFilterMayMatch(const Slice& key, const Slice& filter);

}  // namespace unikv

#endif  // UNIKV_TABLE_BLOOM_H_
