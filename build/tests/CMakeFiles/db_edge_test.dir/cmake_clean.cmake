file(REMOVE_RECURSE
  "CMakeFiles/db_edge_test.dir/db_edge_test.cc.o"
  "CMakeFiles/db_edge_test.dir/db_edge_test.cc.o.d"
  "db_edge_test"
  "db_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
