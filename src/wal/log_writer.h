#ifndef UNIKV_WAL_LOG_WRITER_H_
#define UNIKV_WAL_LOG_WRITER_H_

#include <cstdint>

#include "util/slice.h"
#include "util/status.h"
#include "wal/log_format.h"

namespace unikv {

class WritableFile;

namespace log {

/// Appends length-prefixed, checksummed records to a WritableFile using the
/// block/fragment format described in log_format.h.
class Writer {
 public:
  /// Creates a writer that appends to *dest (initially empty). *dest must
  /// remain live while this Writer is in use.
  explicit Writer(WritableFile* dest);

  /// Creates a writer appending to *dest with `dest_length` bytes already
  /// written (for reopening an existing log).
  Writer(WritableFile* dest, uint64_t dest_length);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // Current offset in block.

  // Once a physical append fails the on-disk position of later records is
  // unknowable (a torn fragment may sit between them and the readable
  // prefix), so the first error is sticky: every later AddRecord returns
  // it without writing.
  Status last_status_;

  // Precomputed crc32c of the type byte, one per record type.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace log
}  // namespace unikv

#endif  // UNIKV_WAL_LOG_WRITER_H_
