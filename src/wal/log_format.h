#ifndef UNIKV_WAL_LOG_FORMAT_H_
#define UNIKV_WAL_LOG_FORMAT_H_

namespace unikv {
namespace log {

/// Record-oriented log format (shared by the WAL and the MANIFEST).
///
/// A log file is a sequence of 32 KiB blocks. Each block contains a
/// sequence of records:
///   record := checksum(4B, crc32c of type+payload, masked)
///             length(2B little-endian) type(1B) payload
/// A user record that does not fit in the remainder of a block is split
/// into FIRST / MIDDLE* / LAST fragments; a block trailer of < 7 bytes is
/// zero-filled and skipped.
enum RecordType {
  kZeroType = 0,  // Reserved for preallocated files.
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
constexpr int kMaxRecordType = kLastType;

constexpr int kBlockSize = 32768;

// Header is checksum (4 bytes), length (2 bytes), type (1 byte).
constexpr int kHeaderSize = 4 + 2 + 1;

}  // namespace log
}  // namespace unikv

#endif  // UNIKV_WAL_LOG_FORMAT_H_
