file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed.dir/bench_mixed.cc.o"
  "CMakeFiles/bench_mixed.dir/bench_mixed.cc.o.d"
  "bench_mixed"
  "bench_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
