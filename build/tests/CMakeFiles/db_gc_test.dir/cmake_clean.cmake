file(REMOVE_RECURSE
  "CMakeFiles/db_gc_test.dir/db_gc_test.cc.o"
  "CMakeFiles/db_gc_test.dir/db_gc_test.cc.o.d"
  "db_gc_test"
  "db_gc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
