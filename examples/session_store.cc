// Session store: the mixed, skewed workload UniKV's introduction
// motivates — a web-service session cache where a small set of hot users
// generates most traffic (reads + overwrites) while cold sessions pile
// up, and operators occasionally run ranged housekeeping sweeps.
//
// Demonstrates: skewed updates riding the hash-indexed UnsortedStore,
// cold data settling into the SortedStore, range scans for sweeps, and
// DB introspection properties.
//
//   ./build/examples/session_store [db_path]

#include <cstdio>
#include <memory>
#include <string>

#include "core/db.h"
#include "util/random.h"

namespace {

std::string SessionKey(uint32_t user) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "session/%08u", user);
  return buf;
}

std::string SessionBlob(uint32_t user, int version) {
  // A JSON-ish payload, ~300 bytes.
  std::string blob = "{\"user\":" + std::to_string(user) +
                     ",\"version\":" + std::to_string(version) +
                     ",\"cart\":[";
  for (int i = 0; i < 16; i++) {
    blob += "\"item-" + std::to_string(user * 31 + i) + "\",";
  }
  blob += "],\"token\":\"";
  blob.append(128, 'x');
  blob += "\"}";
  return blob;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/unikv_sessions";
  // Scratch reset; a failure here surfaces as an Open error next.
  (void)unikv::DestroyDB(unikv::Options(), path);

  unikv::Options options;
  options.write_buffer_size = 1 << 20;
  options.unsorted_limit = 4 << 20;
  unikv::DB* raw = nullptr;
  unikv::Status s = unikv::DB::Open(options, path, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<unikv::DB> db(raw);

  const uint32_t kUsers = 20000;

  // Seed all sessions once (cold data).
  std::printf("seeding %u sessions...\n", kUsers);
  for (uint32_t u = 0; u < kUsers; u++) {
    if (!db->Put(unikv::WriteOptions(), SessionKey(u), SessionBlob(u, 0))
             .ok()) {
      return 1;
    }
  }

  // Serve skewed traffic: 80k ops, zipfian over users, 60% reads / 40%
  // session refreshes. Hot users stay resident in the hash-indexed
  // UnsortedStore.
  std::printf("serving skewed traffic...\n");
  unikv::ZipfianGenerator zipf(kUsers, 0.99, 42);
  unikv::Random rnd(7);
  uint64_t reads = 0, writes = 0, misses = 0;
  std::string value;
  for (int op = 0; op < 80000; op++) {
    uint32_t user = static_cast<uint32_t>(zipf.Next());
    if (rnd.Uniform(10) < 6) {
      if (db->Get(unikv::ReadOptions(), SessionKey(user), &value).ok()) {
        reads++;
      } else {
        misses++;
      }
    } else {
      if (!db->Put(unikv::WriteOptions(), SessionKey(user),
                   SessionBlob(user, op))
               .ok()) {
        return 1;
      }
      writes++;
    }
  }
  std::printf("  reads=%llu writes=%llu misses=%llu\n",
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(writes),
              static_cast<unsigned long long>(misses));

  // Housekeeping sweep: scan a shard of the key range and expire every
  // session whose version is stale (here: the seeded version 0).
  std::printf("housekeeping sweep over one shard...\n");
  std::vector<std::pair<std::string, std::string>> shard;
  if (!db->Scan(unikv::ReadOptions(), SessionKey(5000), 2000, &shard).ok()) {
    return 1;
  }
  int expired = 0;
  for (const auto& [key, blob] : shard) {
    if (blob.find("\"version\":0,") != std::string::npos) {
      if (!db->Delete(unikv::WriteOptions(), key).ok()) return 1;
      expired++;
    }
  }
  std::printf("  scanned %zu sessions, expired %d stale ones\n",
              shard.size(), expired);

  // Introspection: where did the data end up?
  std::string prop;
  if (db->GetProperty("db.sstables", &prop)) {
    std::printf("store layout:\n%s", prop.c_str());
  }
  if (db->GetProperty("db.hash-index-bytes", &prop)) {
    std::printf("hash index memory: %s bytes\n", prop.c_str());
  }
  if (db->GetProperty("db.stats", &prop)) {
    std::printf("background work: %s\n", prop.c_str());
  }
  std::printf("session_store OK\n");
  return 0;
}
