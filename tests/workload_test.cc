// Tests for the benchmark workload generators and driver plumbing.

#include "benchutil/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "benchutil/driver.h"
#include "test_util.h"

namespace unikv {
namespace bench {
namespace {

TEST(KeyGenerator, KeysAreFixedWidthAndOrdered) {
  EXPECT_EQ(KeyGenerator::Key(1).size(), KeyGenerator::Key(999999).size());
  EXPECT_LT(KeyGenerator::Key(5), KeyGenerator::Key(10));
  EXPECT_LT(KeyGenerator::Key(99), KeyGenerator::Key(100));
}

TEST(KeyGenerator, SequentialCoversSpace) {
  KeyGenerator gen(Distribution::kSequential, 100, 1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; i++) {
    seen.insert(gen.NextId());
  }
  EXPECT_EQ(100u, seen.size());
  EXPECT_EQ(0u, gen.NextId());  // Wraps around.
}

TEST(KeyGenerator, UniformStaysInRange) {
  KeyGenerator gen(Distribution::kUniform, 50, 2);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(gen.NextId(), 50u);
  }
}

TEST(KeyGenerator, ZipfianSkews) {
  KeyGenerator gen(Distribution::kZipfian, 10000, 3);
  uint64_t hot = 0;
  for (int i = 0; i < 10000; i++) {
    if (gen.NextId() < 100) hot++;
  }
  EXPECT_GT(hot, 2000u);  // Top 1% of keys draw >> 1% of accesses.
}

TEST(KeyGenerator, LatestFavorsFrontier) {
  KeyGenerator gen(Distribution::kLatest, 10000, 4);
  gen.SetFrontier(10000);
  uint64_t recent = 0;
  for (int i = 0; i < 10000; i++) {
    uint64_t id = gen.NextId();
    EXPECT_LT(id, 10000u);
    if (id >= 9900) recent++;
  }
  EXPECT_GT(recent, 2000u);
}

TEST(MakeValue, DeterministicAndSized) {
  EXPECT_EQ(MakeValue(7, 100), MakeValue(7, 100));
  EXPECT_NE(MakeValue(7, 100), MakeValue(8, 100));
  EXPECT_EQ(100u, MakeValue(7, 100).size());
  EXPECT_EQ(0u, MakeValue(7, 0).size());
}

TEST(YcsbSpecs, AllSixDefined) {
  for (char w : {'A', 'B', 'C', 'D', 'E', 'F'}) {
    const YcsbSpec* spec = GetYcsbSpec(w);
    ASSERT_NE(spec, nullptr) << w;
    double total = spec->read_ratio + spec->update_ratio +
                   spec->insert_ratio + spec->scan_ratio + spec->rmw_ratio;
    EXPECT_NEAR(1.0, total, 1e-9) << w;
  }
  EXPECT_EQ(nullptr, GetYcsbSpec('Z'));
}

TEST(Driver, EndToEndPhasesOnTinyDb) {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.sorted_table_size = 32 * 1024;
  std::string root = test::NewTestDir("driver");

  BenchDb bdb(Engine::kUniKV, opt, root);
  LoadSpec load;
  load.num_keys = 500;
  load.value_size = 256;
  PhaseResult lr = RunLoad(&bdb, load);
  EXPECT_EQ(500u, lr.ops);
  EXPECT_GT(lr.kops_per_sec, 0.0);
  EXPECT_GT(lr.bytes_written, 500u * 256);
  EXPECT_GE(lr.write_amp, 1.0);

  PointReadSpec reads;
  reads.num_ops = 200;
  reads.key_space = 500;
  PhaseResult rr = RunPointReads(&bdb, reads);
  EXPECT_EQ(200u, rr.ops);

  ScanSpec scans;
  scans.num_ops = 10;
  scans.scan_len = 20;
  scans.key_space = 500;
  PhaseResult sr = RunScans(&bdb, scans);
  EXPECT_EQ(200u, sr.ops);  // 10 scans x 20 entries.

  UpdateSpec updates;
  updates.num_ops = 300;
  updates.key_space = 500;
  updates.value_size = 256;
  PhaseResult ur = RunUpdates(&bdb, updates);
  EXPECT_EQ(300u, ur.ops);

  MixedSpec mixed;
  mixed.num_ops = 200;
  mixed.key_space = 500;
  PhaseResult mr = RunMixed(&bdb, mixed);
  EXPECT_EQ(200u, mr.ops);

  YcsbRunSpec ycsb;
  ycsb.workload = 'A';
  ycsb.num_ops = 200;
  ycsb.key_space = 500;
  PhaseResult yr = RunYcsb(&bdb, ycsb);
  EXPECT_EQ(200u, yr.ops);

  double reopen_secs = bdb.Reopen();
  EXPECT_GE(reopen_secs, 0.0);
  std::string value;
  EXPECT_TRUE(
      bdb.db()->Get(ReadOptions(), KeyGenerator::Key(0), &value).ok());
}

TEST(Driver, EngineNames) {
  EXPECT_STREQ("UniKV", EngineName(Engine::kUniKV));
  EXPECT_STREQ("LeveledLSM", EngineName(Engine::kLeveled));
  EXPECT_STREQ("TieredLSM", EngineName(Engine::kTiered));
  EXPECT_STREQ("HashLog", EngineName(Engine::kHashLog));
}

}  // namespace
}  // namespace bench
}  // namespace unikv
