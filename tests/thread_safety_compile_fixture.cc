// Negative-compile fixture for the thread-safety annotations in
// util/sync.h. Driven by tests/thread_safety_compile_test.sh, which
// compiles this file once per UNIKV_TSA_VIOLATION value with
// `clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety` and
// asserts that value 0 (no violation) compiles while every violation
// class fails. This proves the gate actually rejects the bug classes it
// claims to — an annotation set that silently stopped checking would
// break this harness, not just stop reporting.
//
// Violation classes:
//   1  read of a GUARDED_BY field without holding its mutex
//   2  call of a REQUIRES(mu) function without holding mu
//   3  returning with a manually-acquired Mutex still held
//   4  calling an EXCLUDES(mu) function while holding mu
//   5  unlocking a mutex that is not held (double release)

#include "util/sync.h"

#ifndef UNIKV_TSA_VIOLATION
#define UNIKV_TSA_VIOLATION 0
#endif

namespace unikv {

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    balance_ += amount;
  }

  int BalanceLocked() const REQUIRES(mu_) { return balance_; }

  int UnguardedRead() const NO_THREAD_SAFETY_ANALYSIS { return balance_; }

  mutable Mutex mu_;

 private:
  int balance_ GUARDED_BY(mu_) = 0;

#if UNIKV_TSA_VIOLATION == 1
 public:
  // Reads the guarded field with no lock held.
  int Race() const { return balance_; }
#endif
};

#if UNIKV_TSA_VIOLATION == 2
// Calls a REQUIRES(mu_) accessor without acquiring the mutex.
inline int CallWithoutLock(const Account& a) { return a.BalanceLocked(); }
#endif

#if UNIKV_TSA_VIOLATION == 3
// Acquires manually and returns while still holding.
inline void LeakLock(Account& a) {
  a.mu_.Lock();
  a.Deposit(0);  // Also an EXCLUDES violation, but the leak alone errors.
}
#endif

#if UNIKV_TSA_VIOLATION == 4
// Re-enters an EXCLUDES(mu_) method while holding mu_ — the deadlock
// shape the annotation exists to forbid.
inline void Reenter(Account& a) {
  MutexLock lock(&a.mu_);
  a.Deposit(1);
}
#endif

#if UNIKV_TSA_VIOLATION == 5
// Releases a mutex that was never acquired.
inline void DoubleRelease(Account& a) { a.mu_.Unlock(); }
#endif

inline int Use() {
  Account a;
  a.Deposit(1);
  return a.UnguardedRead();
}

}  // namespace unikv
