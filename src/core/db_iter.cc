#include "core/db_iter.h"

#include "vlog/value_log.h"

namespace unikv {

DBIter::DBIter(const InternalKeyComparator& icmp, Iterator* internal,
               SequenceNumber sequence, ValueLogCache* vlog, bool readahead)
    : icmp_(icmp),
      iter_(internal),
      sequence_(sequence),
      vlog_(vlog),
      readahead_(readahead) {}

DBIter::~DBIter() { delete iter_; }

bool DBIter::ParseKey(ParsedInternalKey* ikey) {
  if (!ParseInternalKey(iter_->key(), ikey)) {
    status_ = Status::Corruption("corrupted internal key in DBIter");
    return false;
  }
  return true;
}

Slice DBIter::key() const {
  assert(valid_);
  return (direction_ == kForward) ? ExtractUserKey(iter_->key())
                                  : Slice(saved_key_);
}

ValueType DBIter::raw_type() const {
  assert(valid_);
  if (direction_ == kForward) {
    return ExtractValueType(iter_->key());
  }
  return saved_type_;
}

Slice DBIter::raw_value() const {
  assert(valid_);
  return (direction_ == kForward) ? iter_->value() : Slice(saved_value_);
}

Slice DBIter::value() const {
  assert(valid_);
  if (raw_type() != kTypeValuePointer) {
    return raw_value();
  }
  if (!value_resolved_) {
    ValuePointer ptr;
    Slice encoded = raw_value();
    if (!ptr.DecodeFrom(&encoded)) {
      resolve_status_ = Status::Corruption("bad value pointer");
    } else if (vlog_ == nullptr) {
      resolve_status_ = Status::Corruption("value pointer without value log");
    } else {
      resolve_status_ = vlog_->Get(ptr, &resolved_value_);
    }
    value_resolved_ = true;
  }
  return Slice(resolved_value_);
}

Status DBIter::status() const {
  if (!status_.ok()) return status_;
  if (!resolve_status_.ok()) return resolve_status_;
  return iter_->status();
}

void DBIter::MaybeReadahead() const {
  if (!readahead_ || vlog_ == nullptr || !valid_) return;
  if (raw_type() != kTypeValuePointer) return;
  ValuePointer ptr;
  Slice encoded = raw_value();
  if (ptr.DecodeFrom(&encoded)) {
    // Hint a window past this value; sorted-order scans read values from
    // the logs in (mostly) increasing offsets within a merge epoch.
    vlog_->Readahead(ptr, 256 * 1024);
  }
}

void DBIter::Next() {
  assert(valid_);
  value_resolved_ = false;

  if (direction_ == kReverse) {  // Switch directions?
    direction_ = kForward;
    // iter_ is pointing just before the entries for this->key(), so
    // advance into the range of entries and then use the normal skipping
    // code below.
    if (!iter_->Valid()) {
      iter_->SeekToFirst();
    } else {
      iter_->Next();
    }
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
    // saved_key_ already contains the key to skip past.
  } else {
    // Store current key in saved_key_ so we can skip its older versions.
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    iter_->Next();
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
  }

  FindNextUserEntry(true, &saved_key_);
}

void DBIter::FindNextUserEntry(bool skipping, std::string* skip) {
  // Loop until a visible, non-deleted user entry is found.
  assert(iter_->Valid());
  assert(direction_ == kForward);
  do {
    ParsedInternalKey ikey;
    if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
      switch (ikey.type) {
        case kTypeDeletion:
          // Arrange to skip all upcoming entries for this key since they
          // are hidden by this deletion.
          SaveKey(ikey.user_key, skip);
          skipping = true;
          break;
        case kTypeValue:
        case kTypeValuePointer:
          if (skipping && ikey.user_key.compare(Slice(*skip)) <= 0) {
            // Entry hidden: an older version of a skipped key.
          } else {
            valid_ = true;
            saved_key_.clear();
            MaybeReadahead();
            return;
          }
          break;
      }
    }
    iter_->Next();
  } while (iter_->Valid());
  saved_key_.clear();
  valid_ = false;
}

void DBIter::Prev() {
  assert(valid_);
  value_resolved_ = false;

  if (direction_ == kForward) {  // Switch directions?
    // iter_ is pointing at the current entry. Scan backwards until the
    // key changes so we can use the normal reverse scanning code.
    assert(iter_->Valid());
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    while (true) {
      iter_->Prev();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        ClearSavedValue();
        return;
      }
      if (ExtractUserKey(iter_->key()).compare(Slice(saved_key_)) < 0) {
        break;
      }
    }
    direction_ = kReverse;
  }

  FindPrevUserEntry();
}

void DBIter::FindPrevUserEntry() {
  assert(direction_ == kReverse);

  ValueType value_type = kTypeDeletion;
  if (iter_->Valid()) {
    do {
      ParsedInternalKey ikey;
      if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
        if ((value_type != kTypeDeletion) &&
            ikey.user_key.compare(Slice(saved_key_)) < 0) {
          // We encountered a non-deleted value in entries for prior keys.
          break;
        }
        value_type = ikey.type;
        if (value_type == kTypeDeletion) {
          saved_key_.clear();
          ClearSavedValue();
        } else {
          Slice raw = iter_->value();
          if (saved_value_.capacity() > raw.size() + 1048576) {
            std::string empty;
            std::swap(empty, saved_value_);
          }
          SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
          saved_value_.assign(raw.data(), raw.size());
          saved_type_ = value_type;
        }
      }
      iter_->Prev();
    } while (iter_->Valid());
  }

  if (value_type == kTypeDeletion) {
    // End of iteration.
    valid_ = false;
    saved_key_.clear();
    ClearSavedValue();
    direction_ = kForward;
  } else {
    valid_ = true;
    MaybeReadahead();
  }
}

void DBIter::Seek(const Slice& target) {
  direction_ = kForward;
  value_resolved_ = false;
  ClearSavedValue();
  saved_key_.clear();
  AppendInternalKey(&saved_key_,
                    ParsedInternalKey(target, sequence_, kValueTypeForSeek));
  iter_->Seek(saved_key_);
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_ /* temporary storage */);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToFirst() {
  direction_ = kForward;
  value_resolved_ = false;
  ClearSavedValue();
  iter_->SeekToFirst();
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_ /* temporary storage */);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToLast() {
  direction_ = kReverse;
  value_resolved_ = false;
  ClearSavedValue();
  saved_key_.clear();
  iter_->SeekToLast();
  FindPrevUserEntry();
}

}  // namespace unikv
