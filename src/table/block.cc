#include "table/block.h"

#include <cassert>
#include <cstring>
#include <string>
#include <vector>

#include "util/coding.h"

namespace unikv {

inline uint32_t Block::NumRestarts() const {
  assert(size_ >= sizeof(uint32_t));
  return DecodeFixed32(data_ + size_ - sizeof(uint32_t));
}

Block::Block(const BlockContents& contents)
    : data_(contents.data.data()),
      size_(contents.data.size()),
      owned_(contents.heap_allocated) {
  if (size_ < sizeof(uint32_t)) {
    size_ = 0;  // Error marker.
  } else {
    size_t max_restarts_allowed = (size_ - sizeof(uint32_t)) / sizeof(uint32_t);
    if (NumRestarts() > max_restarts_allowed) {
      // The size is too small for NumRestarts().
      size_ = 0;
    } else {
      restart_offset_ =
          static_cast<uint32_t>(size_ - (1 + NumRestarts()) * sizeof(uint32_t));
    }
  }
}

Block::~Block() {
  if (owned_) {
    delete[] data_;
  }
}

// Decodes the next block entry starting at "p", falling after "limit".
// Stores shared/non_shared/value_length and returns a pointer to the key
// delta, or nullptr on error.
static inline const char* DecodeEntry(const char* p, const char* limit,
                                      uint32_t* shared, uint32_t* non_shared,
                                      uint32_t* value_length) {
  if (limit - p < 3) return nullptr;
  *shared = reinterpret_cast<const uint8_t*>(p)[0];
  *non_shared = reinterpret_cast<const uint8_t*>(p)[1];
  *value_length = reinterpret_cast<const uint8_t*>(p)[2];
  if ((*shared | *non_shared | *value_length) < 128) {
    // Fast path: all three values are encoded in one byte each.
    p += 3;
  } else {
    if ((p = GetVarint32Ptr(p, limit, shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, non_shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, value_length)) == nullptr) return nullptr;
  }

  if (static_cast<uint32_t>(limit - p) < (*non_shared + *value_length)) {
    return nullptr;
  }
  return p;
}

class Block::Iter : public Iterator {
 public:
  Iter(const InternalKeyComparator& comparator, const char* data,
       uint32_t restarts, uint32_t num_restarts)
      : comparator_(comparator),
        data_(data),
        restarts_(restarts),
        num_restarts_(num_restarts),
        current_(restarts_),
        restart_index_(num_restarts_) {
    assert(num_restarts_ > 0);
  }

  bool Valid() const override { return current_ < restarts_; }
  Status status() const override { return status_; }
  Slice key() const override {
    assert(Valid());
    return key_;
  }
  Slice value() const override {
    assert(Valid());
    return value_;
  }

  void Next() override {
    assert(Valid());
    ParseNextKey();
  }

  void Prev() override {
    assert(Valid());
    // Scan backwards to a restart point before current_.
    const uint32_t original = current_;
    while (GetRestartPoint(restart_index_) >= original) {
      if (restart_index_ == 0) {
        // No more entries.
        current_ = restarts_;
        restart_index_ = num_restarts_;
        return;
      }
      restart_index_--;
    }
    SeekToRestartPoint(restart_index_);
    do {
      // Loop until the end of current entry hits the start of original.
    } while (ParseNextKey() && NextEntryOffset() < original);
  }

  void Seek(const Slice& target) override {
    // Binary search in the restart array for the last restart point with a
    // key < target.
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
      uint32_t mid = (left + right + 1) / 2;
      uint32_t region_offset = GetRestartPoint(mid);
      uint32_t shared, non_shared, value_length;
      const char* key_ptr =
          DecodeEntry(data_ + region_offset, data_ + restarts_, &shared,
                      &non_shared, &value_length);
      if (key_ptr == nullptr || (shared != 0)) {
        CorruptionError();
        return;
      }
      Slice mid_key(key_ptr, non_shared);
      if (comparator_.Compare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }

    // Linear scan within the restart block.
    SeekToRestartPoint(left);
    while (true) {
      if (!ParseNextKey()) {
        return;
      }
      if (comparator_.Compare(key_, target) >= 0) {
        return;
      }
    }
  }

  void SeekToFirst() override {
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void SeekToLast() override {
    SeekToRestartPoint(num_restarts_ - 1);
    while (ParseNextKey() && NextEntryOffset() < restarts_) {
      // Keep skipping.
    }
  }

 private:
  const InternalKeyComparator comparator_;
  const char* const data_;     // Underlying block contents.
  uint32_t const restarts_;    // Offset of restart array.
  uint32_t const num_restarts_;

  // current_ is the offset in data_ of the current entry; >= restarts_ if
  // the iterator is not valid.
  uint32_t current_;
  uint32_t restart_index_;  // Index of restart block in which current falls.
  std::string key_;
  Slice value_;
  Status status_;

  inline uint32_t NextEntryOffset() const {
    return static_cast<uint32_t>((value_.data() + value_.size()) - data_);
  }

  uint32_t GetRestartPoint(uint32_t index) {
    assert(index < num_restarts_);
    return DecodeFixed32(data_ + restarts_ + index * sizeof(uint32_t));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    restart_index_ = index;
    // ParseNextKey() starts at the end of value_, so set value_ accordingly.
    uint32_t offset = GetRestartPoint(index);
    value_ = Slice(data_ + offset, 0);
  }

  void CorruptionError() {
    current_ = restarts_;
    restart_index_ = num_restarts_;
    status_ = Status::Corruption("bad entry in block");
    key_.clear();
    value_.clear();
  }

  bool ParseNextKey() {
    current_ = NextEntryOffset();
    const char* p = data_ + current_;
    const char* limit = data_ + restarts_;  // Restarts come right after data.
    if (p >= limit) {
      // No more entries; mark as invalid.
      current_ = restarts_;
      restart_index_ = num_restarts_;
      return false;
    }

    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key_.size() < shared) {
      CorruptionError();
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_length);
    while (restart_index_ + 1 < num_restarts_ &&
           GetRestartPoint(restart_index_ + 1) < current_) {
      ++restart_index_;
    }
    return true;
  }
};

Status Block::Find(const InternalKeyComparator& cmp, const Slice& target,
                   bool* found, std::string* key_out,
                   Slice* value_out) const {
  *found = false;
  if (size_ < sizeof(uint32_t)) {
    return Status::Corruption("bad block contents");
  }
  const uint32_t num_restarts = NumRestarts();
  if (num_restarts == 0) return Status::OK();

  const char* const data = data_;
  const uint32_t restarts = restart_offset_;
  const auto restart_point = [data, restarts](uint32_t index) {
    return DecodeFixed32(data + restarts + index * sizeof(uint32_t));
  };

  // Binary search in the restart array for the last restart point with a
  // key < target (restart entries always store full keys: shared == 0).
  uint32_t left = 0;
  uint32_t right = num_restarts - 1;
  while (left < right) {
    const uint32_t mid = (left + right + 1) / 2;
    // The search is bound by dependent cache misses on the probed
    // entries (the restart array itself is contiguous and stays hot).
    // Prefetch both possible next probes so each level's miss overlaps
    // the current comparison instead of serializing after it.
    if (right - left > 2) {
      __builtin_prefetch(data + restart_point((left + mid) / 2));
      __builtin_prefetch(data + restart_point((mid + right + 1) / 2));
    }
    uint32_t shared, non_shared, value_length;
    const char* key_ptr = DecodeEntry(data + restart_point(mid),
                                      data + restarts, &shared, &non_shared,
                                      &value_length);
    if (key_ptr == nullptr || shared != 0) {
      return Status::Corruption("bad entry in block");
    }
    if (cmp.Compare(Slice(key_ptr, non_shared), target) < 0) {
      left = mid;
    } else {
      right = mid - 1;
    }
  }

  // Linear scan within the restart interval.
  std::string& key = *key_out;
  key.clear();
  const char* p = data + restart_point(left);
  const char* const limit = data + restarts;
  while (p < limit) {
    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key.size() < shared) {
      return Status::Corruption("bad entry in block");
    }
    key.resize(shared);
    key.append(p, non_shared);
    if (cmp.Compare(Slice(key), target) >= 0) {
      *found = true;
      *value_out = Slice(p + non_shared, value_length);
      return Status::OK();
    }
    p += non_shared + value_length;
  }
  return Status::OK();  // Every entry < target.
}

Iterator* Block::NewIterator(const InternalKeyComparator& comparator) {
  if (size_ < sizeof(uint32_t)) {
    return NewErrorIterator(Status::Corruption("bad block contents"));
  }
  const uint32_t num_restarts = NumRestarts();
  if (num_restarts == 0) {
    return NewEmptyIterator();
  }
  return new Iter(comparator, data_, restart_offset_, num_restarts);
}

}  // namespace unikv
