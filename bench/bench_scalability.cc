// Experiment F11 — Foreground write-path scalability (sharded write path
// at work; DESIGN.md §10).
//
// Sweeps 1→32 client threads over two configurations of the same UniKV
// engine: the sharded foreground path (write_shards=16; per-shard
// memtable + WAL + group commit) and the single-queue baseline
// (write_shards=1; every writer funnels through one memtable and WAL).
//
// The headline sweep (phases sharded_tN / single_tN) uses durable
// (sync=true) writes: a lone writer pays the full WAL-fsync latency per
// op, while concurrent writers overlap their fsync waits and group
// commit amortizes each shard's sync across the batch — so throughput
// must rise steeply with the thread count. An async sweep
// (*_async_tN) records the CPU-bound fast path, where sharding shows up
// as lower per-op contention rather than thread scaling (on a 1-core
// host the async curve is flat by construction).
//
// Emits BENCH_scalability.json (schema v2: per-phase "threads" field)
// via WriteBenchTrajectory — run from the repo root so the artifact
// lands there.

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

namespace {

Options SweepOptions(int shards) {
  Options opt = BenchOptions();
  opt.write_shards = shards;
  return opt;
}

struct SweepResult {
  std::vector<PhaseResult> phases;
};

SweepResult RunSweep(BenchDb* bdb, const std::string& prefix, bool sync,
                     uint64_t total_ops, const std::vector<int>& threads) {
  SweepResult out;
  uint64_t key_base = sync ? 0 : 1u << 30;  // Sweeps use disjoint key ranges.
  for (int t : threads) {
    ConcurrentWriteSpec spec;
    spec.phase = prefix + "_t" + std::to_string(t);
    spec.threads = t;
    spec.total_ops = total_ops;
    spec.key_base = key_base;
    spec.value_size = 256;
    spec.sync = sync;
    out.phases.push_back(RunConcurrentWrites(bdb, spec));
    key_base += total_ops;        // Distinct keys per phase: no overwrites.
    OrDie(bdb->db()->CompactAll(),  // Settle outside the timed window.
          "CompactAll");
  }
  return out;
}

}  // namespace

int main() {
  const std::string root = BenchRoot("scalability");
  const std::vector<int> kThreads = {1, 2, 4, 8, 16, 32};
  const uint64_t kSyncOps = Scaled(1500);    // Sync ops pay real fsyncs.
  const uint64_t kAsyncOps = Scaled(40000);  // Fixed; split across threads.

  // Single-queue baseline first, sharded second: WriteBenchTrajectory
  // needs a live BenchDb, so the sharded store is kept open until the
  // artifact is written.
  SweepResult single_sync, single_async;
  {
    BenchDb single(Engine::kUniKV, SweepOptions(1), root + "/single");
    single_sync = RunSweep(&single, "single", true, kSyncOps, kThreads);
    single_async = RunSweep(&single, "single_async", false, kAsyncOps,
                            kThreads);
  }

  BenchDb sharded(Engine::kUniKV, SweepOptions(16), root + "/sharded");
  SweepResult sharded_sync =
      RunSweep(&sharded, "sharded", true, kSyncOps, kThreads);
  SweepResult sharded_async =
      RunSweep(&sharded, "sharded_async", false, kAsyncOps, kThreads);

  PrintTableHeader(
      "F11 write scalability (kops/s; sync = durable writes, async = "
      "buffered)",
      {"threads", "shard sync", "single sync", "shard async",
       "single async"});
  for (size_t i = 0; i < kThreads.size(); i++) {
    PrintTableRow({std::to_string(kThreads[i]),
                   Fmt(sharded_sync.phases[i].kops_per_sec),
                   Fmt(single_sync.phases[i].kops_per_sec),
                   Fmt(sharded_async.phases[i].kops_per_sec),
                   Fmt(single_async.phases[i].kops_per_sec)});
  }

  std::vector<PhaseResult> phases;
  for (auto* sweep :
       {&sharded_sync, &sharded_async, &single_sync, &single_async}) {
    phases.insert(phases.end(), sweep->phases.begin(), sweep->phases.end());
  }
  WriteBenchTrajectory("scalability", &sharded, phases);
  return 0;
}
