#include "crash_harness.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "core/iterator.h"
#include "test_util.h"

namespace unikv {
namespace test {

namespace {
constexpr const char* kDbName = "/crashdb";
constexpr size_t kValueLen = 128;  // Above the 64-byte separation threshold.
// Post-recovery usability probe; sorts after every workload key and is
// excluded from state verification.
constexpr const char* kProbeKey = "zz-post-crash-probe";
}  // namespace

CrashHarness::CrashHarness(int write_shards) : write_shards_(write_shards) {
  auto put = [this](uint64_t i, int version, bool sync) {
    Op op;
    op.kind = Op::kPut;
    op.key = TestKey(i);
    op.value = TestValue(i * 97 + 1000003u * static_cast<uint64_t>(version),
                         kValueLen);
    op.sync = sync;
    universe_.insert(op.key);
    ops_.push_back(std::move(op));
  };
  auto del = [this](uint64_t i) {
    Op op;
    op.kind = Op::kDelete;
    op.key = TestKey(i);
    universe_.insert(op.key);
    ops_.push_back(std::move(op));
  };
  auto barrier = [this](Op::Kind kind) {
    Op op;
    op.kind = kind;
    ops_.push_back(std::move(op));
  };

  // Phase 1 — WAL appends/syncs, then a flush (UnsortedStore tables, hash
  // index, manifest).
  for (uint64_t i = 0; i < 24; i++) put(i, 0, i % 4 == 0);
  barrier(Op::kFlush);

  // Phase 2 — more keys, overwrites and tombstones; a second flush (also
  // triggers the periodic hash-index checkpoint, interval = 2).
  for (uint64_t i = 24; i < 48; i++) put(i, 0, i % 8 == 0);
  for (uint64_t i = 0; i < 10; i++) put(i, 1, false);
  del(3);
  del(11);
  barrier(Op::kFlush);

  // Phase 3 — merge into the SortedStore (KV separation, new value log)
  // followed in the same barrier by a dynamic range split (the merged
  // partition exceeds partition_size_limit).
  barrier(Op::kCompact);

  // Phase 4 — overwrite separated values so their old vlog records become
  // garbage, then merge + GC across the split partitions.
  for (uint64_t i = 8; i < 32; i++) put(i, 2, i % 6 == 0);
  del(20);
  del(21);
  barrier(Op::kFlush);
  barrier(Op::kCompact);

  // Phase 5 — post-GC WAL tail, ending on a synced put so the workload's
  // final state has a non-trivial durability floor.
  for (uint64_t i = 48; i < 56; i++) put(i, 3, i % 2 == 1);
}

Options CrashHarness::MakeOptions(Env* env) const {
  Options o;
  o.env = env;
  // All background work happens inside explicit FlushMemTable/CompactAll
  // barriers, so the counted Env-call sequence is deterministic across
  // runs (the enumeration replays it call-for-call).
  o.write_buffer_size = 1 << 20;
  o.unsorted_limit = 1 << 20;
  o.gc_garbage_threshold = 1 << 20;
  o.partition_size_limit = 6 * 1024;  // Phase-3 merge output exceeds this.
  o.sorted_table_size = 2 * 1024;     // Several sorted tables per merge.
  o.index_checkpoint_interval = 2;
  o.value_fetch_threads = 2;
  o.write_shards = write_shards_;
  // One worker keeps the Env-call trace deterministic: with several, the
  // interleaving of per-partition jobs varies run to run and the counted
  // crash-point replay would diverge.
  o.background_threads = 1;
  return o;
}

Status CrashHarness::ApplyOp(DB* db, const Op& op) const {
  WriteOptions w;
  w.sync = op.sync;
  switch (op.kind) {
    case Op::kPut:
      return db->Put(w, op.key, op.value);
    case Op::kDelete:
      return db->Delete(w, op.key);
    case Op::kFlush:
      return db->FlushMemTable();
    case Op::kCompact:
      return db->CompactAll();
  }
  return Status::OK();
}

void CrashHarness::ApplyToModel(const Op& op,
                                std::map<std::string, std::string>* m) const {
  switch (op.kind) {
    case Op::kPut:
      (*m)[op.key] = op.value;
      break;
    case Op::kDelete:
      m->erase(op.key);
      break;
    case Op::kFlush:
    case Op::kCompact:
      break;  // Barriers don't change the logical contents.
  }
}

size_t CrashHarness::RunWorkload(DB* db, const FaultInjectionEnv& env,
                                 size_t* synced_prefix,
                                 bool* in_flight_at_crash) const {
  size_t acked = 0;
  size_t synced = 0;
  if (in_flight_at_crash != nullptr) *in_flight_at_crash = false;
  for (const Op& op : ops_) {
    if (env.crashed()) break;
    Status s = ApplyOp(db, op);
    if (!s.ok()) {
      // An op interrupted by the crash is unacknowledged but may still be
      // durable: with sharded WALs its own shard's record can be synced
      // before the cross-shard sync-all (or the barrier's install)
      // completes. The verifier may accept one extra cut for it.
      if (in_flight_at_crash != nullptr && env.crashed()) {
        *in_flight_at_crash = true;
      }
      break;
    }
    acked++;
    // A sync-acked write persists every earlier op; an acknowledged
    // barrier means the flush/merge installed through a synced manifest.
    if ((op.kind == Op::kPut || op.kind == Op::kDelete) && op.sync) {
      synced = acked;
    } else if (op.kind == Op::kFlush || op.kind == Op::kCompact) {
      synced = acked;
    }
  }
  *synced_prefix = synced;
  return acked;
}

std::string CrashHarness::VerifyRecovered(DB* db, size_t synced_prefix,
                                          size_t acked_ops,
                                          size_t probe_mutations) const {
  // Read the sequence counter before the probe put below bumps it.
  std::string seq_text;
  const bool have_seq = db->GetProperty("db.last-sequence", &seq_text);
  // Collect the recovered state through the iterator (resolves value
  // pointers, so a dangling pointer into a lost vlog surfaces here).
  std::map<std::string, std::string> recovered;
  {
    ReadOptions ropts;
    std::unique_ptr<Iterator> it(db->NewIterator(ropts));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      std::string key = it->key().ToString();
      if (key == kProbeKey) continue;  // Left over from an earlier verify.
      recovered[std::move(key)] = it->value().ToString();
    }
    if (!it->status().ok()) {
      return "iterator error after recovery: " + it->status().ToString();
    }
  }
  for (const auto& [key, value] : recovered) {
    (void)value;
    if (universe_.find(key) == universe_.end()) {
      return "resurrected/unknown key after recovery: " + key;
    }
  }
  // Cross-check the point-lookup path against the iterator.
  for (const std::string& key : universe_) {
    std::string value;
    Status gs = db->Get(ReadOptions(), key, &value);
    auto it = recovered.find(key);
    if (gs.ok()) {
      if (it == recovered.end() || it->second != value) {
        return "Get and iterator disagree for " + key;
      }
    } else if (gs.IsNotFound()) {
      if (it != recovered.end()) {
        return "iterator returned a key Get cannot find: " + key;
      }
    } else {
      return "Get error for " + key + ": " + gs.ToString();
    }
  }
  // Accept exactly the prefix cuts [S, C].
  std::map<std::string, std::string> model;
  size_t cut = 0;
  for (; cut < synced_prefix; cut++) ApplyToModel(ops_[cut], &model);
  for (;; cut++) {
    if (model == recovered) break;
    if (cut >= acked_ops) {
      // No cut matched: describe the divergence from model_at(C).
      std::string msg = "recovered state matches no cut in [" +
                        std::to_string(synced_prefix) + ", " +
                        std::to_string(acked_ops) + "]:";
      for (const auto& [key, value] : model) {
        auto rit = recovered.find(key);
        if (rit == recovered.end()) {
          msg += " lost:" + key;
        } else if (rit->second != value) {
          msg += " stale:" + key;
        }
      }
      for (const auto& [key, value] : recovered) {
        (void)value;
        if (model.find(key) == model.end()) msg += " extra:" + key;
      }
      return msg;
    }
    ApplyToModel(ops_[cut], &model);
  }
  // Cross-shard sequence consistency: every mutation consumes exactly one
  // globally allocated sequence number, so the recovered counter must
  // equal the matched cut's cumulative mutation count — across however
  // many shard WALs the workload was spread over. A higher value means a
  // sequence was allocated for an op the recovered state does not contain
  // (a lost update); a lower one means replay dropped an applied op.
  if (have_seq) {
    size_t mutations = probe_mutations;
    for (size_t i = 0; i < cut; i++) {
      if (ops_[i].kind == Op::kPut || ops_[i].kind == Op::kDelete) {
        mutations++;
      }
    }
    const uint64_t last_seq =
        std::strtoull(seq_text.c_str(), nullptr, 10);
    if (last_seq != mutations) {
      return "last-sequence " + std::to_string(last_seq) +
             " does not match cut " + std::to_string(cut) + " with " +
             std::to_string(mutations) + " mutations";
    }
  }
  // The store must stay usable after recovery.
  Status ps = db->Put(WriteOptions(), kProbeKey, "alive");
  if (!ps.ok()) return "post-recovery write failed: " + ps.ToString();
  std::string got;
  Status gs = db->Get(ReadOptions(), kProbeKey, &got);
  if (!gs.ok() || got != "alive") {
    return "post-recovery read failed: " + gs.ToString();
  }
  return "";
}

std::string CrashHarness::RunProfile(Profile* out) {
  std::unique_ptr<MemEnv> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  fenv.EnableTrace(true);
  Options opts = MakeOptions(&fenv);

  DB* raw = nullptr;
  Status s = DB::Open(opts, kDbName, &raw);
  std::unique_ptr<DB> db(raw);
  if (!s.ok()) return "profile open failed: " + s.ToString();
  size_t synced = 0;
  size_t acked = RunWorkload(db.get(), fenv, &synced);
  if (acked != ops_.size()) {
    return "profile workload failed at op " + std::to_string(acked);
  }
  if (!db->GetProperty("db.stats", &out->stats)) {
    return "db.stats property missing";
  }
  std::string verify = VerifyRecovered(db.get(), acked, acked);
  if (!verify.empty()) return "profile (pre-close): " + verify;
  db.reset();

  out->workload_calls = fenv.TotalMutatingCalls();
  out->trace = fenv.Trace();

  // A clean reopen (counts M for RunReopenCrashAt's matrix; everything is
  // still present because nothing was dropped).
  raw = nullptr;
  s = DB::Open(opts, kDbName, &raw);
  db.reset(raw);
  if (!s.ok()) return "profile reopen failed: " + s.ToString();
  out->reopen_calls = fenv.TotalMutatingCalls() - out->workload_calls;
  // The pre-close verify's probe put consumed one sequence number.
  verify = VerifyRecovered(db.get(), acked, acked, /*probe_mutations=*/1);
  if (!verify.empty()) return "profile (post-reopen): " + verify;
  return "";
}

std::string CrashHarness::RunCrashAt(uint64_t index) {
  std::unique_ptr<MemEnv> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  fenv.CrashAtCallIndex(index);
  Options opts = MakeOptions(&fenv);

  DB* raw = nullptr;
  Status open_s = DB::Open(opts, kDbName, &raw);
  std::unique_ptr<DB> db(raw);
  size_t synced = 0;
  size_t acked = 0;
  bool in_flight = false;
  if (open_s.ok()) {
    acked = RunWorkload(db.get(), fenv, &synced, &in_flight);
  } else if (!fenv.crashed()) {
    return "initial open failed without crash: " + open_s.ToString();
  }
  db.reset();  // All wrapper file handles must be gone before recovery.

  fenv.ClearFaults();
  if (fenv.crashed()) {
    Status rs = fenv.RecoverAfterCrash();
    if (!rs.ok()) return "RecoverAfterCrash failed: " + rs.ToString();
  }

  raw = nullptr;
  Status ro = DB::Open(opts, kDbName, &raw);
  std::unique_ptr<DB> db2(raw);
  if (!ro.ok()) return "reopen after crash failed: " + ro.ToString();
  return VerifyRecovered(db2.get(), synced,
                         in_flight ? acked + 1 : acked);
}

std::string CrashHarness::RunReopenCrashAt(uint64_t index) {
  std::unique_ptr<MemEnv> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  Options opts = MakeOptions(&fenv);

  DB* raw = nullptr;
  Status s = DB::Open(opts, kDbName, &raw);
  std::unique_ptr<DB> db(raw);
  if (!s.ok()) return "open failed: " + s.ToString();
  size_t synced = 0;
  size_t acked = RunWorkload(db.get(), fenv, &synced);
  if (acked != ops_.size()) {
    return "workload failed at op " + std::to_string(acked);
  }
  db.reset();  // Clean close — but the unsynced WAL tail is still volatile.

  fenv.CrashAtCallIndex(fenv.TotalMutatingCalls() + index);
  raw = nullptr;
  Status ro = DB::Open(opts, kDbName, &raw);
  std::unique_ptr<DB> db2(raw);
  db2.reset();
  if (!ro.ok() && !fenv.crashed()) {
    return "reopen failed without crash: " + ro.ToString();
  }
  fenv.ClearFaults();
  if (fenv.crashed()) {
    Status rs = fenv.RecoverAfterCrash();
    if (!rs.ok()) return "RecoverAfterCrash failed: " + rs.ToString();
  }

  raw = nullptr;
  Status final_s = DB::Open(opts, kDbName, &raw);
  std::unique_ptr<DB> db3(raw);
  if (!final_s.ok()) {
    return "open after recovery-crash failed: " + final_s.ToString();
  }
  return VerifyRecovered(db3.get(), synced, acked);
}

}  // namespace test
}  // namespace unikv
