#ifndef UNIKV_BASELINE_BASE_LSM_H_
#define UNIKV_BASELINE_BASE_LSM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/dbformat.h"
#include "core/table_cache.h"
#include "core/version.h"
#include "mem/memtable.h"
#include "util/sync.h"
#include "wal/log_writer.h"

namespace unikv {
namespace baseline {

/// A compact LSM-tree engine supporting the two classic compaction
/// disciplines the paper compares against. State is levels of sorted
/// runs; a run is an ordered list of disjoint tables:
///  * kLeveled: every level holds one run (level 0 holds one single-table
///    run per flush). A level exceeding its size target is merge-sorted
///    wholesale into the next — LevelDB/RocksDB-shaped read/write
///    amplification.
///  * kTiered: every level holds up to `tiered_runs_per_level` runs;
///    a full level is merged into a single new run appended to the next
///    level — PebblesDB/HyperLevelDB-shaped (low write amp, more runs to
///    search).
///
/// Compaction runs inline on the write path (deterministic, single
/// threaded), which keeps throughput accounting simple for benchmarks.
class BaseLsmDB : public DB {
 public:
  enum class CompactionStyle { kLeveled, kTiered };

  BaseLsmDB(const Options& options, const std::string& dbname,
            CompactionStyle style);
  ~BaseLsmDB() override;

  static Status Open(const Options& options, const std::string& name,
                     CompactionStyle style, DB** dbptr);

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  Status CompactAll() override;
  Status FlushMemTable() override;
  bool GetProperty(const Slice& property, std::string* value) override;

 private:
  static constexpr int kNumLevels = 7;

  using Run = std::vector<FileMeta>;  // Key-ordered, disjoint tables.

  // Open-time recovery runs under mu_ too (Open holds it across Recover):
  // there is no concurrency yet, but one capability story for every field
  // keeps the analysis exact.
  Status Recover() REQUIRES(mu_);
  Status ReplayWal(uint64_t number, SequenceNumber* max_seq) REQUIRES(mu_);
  // Appends a full-state snapshot record.
  Status PersistManifest() REQUIRES(mu_);
  Status SwitchWal() REQUIRES(mu_);

  /// Flushes the memtable into a new single-table run at level 0 and runs
  /// any due compactions.
  Status FlushLocked() REQUIRES(mu_);
  bool NeedsCompaction(int* level) const REQUIRES(mu_);
  Status CompactLevel(int level) REQUIRES(mu_);

  /// Merges `runs` into a new run whose tables respect
  /// options_.sorted_table_size; newest runs must come first for correct
  /// shadowing. `to_last_level` enables tombstone dropping.
  Status MergeRuns(const std::vector<const Run*>& runs, bool to_last_level,
                   Run* result) REQUIRES(mu_);

  uint64_t LevelBytes(int level) const REQUIRES(mu_);
  uint64_t LevelTarget(int level) const;

  Status SearchRun(const Run& run, const LookupKey& lkey, std::string* value,
                   bool* found, Status* result) REQUIRES(mu_);

  void RemoveObsoleteFiles() REQUIRES(mu_);

  Options options_;
  const std::string dbname_;
  Env* env_;
  InternalKeyComparator icmp_;
  std::unique_ptr<Cache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;
  const CompactionStyle style_;

  // One big lock: the baselines run compaction inline on the write path,
  // so every mutable field below is mu_-guarded.
  Mutex mu_;
  MemTable* mem_ GUARDED_BY(mu_) = nullptr;
  std::unique_ptr<WritableFile> wal_file_ GUARDED_BY(mu_);
  std::unique_ptr<log::Writer> wal_ GUARDED_BY(mu_);
  uint64_t wal_number_ GUARDED_BY(mu_) = 0;
  uint64_t next_file_number_ GUARDED_BY(mu_) = 2;
  SequenceNumber last_sequence_ GUARDED_BY(mu_) = 0;

  // levels_[i] = runs at level i, newest first.
  std::vector<std::vector<Run>> levels_ GUARDED_BY(mu_);

  std::unique_ptr<WritableFile> manifest_file_ GUARDED_BY(mu_);
  std::unique_ptr<log::Writer> manifest_log_ GUARDED_BY(mu_);

  uint64_t compactions_ GUARDED_BY(mu_) = 0;
  uint64_t compact_bytes_written_ GUARDED_BY(mu_) = 0;
  uint64_t compact_bytes_read_ GUARDED_BY(mu_) = 0;
};

}  // namespace baseline
}  // namespace unikv

#endif  // UNIKV_BASELINE_BASE_LSM_H_
