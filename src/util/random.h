#ifndef UNIKV_UTIL_RANDOM_H_
#define UNIKV_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace unikv {

/// A simple, fast pseudo-random generator (Lehmer / Park-Miller), matching
/// the one used by LevelDB. Deterministic given a seed; not thread-safe.
class Random {
 public:
  explicit Random(uint32_t s) : seed_(s & 0x7fffffffu) {
    if (seed_ == 0 || seed_ == 2147483647L) {
      seed_ = 1;
    }
  }

  uint32_t Next() {
    static const uint32_t M = 2147483647L;  // 2^31-1
    static const uint64_t A = 16807;        // bits 14, 8, 7, 5, 2, 1, 0
    uint64_t product = seed_ * A;
    seed_ = static_cast<uint32_t>((product >> 31) + (product & M));
    if (seed_ > M) {
      seed_ -= M;
    }
    return seed_;
  }

  /// Uniform in [0, n-1]; n > 0.
  uint32_t Uniform(int n) { return Next() % n; }

  uint64_t Next64() {
    return (static_cast<uint64_t>(Next()) << 31) | Next();
  }

  /// True with probability 1/n.
  bool OneIn(int n) { return (Next() % n) == 0; }

  /// Skewed: picks base in [0, max_log] uniformly, then returns uniform in
  /// [0, 2^base - 1]. Favors small numbers exponentially.
  uint32_t Skewed(int max_log) { return Uniform(1 << Uniform(max_log + 1)); }

 private:
  uint32_t seed_;
};

/// Zipfian-distributed generator over [0, n-1] following the YCSB
/// implementation (Gray et al. "Quickly Generating Billion-Record Synthetic
/// Databases"). theta defaults to the YCSB constant 0.99.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint32_t seed = 12345)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n_, theta_);
    zeta2theta_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2theta_ / zetan_);
  }

  uint64_t Next() {
    double u = rng_.Next() / 2147483647.0;
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zetan_, zeta2theta_, alpha_, eta_;
};

}  // namespace unikv

#endif  // UNIKV_UTIL_RANDOM_H_
