#include "util/status.h"

namespace unikv {

Status::Status(Code code, const Slice& msg, const Slice& msg2) : code_(code) {
  msg_.assign(msg.data(), msg.size());
  if (!msg2.empty()) {
    msg_.append(": ");
    msg_.append(msg2.data(), msg2.size());
  }
}

std::string Status::ToString() const {
  const char* type;
  switch (code_) {
    case kOk:
      return "OK";
    case kNotFound:
      type = "NotFound: ";
      break;
    case kCorruption:
      type = "Corruption: ";
      break;
    case kNotSupported:
      type = "Not supported: ";
      break;
    case kInvalidArgument:
      type = "Invalid argument: ";
      break;
    case kIOError:
      type = "IO error: ";
      break;
    case kBusy:
      type = "Busy: ";
      break;
    default:
      type = "Unknown code: ";
      break;
  }
  return std::string(type) + msg_;
}

}  // namespace unikv
