#ifndef UNIKV_BENCHUTIL_WORKLOAD_H_
#define UNIKV_BENCHUTIL_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/random.h"

namespace unikv {
namespace bench {

/// Key-chooser distributions used by the benchmark harness; zipfian and
/// latest follow the YCSB core definitions.
enum class Distribution {
  kSequential,
  kUniform,
  kZipfian,
  kLatest,
};

/// Generates keys over the id space [0, num_keys) under a distribution.
/// Ids are formatted as fixed-width keys ("user<digits>") so byte order
/// matches numeric order.
class KeyGenerator {
 public:
  KeyGenerator(Distribution dist, uint64_t num_keys, uint32_t seed,
               double zipf_theta = 0.99);

  /// Next key id.
  uint64_t NextId();

  /// Formats a key id.
  static std::string Key(uint64_t id);

  /// For kLatest: tracks the insertion frontier.
  void AdvanceFrontier() { frontier_++; }
  void SetFrontier(uint64_t n) { frontier_ = n; }

 private:
  Distribution dist_;
  uint64_t num_keys_;
  Random rnd_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  uint64_t next_seq_ = 0;
  uint64_t frontier_ = 0;
};

/// Deterministic value payload for a key id.
std::string MakeValue(uint64_t id, size_t value_size);

/// One YCSB core workload specification.
struct YcsbSpec {
  char name;           // 'A'..'F'
  double read_ratio;
  double update_ratio;
  double insert_ratio;
  double scan_ratio;
  double rmw_ratio;    // Read-modify-write (workload F).
  Distribution dist;
  int scan_max_len = 100;
};

/// The six YCSB core workloads (A: 50/50 r/u zipf, B: 95/5 r/u zipf,
/// C: 100 r zipf, D: 95/5 r/insert latest, E: 95/5 scan/insert zipf,
/// F: 50/50 r/rmw zipf).
const YcsbSpec* GetYcsbSpec(char name);

}  // namespace bench
}  // namespace unikv

#endif  // UNIKV_BENCHUTIL_WORKLOAD_H_
