# Empty dependencies file for bench_value_size.
# This may be replaced when dependencies are built.
