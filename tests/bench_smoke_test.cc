// Tier-1 smoke test for the BENCH_*.json perf-trajectory emitter: runs a
// miniature load -> mixed -> scan trajectory through the bench driver and
// validates the persisted document's schema — required keys, in-engine
// latency percentiles that are non-zero and monotone, amplification
// factors >= 1 — so schema drift or a broken emitter fails ctest instead
// of silently corrupting the repo's perf history.

#include "benchutil/driver.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace unikv {
namespace bench {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::string out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return out;
  int c;
  while ((c = std::fgetc(f)) != EOF) out.push_back(static_cast<char>(c));
  std::fclose(f);
  return out;
}

// Numeric value of `"key":<num>` at its first occurrence after `anchor`.
// Returns -1 (and fails the test) when either is missing.
double NumAfter(const std::string& json, const std::string& anchor,
                const std::string& key) {
  size_t base = anchor.empty() ? 0 : json.find(anchor);
  EXPECT_NE(base, std::string::npos) << anchor << " missing";
  if (base == std::string::npos) return -1;
  size_t pos = json.find("\"" + key + "\":", base);
  EXPECT_NE(pos, std::string::npos) << key << " missing after " << anchor;
  if (pos == std::string::npos) return -1;
  return std::strtod(json.c_str() + pos + key.size() + 3, nullptr);
}

TEST(BenchSmokeTest, TrajectoryJsonSchemaHolds) {
  const std::string root = test::NewTestDir("bench_smoke");
  Options opt;
  opt.write_buffer_size = 64 * 1024;
  opt.unsorted_limit = 256 * 1024;
  opt.sorted_table_size = 64 * 1024;
  BenchDb bdb(Engine::kUniKV, opt, root);

  std::vector<PhaseResult> phases;
  LoadSpec load;
  load.num_keys = 3000;
  load.value_size = 256;
  phases.push_back(RunLoad(&bdb, load));

  MixedSpec mixed;
  mixed.num_ops = 4000;
  mixed.key_space = load.num_keys;
  mixed.value_size = 256;
  phases.push_back(RunMixed(&bdb, mixed));

  ScanSpec scan;
  scan.num_ops = 50;
  scan.scan_len = 50;
  scan.key_space = load.num_keys;
  phases.push_back(RunScans(&bdb, scan));

  const std::string out_dir = test::NewTestDir("bench_smoke_out");
  const std::string path =
      WriteBenchTrajectory("smoke", &bdb, phases, out_dir);
  ASSERT_EQ(path, out_dir + "/BENCH_smoke.json");
  ASSERT_TRUE(Env::Default()->FileExists(path));

  std::string json = ReadWholeFile(path);
  ASSERT_FALSE(json.empty());
  ASSERT_TRUE(test::IsValidJson(json)) << json;

  // Required top-level and nested keys of schema v1.
  const char* required[] = {
      "\"schema_version\":",  "\"workload\":\"smoke\"", "\"engine\":",
      "\"ts_micros\":",       "\"environment\":",       "\"cores\":",
      "\"build_type\":",      "\"sanitizer\":",         "\"bench_scale\":",
      "\"params\":",          "\"phases\":[",           "\"latency_us\":",
      "\"totals\":",          "\"stalls\":",            "\"write_stalls\":",
      "\"engine_metrics\":"};
  for (const char* key : required) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  }
  EXPECT_EQ(static_cast<int>(NumAfter(json, "", "schema_version")),
            kBenchJsonSchemaVersion);

  // In-engine write-latency percentiles: non-zero, monotone, below max.
  const std::string h = "\"write_latency_us\":";
  ASSERT_NE(json.find(h), std::string::npos) << json;
  const double p50 = NumAfter(json, h, "p50");
  const double p95 = NumAfter(json, h, "p95");
  const double p99 = NumAfter(json, h, "p99");
  const double p999 = NumAfter(json, h, "p999");
  const double hmax = NumAfter(json, h, "max");
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, hmax);

  // The load phase writes every byte at least once: write_amp >= 1. The
  // driver-side histogram saw one sample per op.
  const std::string load_phase = "\"phase\":\"load\"";
  EXPECT_GE(NumAfter(json, load_phase, "write_amp"), 1.0);
  EXPECT_GE(NumAfter(json, load_phase, "ops"), 3000.0);

  // Run totals cover all phases.
  EXPECT_GE(NumAfter(json, "\"totals\":", "ops"),
            static_cast<double>(3000 + 4000 + 50));
  EXPECT_GT(NumAfter(json, "\"totals\":", "ops_per_sec"), 0.0);
}

// Schema v2 additions, exercised through the concurrent-write driver used
// by bench_scalability: phases[] entries carry "threads" and params
// carries "write_shards", so the scalability trajectory can be read back
// without guessing thread counts from phase names.
TEST(BenchSmokeTest, ConcurrentWriteSchemaV2Holds) {
  const std::string root = test::NewTestDir("bench_smoke_conc");
  Options opt;
  opt.write_buffer_size = 64 * 1024;
  opt.write_shards = 4;
  BenchDb bdb(Engine::kUniKV, opt, root);

  std::vector<PhaseResult> phases;
  ConcurrentWriteSpec spec;
  spec.phase = "conc_t1";
  spec.threads = 1;
  spec.total_ops = 1000;
  phases.push_back(RunConcurrentWrites(&bdb, spec));

  spec.phase = "conc_t4";
  spec.threads = 4;
  spec.key_base = 1'000'000;
  phases.push_back(RunConcurrentWrites(&bdb, spec));

  const std::string out_dir = test::NewTestDir("bench_smoke_conc_out");
  const std::string path =
      WriteBenchTrajectory("smoke_conc", &bdb, phases, out_dir);
  std::string json = ReadWholeFile(path);
  ASSERT_FALSE(json.empty());
  ASSERT_TRUE(test::IsValidJson(json)) << json;

  EXPECT_EQ(static_cast<int>(NumAfter(json, "", "schema_version")),
            kBenchJsonSchemaVersion);
  EXPECT_EQ(static_cast<int>(NumAfter(json, "\"params\":", "write_shards")),
            4);
  // Each phase entry reports the thread count that drove it, and every op
  // landed: the two phases wrote disjoint key ranges.
  EXPECT_EQ(static_cast<int>(NumAfter(json, "\"phase\":\"conc_t1\"",
                                      "threads")),
            1);
  EXPECT_EQ(static_cast<int>(NumAfter(json, "\"phase\":\"conc_t4\"",
                                      "threads")),
            4);
  EXPECT_GE(NumAfter(json, "\"phase\":\"conc_t4\"", "ops"), 1000.0);
  EXPECT_GT(NumAfter(json, "\"phase\":\"conc_t4\"", "ops_per_sec"), 0.0);
}

// Schema v3 additions, exercised through the MultiGet driver used by
// bench_read: phases[] entries carry "batch" (0 for non-batched phases,
// the batch size for MultiGet phases, whose ops count keys), and the
// embedded engine metrics carry the batched-read histograms/counters.
TEST(BenchSmokeTest, MultiGetSchemaV3Holds) {
  const std::string root = test::NewTestDir("bench_smoke_mget");
  Options opt;
  opt.write_buffer_size = 64 * 1024;
  opt.unsorted_limit = 256 * 1024;
  opt.sorted_table_size = 64 * 1024;
  BenchDb bdb(Engine::kUniKV, opt, root);

  std::vector<PhaseResult> phases;
  LoadSpec load;
  load.num_keys = 2000;
  load.value_size = 256;  // > separation threshold: values go to the logs.
  phases.push_back(RunLoad(&bdb, load));

  PointReadSpec get;
  get.phase = "get_zipfian";
  get.num_ops = 1000;
  get.key_space = load.num_keys;
  get.dist = Distribution::kZipfian;
  get.value_size = 256;
  phases.push_back(RunPointReads(&bdb, get));

  MultiGetSpec mget;
  mget.phase = "mget_zipfian_b64";
  mget.num_keys = 2000;
  mget.batch = 64;
  mget.key_space = load.num_keys;
  mget.dist = Distribution::kZipfian;
  phases.push_back(RunMultiGet(&bdb, mget));

  const std::string out_dir = test::NewTestDir("bench_smoke_mget_out");
  const std::string path =
      WriteBenchTrajectory("smoke_mget", &bdb, phases, out_dir);
  std::string json = ReadWholeFile(path);
  ASSERT_FALSE(json.empty());
  ASSERT_TRUE(test::IsValidJson(json)) << json;

  EXPECT_EQ(static_cast<int>(NumAfter(json, "", "schema_version")),
            kBenchJsonSchemaVersion);
  EXPECT_EQ(static_cast<int>(
                NumAfter(json, "\"phase\":\"get_zipfian\"", "batch")),
            0);
  EXPECT_EQ(static_cast<int>(
                NumAfter(json, "\"phase\":\"mget_zipfian_b64\"", "batch")),
            64);
  // MultiGet phase ops count keys (rounded up to whole batches).
  EXPECT_GE(NumAfter(json, "\"phase\":\"mget_zipfian_b64\"", "ops"), 2000.0);
  EXPECT_GT(NumAfter(json, "\"phase\":\"mget_zipfian_b64\"", "kops_per_sec"),
            0.0);

  // Batched-read metrics surface in the embedded engine metrics; zipfian
  // batches over log-resident values always share spans, so the
  // coalescing counters must be non-zero.
  EXPECT_NE(json.find("\"multiget_latency_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"multiget_keys_per_batch\":"), std::string::npos);
  EXPECT_GT(NumAfter(json, "\"engine_metrics\":", "multigets"), 0.0);
  EXPECT_GT(
      NumAfter(json, "\"engine_metrics\":", "multiget_coalesced_reads"),
      0.0);
  EXPECT_GT(
      NumAfter(json, "\"engine_metrics\":", "multiget_io_bytes_saved"),
      0.0);
}

// Schema v4 additions, exercised through the scan driver used by
// bench_trajectory's scan workload: params carries "scan_merge_limit"
// and "enable_anchor_view", and a scan phase over a multi-table
// UnsortedStore drives the anchor view (scan_anchor_hits > 0 in the
// embedded engine metrics).
TEST(BenchSmokeTest, ScanSchemaV4Holds) {
  const std::string root = test::NewTestDir("bench_smoke_scan");
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 64 * 1024 * 1024;  // Keep tables stacked.
  opt.scan_merge_limit = 100000;          // No scan-merge mid-test.
  BenchDb bdb(Engine::kUniKV, opt, root);

  std::vector<PhaseResult> phases;
  LoadSpec load;
  load.num_keys = 3000;
  load.value_size = 256;
  phases.push_back(RunLoad(&bdb, load));

  // RunLoad settles with CompactAll, which drains the UnsortedStore (and
  // retires the view). Stack fresh overlapping unsorted tables on top of
  // the merged base so the scans below actually exercise the view.
  for (uint64_t i = 0; i < load.num_keys; i++) {
    uint64_t id = (i * 977) % load.num_keys;
    ASSERT_TRUE(bdb.db()
                    ->Put(WriteOptions(), KeyGenerator::Key(id), "refill")
                    .ok());
    if (i % 300 == 299) {
      ASSERT_TRUE(bdb.db()->FlushMemTable().ok());
    }
  }

  ScanSpec scan;
  scan.phase = "scan_view";
  scan.num_ops = 50;
  scan.scan_len = 50;
  scan.key_space = load.num_keys;
  phases.push_back(RunScans(&bdb, scan));

  const std::string out_dir = test::NewTestDir("bench_smoke_scan_out");
  const std::string path =
      WriteBenchTrajectory("smoke_scan", &bdb, phases, out_dir);
  std::string json = ReadWholeFile(path);
  ASSERT_FALSE(json.empty());
  ASSERT_TRUE(test::IsValidJson(json)) << json;

  EXPECT_EQ(static_cast<int>(NumAfter(json, "", "schema_version")),
            kBenchJsonSchemaVersion);
  EXPECT_EQ(static_cast<int>(
                NumAfter(json, "\"params\":", "scan_merge_limit")),
            100000);
  EXPECT_NE(json.find("\"enable_anchor_view\":true"), std::string::npos)
      << json;
  // Scan ops count entries returned; starts drawn near the end of the
  // key space return short, so only a floor is guaranteed.
  EXPECT_GT(NumAfter(json, "\"phase\":\"scan_view\"", "ops"), 0.0);

  // The tiny write buffer stacks well over two overlapping unsorted
  // tables, so the scans must have gone through the anchor view.
  EXPECT_GT(NumAfter(json, "\"engine_metrics\":", "scan_anchor_hits"), 0.0);
  EXPECT_GT(NumAfter(json, "\"engine_metrics\":", "anchor_view_builds"),
            0.0);
}

}  // namespace
}  // namespace bench
}  // namespace unikv
