#ifndef UNIKV_TESTS_TEST_UTIL_H_
#define UNIKV_TESTS_TEST_UTIL_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/env.h"
#include "util/random.h"

namespace unikv {
namespace test {

/// Binaries that compile the same test source twice (the TSan/ASan
/// variants) must not share scratch directories with their unsanitized
/// twin: ctest runs them in parallel, and two live DB instances in one
/// directory sweep each other's files. The sanitizer targets define a
/// distinguishing tag.
#ifndef UNIKV_TEST_DIR_TAG
#define UNIKV_TEST_DIR_TAG ""
#endif

/// Returns a fresh scratch directory path for the calling test (removed
/// first if it already exists).
inline std::string NewTestDir(const std::string& name) {
  const char* base = std::getenv("TEST_TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/unikv_test_" UNIKV_TEST_DIR_TAG + name;
  // Best-effort: a stale survivor or pre-existing dir shows up as test
  // failures with far better messages than an abort here would give.
  (void)RemoveDirRecursively(Env::Default(), dir);
  (void)Env::Default()->CreateDir(dir);
  return dir;
}

/// Deterministic key of fixed width: "key0000001234".
inline std::string TestKey(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%010llu",
                static_cast<unsigned long long>(i));
  return buf;
}

/// Deterministic value derived from (i, len).
inline std::string TestValue(uint64_t i, size_t len = 64) {
  Random rnd(static_cast<uint32_t>(i * 2654435761u + 1));
  std::string v;
  v.reserve(len);
  for (size_t j = 0; j < len; j++) {
    v.push_back(static_cast<char>('a' + rnd.Uniform(26)));
  }
  return v;
}

/// Minimal recursive-descent JSON validity checker used by the metrics /
/// event-logger tests. Accepts any single JSON value; no semantic checks.
class JsonChecker {
 public:
  static bool Valid(const std::string& s) {
    JsonChecker c(s);
    c.SkipWs();
    if (!c.Value()) return false;
    c.SkipWs();
    return c.pos_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    pos_++;  // '{'
    SkipWs();
    if (Peek() == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      pos_++;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    pos_++;  // '['
    SkipWs();
    if (Peek() == ']') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    pos_++;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') {
        pos_++;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        pos_++;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; i++) {
            pos_++;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      pos_++;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') pos_++;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) pos_++;
    if (Peek() == '.') {
      pos_++;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) pos_++;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      pos_++;
      if (Peek() == '+' || Peek() == '-') pos_++;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) pos_++;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      pos_++;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

inline bool IsValidJson(const std::string& s) { return JsonChecker::Valid(s); }

}  // namespace test
}  // namespace unikv

#endif  // UNIKV_TESTS_TEST_UTIL_H_
