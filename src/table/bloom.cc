#include "table/bloom.h"

#include "util/hash.h"

namespace unikv {

static uint32_t BloomHash(const Slice& key) {
  return Hash(key.data(), key.size(), 0xbc9f1d34);
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // ln(2) * bits/key rounded; clamp to [1, 30].
  k_ = static_cast<int>(bits_per_key * 0.69);
  if (k_ < 1) k_ = 1;
  if (k_ > 30) k_ = 30;
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(BloomHash(key));
}

void BloomFilterBuilder::Finish(std::string* dst) {
  size_t n = hashes_.size();
  size_t bits = n * bits_per_key_;
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  const size_t init_size = dst->size();
  dst->resize(init_size + bytes, 0);
  dst->push_back(static_cast<char>(k_));  // k stored at the end.
  char* array = &(*dst)[init_size];
  for (uint32_t h : hashes_) {
    // Double hashing: rotate delta.
    const uint32_t delta = (h >> 17) | (h << 15);
    for (int j = 0; j < k_; j++) {
      const uint32_t bitpos = h % bits;
      array[bitpos / 8] |= (1 << (bitpos % 8));
      h += delta;
    }
  }
  hashes_.clear();
}

bool BloomFilterMayMatch(const Slice& key, const Slice& bloom_filter) {
  const size_t len = bloom_filter.size();
  if (len < 2) return false;

  const char* array = bloom_filter.data();
  const size_t bits = (len - 1) * 8;

  const int k = array[len - 1];
  if (k > 30) {
    // Reserved for potentially new encodings: treat as a match.
    return true;
  }

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % bits;
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace unikv
