// Experiment T2 — YCSB core workloads A-F.
//
// Paper: standard YCSB setup, zipfian theta=0.99, after a load phase.
// Expected shape: UniKV leads or matches on A/B/C/D/F; E (scan heavy)
// stays within the LeveledLSM ballpark thanks to the scan optimizations.

#include <cstdio>

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("ycsb");
  const uint64_t kKeys = Scaled(20000);
  const size_t kValueSize = 1024;

  PrintTableHeader("T2 YCSB (kops/s), dataset " + std::to_string(kKeys) +
                       " x 1KiB, zipfian 0.99",
                   {"workload", "UniKV", "LeveledLSM", "TieredLSM"});
  for (char workload : {'A', 'B', 'C', 'D', 'E', 'F'}) {
    std::vector<std::string> row;
    row.push_back(std::string(1, workload));
    for (Engine engine :
         {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
      BenchDb bdb(engine, BenchOptions(), root);
      LoadSpec load;
      load.num_keys = kKeys;
      load.value_size = kValueSize;
      RunLoad(&bdb, load);

      YcsbRunSpec spec;
      spec.workload = workload;
      spec.num_ops = workload == 'E' ? Scaled(3000) : Scaled(20000);
      spec.key_space = kKeys;
      spec.value_size = kValueSize;
      PhaseResult r = RunYcsb(&bdb, spec);
      row.push_back(Fmt(r.kops_per_sec));
      PrintPhasePerf(EngineName(engine), r);
      std::string dumped = DumpMetricsJson(&bdb);
      if (!dumped.empty()) {
        std::printf("  [metrics] %s\n", dumped.c_str());
      }
    }
    PrintTableRow(row);
  }
  return 0;
}
