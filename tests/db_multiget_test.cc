// Batched read path (DB::MultiGet, DESIGN.md §11): differential checks
// against looped Get and a golden map across shards, partitions, and
// inline-vs-separated values; per-key NotFound statuses; snapshot
// consistency under concurrent writers (one pinned sequence per batch);
// and on-disk value-log corruption surfacing in the right per-key Status.
// A TSan-instrumented twin of this binary runs in tier-1 ctest.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/db.h"
#include "mem/write_batch.h"
#include "test_util.h"
#include "util/random.h"

namespace unikv {
namespace {

Options SmallOptions() {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.partition_size_limit = 4 * 1024 * 1024;
  opt.sorted_table_size = 64 * 1024;
  return opt;
}

class DbMultiGetTest : public testing::Test {
 protected:
  void OpenDb(const Options& opt, const std::string& suffix = "") {
    dir_ = test::NewTestDir("db_multiget_test" + suffix);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }

  // Loads a store whose keys span every resolution tier the read path
  // has: SortedStore with separated values (+ value logs), SortedStore
  // inline values, UnsortedStore tables, live memtables, deletions, and
  // overwritten generations. `golden_` tracks the expected live state.
  void LoadTieredStore() {
    // Tier 1: separated (256B > threshold) and inline (32B) values, merged
    // into the SortedStore by CompactAll.
    for (int i = 0; i < 1000; i++) {
      const size_t vsize = (i % 4 == 0) ? 32 : 256;
      Put(i, 0, vsize);
    }
    ASSERT_TRUE(db_->CompactAll().ok());
    // Tier 2: overwrites/deletes flushed into UnsortedStore tables.
    for (int i = 500; i < 1500; i++) {
      if (i % 3 == 0) {
        Delete(i);
      } else {
        Put(i, 1, (i % 2 == 0) ? 48 : 200);
      }
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
    // Tier 3: the freshest generation stays in the shard memtables.
    for (int i = 1200; i < 1700; i++) {
      Put(i, 2, 100);
    }
  }

  void Put(int i, int gen, size_t vsize) {
    const std::string key = test::TestKey(i);
    const std::string value =
        test::TestValue(static_cast<uint64_t>(i) * 17 + gen, vsize);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    golden_[key] = value;
  }

  void Delete(int i) {
    const std::string key = test::TestKey(i);
    ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    golden_.erase(key);
  }

  // MultiGet over `ids` must agree key-by-key with both looped Get and
  // the golden map (values for present keys, NotFound for absent ones).
  void CheckBatch(const std::vector<int>& ids, int parallelism = 1) {
    std::vector<std::string> key_bufs;
    key_bufs.reserve(ids.size());
    for (int id : ids) key_bufs.push_back(test::TestKey(id));
    std::vector<Slice> keys(key_bufs.begin(), key_bufs.end());

    ReadOptions ro;
    ro.multiget_parallelism = parallelism;
    std::vector<std::string> values;
    std::vector<Status> statuses;
    ASSERT_TRUE(db_->MultiGet(ro, keys, &values, &statuses).ok());
    ASSERT_EQ(values.size(), keys.size());
    ASSERT_EQ(statuses.size(), keys.size());

    for (size_t i = 0; i < keys.size(); i++) {
      auto it = golden_.find(key_bufs[i]);
      std::string got;
      Status gs = db_->Get(ReadOptions(), keys[i], &got);
      if (it == golden_.end()) {
        EXPECT_TRUE(statuses[i].IsNotFound()) << key_bufs[i];
        EXPECT_TRUE(gs.IsNotFound()) << key_bufs[i];
      } else {
        ASSERT_TRUE(statuses[i].ok())
            << key_bufs[i] << ": " << statuses[i].ToString();
        EXPECT_EQ(values[i], it->second) << key_bufs[i];
        ASSERT_TRUE(gs.ok()) << key_bufs[i];
        EXPECT_EQ(values[i], got) << key_bufs[i];
      }
    }
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
  std::map<std::string, std::string> golden_;
};

TEST_F(DbMultiGetTest, DifferentialAcrossTiersAndBatchSizes) {
  Options opt = SmallOptions();
  opt.write_shards = 4;
  OpenDb(opt);
  LoadTieredStore();

  // Shuffled ids spanning every tier plus absent ranges, with duplicates
  // (a zipfian batch repeats hot keys; duplicates must overlap-merge in
  // the coalescer, not corrupt each other).
  Random rnd(20260808);
  std::vector<int> ids;
  for (int i = 0; i < 1900; i++) {
    ids.push_back(i);
    if (rnd.Uniform(8) == 0) ids.push_back(i);  // Duplicate.
  }
  for (size_t i = ids.size(); i > 1; i--) {
    std::swap(ids[i - 1], ids[rnd.Uniform(static_cast<uint32_t>(i))]);
  }

  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, size_t{333}}) {
    for (size_t base = 0; base < ids.size(); base += batch) {
      const size_t end = std::min(base + batch, ids.size());
      CheckBatch(std::vector<int>(ids.begin() + base, ids.begin() + end));
    }
  }
}

TEST_F(DbMultiGetTest, PerKeyNotFoundAndEmptyBatch) {
  OpenDb(SmallOptions(), "_nf");
  for (int i = 0; i < 100; i++) Put(i, 0, 256);
  ASSERT_TRUE(db_->CompactAll().ok());
  Delete(50);

  std::vector<std::string> key_bufs = {
      test::TestKey(10), test::TestKey(5000),  // Never written.
      test::TestKey(50),                       // Deleted.
      test::TestKey(99)};
  std::vector<Slice> keys(key_bufs.begin(), key_bufs.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  // Absent keys are per-key NotFound, not a batch error.
  ASSERT_TRUE(db_->MultiGet(ReadOptions(), keys, &values, &statuses).ok());
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].IsNotFound());
  EXPECT_TRUE(statuses[3].ok());
  EXPECT_EQ(values[0], golden_[key_bufs[0]]);
  EXPECT_EQ(values[3], golden_[key_bufs[3]]);

  ASSERT_TRUE(db_->MultiGet(ReadOptions(), {}, &values, &statuses).ok());
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());
}

TEST_F(DbMultiGetTest, ParallelPartitionGroupsStayCorrect) {
  // Force several partitions so multiget_parallelism > 1 actually fans
  // partition groups across the reader pool.
  Options opt = SmallOptions();
  opt.partition_size_limit = 256 * 1024;
  opt.write_shards = 4;
  OpenDb(opt, "_par");
  for (int i = 0; i < 3000; i++) Put(i, 0, 256);
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string num_parts;
  ASSERT_TRUE(db_->GetProperty("db.num-partitions", &num_parts));
  EXPECT_GT(std::stoi(num_parts), 1) << "split thresholds changed?";

  Random rnd(7);
  std::vector<int> ids;
  for (int i = 0; i < 3200; i++) ids.push_back(i);
  for (size_t i = ids.size(); i > 1; i--) {
    std::swap(ids[i - 1], ids[rnd.Uniform(static_cast<uint32_t>(i))]);
  }
  for (size_t base = 0; base < ids.size(); base += 256) {
    const size_t end = std::min(base + 256, ids.size());
    CheckBatch(std::vector<int>(ids.begin() + base, ids.begin() + end),
               /*parallelism=*/4);
  }
}

TEST_F(DbMultiGetTest, SnapshotConsistencyUnderConcurrentWriters) {
  // Two keys updated atomically in one WriteBatch must never come back
  // torn from a MultiGet: the batch pins one visible sequence for every
  // key. (Looped Gets have no such guarantee — each takes its own
  // snapshot, and a write landing between them shows a torn pair.)
  Options opt = SmallOptions();
  opt.write_shards = 1;  // One shard: visible_seq_ moves batch-at-a-time.
  OpenDb(opt, "_snap");

  const std::string kx = test::TestKey(1), ky = test::TestKey(2);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); i++) {
      WriteBatch batch;
      const std::string v = test::TestValue(static_cast<uint64_t>(i), 64);
      batch.Put(kx, v);
      batch.Put(ky, v);
      ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
    }
  });

  // On a single core the reader can burn through its whole loop before
  // the writer thread is first scheduled; wait for the first batch to
  // become visible, and yield periodically so the two threads interleave.
  std::string v;
  while (!db_->Get(ReadOptions(), kx, &v).ok()) {
    Env::Default()->SleepForMicroseconds(1000);
  }

  std::vector<Slice> keys = {Slice(kx), Slice(ky)};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  for (int iter = 0; iter < 3000; iter++) {
    ASSERT_TRUE(db_->MultiGet(ReadOptions(), keys, &values, &statuses).ok());
    ASSERT_TRUE(statuses[0].ok())
        << "batch saw one key of an atomic write but not the other";
    ASSERT_TRUE(statuses[1].ok())
        << "batch saw one key of an atomic write but not the other";
    EXPECT_EQ(values[0], values[1]) << "torn read of an atomic batch";
    if (iter % 64 == 0) Env::Default()->SleepForMicroseconds(100);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST_F(DbMultiGetTest, CorruptVlogRecordSurfacesPerKeyStatus) {
  OpenDb(SmallOptions(), "_corrupt");
  for (int i = 0; i < 400; i++) Put(i, 0, 256);  // Separated values.
  ASSERT_TRUE(db_->CompactAll().ok());

  // Flip one byte every ~1500 bytes of every value log: a fraction of the
  // records fail their checksum, the rest stay intact.
  std::vector<std::string> files;
  ASSERT_TRUE(Env::Default()->GetChildren(dir_, &files).ok());
  int corrupted_logs = 0;
  for (const std::string& f : files) {
    if (f.size() < 5 || f.substr(f.size() - 5) != ".vlog") continue;
    const std::string path = dir_ + "/" + f;
    std::FILE* fp = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, 0, SEEK_END);
    const long size = std::ftell(fp);
    for (long off = 700; off < size; off += 1500) {
      std::fseek(fp, off, SEEK_SET);
      int c = std::fgetc(fp);
      std::fseek(fp, off, SEEK_SET);
      std::fputc(c ^ 0x5a, fp);
    }
    std::fclose(fp);
    corrupted_logs++;
  }
  ASSERT_GT(corrupted_logs, 0) << "expected separated values in .vlog files";

  std::vector<std::string> key_bufs;
  for (int i = 0; i < 400; i++) key_bufs.push_back(test::TestKey(i));
  std::vector<Slice> keys(key_bufs.begin(), key_bufs.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  Status batch_status = db_->MultiGet(ReadOptions(), keys, &values, &statuses);

  // Every per-key status must match what a point Get sees: Corruption for
  // records a flipped byte landed in, OK (with the right value) for the
  // rest. The batch-level status reports the first real error.
  int corrupt = 0, ok = 0;
  for (size_t i = 0; i < keys.size(); i++) {
    std::string got;
    Status gs = db_->Get(ReadOptions(), keys[i], &got);
    ASSERT_EQ(statuses[i].ok(), gs.ok()) << key_bufs[i];
    if (statuses[i].ok()) {
      EXPECT_EQ(values[i], got) << key_bufs[i];
      EXPECT_EQ(values[i], golden_[key_bufs[i]]) << key_bufs[i];
      ok++;
    } else {
      EXPECT_TRUE(statuses[i].IsCorruption()) << statuses[i].ToString();
      corrupt++;
    }
  }
  EXPECT_GT(corrupt, 0);
  EXPECT_GT(ok, 0);
  EXPECT_FALSE(batch_status.ok());
  EXPECT_TRUE(batch_status.IsCorruption());
}

}  // namespace
}  // namespace unikv
