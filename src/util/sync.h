#ifndef UNIKV_UTIL_SYNC_H_
#define UNIKV_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang Thread Safety Analysis (DESIGN.md §13).
//
// The macros below expand to clang's capability attributes when the
// compiler supports them and to nothing everywhere else, so annotated
// code builds identically under gcc. Under clang with -Wthread-safety
// (the UNIKV_ANALYZE=ON build, enforced by scripts/check_static.sh) the
// locking contracts they express — which mutex guards which field, which
// methods require or exclude a lock — become compile errors instead of
// prose in DESIGN.md.
//
// Every mutex in the engine must be a unikv::Mutex from this header; raw
// std::mutex / std::lock_guard / std::unique_lock are rejected by the
// raw-mutex lint in scripts/check_static.sh (tier-1) because the analysis
// cannot see through unannotated wrappers.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define UNIKV_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef UNIKV_THREAD_ANNOTATION
#define UNIKV_THREAD_ANNOTATION(x)  // Not clang: compiles away.
#endif

// A type that acts as a lock (unikv::Mutex below).
#define CAPABILITY(x) UNIKV_THREAD_ANNOTATION(capability(x))
// An RAII type whose lifetime equals a critical section (MutexLock).
#define SCOPED_CAPABILITY UNIKV_THREAD_ANNOTATION(scoped_lockable)

// Field annotations: the named mutex must be held to touch the field
// (GUARDED_BY) or the data it points to (PT_GUARDED_BY).
#define GUARDED_BY(x) UNIKV_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) UNIKV_THREAD_ANNOTATION(pt_guarded_by(x))

// Function contracts: caller must hold the capability (REQUIRES), must
// NOT hold it (EXCLUDES — e.g. "no I/O under mu_"), or the function
// itself acquires/releases it (ACQUIRE/RELEASE, TRY_ACQUIRE).
#define REQUIRES(...) UNIKV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  UNIKV_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) UNIKV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ACQUIRE(...) UNIKV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) UNIKV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  UNIKV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) UNIKV_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) UNIKV_THREAD_ANNOTATION(lock_returned(x))
#define ACQUIRED_BEFORE(...) \
  UNIKV_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) UNIKV_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Escape hatch for flow the analysis cannot follow (e.g. a lock handed
// across threads). Every use must carry a comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS \
  UNIKV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace unikv {

class CondVar;

/// A std::mutex the analysis can see: Lock/Unlock are annotated, and
/// AssertHeld() documents (and, under clang, *checks*) "caller must hold
/// this" at the top of internal helpers.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  /// No-op at runtime; under analysis, asserts the capability is held.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Condition variable bound to one Mutex for its lifetime. Callers must
/// hold that mutex around Wait()/TimedWait* (exactly as with
/// std::condition_variable); predicates become explicit while-loops:
///
///   while (!ready_) cv_.Wait();
///
/// Wait() releases and reacquires the bound mutex, so from the analysis'
/// point of view the lock set is unchanged across the call.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until signalled or `timeout` elapses (lost-wakeup-window
  /// bounding, as the background workers use it). Returns true if
  /// signalled before the deadline.
  template <class Rep, class Period>
  bool TimedWaitFor(const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const bool signalled = cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();
    return signalled;
  }

  /// Waits until signalled or the deadline passes.
  template <class Clock, class Duration>
  void TimedWaitUntil(const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait_until(lock, deadline);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

/// Scoped critical section. Relockable: Unlock()/Lock() support the
/// drop-the-lock-around-I/O pattern the install paths use, and the
/// destructor releases only if held — all visible to the analysis
/// (clang models re-acquirable scoped capabilities).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily leave the critical section (e.g. for I/O).
  void Unlock() RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  /// Re-enter it.
  void Lock() ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_;
};

}  // namespace unikv

#endif  // UNIKV_UTIL_SYNC_H_
