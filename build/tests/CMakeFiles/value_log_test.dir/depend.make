# Empty dependencies file for value_log_test.
# This may be replaced when dependencies are built.
