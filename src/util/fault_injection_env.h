#ifndef UNIKV_UTIL_FAULT_INJECTION_ENV_H_
#define UNIKV_UTIL_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/sync.h"

namespace unikv {

/// The mutating Env calls the fault-injection Env can intercept. Read-only
/// calls are always forwarded untouched.
enum class FaultOp : int {
  kAppend = 0,
  kFlush,
  kSync,
  kClose,
  kNewWritableFile,
  kNewAppendableFile,
  kRenameFile,
  kRemoveFile,
  kSyncDir,
  kNumOps,  // Sentinel; not a real operation.
};

const char* FaultOpName(FaultOp op);

/// An Env wrapper for deterministic fault-injection and crash testing.
/// Composable over any base Env (PosixEnv or MemEnv); the wrapper keeps its
/// own shadow of what would survive a power failure, so the base Env needs
/// no crash support of its own.
///
/// Three capabilities, per the crash-test harness design (DESIGN.md §crash
/// consistency):
///
///  1. FailAt(): fail the Nth mutating call matching (op, filename
///     substring) with an injected IOError, one-shot or sticky.
///  2. CrashAt() / CrashAtCallIndex(): simulate a power failure at a chosen
///     call. The triggering call fails without reaching the base Env and
///     the filesystem freezes — every later mutating call fails with
///     "crashed" until RecoverAfterCrash(), while reads still work so the
///     process can limp to shutdown. RecoverAfterCrash() then rewrites the
///     base filesystem to the durable state: unsynced renames are rolled
///     back (restoring any overwritten target), never-synced files are
///     deleted, and surviving files are truncated to their last-synced
///     length.
///  3. Counting and tracing: every mutating call gets a global index, so a
///     harness can run a workload once to learn N = TotalMutatingCalls(),
///     then re-run it N times crashing at each index in turn — enumerating
///     every fault point. The optional trace records (op, filename) per
///     call so tests can locate specific points (e.g. "the MANIFEST sync
///     right after the first vlog deletion").
///
/// Durability model (deliberately adversarial, each rule being the weakest
/// guarantee a POSIX filesystem provides):
///  - File data survives only up to the last successful Sync().
///  - A file created through this Env survives only if it was ever synced.
///  - A rename survives only once its parent directory is SyncDir()ed;
///    until then a crash reverts it (and resurrects an overwritten target).
///  - RemoveFile is durable immediately (deleting early is never safe).
///  - Files that predate the wrapper (never opened for write through it)
///    are treated as fully durable.
///
/// Crashing *before* call i+1 is equivalent to crashing *after* call i, so
/// iterating the pre-call crash over [0, N) covers every call boundary.
/// Flush is interceptable by FailAt but not counted: it only moves data
/// from user space to OS cache, so a crash at a Flush is indistinguishable
/// from one at the preceding Append.
///
/// Thread-safe. All open file handles must be destroyed (e.g. the DB
/// closed) before calling RecoverAfterCrash().
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base);
  ~FaultInjectionEnv() override;

  FaultInjectionEnv(const FaultInjectionEnv&) = delete;
  FaultInjectionEnv& operator=(const FaultInjectionEnv&) = delete;

  // ---- Fault programming --------------------------------------------------

  /// Arms a rule: the nth (0-based) future call whose operation is `op` and
  /// whose filename contains `pattern` fails with an injected IOError
  /// ("injected fault"). With `sticky`, every later matching call fails too.
  void FailAt(FaultOp op, const std::string& pattern, uint64_t nth,
              bool sticky = false);

  /// Arms a crash: the nth (0-based) future call matching (op, pattern)
  /// triggers a simulated power failure (see class comment).
  void CrashAt(FaultOp op, const std::string& pattern, uint64_t nth);

  /// Arms a crash keyed on the global counted-call index instead of an
  /// (op, pattern) match: the call whose index would be `index` (0-based,
  /// as counted by TotalMutatingCalls()) triggers the crash.
  void CrashAtCallIndex(uint64_t index);

  /// Disarms all FailAt/CrashAt rules. Does not unfreeze a crashed env.
  void ClearFaults();

  // ---- Counting / tracing -------------------------------------------------

  /// Calls of `op` seen so far (counted ops only; Flush is never counted).
  uint64_t CallCount(FaultOp op) const;
  /// Total counted mutating calls seen so far.
  uint64_t TotalMutatingCalls() const;
  /// Zeroes all counters and clears the trace.
  void ResetCounters();

  struct CallRecord {
    FaultOp op;
    std::string filename;  // For RenameFile this is "src -> target", so a
                           // pattern can match either side.
  };
  void EnableTrace(bool enable);
  std::vector<CallRecord> Trace() const;

  // ---- Crash state --------------------------------------------------------

  bool crashed() const;

  /// Brings the "machine" back up: rewrites the base Env to the durable
  /// state described in the class comment and unfreezes the filesystem.
  /// Counters, trace and armed rules are left untouched. Requires all
  /// wrapper file handles to have been destroyed.
  Status RecoverAfterCrash();

  // ---- Env interface ------------------------------------------------------

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  Status SyncDir(const std::string& dirname) override;
  uint64_t NowMicros() override;
  void SleepForMicroseconds(int micros) override;

 private:
  friend class FaultWritableFile;

  /// What the wrapper believes would survive a crash for one tracked file
  /// (a file opened for write through this Env).
  struct FileState {
    uint64_t size = 0;         // Current logical size.
    uint64_t synced_size = 0;  // Durable prefix.
    bool ever_synced = false;  // False: the file itself vanishes on crash.
  };

  /// One not-yet-durable rename, so RecoverAfterCrash can undo it. The
  /// previous content of an overwritten target is saved for resurrection.
  struct RenameRecord {
    std::string from;
    std::string to;
    bool had_target = false;
    std::string target_content;
    bool target_tracked = false;
    FileState target_state;
    bool from_tracked = false;
    FileState from_state;
  };

  struct FaultRule {
    FaultOp op;
    std::string pattern;
    uint64_t remaining;  // Matches to skip before firing.
    bool sticky;
    bool crash;
    bool spent = false;
  };

  /// Gate every mutating call goes through: applies freeze, counts, traces,
  /// and evaluates armed rules. Returns non-OK if the call must fail
  /// without reaching the base Env. `counted` is false for Flush.
  Status CheckMutatingCall(FaultOp op, const std::string& fname, bool counted);
  void TriggerCrashLocked() REQUIRES(mu_);
  static std::string DirOf(const std::string& fname);
  Status ReadFileToString(const std::string& fname, uint64_t limit,
                          std::string* out);
  Status WriteStringToFile(const std::string& fname, const std::string& data);

  Env* const base_;

  mutable Mutex mu_;
  bool crashed_ GUARDED_BY(mu_) = false;
  bool trace_enabled_ GUARDED_BY(mu_) = false;
  uint64_t total_calls_ GUARDED_BY(mu_) = 0;
  uint64_t crash_at_index_ GUARDED_BY(mu_) = UINT64_MAX;
  uint64_t op_counts_[static_cast<int>(FaultOp::kNumOps)] GUARDED_BY(mu_) = {};
  std::vector<FaultRule> rules_ GUARDED_BY(mu_);
  std::vector<CallRecord> trace_ GUARDED_BY(mu_);
  std::map<std::string, FileState> files_ GUARDED_BY(mu_);
  std::vector<RenameRecord> rename_journal_ GUARDED_BY(mu_);
};

}  // namespace unikv

#endif  // UNIKV_UTIL_FAULT_INJECTION_ENV_H_
