#ifndef UNIKV_TABLE_FORMAT_H_
#define UNIKV_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace unikv {

class RandomAccessFile;

/// BlockHandle is a pointer to the extent of a file that stores a data
/// block or a meta block.
class BlockHandle {
 public:
  /// Maximum encoding length of a BlockHandle.
  enum { kMaxEncodedLength = 10 + 10 };

  BlockHandle() : offset_(~static_cast<uint64_t>(0)),
                  size_(~static_cast<uint64_t>(0)) {}

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }

  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, offset_);
    PutVarint64(dst, size_);
  }

  Status DecodeFrom(Slice* input) {
    if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
      return Status::OK();
    }
    return Status::Corruption("bad block handle");
  }

 private:
  uint64_t offset_;
  uint64_t size_;
};

/// Footer encapsulates the fixed information stored at the tail of every
/// table file: filter-block handle, index-block handle, magic.
class Footer {
 public:
  enum { kEncodedLength = 2 * BlockHandle::kMaxEncodedLength + 8 };

  Footer() = default;

  const BlockHandle& filter_handle() const { return filter_handle_; }
  void set_filter_handle(const BlockHandle& h) { filter_handle_ = h; }

  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle filter_handle_;
  BlockHandle index_handle_;
};

static const uint64_t kTableMagicNumber = 0x756e696b76746c62ull;  // "unikvtlb"

/// 1-byte compression type + 4-byte crc trailer after each block.
static const size_t kBlockTrailerSize = 5;

struct BlockContents {
  Slice data;
  bool cachable;        // True iff data can be cached.
  bool heap_allocated;  // True iff caller should delete[] data.data().
};

/// Reads the block identified by `handle` from `file`, verifying the crc.
Status ReadBlock(RandomAccessFile* file, const BlockHandle& handle,
                 BlockContents* result);

}  // namespace unikv

#endif  // UNIKV_TABLE_FORMAT_H_
