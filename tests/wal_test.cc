// WAL record format tests: round trips, block-boundary fragmentation,
// corruption detection, and torn-tail (crash) handling.

#include <gtest/gtest.h>

#include <memory>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/env.h"
#include "util/random.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace unikv {
namespace log {
namespace {

class WalTest : public testing::Test {
 protected:
  WalTest() : env_(NewMemEnv()) {
    env_->CreateDir("/wal");
    Reset();
  }

  void Reset() {
    env_->NewWritableFile("/wal/log", &dest_);
    writer_ = std::make_unique<Writer>(dest_.get());
  }

  void Write(const std::string& msg) {
    ASSERT_TRUE(writer_->AddRecord(Slice(msg)).ok());
  }

  // Reads all records back; appends "EOF" at the end.
  std::vector<std::string> ReadAll(size_t* dropped_bytes = nullptr) {
    struct Reporter : public Reader::Reporter {
      size_t dropped = 0;
      void Corruption(size_t bytes, const Status&) override {
        dropped += bytes;
      }
    };
    Reporter reporter;
    std::unique_ptr<SequentialFile> src;
    env_->NewSequentialFile("/wal/log", &src);
    Reader reader(src.get(), &reporter, true);
    std::vector<std::string> out;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      out.push_back(record.ToString());
    }
    if (dropped_bytes != nullptr) *dropped_bytes = reporter.dropped;
    return out;
  }

  // Direct byte surgery on the backing file.
  void CorruptByte(size_t offset) {
    uint64_t size;
    env_->GetFileSize("/wal/log", &size);
    std::unique_ptr<SequentialFile> src;
    env_->NewSequentialFile("/wal/log", &src);
    std::string contents(size, 0);
    Slice data;
    src->Read(size, &data, contents.data());
    contents.assign(data.data(), data.size());
    contents[offset] ^= 0x40;
    env_->NewWritableFile("/wal/log", &dest_);
    dest_->Append(contents);
  }

  void TruncateTo(size_t new_size) {
    std::unique_ptr<SequentialFile> src;
    env_->NewSequentialFile("/wal/log", &src);
    std::string contents(new_size, 0);
    Slice data;
    src->Read(new_size, &data, contents.data());
    contents.assign(data.data(), data.size());
    env_->NewWritableFile("/wal/log", &dest_);
    dest_->Append(contents);
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<WritableFile> dest_;
  std::unique_ptr<Writer> writer_;
};

TEST_F(WalTest, Empty) { EXPECT_TRUE(ReadAll().empty()); }

TEST_F(WalTest, SmallRecords) {
  Write("foo");
  Write("bar");
  Write("");
  Write("xxxx");
  auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("foo", records[0]);
  EXPECT_EQ("bar", records[1]);
  EXPECT_EQ("", records[2]);
  EXPECT_EQ("xxxx", records[3]);
}

TEST_F(WalTest, RecordSpanningBlocks) {
  // > 32 KiB records must fragment into FIRST/MIDDLE/LAST.
  std::string big1(100000, 'a');
  std::string big2(2 * kBlockSize, 'b');
  Write("head");
  Write(big1);
  Write(big2);
  Write("tail");
  auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("head", records[0]);
  EXPECT_EQ(big1, records[1]);
  EXPECT_EQ(big2, records[2]);
  EXPECT_EQ("tail", records[3]);
}

TEST_F(WalTest, RecordExactlyFillingTrailer) {
  // Force a record to end exactly kHeaderSize short of a block boundary,
  // leaving a zero-filled trailer the reader must skip.
  Write(std::string(kBlockSize - 2 * kHeaderSize, 'x'));
  Write("next-block");
  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("next-block", records[1]);
}

TEST_F(WalTest, ManyRandomSizes) {
  Random rnd(42);
  std::vector<std::string> expected;
  for (int i = 0; i < 300; i++) {
    std::string record(rnd.Skewed(16), static_cast<char>('a' + (i % 26)));
    expected.push_back(record);
    Write(record);
  }
  auto records = ReadAll();
  ASSERT_EQ(expected.size(), records.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(expected[i], records[i]) << i;
  }
}

TEST_F(WalTest, ChecksumMismatchDetected) {
  Write("first-record-payload");
  Write("second");
  CorruptByte(kHeaderSize + 3);  // Flip a payload byte of record 1.
  size_t dropped = 0;
  auto records = ReadAll(&dropped);
  // The reader reports corruption and skips the rest of the damaged
  // block (both records live in block 0 here).
  EXPECT_TRUE(records.empty());
  EXPECT_GT(dropped, 0u);
}

TEST_F(WalTest, CorruptionConfinedToOneBlock) {
  // Records in later blocks survive a corrupted first block.
  Write(std::string(kBlockSize, 'a'));  // Spans into block 1.
  Write("survivor-lives-in-block-1");
  CorruptByte(kHeaderSize + 3);  // Damage block 0.
  size_t dropped = 0;
  auto records = ReadAll(&dropped);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("survivor-lives-in-block-1", records[0]);
  EXPECT_GT(dropped, 0u);
}

TEST_F(WalTest, TornTailIsSilentlyDropped) {
  Write("committed");
  Write(std::string(1000, 'z'));
  uint64_t size;
  env_->GetFileSize("/wal/log", &size);
  TruncateTo(size - 500);  // Crash mid-record.
  size_t dropped = 0;
  auto records = ReadAll(&dropped);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("committed", records[0]);
  EXPECT_EQ(0u, dropped);  // A torn tail is expected, not corruption.
}

TEST_F(WalTest, TruncatedHeaderAtEof) {
  Write("committed");
  uint64_t size;
  env_->GetFileSize("/wal/log", &size);
  TruncateTo(size + 0);  // No-op.
  // Append a partial header.
  dest_->Append(Slice("\x01\x02\x03", 3));
  auto records = ReadAll();
  ASSERT_EQ(1u, records.size());
}

TEST_F(WalTest, TornFinalRecordMidHeader) {
  // Crash after only part of the last record's *header* reached disk.
  Write("committed-one");
  Write("committed-two");
  uint64_t size_before;
  env_->GetFileSize("/wal/log", &size_before);
  Write("torn-away");
  TruncateTo(size_before + 4);  // 4 of 7 header bytes.
  size_t dropped = 0;
  auto records = ReadAll(&dropped);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("committed-one", records[0]);
  EXPECT_EQ("committed-two", records[1]);
  EXPECT_EQ(0u, dropped);  // A torn tail is a crash artifact, not corruption.
}

TEST_F(WalTest, BitFlipSweepNeverResurrectsOrHangs) {
  // Flip one bit at a time across the whole log. Whatever the reader
  // returns must be an in-order subsequence of the original records —
  // a flipped CRC/length/payload may drop records (reported as
  // corruption) but must never invent, reorder, or duplicate one, and
  // the read loop must terminate.
  std::vector<std::string> originals;
  for (int i = 0; i < 20; i++) {
    originals.push_back("record-" + std::to_string(i) + "-" +
                        std::string(40 + i * 13, static_cast<char>('a' + i)));
    Write(originals.back());
  }
  uint64_t size;
  env_->GetFileSize("/wal/log", &size);
  std::string pristine = [&] {
    std::unique_ptr<SequentialFile> src;
    env_->NewSequentialFile("/wal/log", &src);
    std::string contents(size, 0);
    Slice data;
    src->Read(size, &data, contents.data());
    return data.ToString();
  }();

  for (size_t offset = 0; offset < pristine.size(); offset += 97) {
    std::string mutated = pristine;
    mutated[offset] ^= 0x10;
    env_->NewWritableFile("/wal/log", &dest_);
    dest_->Append(mutated);

    size_t dropped = 0;
    auto records = ReadAll(&dropped);
    // Subsequence check: each returned record matches the next unmatched
    // original (a flipped payload byte fails its CRC, so a *modified*
    // record can never be returned).
    size_t oi = 0;
    for (const std::string& r : records) {
      while (oi < originals.size() && originals[oi] != r) oi++;
      ASSERT_LT(oi, originals.size())
          << "flip at " << offset << " resurrected or altered a record";
      oi++;
    }
    if (records.size() < originals.size()) {
      EXPECT_GT(dropped, 0u) << "silent record loss, flip at " << offset;
    }
  }
}

TEST_F(WalTest, GarbageTrailingBytesAreBoundedAndReported) {
  // A crafted garbage record: plausible small length field but a CRC that
  // cannot match. The reader must report it and keep the good prefix.
  Write("good-one");
  Write("good-two");
  std::string garbage;
  garbage += "\xde\xad\xbe\xef";  // CRC (wrong).
  garbage += static_cast<char>(3);  // Length lo.
  garbage += static_cast<char>(0);  // Length hi.
  garbage += static_cast<char>(1);  // kFullType.
  garbage += "abc";
  dest_->Append(garbage);
  uint64_t size;
  env_->GetFileSize("/wal/log", &size);
  size_t dropped = 0;
  auto records = ReadAll(&dropped);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("good-one", records[0]);
  EXPECT_EQ("good-two", records[1]);
  EXPECT_GT(dropped, 0u);
  EXPECT_LE(dropped, size);  // The report is bounded by the file itself.
}

TEST_F(WalTest, RandomGarbageTailDoesNotCrashOrLoop) {
  Write("alpha");
  Write("beta");
  Write("gamma");
  std::string garbage(3000, '\xa5');  // Looks like huge length fields.
  dest_->Append(garbage);
  size_t dropped = 0;
  auto records = ReadAll(&dropped);  // Termination is the core assertion.
  ASSERT_EQ(3u, records.size());
  EXPECT_EQ("alpha", records[0]);
  EXPECT_EQ("gamma", records[2]);
}

TEST_F(WalTest, WriterLatchesFirstError) {
  // After a failed append the writer must refuse later records: their
  // on-disk position after a torn fragment would be undefined.
  class FailingFile : public WritableFile {
   public:
    Status Append(const Slice&) override {
      writes++;
      if (fail) return Status::IOError("injected");
      return Status::OK();
    }
    Status Close() override { return Status::OK(); }
    Status Flush() override { return Status::OK(); }
    Status Sync() override { return Status::OK(); }
    bool fail = false;
    int writes = 0;
  };
  FailingFile file;
  Writer writer(&file);
  ASSERT_TRUE(writer.AddRecord("ok").ok());
  file.fail = true;
  ASSERT_FALSE(writer.AddRecord("boom").ok());
  file.fail = false;
  int writes_before = file.writes;
  EXPECT_FALSE(writer.AddRecord("after").ok());  // Sticky.
  EXPECT_EQ(writes_before, file.writes);  // Nothing reached the file.
}

TEST_F(WalTest, ReopenedWriterContinuesAtOffset) {
  Write("one");
  uint64_t size;
  env_->GetFileSize("/wal/log", &size);
  // Simulate reopening the log for append.
  std::unique_ptr<WritableFile> append_file;
  env_->NewAppendableFile("/wal/log", &append_file);
  Writer writer2(append_file.get(), size);
  ASSERT_TRUE(writer2.AddRecord("two").ok());
  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("one", records[0]);
  EXPECT_EQ("two", records[1]);
}

}  // namespace
}  // namespace log
}  // namespace unikv
