// Engine comparison: runs the same message-queue-style workload (append-
// heavy writes, tail reads, occasional catch-up scans) against UniKV and
// the two baseline LSM engines built on the same substrates, printing
// throughput and I/O amplification side by side — a miniature of the
// paper's headline experiment you can point at your own workload.
//
//   ./build/examples/engine_comparison [root_dir]

#include <cstdio>
#include <memory>
#include <string>

#include "baseline/baselines.h"
#include "benchutil/driver.h"

using unikv::bench::BenchDb;
using unikv::bench::Engine;
using unikv::bench::EngineName;

namespace {

std::string TopicKey(int topic, uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "topic%02d/%012llu", topic,
                static_cast<unsigned long long>(seq));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root =
      argc > 1 ? argv[1] : "/tmp/unikv_engine_comparison";

  unikv::Options options;
  options.write_buffer_size = 1 << 20;
  options.unsorted_limit = 4 << 20;
  options.max_bytes_for_level_base = 8 << 20;

  std::printf("%-12s %-14s %-12s %-14s %-12s\n", "engine", "write kops/s",
              "write amp", "read kops/s", "scan ms");
  for (Engine engine :
       {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
    BenchDb bdb(engine, options, root);
    unikv::DB* db = bdb.db();
    unikv::Env* env = unikv::Env::Default();

    // Producers append to 8 topics; consumers overwrite cursor records.
    const int kTopics = 8;
    const uint64_t kMessages = 30000;
    std::string payload(512, 'm');
    uint64_t user_bytes = 0;
    uint64_t t0 = env->NowMicros();
    for (uint64_t i = 0; i < kMessages; i++) {
      int topic = static_cast<int>(i % kTopics);
      std::string key = TopicKey(topic, i / kTopics);
      if (!db->Put(unikv::WriteOptions(), key, payload).ok()) return 1;
      user_bytes += key.size() + payload.size();
      if (i % 64 == 0) {
        if (!db->Put(unikv::WriteOptions(),
                     "cursor/" + std::to_string(topic),
                     std::to_string(i))
                 .ok()) {
          return 1;
        }
        user_bytes += 20;
      }
    }
    if (!db->CompactAll().ok()) return 1;
    double write_secs = (env->NowMicros() - t0) / 1e6;
    double write_amp =
        static_cast<double>(bdb.io()->bytes_written.load()) / user_bytes;

    // Tail reads: recent messages per topic.
    t0 = env->NowMicros();
    std::string value;
    uint64_t reads = 0;
    for (int round = 0; round < 2000; round++) {
      int topic = round % kTopics;
      uint64_t tail = kMessages / kTopics - 1 - (round % 100);
      if (db->Get(unikv::ReadOptions(), TopicKey(topic, tail), &value)
              .ok()) {
        reads++;
      }
    }
    double read_secs = (env->NowMicros() - t0) / 1e6;

    // Catch-up scan: replay one topic from an old cursor.
    t0 = env->NowMicros();
    std::vector<std::pair<std::string, std::string>> replay;
    if (!db->Scan(unikv::ReadOptions(), TopicKey(3, 100), 1000, &replay)
             .ok()) {
      return 1;
    }
    double scan_ms = (env->NowMicros() - t0) / 1e3;

    std::printf("%-12s %-14.1f %-12.2f %-14.1f %-12.1f\n",
                EngineName(engine), kMessages / write_secs / 1000.0,
                write_amp, reads / read_secs / 1000.0, scan_ms);
  }
  std::printf("engine_comparison OK\n");
  return 0;
}
