#include "util/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace unikv {

// ---------------------------------------------------- ConcurrentHistogram

void ConcurrentHistogram::Add(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  hist_.Add(value);
}

void ConcurrentHistogram::Merge(const Histogram& other) {
  std::lock_guard<std::mutex> lock(mu_);
  hist_.Merge(other);
}

Histogram ConcurrentHistogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hist_;
}

void ConcurrentHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  hist_.Clear();
}

// ------------------------------------------------------------ JsonBuilder

void JsonBuilder::AppendEscaped(std::string* dst, const Slice& s) {
  dst->push_back('"');
  for (size_t i = 0; i < s.size(); i++) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        dst->append("\\\"");
        break;
      case '\\':
        dst->append("\\\\");
        break;
      case '\n':
        dst->append("\\n");
        break;
      case '\r':
        dst->append("\\r");
        break;
      case '\t':
        dst->append("\\t");
        break;
      default:
        if (c < 0x20 || c >= 0x7F) {
          // Escape control and non-ASCII bytes; user keys are arbitrary
          // binary and must not corrupt the JSON line.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          dst->append(buf);
        } else {
          dst->push_back(static_cast<char>(c));
        }
    }
  }
  dst->push_back('"');
}

void JsonBuilder::Key(const Slice& key) {
  if (!first_) out_.push_back(',');
  first_ = false;
  AppendEscaped(&out_, key);
  out_.push_back(':');
}

void JsonBuilder::AddUint(const Slice& key, uint64_t v) {
  Key(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_.append(buf);
}

void JsonBuilder::AddInt(const Slice& key, int64_t v) {
  Key(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_.append(buf);
}

void JsonBuilder::AddDouble(const Slice& key, double v) {
  Key(key);
  if (!std::isfinite(v)) {
    out_.append("0");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_.append(buf);
}

void JsonBuilder::AddBool(const Slice& key, bool v) {
  Key(key);
  out_.append(v ? "true" : "false");
}

void JsonBuilder::AddString(const Slice& key, const Slice& v) {
  Key(key);
  AppendEscaped(&out_, v);
}

void JsonBuilder::AddRaw(const Slice& key, const Slice& raw) {
  Key(key);
  out_.append(raw.data(), raw.size());
}

std::string JsonBuilder::Finish() {
  out_.push_back('}');
  return std::move(out_);
}

// -------------------------------------------------------- MetricsRegistry

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

ConcurrentHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<ConcurrentHistogram>();
  return slot.get();
}

size_t MetricsRegistry::NumCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size();
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-28s %" PRIu64 "\n", name.c_str(),
                  c->Value());
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%-28s %" PRId64 "\n", name.c_str(),
                  g->Value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    Histogram snap = h->Snapshot();
    if (snap.Count() == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-28s count=%" PRIu64 " avg=%.1f p50=%.1f p99=%.1f"
                  " max=%.1f\n",
                  name.c_str(), snap.Count(), snap.Average(),
                  snap.Percentile(50), snap.Percentile(99), snap.Max());
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonBuilder counters;
  for (const auto& [name, c] : counters_) {
    counters.AddUint(name, c->Value());
  }
  JsonBuilder gauges;
  for (const auto& [name, g] : gauges_) {
    gauges.AddInt(name, g->Value());
  }
  JsonBuilder hists;
  for (const auto& [name, h] : histograms_) {
    Histogram snap = h->Snapshot();
    JsonBuilder one;
    one.AddUint("count", snap.Count());
    one.AddDouble("avg", snap.Average());
    one.AddDouble("p50", snap.Percentile(50));
    one.AddDouble("p95", snap.Percentile(95));
    one.AddDouble("p99", snap.Percentile(99));
    one.AddDouble("max", snap.Count() > 0 ? snap.Max() : 0);
    hists.AddRaw(name, one.Finish());
  }
  JsonBuilder root;
  root.AddRaw("counters", counters.Finish());
  root.AddRaw("gauges", gauges.Finish());
  root.AddRaw("histograms", hists.Finish());
  return root.Finish();
}

}  // namespace unikv
