# Empty compiler generated dependencies file for unikv.
# This may be replaced when dependencies are built.
