file(REMOVE_RECURSE
  "CMakeFiles/db_iterator_test.dir/db_iterator_test.cc.o"
  "CMakeFiles/db_iterator_test.dir/db_iterator_test.cc.o.d"
  "db_iterator_test"
  "db_iterator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
