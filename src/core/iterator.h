#ifndef UNIKV_CORE_ITERATOR_H_
#define UNIKV_CORE_ITERATOR_H_

#include <functional>

#include "util/slice.h"
#include "util/status.h"

namespace unikv {

/// An iterator yields a sequence of key/value pairs from a source.
/// Implementations are not thread-safe; callers synchronize externally.
class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator();

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  /// True iff the iterator is positioned at a key/value pair.
  virtual bool Valid() const = 0;

  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  /// Positions at the first key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;

  /// Valid only while the iterator stays positioned (the slice may point
  /// into internal buffers invalidated by the next move).
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;

  /// Registers a function to run when this iterator is destroyed (used to
  /// release pinned resources such as cache handles or versions).
  void RegisterCleanup(std::function<void()> fn);

 private:
  struct Cleanup {
    std::function<void()> fn;
    Cleanup* next = nullptr;
  };
  Cleanup* cleanup_head_ = nullptr;
};

/// Returns an empty iterator with the given status.
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace unikv

#endif  // UNIKV_CORE_ITERATOR_H_
