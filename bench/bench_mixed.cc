// Experiment F9 — Mixed read/write ratio sweep (the paper's headline:
// total throughput under read-write mixed workloads).
//
// Expected shape: UniKV leads across the whole sweep because it combines
// the hash index's fast reads on hot data with log-structured writes;
// LeveledLSM loses on the write-heavy end (compaction), TieredLSM loses
// on the read-heavy end (many runs per lookup).

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("mixed");
  const uint64_t kKeys = Scaled(20000);
  const size_t kValueSize = 1024;

  PrintTableHeader("F9 mixed zipfian workload, ops=" +
                       std::to_string(Scaled(30000)),
                   {"read%", "UniKV", "LeveledLSM", "TieredLSM", "(kops/s)"});
  for (double read_fraction : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    std::vector<std::string> row;
    row.push_back(Fmt(read_fraction * 100, 0));
    for (Engine engine :
         {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
      BenchDb bdb(engine, BenchOptions(), root);
      LoadSpec load;
      load.num_keys = kKeys;
      load.value_size = kValueSize;
      RunLoad(&bdb, load);

      MixedSpec spec;
      spec.num_ops = Scaled(30000);
      spec.key_space = kKeys;
      spec.value_size = kValueSize;
      spec.read_fraction = read_fraction;
      PhaseResult r = RunMixed(&bdb, spec);
      row.push_back(Fmt(r.kops_per_sec));
    }
    row.push_back("");
    PrintTableRow(row);
  }
  return 0;
}
