// WAL record format tests: round trips, block-boundary fragmentation,
// corruption detection, and torn-tail (crash) handling.

#include <gtest/gtest.h>

#include <memory>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/env.h"
#include "util/random.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace unikv {
namespace log {
namespace {

class WalTest : public testing::Test {
 protected:
  WalTest() : env_(NewMemEnv()) {
    env_->CreateDir("/wal");
    Reset();
  }

  void Reset() {
    env_->NewWritableFile("/wal/log", &dest_);
    writer_ = std::make_unique<Writer>(dest_.get());
  }

  void Write(const std::string& msg) {
    ASSERT_TRUE(writer_->AddRecord(Slice(msg)).ok());
  }

  // Reads all records back; appends "EOF" at the end.
  std::vector<std::string> ReadAll(size_t* dropped_bytes = nullptr) {
    struct Reporter : public Reader::Reporter {
      size_t dropped = 0;
      void Corruption(size_t bytes, const Status&) override {
        dropped += bytes;
      }
    };
    Reporter reporter;
    std::unique_ptr<SequentialFile> src;
    env_->NewSequentialFile("/wal/log", &src);
    Reader reader(src.get(), &reporter, true);
    std::vector<std::string> out;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      out.push_back(record.ToString());
    }
    if (dropped_bytes != nullptr) *dropped_bytes = reporter.dropped;
    return out;
  }

  // Direct byte surgery on the backing file.
  void CorruptByte(size_t offset) {
    uint64_t size;
    env_->GetFileSize("/wal/log", &size);
    std::unique_ptr<SequentialFile> src;
    env_->NewSequentialFile("/wal/log", &src);
    std::string contents(size, 0);
    Slice data;
    src->Read(size, &data, contents.data());
    contents.assign(data.data(), data.size());
    contents[offset] ^= 0x40;
    env_->NewWritableFile("/wal/log", &dest_);
    dest_->Append(contents);
  }

  void TruncateTo(size_t new_size) {
    std::unique_ptr<SequentialFile> src;
    env_->NewSequentialFile("/wal/log", &src);
    std::string contents(new_size, 0);
    Slice data;
    src->Read(new_size, &data, contents.data());
    contents.assign(data.data(), data.size());
    env_->NewWritableFile("/wal/log", &dest_);
    dest_->Append(contents);
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<WritableFile> dest_;
  std::unique_ptr<Writer> writer_;
};

TEST_F(WalTest, Empty) { EXPECT_TRUE(ReadAll().empty()); }

TEST_F(WalTest, SmallRecords) {
  Write("foo");
  Write("bar");
  Write("");
  Write("xxxx");
  auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("foo", records[0]);
  EXPECT_EQ("bar", records[1]);
  EXPECT_EQ("", records[2]);
  EXPECT_EQ("xxxx", records[3]);
}

TEST_F(WalTest, RecordSpanningBlocks) {
  // > 32 KiB records must fragment into FIRST/MIDDLE/LAST.
  std::string big1(100000, 'a');
  std::string big2(2 * kBlockSize, 'b');
  Write("head");
  Write(big1);
  Write(big2);
  Write("tail");
  auto records = ReadAll();
  ASSERT_EQ(4u, records.size());
  EXPECT_EQ("head", records[0]);
  EXPECT_EQ(big1, records[1]);
  EXPECT_EQ(big2, records[2]);
  EXPECT_EQ("tail", records[3]);
}

TEST_F(WalTest, RecordExactlyFillingTrailer) {
  // Force a record to end exactly kHeaderSize short of a block boundary,
  // leaving a zero-filled trailer the reader must skip.
  Write(std::string(kBlockSize - 2 * kHeaderSize, 'x'));
  Write("next-block");
  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("next-block", records[1]);
}

TEST_F(WalTest, ManyRandomSizes) {
  Random rnd(42);
  std::vector<std::string> expected;
  for (int i = 0; i < 300; i++) {
    std::string record(rnd.Skewed(16), static_cast<char>('a' + (i % 26)));
    expected.push_back(record);
    Write(record);
  }
  auto records = ReadAll();
  ASSERT_EQ(expected.size(), records.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(expected[i], records[i]) << i;
  }
}

TEST_F(WalTest, ChecksumMismatchDetected) {
  Write("first-record-payload");
  Write("second");
  CorruptByte(kHeaderSize + 3);  // Flip a payload byte of record 1.
  size_t dropped = 0;
  auto records = ReadAll(&dropped);
  // The reader reports corruption and skips the rest of the damaged
  // block (both records live in block 0 here).
  EXPECT_TRUE(records.empty());
  EXPECT_GT(dropped, 0u);
}

TEST_F(WalTest, CorruptionConfinedToOneBlock) {
  // Records in later blocks survive a corrupted first block.
  Write(std::string(kBlockSize, 'a'));  // Spans into block 1.
  Write("survivor-lives-in-block-1");
  CorruptByte(kHeaderSize + 3);  // Damage block 0.
  size_t dropped = 0;
  auto records = ReadAll(&dropped);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("survivor-lives-in-block-1", records[0]);
  EXPECT_GT(dropped, 0u);
}

TEST_F(WalTest, TornTailIsSilentlyDropped) {
  Write("committed");
  Write(std::string(1000, 'z'));
  uint64_t size;
  env_->GetFileSize("/wal/log", &size);
  TruncateTo(size - 500);  // Crash mid-record.
  size_t dropped = 0;
  auto records = ReadAll(&dropped);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ("committed", records[0]);
  EXPECT_EQ(0u, dropped);  // A torn tail is expected, not corruption.
}

TEST_F(WalTest, TruncatedHeaderAtEof) {
  Write("committed");
  uint64_t size;
  env_->GetFileSize("/wal/log", &size);
  TruncateTo(size + 0);  // No-op.
  // Append a partial header.
  dest_->Append(Slice("\x01\x02\x03", 3));
  auto records = ReadAll();
  ASSERT_EQ(1u, records.size());
}

TEST_F(WalTest, ReopenedWriterContinuesAtOffset) {
  Write("one");
  uint64_t size;
  env_->GetFileSize("/wal/log", &size);
  // Simulate reopening the log for append.
  std::unique_ptr<WritableFile> append_file;
  env_->NewAppendableFile("/wal/log", &append_file);
  Writer writer2(append_file.get(), size);
  ASSERT_TRUE(writer2.AddRecord("two").ok());
  auto records = ReadAll();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("one", records[0]);
  EXPECT_EQ("two", records[1]);
}

}  // namespace
}  // namespace log
}  // namespace unikv
