// Experiment T1/F5 — Load (write) performance and write amplification.
//
// Paper: load a dataset of 1 KiB KV pairs into each store and compare
// write throughput and total device writes per user byte (GC/compaction
// cost included). Expected shape: UniKV and TieredLSM well above
// LeveledLSM in throughput and well below it in write amplification;
// UniKV's advantage comes from writing each value once into the logs
// instead of rewriting it per level.

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("load");
  const uint64_t kKeys = Scaled(30000);
  const size_t kValueSize = 1024;

  for (bool sequential : {true, false}) {
    PrintTableHeader(
        std::string("T1/F5 ") + (sequential ? "sequential" : "random") +
            " load, " + std::to_string(kKeys) + " x 1KiB",
        {"engine", "kops/s", "write_amp", "MB_written", "p99_us"});
    for (Engine engine :
         {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
      BenchDb bdb(engine, BenchOptions(), root);
      LoadSpec spec;
      spec.num_keys = kKeys;
      spec.value_size = kValueSize;
      spec.sequential = sequential;
      PhaseResult r = RunLoad(&bdb, spec);
      PrintTableRow({EngineName(engine), Fmt(r.kops_per_sec),
                     Fmt(r.write_amp, 2), Fmt(r.bytes_written / 1048576.0),
                     Fmt(r.latency_us.Percentile(99), 0)});
    }
  }
  return 0;
}
