#include "util/coding.h"

#include <gtest/gtest.h>

#include <vector>

namespace unikv {
namespace {

TEST(Coding, Fixed32) {
  std::string s;
  for (uint32_t v = 0; v < 100000; v += 997) {
    PutFixed32(&s, v);
  }
  const char* p = s.data();
  for (uint32_t v = 0; v < 100000; v += 997) {
    EXPECT_EQ(v, DecodeFixed32(p));
    p += sizeof(uint32_t);
  }
}

TEST(Coding, Fixed64) {
  std::string s;
  for (int power = 0; power <= 63; power++) {
    uint64_t v = static_cast<uint64_t>(1) << power;
    PutFixed64(&s, v - 1);
    PutFixed64(&s, v);
    PutFixed64(&s, v + 1);
  }
  const char* p = s.data();
  for (int power = 0; power <= 63; power++) {
    uint64_t v = static_cast<uint64_t>(1) << power;
    EXPECT_EQ(v - 1, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v, DecodeFixed64(p));
    p += 8;
    EXPECT_EQ(v + 1, DecodeFixed64(p));
    p += 8;
  }
}

TEST(Coding, EncodingIsLittleEndian) {
  std::string dst;
  PutFixed32(&dst, 0x04030201);
  EXPECT_EQ(0x01, static_cast<int>(dst[0]));
  EXPECT_EQ(0x02, static_cast<int>(dst[1]));
  EXPECT_EQ(0x03, static_cast<int>(dst[2]));
  EXPECT_EQ(0x04, static_cast<int>(dst[3]));
}

TEST(Coding, Varint32) {
  std::string s;
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t v = (i / 32) << (i % 32);
    PutVarint32(&s, v);
  }
  const char* p = s.data();
  const char* limit = p + s.size();
  for (uint32_t i = 0; i < (32 * 32); i++) {
    uint32_t expected = (i / 32) << (i % 32);
    uint32_t actual;
    p = GetVarint32Ptr(p, limit, &actual);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(expected, actual);
  }
  EXPECT_EQ(p, limit);
}

TEST(Coding, Varint64) {
  std::vector<uint64_t> values = {0, 100, ~static_cast<uint64_t>(0),
                                  ~static_cast<uint64_t>(0) - 1};
  for (uint32_t k = 0; k < 64; k++) {
    const uint64_t power = 1ull << k;
    values.push_back(power);
    values.push_back(power - 1);
    values.push_back(power + 1);
  }
  std::string s;
  for (uint64_t v : values) {
    PutVarint64(&s, v);
  }
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(expected, actual);
  }
  EXPECT_TRUE(input.empty());
}

TEST(Coding, Varint32Overflow) {
  uint32_t result;
  std::string input("\x81\x82\x83\x84\x85\x11");
  EXPECT_EQ(GetVarint32Ptr(input.data(), input.data() + input.size(),
                           &result),
            nullptr);
}

TEST(Coding, Varint32Truncation) {
  uint32_t large_value = (1u << 31) + 100;
  std::string s;
  PutVarint32(&s, large_value);
  uint32_t result;
  for (size_t len = 0; len < s.size() - 1; len++) {
    EXPECT_EQ(GetVarint32Ptr(s.data(), s.data() + len, &result), nullptr);
  }
  EXPECT_NE(GetVarint32Ptr(s.data(), s.data() + s.size(), &result), nullptr);
  EXPECT_EQ(large_value, result);
}

TEST(Coding, Varint64Truncation) {
  uint64_t large_value = (1ull << 63) + 100ull;
  std::string s;
  PutVarint64(&s, large_value);
  uint64_t result;
  for (size_t len = 0; len < s.size() - 1; len++) {
    EXPECT_EQ(GetVarint64Ptr(s.data(), s.data() + len, &result), nullptr);
  }
  EXPECT_NE(GetVarint64Ptr(s.data(), s.data() + s.size(), &result), nullptr);
  EXPECT_EQ(large_value, result);
}

TEST(Coding, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("foo"));
  PutLengthPrefixedSlice(&s, Slice("bar"));
  PutLengthPrefixedSlice(&s, Slice(std::string(200, 'x')));

  Slice input(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("foo", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ("bar", v.ToString());
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &v));
  EXPECT_EQ(std::string(200, 'x'), v.ToString());
  EXPECT_TRUE(input.empty());
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(Coding, LengthPrefixedSliceUnderflow) {
  std::string s;
  PutVarint32(&s, 100);  // Claims 100 bytes follow...
  s.append("short");     // ...but only 5 do.
  Slice input(s);
  Slice v;
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &v));
}

TEST(Coding, VarintLength) {
  EXPECT_EQ(1, VarintLength(0));
  EXPECT_EQ(1, VarintLength(127));
  EXPECT_EQ(2, VarintLength(128));
  EXPECT_EQ(5, VarintLength(0xFFFFFFFFull));
  EXPECT_EQ(10, VarintLength(~0ull));
}

class VarintWidthTest : public testing::TestWithParam<int> {};

TEST_P(VarintWidthTest, EncodedLengthMatchesVarintLength) {
  uint64_t v = (GetParam() == 0) ? 0 : (1ull << (GetParam() - 1));
  std::string s;
  PutVarint64(&s, v);
  EXPECT_EQ(VarintLength(v), static_cast<int>(s.size()));
}

INSTANTIATE_TEST_SUITE_P(AllWidths, VarintWidthTest, testing::Range(0, 64));

}  // namespace
}  // namespace unikv
