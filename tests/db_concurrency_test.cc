// Concurrency tests: multiple writer threads (group commit), readers
// racing background merges/GC/splits, and iterators racing writers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/db.h"
#include "test_util.h"
#include "util/env.h"
#include "util/random.h"

namespace unikv {
namespace {

Options BusyOptions() {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.partition_size_limit = 1 * 1024 * 1024;
  opt.sorted_table_size = 32 * 1024;
  opt.gc_garbage_threshold = 128 * 1024;
  return opt;
}

class DbConcurrencyTest : public testing::Test {
 protected:
  void Open(const std::string& name) {
    dir_ = test::NewTestDir(name);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(BusyOptions(), dir_, &raw).ok());
    db_.reset(raw);
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbConcurrencyTest, ParallelWritersAllLand) {
  Open("conc_writers");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1500;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([this, t, &failures] {
      for (int i = 0; i < kPerThread; i++) {
        std::string key = test::TestKey(t * kPerThread + i);
        if (!db_->Put(WriteOptions(), key, test::TestValue(i, 128)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(0, failures.load());
  ASSERT_TRUE(db_->CompactAll().ok());
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 37) {
      std::string key = test::TestKey(t * kPerThread + i);
      std::string value;
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok())
          << key;
      EXPECT_EQ(test::TestValue(i, 128), value);
    }
  }
}

TEST_F(DbConcurrencyTest, ReadersRaceWritersAndCompactions) {
  Open("conc_readers");
  // Seed a baseline every reader can rely on.
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), "stable").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; r++) {
    readers.emplace_back([this, r, &done, &violations] {
      Random rnd(r * 7 + 1);
      std::string value;
      while (!done.load(std::memory_order_acquire)) {
        // Baseline keys 0..999 must always resolve to a value: either
        // "stable" or a later overwrite. A miss or error is a violation.
        std::string key = test::TestKey(rnd.Uniform(1000));
        Status s = db_->Get(ReadOptions(), key, &value);
        if (!s.ok()) {
          violations.fetch_add(1);
        }
      }
    });
  }

  // Writer churns new keys and overwrites baseline ones, driving
  // flushes, merges, splits and GC underneath the readers.
  Random rnd(99);
  for (int i = 0; i < 8000; i++) {
    if (rnd.OneIn(4)) {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(rnd.Uniform(1000)),
                           test::TestValue(i, 256))
                      .ok());
    } else {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(1000 + i),
                           test::TestValue(i, 256))
                      .ok());
    }
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(0, violations.load());
}

TEST_F(DbConcurrencyTest, IteratorsRaceWriters) {
  Open("conc_iters");
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i * 2), "seed").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread scanner([this, &done, &violations] {
    while (!done.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
      std::string prev;
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        std::string key = iter->key().ToString();
        if (!prev.empty() && prev >= key) {
          violations.fetch_add(1);  // Must stay strictly sorted.
        }
        prev = key;
      }
      if (!iter->status().ok()) {
        violations.fetch_add(1);
      }
    }
  });

  Random rnd(5);
  for (int i = 0; i < 6000; i++) {
    std::string key = test::TestKey(rnd.Uniform(4000));
    if (rnd.OneIn(6)) {
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else {
      ASSERT_TRUE(db_->Put(WriteOptions(), key,
                           test::TestValue(i, 64 + rnd.Uniform(512)))
                      .ok());
    }
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  done.store(true, std::memory_order_release);
  scanner.join();
  EXPECT_EQ(0, violations.load());
}

TEST_F(DbConcurrencyTest, GroupCommitBatchesConcurrentWrites) {
  Open("conc_group");
  // Many tiny concurrent writes: correctness matters here, batching is
  // the mechanism. Mixed sync/async writers exercise the group-commit
  // boundary handling.
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; t++) {
    threads.emplace_back([this, t] {
      WriteOptions wo;
      wo.sync = (t % 3 == 0);
      for (int i = 0; i < 400; i++) {
        WriteBatch batch;
        batch.Put(test::TestKey(t * 1000 + i), "g");
        batch.Put(test::TestKey(t * 1000 + i + 500), "h");
        ASSERT_TRUE(db_->Write(wo, &batch).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 6; t++) {
    std::string value;
    ASSERT_TRUE(
        db_->Get(ReadOptions(), test::TestKey(t * 1000 + 399), &value).ok());
    EXPECT_EQ("g", value);
    ASSERT_TRUE(
        db_->Get(ReadOptions(), test::TestKey(t * 1000 + 899), &value).ok());
    EXPECT_EQ("h", value);
  }
}

// Regression for a use-after-free between manual flush and concurrent
// writers: FlushMemTable used to rotate the memtable directly under mu_,
// swapping wal_/mem_ while a group-commit leader was appending to the old
// WAL with mu_ released. The fix routes the rotation through the writer
// queue as a null-batch sentinel, so it serializes with group commit like
// any other write. Run under TSAN (db_concurrency_tsan_test) this test
// reports the race on pre-fix code; without TSAN it still crashes often.
TEST_F(DbConcurrencyTest, ManualFlushRacesConcurrentWriters) {
  Open("conc_manual_flush");
  constexpr int kThreads = 4;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  int written[kThreads] = {0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([this, t, &done, &failures, &written] {
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        std::string key = test::TestKey(t * 1000000 + i);
        if (!db_->Put(WriteOptions(), key, test::TestValue(i, 64)).ok()) {
          failures.fetch_add(1);
          break;
        }
        i++;
      }
      written[t] = i;
    });
  }
  // Each call forces a WAL rotation racing the writers' group commit.
  // Writers are joined before any assertion so a failure can't destroy
  // joinable threads (std::terminate would mask the real diagnostic).
  Status flush_status;
  for (int f = 0; f < 100 && flush_status.ok(); f++) {
    flush_status = db_->FlushMemTable();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  ASSERT_TRUE(flush_status.ok()) << flush_status.ToString();
  EXPECT_EQ(0, failures.load());
  // Every acked write must still be readable across the 100 rotations.
  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < written[t]; i += 97) {
      std::string key = test::TestKey(t * 1000000 + i);
      const Status gs = db_->Get(ReadOptions(), key, &value);
      ASSERT_TRUE(gs.ok()) << key << ": " << gs.ToString();
      EXPECT_EQ(test::TestValue(i, 64), value);
    }
  }
}

// --------------------------------------------------------------- overlap

// Forwards to a base Env but, while armed, turns appends to .sst/.vlog
// files into a rendezvous: the first background job to append parks
// inside the call (bounded wait) until a second job is also mid-append,
// and `max_in_flight` records the peak. Two jobs inside .sst/.vlog
// appends at once is direct proof the scheduler overlaps independent
// work — no wall-clock windows involved, so the proof cannot flake on a
// slow or single-CPU host (a sleeping first arriver yields the CPU to
// whichever worker owns the second job). WAL, manifest and EVENTS writes
// are not wrapped so the foreground isn't stalled.
class RendezvousEnv : public Env {
 public:
  explicit RendezvousEnv(Env* base) : base_(base) {}

  std::atomic<bool> armed{false};
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  // Park attempts are rationed: if the scheduler really serializes (the
  // regression this test exists to catch), every lone append would park
  // and the test would crawl; after the budget it free-runs and the
  // max_in_flight assertion reports the failure.
  std::atomic<int> park_budget{10};

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::unique_ptr<WritableFile> file;
    Status s = base_->NewWritableFile(fname, &file);
    if (!s.ok()) return s;
    if (fname.ends_with(".sst") || fname.ends_with(".vlog")) {
      *result = std::make_unique<RendezvousFile>(this, std::move(file));
    } else {
      *result = std::move(file);
    }
    return s;
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override {
    return base_->NewAppendableFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status SyncDir(const std::string& dirname) override {
    return base_->SyncDir(dirname);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }
  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

 private:
  class RendezvousFile : public WritableFile {
   public:
    RendezvousFile(RendezvousEnv* env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}
    Status Append(const Slice& data) override {
      if (!env_->armed.load(std::memory_order_acquire)) {
        return base_->Append(data);
      }
      const int cur = env_->in_flight.fetch_add(1) + 1;
      int prev = env_->max_in_flight.load();
      while (cur > prev &&
             !env_->max_in_flight.compare_exchange_weak(prev, cur)) {
      }
      if (cur >= 2) {
        // Pairing witnessed; nobody needs to park anymore.
        env_->armed.store(false, std::memory_order_release);
      } else if (env_->park_budget.fetch_sub(1,
                                             std::memory_order_relaxed) > 0) {
        // Lone arriver: park (bounded) until a peer is also mid-append —
        // the peer's own entry records max_in_flight >= 2 and disarms.
        for (int spin = 0; spin < 1000; spin++) {
          if (!env_->armed.load(std::memory_order_acquire) ||
              env_->in_flight.load(std::memory_order_acquire) >= 2) {
            break;
          }
          env_->SleepForMicroseconds(1000);
        }
      }
      Status s = base_->Append(data);
      env_->in_flight.fetch_sub(1);
      return s;
    }
    Status Close() override { return base_->Close(); }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override { return base_->Sync(); }

   private:
    RendezvousEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  Env* base_;
};

// Pulls `"key":<uint>` out of one EVENTS JSON line. A needle with the
// leading quote can't accidentally match `"new_partition"` when asked
// for `"partition"`.
bool FindUintField(const std::string& line, const std::string& key,
                   uint64_t* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

// The headline scheduler test: drive the store to several partitions,
// then trigger maintenance everywhere at once and prove two background
// jobs were *simultaneously* inside table/vlog appends via an Env-level
// rendezvous (an event-count witness, not a wall-clock window — the old
// timestamp-overlap version flaked whenever the host was slow enough to
// serialize short jobs). The EVENTS log then confirms the overlapping
// work spanned at least two distinct partitions. With a single-thread
// background loop the rendezvous never pairs and this fails.
TEST_F(DbConcurrencyTest, BackgroundJobsOverlapAcrossPartitions) {
  RendezvousEnv env(Env::Default());
  Options opt = BusyOptions();
  opt.env = &env;
  opt.partition_size_limit = 192 * 1024;
  opt.background_threads = 3;
  dir_ = test::NewTestDir("conc_overlap");
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
  db_.reset(raw);

  // Phase 1 (delays off): grow to at least three partitions so there is
  // genuinely parallel per-partition work to schedule.
  int partitions = 0;
  for (int round = 0; round < 10 && partitions < 3; round++) {
    for (int i = 0; i < 1200; i++) {
      uint64_t k = (static_cast<uint64_t>(round) * 1200 + i) * 7919 % 100000;
      ASSERT_TRUE(
          db_->Put(WriteOptions(), test::TestKey(k), test::TestValue(k, 256))
              .ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
    std::string np;
    ASSERT_TRUE(db_->GetProperty("db.num-partitions", &np));
    partitions = std::stoi(np);
  }
  ASSERT_GE(partitions, 3);

  // Phase 2: fresh updates into every partition, flushed quietly, so the
  // final CompactAll has a per-partition merge pending everywhere. Only
  // then arm the rendezvous: the first merge's append parks until a
  // second worker's merge is also mid-append.
  for (int i = 0; i < 600; i++) {
    uint64_t k = static_cast<uint64_t>(i) * 7919 % 100000;
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(k), test::TestValue(k + 1, 256))
            .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  const uint64_t phase2_start = Env::Default()->NowMicros();
  env.armed.store(true, std::memory_order_release);
  ASSERT_TRUE(db_->CompactAll().ok());
  env.armed.store(false, std::memory_order_release);
  db_.reset();  // Close so EVENTS is complete.

  EXPECT_GE(env.max_in_flight.load(), 2)
      << "no two background jobs were ever inside table/vlog appends "
         "simultaneously; the scheduler is serializing independent work";

  // The overlapping work must span partitions: the jobs' own EVENTS log
  // (ts_micros is stamped at completion, so phase-2 jobs are the lines
  // with ts >= phase2_start) shows merges in >= 2 distinct partitions.
  std::set<uint64_t> merged_partitions;
  std::ifstream events(dir_ + "/EVENTS");
  ASSERT_TRUE(events.is_open());
  std::string line;
  while (std::getline(events, line)) {
    uint64_t ts = 0, dur = 0, pid = 0;
    if (!FindUintField(line, "ts_micros", &ts) ||
        !FindUintField(line, "duration_micros", &dur) ||
        !FindUintField(line, "partition", &pid)) {
      continue;
    }
    if (ts < phase2_start) continue;
    merged_partitions.insert(pid);
  }
  EXPECT_GE(merged_partitions.size(), 2u)
      << "phase-2 maintenance did not span multiple partitions";

  // The parallel maintenance must not have lost anything.
  raw = nullptr;
  ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
  db_.reset(raw);
  std::string value;
  for (int i = 0; i < 600; i += 29) {
    uint64_t k = static_cast<uint64_t>(i) * 7919 % 100000;
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(k), &value).ok()) << k;
    EXPECT_EQ(test::TestValue(k + 1, 256), value);
  }
}

}  // namespace
}  // namespace unikv
