#ifndef UNIKV_UTIL_CRC32C_H_
#define UNIKV_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace unikv {
namespace crc32c {

/// Returns the CRC-32C (Castagnoli) of data[0,n-1], extending `init_crc`
/// (the CRC of a preceding byte string).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC-32C of data[0,n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

static const uint32_t kMaskDelta = 0xa282ead8ul;

/// Returns a masked representation of crc, for storing CRCs of data that
/// itself contains embedded CRCs (avoids fixed-point problems).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace unikv

#endif  // UNIKV_UTIL_CRC32C_H_
