// Sharded foreground write path (DESIGN.md §10): N writer threads spread
// across M hash shards, checked against a golden model with per-key
// version counters. Proves no update is lost or reordered per key, that
// sequence numbers stay monotone across shards, and that a reopen —
// including one with a different shard count — replays every shard WAL.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "test_util.h"

namespace unikv {
namespace {

Options ShardedOptions(int shards) {
  Options opt;
  opt.write_shards = shards;
  // Small buffers so the run crosses several WAL rotations and flushes.
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 256 * 1024;
  return opt;
}

// Value format "v<version>:<key index>" — parseable by racing readers.
std::string VersionedValue(int key, int version) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "v%08d:%d", version, key);
  return buf;
}

int ParseVersion(const std::string& value) {
  if (value.size() < 9 || value[0] != 'v') return -1;
  return std::atoi(value.substr(1, 8).c_str());
}

class DbShardedWriteTest : public testing::Test {
 protected:
  void Open(const std::string& name, int shards) {
    dir_ = test::NewTestDir(name);
    Reopen(shards);
  }

  void Reopen(int shards) {
    db_.reset();
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(ShardedOptions(shards), dir_, &raw).ok());
    db_.reset(raw);
  }

  uint64_t LastSequence() {
    std::string v;
    EXPECT_TRUE(db_->GetProperty("db.last-sequence", &v));
    return std::strtoull(v.c_str(), nullptr, 10);
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
};

// The core battery: kThreads writers, key k owned by thread k % kThreads,
// each key updated kRounds times in version order. Single ownership makes
// the golden model deterministic; the engine must agree with it through
// Gets, a full iterator scan, and two reopens (same and different shard
// count — the hash shard count is a runtime knob, not persisted state).
TEST_F(DbShardedWriteTest, WritersLandInGoldenModel) {
  constexpr int kThreads = 4;
  constexpr int kKeys = 512;
  constexpr int kRounds = 6;
  Open("sharded_golden", 8);

  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([this, t, &failures] {
      for (int v = 1; v <= kRounds; v++) {
        for (int k = t; k < kKeys; k += kThreads) {
          // A mid-life delete exercises tombstones without disturbing the
          // final state: the very next round overwrites it.
          Status s;
          if (v == kRounds / 2 && k % 7 == 0) {
            s = db_->Delete(WriteOptions(), test::TestKey(k));
          } else {
            s = db_->Put(WriteOptions(), test::TestKey(k),
                         VersionedValue(k, v));
          }
          if (!s.ok()) failures.fetch_add(1);
        }
      }
    });
  }

  // Racing readers prove per-key ordering: the version a reader observes
  // for any key must never decrease (no reordered or resurrected
  // updates), even while the key's shard rotates WALs and flushes.
  std::atomic<bool> stop{false};
  std::atomic<int> reader_violations{0};
  std::thread reader([this, &stop, &reader_violations] {
    std::vector<int> floor(kKeys, -1);
    while (!stop.load(std::memory_order_relaxed)) {
      for (int k = 0; k < kKeys; k += 31) {
        std::string value;
        Status s = db_->Get(ReadOptions(), test::TestKey(k), &value);
        if (!s.ok()) continue;  // Not yet written or tombstoned.
        int v = ParseVersion(value);
        if (v < floor[k]) reader_violations.fetch_add(1);
        if (v > floor[k]) floor[k] = v;
      }
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0, reader_violations.load());

  // Sequence numbers are allocated globally: monotone across shards, and
  // the final count equals exactly one sequence per mutation — no gaps
  // from sharding, no double allocation.
  const uint64_t mutations =
      static_cast<uint64_t>(kKeys) * kRounds;  // Deletes are mutations too.
  EXPECT_EQ(mutations, LastSequence());

  // Golden model: single ownership means the final state is exactly
  // version kRounds for every key.
  std::map<std::string, std::string> golden;
  for (int k = 0; k < kKeys; k++) {
    golden[test::TestKey(k)] = VersionedValue(k, kRounds);
  }

  auto verify = [this, &golden] {
    for (const auto& [key, want] : golden) {
      std::string got;
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &got).ok()) << key;
      EXPECT_EQ(want, got) << key;
    }
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    auto g = golden.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next(), ++g) {
      ASSERT_NE(golden.end(), g);
      EXPECT_EQ(g->first, it->key().ToString());
      EXPECT_EQ(g->second, it->value().ToString());
    }
    EXPECT_EQ(golden.end(), g);
  };
  verify();

  // Reopen with the same shard count: recovery merges every shard WAL by
  // sequence number; the replayed state must equal the golden model and
  // the sequence floor must not regress.
  Reopen(8);
  EXPECT_GE(LastSequence(), mutations);
  verify();

  // Reopen with a different shard count: keys re-hash onto 3 shards, yet
  // nothing depends on the old placement.
  Reopen(3);
  verify();
}

// Multi-shard WriteBatch: one batch touching every shard is split into
// per-shard sub-batches; each entry must land exactly once, and the batch
// consumes exactly one sequence per mutation overall.
TEST_F(DbShardedWriteTest, CrossShardBatchesLandEverywhere) {
  constexpr int kBatches = 64;
  constexpr int kPerBatch = 16;
  Open("sharded_batch", 8);

  const uint64_t seq0 = LastSequence();
  for (int b = 0; b < kBatches; b++) {
    WriteBatch batch;
    for (int i = 0; i < kPerBatch; i++) {
      const int k = b * kPerBatch + i;
      batch.Put(test::TestKey(k), VersionedValue(k, b + 1));
    }
    ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  }
  EXPECT_EQ(seq0 + static_cast<uint64_t>(kBatches) * kPerBatch,
            LastSequence());

  for (int k = 0; k < kBatches * kPerBatch; k++) {
    std::string got;
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(k), &got).ok()) << k;
    EXPECT_EQ(VersionedValue(k, k / kPerBatch + 1), got);
  }
}

// Sync writes through one shard must make every shard's WAL durable (the
// sequence-floor proof depends on it); functionally this shows a sync
// write is acked and readable alongside concurrent non-sync traffic.
TEST_F(DbShardedWriteTest, SyncWritesAcrossShards) {
  Open("sharded_sync", 4);
  WriteOptions sync_opts;
  sync_opts.sync = true;
  for (int k = 0; k < 128; k++) {
    const WriteOptions& opts = (k % 8 == 0) ? sync_opts : WriteOptions();
    ASSERT_TRUE(db_->Put(opts, test::TestKey(k), VersionedValue(k, 1)).ok());
  }
  Reopen(4);
  for (int k = 0; k < 128; k++) {
    std::string got;
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(k), &got).ok()) << k;
    EXPECT_EQ(VersionedValue(k, 1), got);
  }
}

}  // namespace
}  // namespace unikv
