#include "core/table_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/filename.h"
#include "table/table_builder.h"
#include "util/env.h"

namespace unikv {
namespace {

std::string IKey(const std::string& user_key) {
  std::string r;
  AppendInternalKey(&r, ParsedInternalKey(user_key, 100, kTypeValue));
  return r;
}

class TableCacheTest : public testing::Test {
 protected:
  TableCacheTest() : env_(NewMemEnv()) {
    env_->CreateDir("/db");
    cache_ = std::make_unique<TableCache>(env_.get(), "/db", TableOptions(),
                                          nullptr, 4 /* tiny capacity */);
  }

  uint64_t BuildTable(uint64_t number, int keys) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(
        env_->NewWritableFile(TableFileName("/db", number), &file).ok());
    TableBuilder builder(TableOptions(), file.get());
    for (int i = 0; i < keys; i++) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "k%04d", i);
      builder.Add(IKey(buf), "v" + std::to_string(i));
    }
    EXPECT_TRUE(builder.Finish().ok());
    EXPECT_TRUE(file->Close().ok());
    return builder.FileSize();
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<TableCache> cache_;
};

TEST_F(TableCacheTest, GetThroughCache) {
  uint64_t size = BuildTable(1, 100);
  bool found = false;
  std::string key_out, value_out;
  ASSERT_TRUE(
      cache_->Get(1, size, IKey("k0042"), &found, &key_out, &value_out).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ("v42", value_out);
  // Second access is served from the cached reader.
  ASSERT_TRUE(
      cache_->Get(1, size, IKey("k0007"), &found, &key_out, &value_out).ok());
  EXPECT_EQ("v7", value_out);
  EXPECT_GE(cache_->AccessCount(1, size), 2u);
}

TEST_F(TableCacheTest, MissingFileIsAnError) {
  bool found = false;
  std::string key_out, value_out;
  Status s = cache_->Get(999, 1000, IKey("x"), &found, &key_out, &value_out);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(found);
  Iterator* iter = cache_->NewIterator(999, 1000);
  EXPECT_FALSE(iter->status().ok());
  delete iter;
}

TEST_F(TableCacheTest, EvictionBeyondCapacityStillWorks) {
  // Capacity is 4 open tables; use 10.
  std::vector<uint64_t> sizes(11);
  for (uint64_t n = 1; n <= 10; n++) {
    sizes[n] = BuildTable(n, 10);
  }
  for (int round = 0; round < 3; round++) {
    for (uint64_t n = 1; n <= 10; n++) {
      bool found = false;
      std::string key_out, value_out;
      ASSERT_TRUE(cache_->Get(n, sizes[n], IKey("k0003"), &found, &key_out,
                              &value_out)
                      .ok())
          << n;
      ASSERT_TRUE(found);
      EXPECT_EQ("v3", value_out);
    }
  }
}

TEST_F(TableCacheTest, IteratorPinsEvictedTable) {
  uint64_t size = BuildTable(1, 50);
  Iterator* iter = cache_->NewIterator(1, size);
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());

  // Evict while the iterator is open; it must stay usable.
  cache_->Evict(1);
  int n = 0;
  for (; iter->Valid(); iter->Next()) n++;
  EXPECT_EQ(50, n);
  EXPECT_TRUE(iter->status().ok());
  delete iter;

  // And the table can be reopened afterwards.
  bool found = false;
  std::string key_out, value_out;
  ASSERT_TRUE(
      cache_->Get(1, size, IKey("k0001"), &found, &key_out, &value_out).ok());
  EXPECT_TRUE(found);
}

TEST_F(TableCacheTest, EvictAfterFileDeletionReleasesHandle) {
  uint64_t size = BuildTable(7, 10);
  bool found = false;
  std::string key_out, value_out;
  ASSERT_TRUE(
      cache_->Get(7, size, IKey("k0001"), &found, &key_out, &value_out).ok());
  env_->RemoveFile(TableFileName("/db", 7));
  cache_->Evict(7);
  // The reader is gone; a fresh open fails cleanly.
  Status s = cache_->Get(7, size, IKey("k0001"), &found, &key_out, &value_out);
  EXPECT_FALSE(s.ok());
}

TEST_F(TableCacheTest, KeyMayMatchWithoutFilterIsTrue) {
  uint64_t size = BuildTable(3, 10);
  EXPECT_TRUE(cache_->KeyMayMatch(3, size, "anything"));
}

}  // namespace
}  // namespace unikv
