# Empty dependencies file for db_iterator_test.
# This may be replaced when dependencies are built.
