# Empty dependencies file for db_edge_test.
# This may be replaced when dependencies are built.
