#include "core/iterator.h"

namespace unikv {

Iterator::~Iterator() {
  Cleanup* c = cleanup_head_;
  while (c != nullptr) {
    c->fn();
    Cleanup* next = c->next;
    delete c;
    c = next;
  }
}

void Iterator::RegisterCleanup(std::function<void()> fn) {
  Cleanup* c = new Cleanup;
  c->fn = std::move(fn);
  c->next = cleanup_head_;
  cleanup_head_ = c;
}

namespace {

class EmptyIterator : public Iterator {
 public:
  explicit EmptyIterator(const Status& s) : status_(s) {}

  bool Valid() const override { return false; }
  void Seek(const Slice&) override {}
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Next() override {}
  void Prev() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewEmptyIterator() { return new EmptyIterator(Status::OK()); }

Iterator* NewErrorIterator(const Status& status) {
  return new EmptyIterator(status);
}

}  // namespace unikv
