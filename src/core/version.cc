#include "core/version.h"

#include <algorithm>

#include "core/filename.h"
#include "util/coding.h"
#include "util/env.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace unikv {

// ---------------------------------------------------------------- Version

int VersionData::FindPartition(const Slice& user_key) const {
  // Binary search over lower bounds: rightmost partition whose lower_bound
  // is <= user_key.
  int lo = 0, hi = static_cast<int>(partitions.size()) - 1;
  while (lo < hi) {
    int mid = (lo + hi + 1) / 2;
    if (Slice(partitions[mid]->lower_bound).compare(user_key) <= 0) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::shared_ptr<const PartitionState> VersionData::FindById(
    uint32_t pid) const {
  for (const auto& p : partitions) {
    if (p->id == pid) return p;
  }
  return nullptr;
}

void VersionData::AddLiveFiles(std::set<uint64_t>* live) const {
  for (const auto& p : partitions) {
    for (const auto& f : p->unsorted) live->insert(f.number);
    for (const auto& f : p->sorted) live->insert(f.number);
    for (const auto& v : p->vlogs) live->insert(v.number);
    if (p->index_checkpoint != 0) live->insert(p->index_checkpoint);
    if (p->anchor_view != 0) live->insert(p->anchor_view);
  }
}

// ------------------------------------------------------------ VersionEdit

namespace {

enum EditTag : uint32_t {
  kLogNumber = 1,
  kNextFileNumber = 2,
  kLastSequence = 3,
  kNewPartition = 4,
  kRemovePartition = 5,
  kAddUnsorted = 6,
  kRemoveUnsorted = 7,
  kAddSorted = 8,
  kRemoveSorted = 9,
  kAddVlog = 10,
  kRemoveVlog = 11,
  kIndexCheckpoint = 12,
  kAnchorView = 13,
};

void PutFileMeta(std::string* dst, const FileMeta& f) {
  PutVarint64(dst, f.number);
  PutVarint64(dst, f.size);
  PutVarint64(dst, f.logical);
  PutVarint32(dst, f.table_id);
  PutLengthPrefixedSlice(dst, Slice(f.smallest));
  PutLengthPrefixedSlice(dst, Slice(f.largest));
}

bool GetFileMeta(Slice* input, FileMeta* f) {
  uint32_t table_id;
  Slice smallest, largest;
  if (!GetVarint64(input, &f->number) || !GetVarint64(input, &f->size) ||
      !GetVarint64(input, &f->logical) || !GetVarint32(input, &table_id) ||
      !GetLengthPrefixedSlice(input, &smallest) ||
      !GetLengthPrefixedSlice(input, &largest)) {
    return false;
  }
  f->table_id = static_cast<uint16_t>(table_id);
  f->smallest = smallest.ToString();
  f->largest = largest.ToString();
  return true;
}

}  // namespace

void VersionEdit::EncodeTo(std::string* dst) const {
  if (has_log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number_);
  }
  if (has_next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number_);
  }
  if (has_last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence_);
  }
  for (const auto& [pid, lower] : new_partitions_) {
    PutVarint32(dst, kNewPartition);
    PutVarint32(dst, pid);
    PutLengthPrefixedSlice(dst, Slice(lower));
  }
  for (uint32_t pid : removed_partitions_) {
    PutVarint32(dst, kRemovePartition);
    PutVarint32(dst, pid);
  }
  for (const auto& [pid, f] : new_unsorted_) {
    PutVarint32(dst, kAddUnsorted);
    PutVarint32(dst, pid);
    PutFileMeta(dst, f);
  }
  for (const auto& [pid, number] : removed_unsorted_) {
    PutVarint32(dst, kRemoveUnsorted);
    PutVarint32(dst, pid);
    PutVarint64(dst, number);
  }
  for (const auto& [pid, f] : new_sorted_) {
    PutVarint32(dst, kAddSorted);
    PutVarint32(dst, pid);
    PutFileMeta(dst, f);
  }
  for (const auto& [pid, number] : removed_sorted_) {
    PutVarint32(dst, kRemoveSorted);
    PutVarint32(dst, pid);
    PutVarint64(dst, number);
  }
  for (const auto& [pid, v] : new_vlogs_) {
    PutVarint32(dst, kAddVlog);
    PutVarint32(dst, pid);
    PutVarint64(dst, v.number);
    PutVarint64(dst, v.size);
  }
  for (const auto& [pid, number] : removed_vlogs_) {
    PutVarint32(dst, kRemoveVlog);
    PutVarint32(dst, pid);
    PutVarint64(dst, number);
  }
  for (const auto& [pid, number] : index_checkpoints_) {
    PutVarint32(dst, kIndexCheckpoint);
    PutVarint32(dst, pid);
    PutVarint64(dst, number);
  }
  for (const auto& [pid, number] : anchor_views_) {
    PutVarint32(dst, kAnchorView);
    PutVarint32(dst, pid);
    PutVarint64(dst, number);
  }
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  Clear();
  Slice input = src;
  uint32_t tag;
  while (GetVarint32(&input, &tag)) {
    uint32_t pid;
    uint64_t number;
    FileMeta f;
    switch (tag) {
      case kLogNumber:
        if (!GetVarint64(&input, &log_number_)) {
          return Status::Corruption("bad edit: log number");
        }
        has_log_number_ = true;
        break;
      case kNextFileNumber:
        if (!GetVarint64(&input, &next_file_number_)) {
          return Status::Corruption("bad edit: next file number");
        }
        has_next_file_number_ = true;
        break;
      case kLastSequence:
        if (!GetVarint64(&input, &last_sequence_)) {
          return Status::Corruption("bad edit: last sequence");
        }
        has_last_sequence_ = true;
        break;
      case kNewPartition: {
        Slice lower;
        if (!GetVarint32(&input, &pid) ||
            !GetLengthPrefixedSlice(&input, &lower)) {
          return Status::Corruption("bad edit: new partition");
        }
        new_partitions_.emplace_back(pid, lower.ToString());
        break;
      }
      case kRemovePartition:
        if (!GetVarint32(&input, &pid)) {
          return Status::Corruption("bad edit: remove partition");
        }
        removed_partitions_.push_back(pid);
        break;
      case kAddUnsorted:
        if (!GetVarint32(&input, &pid) || !GetFileMeta(&input, &f)) {
          return Status::Corruption("bad edit: add unsorted");
        }
        new_unsorted_.emplace_back(pid, f);
        break;
      case kRemoveUnsorted:
        if (!GetVarint32(&input, &pid) || !GetVarint64(&input, &number)) {
          return Status::Corruption("bad edit: remove unsorted");
        }
        removed_unsorted_.emplace_back(pid, number);
        break;
      case kAddSorted:
        if (!GetVarint32(&input, &pid) || !GetFileMeta(&input, &f)) {
          return Status::Corruption("bad edit: add sorted");
        }
        new_sorted_.emplace_back(pid, f);
        break;
      case kRemoveSorted:
        if (!GetVarint32(&input, &pid) || !GetVarint64(&input, &number)) {
          return Status::Corruption("bad edit: remove sorted");
        }
        removed_sorted_.emplace_back(pid, number);
        break;
      case kAddVlog: {
        VlogMeta v;
        if (!GetVarint32(&input, &pid) || !GetVarint64(&input, &v.number) ||
            !GetVarint64(&input, &v.size)) {
          return Status::Corruption("bad edit: add vlog");
        }
        new_vlogs_.emplace_back(pid, v);
        break;
      }
      case kRemoveVlog:
        if (!GetVarint32(&input, &pid) || !GetVarint64(&input, &number)) {
          return Status::Corruption("bad edit: remove vlog");
        }
        removed_vlogs_.emplace_back(pid, number);
        break;
      case kIndexCheckpoint:
        if (!GetVarint32(&input, &pid) || !GetVarint64(&input, &number)) {
          return Status::Corruption("bad edit: index checkpoint");
        }
        index_checkpoints_.emplace_back(pid, number);
        break;
      case kAnchorView:
        if (!GetVarint32(&input, &pid) || !GetVarint64(&input, &number)) {
          return Status::Corruption("bad edit: anchor view");
        }
        anchor_views_.emplace_back(pid, number);
        break;
      default:
        return Status::Corruption("unknown version edit tag");
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------- VersionSet

VersionSet::VersionSet(Env* env, std::string dbname)
    : env_(env), dbname_(std::move(dbname)) {
  current_ = std::make_shared<VersionData>();
}

VersionSet::~VersionSet() = default;

Status VersionSet::Apply(const VersionEdit& edit, VersionPtr base,
                         VersionPtr* result) {
  // Materialize a mutable copy of the partition map.
  std::map<uint32_t, PartitionState> parts;
  for (const auto& p : base->partitions) {
    parts[p->id] = *p;
  }

  if (edit.has_log_number_) log_number_ = edit.log_number_;
  if (edit.has_next_file_number_) {
    // CAS-max: NewFileNumber() may be racing from writer threads rotating
    // shard WALs, so never move the counter backwards.
    uint64_t cur = next_file_number_.load(std::memory_order_relaxed);
    while (edit.next_file_number_ > cur &&
           !next_file_number_.compare_exchange_weak(
               cur, edit.next_file_number_, std::memory_order_relaxed)) {
    }
  }
  if (edit.has_last_sequence_ && edit.last_sequence_ > last_sequence_) {
    last_sequence_ = edit.last_sequence_;
  }

  for (const auto& [pid, lower] : edit.new_partitions_) {
    PartitionState p;
    p.id = pid;
    p.lower_bound = lower;
    parts[pid] = std::move(p);
    if (pid >= next_partition_id_) next_partition_id_ = pid + 1;
  }
  for (uint32_t pid : edit.removed_partitions_) {
    parts.erase(pid);
  }

  auto find = [&parts](uint32_t pid) -> PartitionState* {
    auto it = parts.find(pid);
    return it == parts.end() ? nullptr : &it->second;
  };

  for (const auto& [pid, f] : edit.new_unsorted_) {
    PartitionState* p = find(pid);
    if (p == nullptr) return Status::Corruption("edit: unknown partition");
    p->unsorted.push_back(f);
  }
  for (const auto& [pid, number] : edit.removed_unsorted_) {
    PartitionState* p = find(pid);
    if (p == nullptr) return Status::Corruption("edit: unknown partition");
    std::erase_if(p->unsorted,
                  [number](const FileMeta& f) { return f.number == number; });
  }
  for (const auto& [pid, f] : edit.new_sorted_) {
    PartitionState* p = find(pid);
    if (p == nullptr) return Status::Corruption("edit: unknown partition");
    p->sorted.push_back(f);
  }
  for (const auto& [pid, number] : edit.removed_sorted_) {
    PartitionState* p = find(pid);
    if (p == nullptr) return Status::Corruption("edit: unknown partition");
    std::erase_if(p->sorted,
                  [number](const FileMeta& f) { return f.number == number; });
  }
  for (const auto& [pid, v] : edit.new_vlogs_) {
    PartitionState* p = find(pid);
    if (p == nullptr) return Status::Corruption("edit: unknown partition");
    p->vlogs.push_back(v);
  }
  for (const auto& [pid, number] : edit.removed_vlogs_) {
    PartitionState* p = find(pid);
    if (p == nullptr) return Status::Corruption("edit: unknown partition");
    std::erase_if(p->vlogs,
                  [number](const VlogMeta& v) { return v.number == number; });
  }
  for (const auto& [pid, number] : edit.index_checkpoints_) {
    PartitionState* p = find(pid);
    if (p == nullptr) return Status::Corruption("edit: unknown partition");
    p->index_checkpoint = number;
  }
  for (const auto& [pid, number] : edit.anchor_views_) {
    PartitionState* p = find(pid);
    if (p == nullptr) return Status::Corruption("edit: unknown partition");
    p->anchor_view = number;
  }

  auto next = std::make_shared<VersionData>();
  for (auto& [pid, p] : parts) {
    // Keep sorted files in key order.
    std::sort(p.sorted.begin(), p.sorted.end(),
              [](const FileMeta& a, const FileMeta& b) {
                return a.smallest < b.smallest;
              });
    next->partitions.push_back(
        std::make_shared<const PartitionState>(std::move(p)));
  }
  std::sort(next->partitions.begin(), next->partitions.end(),
            [](const auto& a, const auto& b) {
              return a->lower_bound < b->lower_bound;
            });
  *result = std::move(next);
  return Status::OK();
}

Status VersionSet::WriteSnapshot(log::Writer* log) {
  VersionEdit edit;
  edit.SetLogNumber(log_number_);
  edit.SetNextFileNumber(next_file_number_.load(std::memory_order_relaxed));
  edit.SetLastSequence(last_sequence_);
  const VersionPtr snap = current();
  for (const auto& p : snap->partitions) {
    edit.AddPartition(p->id, p->lower_bound);
    for (const auto& f : p->unsorted) edit.AddUnsortedFile(p->id, f);
    for (const auto& f : p->sorted) edit.AddSortedFile(p->id, f);
    for (const auto& v : p->vlogs) edit.AddValueLog(p->id, v);
    if (p->index_checkpoint != 0) {
      edit.SetIndexCheckpoint(p->id, p->index_checkpoint);
    }
    if (p->anchor_view != 0) {
      edit.SetAnchorView(p->id, p->anchor_view);
    }
  }
  std::string record;
  edit.EncodeTo(&record);
  return log->AddRecord(record);
}

Status VersionSet::CreateNew() {
  // Bootstrap: one empty partition covering the whole key space.
  VersionEdit edit;
  edit.AddPartition(0, "");
  edit.SetNextFileNumber(next_file_number_.load(std::memory_order_relaxed));
  VersionPtr next;
  Status s = Apply(edit, current(), &next);
  if (!s.ok()) return s;
  {
    MutexLock l(&current_mu_);
    current_ = std::move(next);
  }
  next_partition_id_ = 1;
  return Status::OK();
}

namespace {
struct LogReporter : public log::Reader::Reporter {
  Status* status;
  void Corruption(size_t /*bytes*/, const Status& s) override {
    if (status->ok()) *status = s;
  }
};
}  // namespace

Status VersionSet::Recover(bool create_if_missing, bool error_if_exists) {
  // Usually exists already (DB::Open created it to take the lock file);
  // a real failure surfaces on the manifest open below.
  (void)env_->CreateDir(dbname_);

  const std::string current_name = CurrentFileName(dbname_);
  if (!env_->FileExists(current_name)) {
    if (!create_if_missing) {
      return Status::InvalidArgument(dbname_, "does not exist");
    }
    Status s = CreateNew();
    if (!s.ok()) return s;
  } else {
    if (error_if_exists) {
      return Status::InvalidArgument(dbname_, "exists");
    }
    // Read CURRENT to find the manifest.
    std::unique_ptr<SequentialFile> current_file;
    Status s = env_->NewSequentialFile(current_name, &current_file);
    if (!s.ok()) return s;
    char buf[64];
    Slice contents;
    s = current_file->Read(sizeof(buf), &contents, buf);
    if (!s.ok()) return s;
    std::string manifest(contents.data(), contents.size());
    while (!manifest.empty() &&
           (manifest.back() == '\n' || manifest.back() == '\0')) {
      manifest.pop_back();
    }
    if (manifest.empty()) {
      return Status::Corruption("CURRENT file is empty");
    }

    std::unique_ptr<SequentialFile> file;
    s = env_->NewSequentialFile(dbname_ + "/" + manifest, &file);
    if (!s.ok()) return s;

    uint64_t manifest_number = 0;
    FileType type;
    ParseFileName(manifest, &manifest_number, &type);
    if (manifest_number >= next_file_number_.load(std::memory_order_relaxed)) {
      next_file_number_.store(manifest_number + 1, std::memory_order_relaxed);
    }

    Status replay_status;
    LogReporter reporter;
    reporter.status = &replay_status;
    log::Reader reader(file.get(), &reporter, true /*checksum*/);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (!s.ok()) return s;
      VersionPtr next;
      s = Apply(edit, current(), &next);
      if (!s.ok()) return s;
      {
        MutexLock l(&current_mu_);
        current_ = std::move(next);
      }
    }
    if (!replay_status.ok()) return replay_status;
  }

  // Start a fresh manifest with a snapshot of the recovered state, then
  // point CURRENT at it.
  manifest_file_number_ = NewFileNumber();
  const std::string manifest_name =
      ManifestFileName(dbname_, manifest_file_number_);
  std::unique_ptr<WritableFile> mfile;
  Status s = env_->NewWritableFile(manifest_name, &mfile);
  if (!s.ok()) return s;
  manifest_file_ = std::move(mfile);
  manifest_log_ = std::make_unique<log::Writer>(manifest_file_.get());
  s = WriteSnapshot(manifest_log_.get());
  if (!s.ok()) return s;
  s = manifest_file_->Sync();
  if (!s.ok()) return s;

  // Atomically install CURRENT via a temp file rename.
  const std::string tmp = TempFileName(dbname_, manifest_file_number_);
  std::unique_ptr<WritableFile> tmp_file;
  s = env_->NewWritableFile(tmp, &tmp_file);
  if (!s.ok()) return s;
  std::string base = manifest_name.substr(manifest_name.rfind('/') + 1);
  s = tmp_file->Append(base + "\n");
  if (s.ok()) s = tmp_file->Sync();
  if (s.ok()) s = tmp_file->Close();
  if (s.ok()) s = env_->RenameFile(tmp, current_name);
  // The rename itself is directory metadata: without a parent-directory
  // sync a crash can revert CURRENT to the previous manifest — which
  // RemoveObsoleteFiles may have deleted by then, leaving the store
  // unopenable. Found by the crash harness (tests/db_crash_test.cc).
  if (s.ok()) s = env_->SyncDir(dbname_);
  return s;
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  edit->SetNextFileNumber(next_file_number_.load(std::memory_order_relaxed));
  edit->SetLastSequence(last_sequence_);

  VersionPtr next;
  Status s = Apply(*edit, current(), &next);
  if (!s.ok()) return s;

  std::string record;
  edit->EncodeTo(&record);
  s = manifest_log_->AddRecord(record);
  if (s.ok()) {
    s = manifest_file_->Sync();
  }
  if (!s.ok()) return s;

  {
    // Readers copy current_ without the DB mutex; guard the store (the
    // outgoing version is pinned so live iterators keep their files).
    MutexLock l(&current_mu_);
    pinned_.push_back(current_);
    current_ = std::move(next);
  }
  // Prune dead weak pointers opportunistically.
  if (pinned_.size() > 64) {
    std::erase_if(pinned_, [](const std::weak_ptr<const VersionData>& w) {
      return w.expired();
    });
  }
  return Status::OK();
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) {
  current()->AddLiveFiles(live);
  for (const auto& w : pinned_) {
    if (auto v = w.lock()) {
      v->AddLiveFiles(live);
    }
  }
}

}  // namespace unikv
