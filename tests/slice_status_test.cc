#include <gtest/gtest.h>

#include "util/slice.h"
#include "util/status.h"

namespace unikv {
namespace {

TEST(Slice, Basics) {
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(0u, empty.size());

  Slice s("hello");
  EXPECT_EQ(5u, s.size());
  EXPECT_EQ('h', s[0]);
  EXPECT_EQ("hello", s.ToString());

  std::string owned = "world";
  Slice t(owned);
  EXPECT_EQ("world", t.ToString());

  s.remove_prefix(2);
  EXPECT_EQ("llo", s.ToString());
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(Slice, Compare) {
  EXPECT_EQ(0, Slice("abc").compare(Slice("abc")));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);   // Prefix sorts first.
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
  EXPECT_LT(Slice("").compare(Slice("a")), 0);
}

TEST(Slice, CompareIsBytewiseUnsigned) {
  // 0xff must sort after 0x00 (unsigned comparison).
  char hi = static_cast<char>(0xff);
  char lo = 0x00;
  EXPECT_GT(Slice(&hi, 1).compare(Slice(&lo, 1)), 0);
}

TEST(Slice, Equality) {
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
  std::string with_nul("a\0b", 3);
  EXPECT_TRUE(Slice(with_nul) != Slice("a"));
  EXPECT_EQ(3u, Slice(with_nul).size());
}

TEST(Slice, StartsWith) {
  EXPECT_TRUE(Slice("hello").starts_with("he"));
  EXPECT_TRUE(Slice("hello").starts_with(""));
  EXPECT_FALSE(Slice("hello").starts_with("hello!"));
  EXPECT_FALSE(Slice("hello").starts_with("x"));
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ("OK", s.ToString());
}

TEST(Status, Codes) {
  EXPECT_TRUE(Status::NotFound("f").IsNotFound());
  EXPECT_TRUE(Status::Corruption("c").IsCorruption());
  EXPECT_TRUE(Status::IOError("i").IsIOError());
  EXPECT_TRUE(Status::NotSupported("n").IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument("a").IsInvalidArgument());
  EXPECT_TRUE(Status::Busy("b").IsBusy());
  EXPECT_FALSE(Status::NotFound("f").ok());
  EXPECT_FALSE(Status::NotFound("f").IsCorruption());
}

TEST(Status, Messages) {
  Status s = Status::Corruption("bad block", "file 7");
  EXPECT_EQ("Corruption: bad block: file 7", s.ToString());
  Status t = Status::IOError("disk gone");
  EXPECT_EQ("IO error: disk gone", t.ToString());
}

TEST(Status, CopyAssign) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_TRUE(t.IsNotFound());
  t = Status::OK();
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(s.IsNotFound());
}

}  // namespace
}  // namespace unikv
