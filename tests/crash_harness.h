#ifndef UNIKV_TESTS_CRASH_HARNESS_H_
#define UNIKV_TESTS_CRASH_HARNESS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/db.h"
#include "util/fault_injection_env.h"

namespace unikv {
namespace test {

/// Model-based crash-consistency harness (DESIGN.md §crash consistency).
///
/// A fixed scripted workload — puts, overwrites, deletes, sync-puts, and
/// FlushMemTable / CompactAll barriers — drives every background operation
/// kind: WAL append/sync, memtable flush, UnsortedStore→SortedStore merge
/// with KV separation, dynamic range split, value-log GC, hash-index
/// checkpointing, and the manifest/CURRENT install. The harness can
///
///  - profile the workload (no faults) over a FaultInjectionEnv to learn
///    N = the number of counted mutating Env calls and their trace, and
///  - re-run it crashing at any counted call index, recover, reopen, and
///    verify the recovered store against a golden std::map.
///
/// Verification accepts exactly the prefix cuts c in [S, C]: C is the
/// number of acknowledged ops (every op after the crash fails), S the
/// strongest durability lower bound (last acknowledged sync-put or
/// barrier). A lost synced write, a mid-sequence gap, a resurrected or
/// unknown key, an unreadable value, or a store that fails to reopen is a
/// failure. Because the crash fires *before* its target call, iterating
/// the index over [0, N) covers every call boundary in the workload.
class CrashHarness {
 public:
  struct Profile {
    uint64_t workload_calls = 0;  // N: counted calls in one workload run.
    uint64_t reopen_calls = 0;    // M: counted calls in one clean reopen.
    std::vector<FaultInjectionEnv::CallRecord> trace;  // Workload portion.
    std::string stats;  // Final "db.stats" property text.
  };

  /// `write_shards` > 1 makes the scripted workload cross-shard: keys hash
  /// onto that many foreground shards, each with its own WAL, so every
  /// crash point also exercises the merged-by-sequence recovery path and
  /// the cross-shard durability floor.
  explicit CrashHarness(int write_shards = 1);

  /// Clean run over a FaultInjectionEnv with tracing: fills *out and
  /// verifies the final and post-reopen state. Returns "" on success,
  /// else a failure description.
  std::string RunProfile(Profile* out);

  /// Crash at counted call `index` during the workload, then recover,
  /// reopen and verify. Returns "" if the recovered store is a consistent
  /// prefix cut, else a failure description.
  std::string RunCrashAt(uint64_t index);

  /// Runs the workload to completion, closes cleanly, then crashes at the
  /// `index`-th counted call of the subsequent re-open (recovery itself is
  /// full of fault points: WAL-replay flush, manifest rewrite, CURRENT
  /// rename, obsolete-file sweep). Verifies via a third, clean open.
  std::string RunReopenCrashAt(uint64_t index);

  size_t NumOps() const { return ops_.size(); }

 private:
  struct Op {
    enum Kind { kPut, kDelete, kFlush, kCompact };
    Kind kind;
    std::string key;
    std::string value;
    bool sync = false;
  };

  Options MakeOptions(Env* env) const;
  Status ApplyOp(DB* db, const Op& op) const;
  void ApplyToModel(const Op& op, std::map<std::string, std::string>* m) const;

  /// Issues ops in order until one fails or the env crashes. Returns C
  /// (the acknowledged prefix length) and sets *synced_prefix to S. Sets
  /// *in_flight_at_crash when the crash interrupted an op mid-flight —
  /// that op is unacknowledged but may already be partially durable (a
  /// sharded sync write syncs its own WAL before the cross-shard
  /// sync-all), so verification accepts one cut past C for it.
  size_t RunWorkload(DB* db, const FaultInjectionEnv& env,
                     size_t* synced_prefix,
                     bool* in_flight_at_crash = nullptr) const;

  /// Checks that `db` equals model_at(c) for some c in [synced_prefix,
  /// acked_ops], that the store's last sequence number equals the matched
  /// cut's cumulative mutation count plus `probe_mutations` (the probe
  /// writes earlier verifies left behind) — the cross-shard consistency
  /// check: one global counter must account for every shard's WAL — and
  /// that the store still accepts writes. "" on success.
  std::string VerifyRecovered(DB* db, size_t synced_prefix, size_t acked_ops,
                              size_t probe_mutations = 0) const;

  std::vector<Op> ops_;
  std::set<std::string> universe_;
  int write_shards_ = 1;
};

}  // namespace test
}  // namespace unikv

#endif  // UNIKV_TESTS_CRASH_HARNESS_H_
