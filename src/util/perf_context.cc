#include "util/perf_context.h"

#include <cinttypes>
#include <cstdio>

namespace unikv {

namespace internal {
constinit thread_local PerfContext tls_perf_context;
}  // namespace internal

namespace {

// Applies `fn(name, member_pointer)` to every PerfContext field, so the
// delta/print logic cannot drift from the field list.
template <typename Fn>
void ForEachField(Fn fn) {
  fn("gets", &PerfContext::gets);
  fn("writes", &PerfContext::writes);
  fn("scans", &PerfContext::scans);
  fn("multigets", &PerfContext::multigets);
  fn("multiget_keys", &PerfContext::multiget_keys);
  fn("memtable_hits", &PerfContext::memtable_hits);
  fn("hash_index_lookups", &PerfContext::hash_index_lookups);
  fn("hash_index_probes", &PerfContext::hash_index_probes);
  fn("hash_index_candidates", &PerfContext::hash_index_candidates);
  fn("bloom_checks", &PerfContext::bloom_checks);
  fn("bloom_negatives", &PerfContext::bloom_negatives);
  fn("bloom_false_positives", &PerfContext::bloom_false_positives);
  fn("unsorted_tables_probed", &PerfContext::unsorted_tables_probed);
  fn("sorted_seeks", &PerfContext::sorted_seeks);
  fn("table_cache_hits", &PerfContext::table_cache_hits);
  fn("table_cache_misses", &PerfContext::table_cache_misses);
  fn("block_cache_hits", &PerfContext::block_cache_hits);
  fn("block_cache_misses", &PerfContext::block_cache_misses);
  fn("block_reads", &PerfContext::block_reads);
  fn("vlog_reads", &PerfContext::vlog_reads);
  fn("vlog_span_reads", &PerfContext::vlog_span_reads);
  fn("vlog_read_bytes", &PerfContext::vlog_read_bytes);
  fn("vlog_mmap_reads", &PerfContext::vlog_mmap_reads);
  fn("multiget_coalesced_reads", &PerfContext::multiget_coalesced_reads);
  fn("multiget_io_bytes_saved", &PerfContext::multiget_io_bytes_saved);
  fn("get_micros", &PerfContext::get_micros);
  fn("write_micros", &PerfContext::write_micros);
  fn("write_wal_micros", &PerfContext::write_wal_micros);
  fn("write_memtable_micros", &PerfContext::write_memtable_micros);
  fn("write_stall_micros", &PerfContext::write_stall_micros);
  fn("scan_micros", &PerfContext::scan_micros);
  fn("multiget_micros", &PerfContext::multiget_micros);
}

}  // namespace

PerfContext PerfContext::DeltaSince(const PerfContext& before) const {
  PerfContext d;
  ForEachField([&](const char* /*name*/, uint64_t PerfContext::*field) {
    d.*field = this->*field - before.*field;
  });
  return d;
}

void PerfContext::Add(const PerfContext& other) {
  ForEachField([&](const char* /*name*/, uint64_t PerfContext::*field) {
    this->*field += other.*field;
  });
}

std::string PerfContext::ToString(bool include_zeros) const {
  std::string out;
  char buf[64];
  ForEachField([&](const char* name, uint64_t PerfContext::*field) {
    const uint64_t v = this->*field;
    if (v == 0 && !include_zeros) return;
    std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 " ", name, v);
    out += buf;
  });
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace unikv
