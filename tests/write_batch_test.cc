#include "mem/write_batch.h"

#include <gtest/gtest.h>

#include "core/dbformat.h"
#include "mem/memtable.h"

namespace unikv {
namespace {

// Renders the batch contents by replaying into a memtable and dumping it.
static std::string PrintContents(WriteBatch* b) {
  InternalKeyComparator cmp;
  MemTable* mem = new MemTable(cmp);
  mem->Ref();
  std::string state;
  Status s = b->InsertInto(mem);
  int count = 0;
  Iterator* iter = mem->NewIterator();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey ikey;
    EXPECT_TRUE(ParseInternalKey(iter->key(), &ikey));
    switch (ikey.type) {
      case kTypeValue:
        state.append("Put(");
        state.append(ikey.user_key.ToString());
        state.append(", ");
        state.append(iter->value().ToString());
        state.append(")");
        count++;
        break;
      case kTypeDeletion:
        state.append("Delete(");
        state.append(ikey.user_key.ToString());
        state.append(")");
        count++;
        break;
      default:
        ADD_FAILURE() << "unexpected type";
    }
    state.append("@");
    state.append(std::to_string(ikey.sequence));
  }
  delete iter;
  if (!s.ok()) {
    state.append("ParseError()");
  } else if (count != b->Count()) {
    state.append("CountMismatch()");
  }
  mem->Unref();
  return state;
}

TEST(WriteBatch, Empty) {
  WriteBatch batch;
  EXPECT_EQ("", PrintContents(&batch));
  EXPECT_EQ(0, batch.Count());
}

TEST(WriteBatch, Multiple) {
  WriteBatch batch;
  batch.Put("foo", "bar");
  batch.Delete("box");
  batch.Put("baz", "boo");
  batch.SetSequence(100);
  EXPECT_EQ(100u, batch.Sequence());
  EXPECT_EQ(3, batch.Count());
  EXPECT_EQ("Put(baz, boo)@102Delete(box)@101Put(foo, bar)@100",
            PrintContents(&batch));
}

TEST(WriteBatch, Corruption) {
  WriteBatch batch;
  batch.Put("foo", "bar");
  batch.Delete("box");
  batch.SetSequence(200);
  Slice contents = batch.Contents();
  WriteBatch truncated;
  truncated.SetContents(Slice(contents.data(), contents.size() - 1));
  // The first record parses; the truncated second surfaces ParseError.
  EXPECT_EQ("Put(foo, bar)@200ParseError()", PrintContents(&truncated));
}

TEST(WriteBatch, Append) {
  WriteBatch b1, b2;
  b1.SetSequence(200);
  b2.SetSequence(300);
  b1.Append(b2);
  EXPECT_EQ("", PrintContents(&b1));
  b2.Put("a", "va");
  b1.Append(b2);
  EXPECT_EQ("Put(a, va)@200", PrintContents(&b1));
  b2.Clear();
  b2.Put("b", "vb");
  b1.Append(b2);
  EXPECT_EQ("Put(a, va)@200Put(b, vb)@201", PrintContents(&b1));
  b2.Delete("foo");
  b1.Append(b2);
  // Memtable dump order: user key ascending, then sequence descending.
  EXPECT_EQ("Put(a, va)@200Put(b, vb)@202Put(b, vb)@201Delete(foo)@203",
            PrintContents(&b1));
}

TEST(WriteBatch, ApproximateSize) {
  WriteBatch batch;
  size_t empty_size = batch.ApproximateSize();

  batch.Put("foo", "bar");
  size_t one_key_size = batch.ApproximateSize();
  EXPECT_LT(empty_size, one_key_size);

  batch.Put("baz", "boo");
  size_t two_keys_size = batch.ApproximateSize();
  EXPECT_LT(one_key_size, two_keys_size);

  batch.Delete("box");
  size_t post_delete_size = batch.ApproximateSize();
  EXPECT_LT(two_keys_size, post_delete_size);
}

TEST(WriteBatch, ClearResets) {
  WriteBatch batch;
  batch.Put("k", "v");
  batch.SetSequence(7);
  batch.Clear();
  EXPECT_EQ(0, batch.Count());
  EXPECT_EQ("", PrintContents(&batch));
}

TEST(WriteBatch, HandlerSeesOperationsInOrder) {
  struct Recorder : public WriteBatch::Handler {
    std::string log;
    void Put(const Slice& key, const Slice& value) override {
      log += "P(" + key.ToString() + "," + value.ToString() + ")";
    }
    void Delete(const Slice& key) override {
      log += "D(" + key.ToString() + ")";
    }
  };
  WriteBatch batch;
  batch.Put("one", "1");
  batch.Delete("two");
  batch.Put("three", "3");
  Recorder recorder;
  ASSERT_TRUE(batch.Iterate(&recorder).ok());
  EXPECT_EQ("P(one,1)D(two)P(three,3)", recorder.log);
}

TEST(WriteBatch, BinaryPayloads) {
  WriteBatch batch;
  std::string key("\0k\xff", 3), value("\0\0", 2);
  batch.Put(key, value);
  batch.SetSequence(1);
  InternalKeyComparator cmp;
  MemTable* mem = new MemTable(cmp);
  mem->Ref();
  ASSERT_TRUE(batch.InsertInto(mem).ok());
  LookupKey lkey(key, 10);
  std::string found;
  Status s;
  ASSERT_TRUE(mem->Get(lkey, &found, &s));
  EXPECT_EQ(value, found);
  mem->Unref();
}

}  // namespace
}  // namespace unikv
