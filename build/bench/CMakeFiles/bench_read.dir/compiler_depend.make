# Empty compiler generated dependencies file for bench_read.
# This may be replaced when dependencies are built.
