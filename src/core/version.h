#ifndef UNIKV_CORE_VERSION_H_
#define UNIKV_CORE_VERSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "core/options.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/sync.h"

namespace unikv {

class Env;
namespace log {
class Writer;
}

/// Metadata for one SSTable (UnsortedStore or SortedStore).
struct FileMeta {
  uint64_t number = 0;
  uint64_t size = 0;
  /// Logical bytes the table is responsible for: keys plus the values
  /// they reference (pointed-to log records included). With partial KV
  /// separation the .sst file itself holds only keys and pointers, so
  /// `size` wildly understates the data a SortedStore table governs;
  /// split decisions and table rotation use `logical` instead.
  uint64_t logical = 0;
  /// Local UnsortedStore table id referenced by the hash index (meaningful
  /// only for unsorted files; ids restart after every merge epoch).
  uint16_t table_id = 0;
  std::string smallest;  // Smallest user key.
  std::string largest;   // Largest user key.
};

/// Metadata for one value log file.
struct VlogMeta {
  uint64_t number = 0;
  uint64_t size = 0;
};

/// Immutable snapshot of one partition's on-disk structure.
struct PartitionState {
  uint32_t id = 0;
  /// Inclusive lower boundary user key; empty for the first partition.
  std::string lower_bound;
  /// UnsortedStore tables, oldest first (table_id ascending).
  std::vector<FileMeta> unsorted;
  /// SortedStore tables: one sorted run, disjoint, key order.
  std::vector<FileMeta> sorted;
  /// Value logs referenced by this partition's pointers (a log may be
  /// shared with a sibling partition after a split, until lazy GC).
  std::vector<VlogMeta> vlogs;
  /// File number of the newest hash-index checkpoint (0 = none). The
  /// checkpoint covers unsorted tables with table_id < covered_upto.
  uint64_t index_checkpoint = 0;
  /// File number of the persisted sorted anchor view over this partition's
  /// unsorted tables (0 = none). The file records which table numbers it
  /// covers; a view whose covered set no longer matches `unsorted` is
  /// stale and gets rebuilt (recovery) or replaced (next install).
  uint64_t anchor_view = 0;

  uint64_t UnsortedBytes() const {
    uint64_t n = 0;
    for (const auto& f : unsorted) n += f.size;
    return n;
  }
  uint64_t SortedBytes() const {
    uint64_t n = 0;
    for (const auto& f : sorted) n += f.size;
    return n;
  }
  /// Logical data (keys + referenced values) governed by this partition:
  /// the quantity dynamic range partitioning bounds. Counts each value
  /// once, so vlogs shared with a sibling partition after a split are
  /// not double counted.
  uint64_t LogicalBytes() const {
    uint64_t n = UnsortedBytes();
    for (const auto& f : sorted) n += f.logical;
    return n;
  }
  uint64_t VlogBytes() const {
    uint64_t n = 0;
    for (const auto& f : vlogs) n += f.size;
    return n;
  }
  uint64_t TotalBytes() const {
    return UnsortedBytes() + SortedBytes() + VlogBytes();
  }
};

/// Immutable snapshot of the whole DB structure; pinned by readers via
/// shared_ptr while the DB installs newer versions.
struct VersionData {
  /// Partitions ordered by lower_bound ascending (first has "").
  std::vector<std::shared_ptr<const PartitionState>> partitions;

  /// Index of the partition responsible for `user_key`.
  int FindPartition(const Slice& user_key) const;

  /// The partition with id `pid`, or nullptr if no such partition exists
  /// in this version. Background jobs use this to re-validate a
  /// PartitionState snapshot against the current version before
  /// installing their edit.
  std::shared_ptr<const PartitionState> FindById(uint32_t pid) const;

  void AddLiveFiles(std::set<uint64_t>* live) const;
};

using VersionPtr = std::shared_ptr<const VersionData>;

/// A tagged, serializable delta applied to the version state and logged
/// to the MANIFEST. A single edit is applied atomically on recovery.
class VersionEdit {
 public:
  void Clear() { *this = VersionEdit(); }

  void SetLogNumber(uint64_t n) {
    has_log_number_ = true;
    log_number_ = n;
  }
  void SetNextFileNumber(uint64_t n) {
    has_next_file_number_ = true;
    next_file_number_ = n;
  }
  void SetLastSequence(SequenceNumber s) {
    has_last_sequence_ = true;
    last_sequence_ = s;
  }
  void AddPartition(uint32_t pid, const std::string& lower_bound) {
    new_partitions_.emplace_back(pid, lower_bound);
  }
  void RemovePartition(uint32_t pid) { removed_partitions_.push_back(pid); }
  void AddUnsortedFile(uint32_t pid, const FileMeta& f) {
    new_unsorted_.emplace_back(pid, f);
  }
  void RemoveUnsortedFile(uint32_t pid, uint64_t number) {
    removed_unsorted_.emplace_back(pid, number);
  }
  void AddSortedFile(uint32_t pid, const FileMeta& f) {
    new_sorted_.emplace_back(pid, f);
  }
  void RemoveSortedFile(uint32_t pid, uint64_t number) {
    removed_sorted_.emplace_back(pid, number);
  }
  void AddValueLog(uint32_t pid, const VlogMeta& v) {
    new_vlogs_.emplace_back(pid, v);
  }
  void RemoveValueLog(uint32_t pid, uint64_t number) {
    removed_vlogs_.emplace_back(pid, number);
  }
  void SetIndexCheckpoint(uint32_t pid, uint64_t file_number) {
    index_checkpoints_.emplace_back(pid, file_number);
  }
  /// Points the partition's anchor view at `file_number` (0 retires it).
  void SetAnchorView(uint32_t pid, uint64_t file_number) {
    anchor_views_.emplace_back(pid, file_number);
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

 private:
  friend class VersionSet;

  bool has_log_number_ = false;
  uint64_t log_number_ = 0;
  bool has_next_file_number_ = false;
  uint64_t next_file_number_ = 0;
  bool has_last_sequence_ = false;
  SequenceNumber last_sequence_ = 0;

  std::vector<std::pair<uint32_t, std::string>> new_partitions_;
  std::vector<uint32_t> removed_partitions_;
  std::vector<std::pair<uint32_t, FileMeta>> new_unsorted_;
  std::vector<std::pair<uint32_t, uint64_t>> removed_unsorted_;
  std::vector<std::pair<uint32_t, FileMeta>> new_sorted_;
  std::vector<std::pair<uint32_t, uint64_t>> removed_sorted_;
  std::vector<std::pair<uint32_t, VlogMeta>> new_vlogs_;
  std::vector<std::pair<uint32_t, uint64_t>> removed_vlogs_;
  std::vector<std::pair<uint32_t, uint64_t>> index_checkpoints_;
  std::vector<std::pair<uint32_t, uint64_t>> anchor_views_;
};

/// Owns the MANIFEST and the chain of immutable versions. Mutating
/// methods (Recover, LogAndApply, SetLastSequence, NewPartitionId,
/// AddLiveFiles) must be called with the owning DB's mutex held.
/// current(), NewFileNumber(), LogNumber() and LastSequence() are safe
/// without it: readers pin a version snapshot via the shared_ptr returned
/// by current() (guarded by a small internal mutex against concurrent
/// LogAndApply installs) and can then do I/O against that immutable
/// snapshot without holding any DB lock.
class VersionSet {
 public:
  VersionSet(Env* env, std::string dbname);
  ~VersionSet();

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  /// Recovers state from CURRENT/MANIFEST. Creates a fresh DB (with one
  /// empty partition) if none exists and `create_if_missing`.
  Status Recover(bool create_if_missing, bool error_if_exists);

  /// Applies *edit to the current state, logs it to the MANIFEST
  /// (synced), and installs the result as the new current version.
  Status LogAndApply(VersionEdit* edit);

  VersionPtr current() const EXCLUDES(current_mu_) {
    MutexLock l(&current_mu_);
    return current_;
  }

  uint64_t NewFileNumber() {
    return next_file_number_.fetch_add(1, std::memory_order_relaxed);
  }
  uint32_t NewPartitionId() { return next_partition_id_++; }
  uint64_t LogNumber() const { return log_number_; }
  SequenceNumber LastSequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber s) { last_sequence_ = s; }
  uint64_t ManifestFileNumber() const { return manifest_file_number_; }

  /// Collects every file number referenced by the current version and by
  /// versions still pinned by live iterators.
  void AddLiveFiles(std::set<uint64_t>* live);

 private:
  Status Apply(const VersionEdit& edit, VersionPtr base, VersionPtr* result);
  Status WriteSnapshot(log::Writer* log);
  Status CreateNew();

  Env* const env_;
  const std::string dbname_;

  std::atomic<uint64_t> next_file_number_{2};
  uint32_t next_partition_id_ = 1;
  uint64_t manifest_file_number_ = 0;
  uint64_t log_number_ = 0;
  SequenceNumber last_sequence_ = 0;

  /// Guards current_ against a racing LogAndApply install; held only for
  /// the shared_ptr load/store, never across I/O.
  mutable Mutex current_mu_;
  VersionPtr current_ GUARDED_BY(current_mu_);
  std::vector<std::weak_ptr<const VersionData>> pinned_;

  std::unique_ptr<class WritableFile> manifest_file_;
  std::unique_ptr<log::Writer> manifest_log_;
};

}  // namespace unikv

#endif  // UNIKV_CORE_VERSION_H_
