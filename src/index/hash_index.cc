#include "index/hash_index.h"

#include "util/coding.h"
#include "util/hash.h"
#include "util/perf_context.h"

namespace unikv {

namespace {
// Seeds deriving the independent hash functions h_1..h_{n+1}.
constexpr uint64_t kHashSeedBase = 0x9E3779B97F4A7C15ull;
}  // namespace

HashIndex::HashIndex(size_t expected_entries, int num_hashes)
    : num_hashes_(num_hashes) {
  size_t n = static_cast<size_t>(expected_entries / 0.8) + 16;
  buckets_.resize(n);
}

size_t HashIndex::BucketFor(const Slice& key, int hash_idx) const {
  uint64_t h = Hash64(key.data(), key.size(),
                      kHashSeedBase * (hash_idx + 1));
  return static_cast<size_t>(h % buckets_.size());
}

uint16_t HashIndex::KeyTag(const Slice& key) const {
  // h_{n+1}: an extra hash function; keep the top 16 bits.
  uint64_t h = Hash64(key.data(), key.size(),
                      kHashSeedBase * (num_hashes_ + 1));
  return static_cast<uint16_t>(h >> 48);
}

void HashIndex::Insert(const Slice& user_key, uint16_t table_id) {
  const uint16_t tag = KeyTag(user_key);
  // Probe candidate buckets h_1 .. h_n for an empty inline slot.
  for (int i = 0; i < num_hashes_; i++) {
    Bucket& b = buckets_[BucketFor(user_key, i)];
    if (b.table_id == kEmptyTable) {
      b.key_tag = tag;
      b.table_id = table_id;
      num_entries_++;
      return;
    }
  }
  // All candidates occupied: prepend an overflow entry to the chain of the
  // last candidate bucket, so the newest entry is found first.
  Bucket& b = buckets_[BucketFor(user_key, num_hashes_ - 1)];
  OverflowEntry e;
  e.key_tag = tag;
  e.table_id = table_id;
  e.next = b.overflow_head;
  overflow_.push_back(e);
  b.overflow_head = static_cast<uint32_t>(overflow_.size() - 1);
  num_entries_++;
}

void HashIndex::Lookup(const Slice& user_key,
                       std::vector<uint16_t>* candidates) const {
  PerfContext* perf = GetPerfContext();
  perf->hash_index_lookups++;
  const size_t candidates_before = candidates->size();
  const uint16_t tag = KeyTag(user_key);
  // Scan candidate buckets h_n .. h_1 (reverse of insertion probing), each
  // bucket's overflow chain (newest first) before its inline slot.
  for (int i = num_hashes_ - 1; i >= 0; i--) {
    const Bucket& b = buckets_[BucketFor(user_key, i)];
    perf->hash_index_probes++;
    // Overflow chains only hang off the last candidate bucket.
    if (i == num_hashes_ - 1) {
      uint32_t cur = b.overflow_head;
      while (cur != kNoOverflow) {
        const OverflowEntry& e = overflow_[cur];
        perf->hash_index_probes++;
        if (e.key_tag == tag) {
          candidates->push_back(e.table_id);
        }
        cur = e.next;
      }
    }
    if (b.table_id != kEmptyTable && b.key_tag == tag) {
      candidates->push_back(b.table_id);
    }
  }
  perf->hash_index_candidates += candidates->size() - candidates_before;
}

void HashIndex::Clear() {
  for (Bucket& b : buckets_) {
    b = Bucket();
  }
  overflow_.clear();
  num_entries_ = 0;
}

size_t HashIndex::MemoryUsage() const {
  return buckets_.size() * sizeof(Bucket) +
         overflow_.size() * sizeof(OverflowEntry);
}

double HashIndex::InlineUtilization() const {
  size_t used = 0;
  for (const Bucket& b : buckets_) {
    if (b.table_id != kEmptyTable) used++;
  }
  return buckets_.empty() ? 0.0
                          : static_cast<double>(used) / buckets_.size();
}

// Checkpoint image:
//   magic(4B) num_hashes(varint) num_buckets(varint) num_overflow(varint)
//   num_entries(varint)
//   buckets: key_tag(2B) table_id(2B) overflow_head(4B) each
//   overflow: key_tag(2B) table_id(2B) next(4B) each
//   crc32c(4B) over everything before it
namespace {
constexpr uint32_t kCheckpointMagic = 0x48494458;  // "HIDX"
}

void HashIndex::EncodeTo(std::string* dst) const {
  PutFixed32(dst, kCheckpointMagic);
  PutVarint32(dst, static_cast<uint32_t>(num_hashes_));
  PutVarint64(dst, buckets_.size());
  PutVarint64(dst, overflow_.size());
  PutVarint64(dst, num_entries_);
  for (const Bucket& b : buckets_) {
    PutFixed32(dst, (static_cast<uint32_t>(b.key_tag) << 16) | b.table_id);
    PutFixed32(dst, b.overflow_head);
  }
  for (const OverflowEntry& e : overflow_) {
    PutFixed32(dst, (static_cast<uint32_t>(e.key_tag) << 16) | e.table_id);
    PutFixed32(dst, e.next);
  }
}

Status HashIndex::DecodeFrom(Slice input) {
  uint32_t magic;
  if (!GetFixed32(&input, &magic) || magic != kCheckpointMagic) {
    return Status::Corruption("bad hash index checkpoint magic");
  }
  uint32_t num_hashes;
  uint64_t num_buckets, num_overflow, num_entries;
  if (!GetVarint32(&input, &num_hashes) ||
      !GetVarint64(&input, &num_buckets) ||
      !GetVarint64(&input, &num_overflow) ||
      !GetVarint64(&input, &num_entries)) {
    return Status::Corruption("bad hash index checkpoint header");
  }
  if (input.size() < (num_buckets + num_overflow) * 8) {
    return Status::Corruption("truncated hash index checkpoint");
  }
  num_hashes_ = static_cast<int>(num_hashes);
  num_entries_ = num_entries;
  buckets_.assign(num_buckets, Bucket());
  overflow_.assign(num_overflow, OverflowEntry());
  for (uint64_t i = 0; i < num_buckets; i++) {
    uint32_t packed, head;
    GetFixed32(&input, &packed);
    GetFixed32(&input, &head);
    buckets_[i].key_tag = static_cast<uint16_t>(packed >> 16);
    buckets_[i].table_id = static_cast<uint16_t>(packed & 0xFFFF);
    buckets_[i].overflow_head = head;
  }
  for (uint64_t i = 0; i < num_overflow; i++) {
    uint32_t packed, next;
    GetFixed32(&input, &packed);
    GetFixed32(&input, &next);
    overflow_[i].key_tag = static_cast<uint16_t>(packed >> 16);
    overflow_[i].table_id = static_cast<uint16_t>(packed & 0xFFFF);
    overflow_[i].next = next;
  }
  return Status::OK();
}

}  // namespace unikv
