file(REMOVE_RECURSE
  "CMakeFiles/session_store.dir/session_store.cc.o"
  "CMakeFiles/session_store.dir/session_store.cc.o.d"
  "session_store"
  "session_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
