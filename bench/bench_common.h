#ifndef UNIKV_BENCH_BENCH_COMMON_H_
#define UNIKV_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <string>

#include "benchutil/driver.h"

namespace unikv {
namespace bench {

/// Root scratch directory for a bench binary.
inline std::string BenchRoot(const std::string& name) {
  const char* base = std::getenv("UNIKV_BENCH_DIR");
  std::string root =
      std::string(base != nullptr ? base : "/tmp") + "/unikv_bench";
  // Best-effort scratch setup: survivors of a failed cleanup only skew
  // disk accounting, and a failed create surfaces on the first file open.
  (void)Env::Default()->CreateDir(root);
  root += "/" + name;
  (void)RemoveDirRecursively(Env::Default(), root);
  (void)Env::Default()->CreateDir(root);
  return root;
}

/// Laptop-scale options used across the macro benchmarks. The paper's
/// absolute sizes (GBs, 100s of MB limits) are scaled down so every
/// experiment exercises multiple flush/merge/GC/split cycles within the
/// bench budget while preserving the structural ratios
/// (write_buffer < unsorted_limit < partition_size_limit).
inline Options BenchOptions() {
  Options opt;
  opt.write_buffer_size = 1 * 1024 * 1024;
  opt.unsorted_limit = 4 * 1024 * 1024;
  opt.partition_size_limit = 24 * 1024 * 1024;
  opt.sorted_table_size = 1 * 1024 * 1024;
  opt.gc_garbage_threshold = 6 * 1024 * 1024;
  opt.scan_merge_limit = 16;
  opt.block_cache_size = 8 * 1024 * 1024;
  opt.max_bytes_for_level_base = 8 * 1024 * 1024;
  opt.l0_compaction_trigger = 4;
  opt.tiered_runs_per_level = 4;
  opt.value_fetch_threads = 4;
  return opt;
}

/// Scaled op count helper.
inline uint64_t Scaled(uint64_t n) {
  return static_cast<uint64_t>(n * BenchScale());
}

}  // namespace bench
}  // namespace unikv

#endif  // UNIKV_BENCH_BENCH_COMMON_H_
