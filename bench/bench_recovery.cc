// Experiment T3 — Crash-recovery time.
//
// Paper: recovery replays the WAL, reloads partition metadata from the
// MANIFEST, and restores the hash indexes from the latest checkpoints
// (scanning only the tables flushed after the checkpoint). Expected
// shape: recovery time grows mildly with DB size; checkpointing cuts the
// index-rebuild component versus full rescans of the UnsortedStore.

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("recovery");
  const size_t kValueSize = 1024;

  PrintTableHeader("T3 recovery time vs dataset size",
                   {"keys", "checkpointed_ms", "rescan_ms"});
  for (uint64_t keys : {Scaled(10000), Scaled(20000), Scaled(40000)}) {
    std::vector<std::string> row;
    row.push_back(std::to_string(keys));
    for (bool checkpoint : {true, false}) {
      Options opt = BenchOptions();
      opt.index_checkpoint_interval = checkpoint ? 2 : 0;
      // Keep data in the UnsortedStore so index recovery has work to do.
      opt.unsorted_limit = 256 * 1024 * 1024;
      opt.partition_size_limit = 1024ull * 1024 * 1024;
      BenchDb bdb(Engine::kUniKV, opt, root);

      LoadSpec load;
      load.num_keys = keys;
      load.value_size = kValueSize;
      // Load WITHOUT CompactAll-driven merges: write directly.
      WriteOptions wo;
      for (uint64_t i = 0; i < keys; i++) {
        OrDie(bdb.db()->Put(wo, KeyGenerator::Key(i),
                            MakeValue(i, kValueSize)),
              "Put");
      }
      OrDie(bdb.db()->FlushMemTable(), "FlushMemTable");

      double secs = bdb.Reopen();
      row.push_back(Fmt(secs * 1000.0, 1));

      // Sanity: data survives.
      std::string value;
      Status s = bdb.db()->Get(ReadOptions(), KeyGenerator::Key(keys / 2),
                               &value);
      if (!s.ok()) {
        std::fprintf(stderr, "recovery check failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
    PrintTableRow(row);
  }

  // WAL-replay component: crash with a populated memtable (no flush).
  PrintTableHeader("T3b WAL replay cost (unflushed tail)",
                   {"tail_keys", "reopen_ms"});
  for (uint64_t tail : {Scaled(1000), Scaled(4000)}) {
    Options opt = BenchOptions();
    opt.write_buffer_size = 64 * 1024 * 1024;  // Keep the tail in the WAL.
    BenchDb bdb(Engine::kUniKV, opt, root);
    for (uint64_t i = 0; i < tail; i++) {
      OrDie(bdb.db()->Put(WriteOptions(), KeyGenerator::Key(i),
                          MakeValue(i, kValueSize)),
            "Put");
    }
    double secs = bdb.Reopen();
    PrintTableRow({std::to_string(tail), Fmt(secs * 1000.0, 1)});
  }
  return 0;
}
