#ifndef UNIKV_UTIL_EVENT_LOGGER_H_
#define UNIKV_UTIL_EVENT_LOGGER_H_

#include <memory>
#include <string>

#include "util/env.h"
#include "util/metrics.h"
#include "util/sync.h"

namespace unikv {

/// Structured background-event log: one JSON object per line, appended to
/// `<dir>/EVENTS`. Flush/merge/scan-merge/GC/split jobs log their
/// duration, bytes in/out, and resulting file counts here, so perf work
/// can reconstruct what the engine did without a debugger.
///
/// The file is opened lazily on the first event (the DB directory may not
/// exist when the logger is constructed) and opened for append so event
/// history survives reopen. Logging failures disable the logger rather
/// than failing the job that reported the event. Thread-safe.
///
/// With `max_bytes > 0` the log is size-capped: once appending the next
/// line would push `EVENTS` past the cap, the current file is rotated to
/// `EVENTS.old` (replacing any previous rotation) and a fresh `EVENTS`
/// is started, bounding on-disk history to at most ~2x the cap.
class EventLogger {
 public:
  static constexpr const char* kFileName = "EVENTS";
  static constexpr const char* kOldFileName = "EVENTS.old";

  EventLogger(Env* env, std::string dir, uint64_t max_bytes = 0);
  ~EventLogger();

  EventLogger(const EventLogger&) = delete;
  EventLogger& operator=(const EventLogger&) = delete;

  /// Stamps `event` with the event name and a `ts_micros` wall-clock
  /// field, then appends the finished object as one line. Consumes the
  /// builder.
  void Log(const Slice& event_name, JsonBuilder* event);

  /// True once logging has permanently failed (or before the first Log).
  bool disabled() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return disabled_;
  }

 private:
  Env* const env_;
  const std::string dir_;
  const uint64_t max_bytes_;
  mutable Mutex mu_;
  bool opened_ GUARDED_BY(mu_) = false;
  bool disabled_ GUARDED_BY(mu_) = false;
  // Size of the current EVENTS file.
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<WritableFile> file_ GUARDED_BY(mu_);
};

}  // namespace unikv

#endif  // UNIKV_UTIL_EVENT_LOGGER_H_
