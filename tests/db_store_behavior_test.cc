// White-box behavioral tests of the UniKV store machinery: size-based
// scan merges, partial KV separation thresholds, hash-index maintenance
// across merge epochs, and background-error surfacing.

#include <gtest/gtest.h>

#include <memory>

#include "core/db.h"
#include "core/filename.h"
#include "test_util.h"
#include "util/random.h"

namespace unikv {
namespace {

int CountFiles(const std::string& dir, FileType want) {
  std::vector<std::string> children;
  // Empty-on-failure: a zero file count fails the caller's assertion.
  (void)Env::Default()->GetChildren(dir, &children);
  int n = 0;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) && type == want) n++;
  }
  return n;
}

class DbStoreBehaviorTest : public testing::Test {
 protected:
  void Open(const Options& opt, const std::string& name) {
    dir_ = test::NewTestDir(name);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }

  std::string Sstables() {
    std::string v;
    db_->GetProperty("db.sstables", &v);
    return v;
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbStoreBehaviorTest, SizeBasedScanMergeConsolidatesUnsorted) {
  Options opt;
  opt.write_buffer_size = 16 * 1024;
  opt.unsorted_limit = 8 * 1024 * 1024;  // Never a regular merge.
  opt.scan_merge_limit = 4;              // Consolidate at 4 tables.
  Open(opt, "behavior_scanmerge");

  // Each wave of ~40KiB forces a flush; after 4+ flushes the background
  // scan merge must fold the tables into one.
  for (int wave = 0; wave < 6; wave++) {
    for (int i = 0; i < 40; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(wave * 1000 + i),
                           test::TestValue(i, 1024))
                      .ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  // Allow the background thread to finish consolidation.
  std::string stats;
  for (int tries = 0; tries < 100; tries++) {
    db_->GetProperty("db.stats", &stats);
    if (stats.find("scan_merges=0") == std::string::npos) break;
    Env::Default()->SleepForMicroseconds(10000);
  }
  EXPECT_EQ(stats.find("scan_merges=0 "), std::string::npos)
      << "no scan merge happened: " << stats << Sstables();

  // Data intact afterwards (index was rebuilt for the merged table).
  for (int wave = 0; wave < 6; wave++) {
    for (int i = 0; i < 40; i += 7) {
      std::string value;
      ASSERT_TRUE(db_->Get(ReadOptions(),
                           test::TestKey(wave * 1000 + i), &value)
                      .ok())
          << wave << "/" << i;
      EXPECT_EQ(test::TestValue(i, 1024), value);
    }
  }
}

TEST_F(DbStoreBehaviorTest, ScanMergeKeepsNewestVersionAndTombstones) {
  Options opt;
  opt.write_buffer_size = 16 * 1024;
  opt.unsorted_limit = 8 * 1024 * 1024;
  opt.scan_merge_limit = 3;
  Open(opt, "behavior_scanmerge2");

  // Wave 1: put keys; wave 2: overwrite some; wave 3: delete some.
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                         test::TestValue(i, 1024)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 0; i < 30; i += 2) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "v2").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 0; i < 30; i += 3) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), test::TestKey(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  // Wait for the scan merge.
  std::string stats;
  for (int tries = 0; tries < 100; tries++) {
    db_->GetProperty("db.stats", &stats);
    if (stats.find("scan_merges=0") == std::string::npos) break;
    Env::Default()->SleepForMicroseconds(10000);
  }

  for (int i = 0; i < 30; i++) {
    std::string value;
    Status s = db_->Get(ReadOptions(), test::TestKey(i), &value);
    if (i % 3 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << i;
    } else if (i % 2 == 0) {
      ASSERT_TRUE(s.ok()) << i;
      EXPECT_EQ("v2", value);
    } else {
      ASSERT_TRUE(s.ok()) << i;
      EXPECT_EQ(test::TestValue(i, 1024), value);
    }
  }
}

TEST_F(DbStoreBehaviorTest, SmallValuesStayInline) {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 64 * 1024;
  opt.value_separation_threshold = 128;
  Open(opt, "behavior_inline");

  // All values below the threshold: after merging, no value log should
  // exist (differentiated small-KV management).
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 64))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ(0, CountFiles(dir_, FileType::kValueLogFile)) << Sstables();
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(42), &value).ok());
  EXPECT_EQ(test::TestValue(42, 64), value);

  // Mixed sizes: large values go to the log, small stay inline, and both
  // read back correctly (incl. through scans).
  for (int i = 2000; i < 2200; i++) {
    size_t len = (i % 2 == 0) ? 32 : 2048;
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, len))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_GT(CountFiles(dir_, FileType::kValueLogFile), 0);
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(db_->Scan(ReadOptions(), test::TestKey(2000), 200, &rows).ok());
  ASSERT_EQ(200u, rows.size());
  for (int i = 0; i < 200; i++) {
    size_t len = ((2000 + i) % 2 == 0) ? 32 : 2048;
    EXPECT_EQ(test::TestValue(2000 + i, len), rows[i].second) << i;
  }
}

TEST_F(DbStoreBehaviorTest, HashIndexClearedAfterMergeStillServesReads) {
  Options opt;
  opt.write_buffer_size = 16 * 1024;
  opt.unsorted_limit = 64 * 1024;
  Open(opt, "behavior_index_epochs");

  std::string entries_before, entries_after;
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                         test::TestValue(i, 256))
                    .ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->GetProperty("db.hash-index-entries", &entries_before);
  EXPECT_GT(std::stoll(entries_before), 0);

  ASSERT_TRUE(db_->CompactAll().ok());  // Merge clears the index.
  db_->GetProperty("db.hash-index-entries", &entries_after);
  EXPECT_EQ(0, std::stoll(entries_after));

  // Reads now come from the SortedStore path.
  for (int i = 0; i < 500; i += 11) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i, 256), value);
  }

  // A new epoch repopulates the index.
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "epoch2").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  db_->GetProperty("db.hash-index-entries", &entries_after);
  EXPECT_GT(std::stoll(entries_after), 0);
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(5), &value).ok());
  EXPECT_EQ("epoch2", value);
}

TEST_F(DbStoreBehaviorTest, NegativeLookupsTouchAtMostOneSortedTable) {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 64 * 1024;
  Open(opt, "behavior_negative");
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i * 2),
                         test::TestValue(i, 256))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());

  // Absent keys inside the range: NotFound, never a false value.
  for (int i = 0; i < 1000; i += 13) {
    std::string value;
    EXPECT_TRUE(db_->Get(ReadOptions(), test::TestKey(i * 2 + 1), &value)
                    .IsNotFound())
        << i;
  }
  // Absent keys outside the range.
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), "zzzz", &value).IsNotFound());
  EXPECT_TRUE(db_->Get(ReadOptions(), "", &value).IsNotFound());
}

}  // namespace
}  // namespace unikv
