#ifndef UNIKV_MEM_WRITE_BATCH_H_
#define UNIKV_MEM_WRITE_BATCH_H_

#include <string>

#include "core/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace unikv {

class MemTable;

/// WriteBatch holds an ordered collection of updates to apply atomically.
/// Its serialized representation is exactly what is written to the WAL:
///   sequence(8B) count(4B) records[count]
///   record := kTypeValue    varstring(key) varstring(value)
///           | kTypeDeletion varstring(key)
class WriteBatch {
 public:
  WriteBatch();

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  /// Number of records in the batch.
  int Count() const;

  /// Approximate size in bytes of the serialized batch.
  size_t ApproximateSize() const { return rep_.size(); }

  /// Handler used by Iterate().
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  // --- Internal plumbing (used by DB implementations) ---
  SequenceNumber Sequence() const;
  void SetSequence(SequenceNumber seq);
  Slice Contents() const { return Slice(rep_); }
  void SetContents(const Slice& contents);
  /// Appends src's records to this batch.
  void Append(const WriteBatch& src);
  /// Inserts the batch contents into a memtable using its stored sequence.
  Status InsertInto(MemTable* memtable) const;

 private:
  void SetCount(int n);

  std::string rep_;
};

}  // namespace unikv

#endif  // UNIKV_MEM_WRITE_BATCH_H_
