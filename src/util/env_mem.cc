#include <map>
#include <set>

#include "util/env.h"
#include "util/sync.h"

namespace unikv {

namespace {

// A file's contents plus the prefix length that has been made durable via
// Sync(). DropUnsyncedData() truncates back to synced_size.
struct MemFile {
  std::string data;
  size_t synced_size = 0;
};

class MemEnvImpl;

class MemSequentialFile : public SequentialFile {
 public:
  MemSequentialFile(std::shared_ptr<MemFile> file) : file_(std::move(file)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    size_t available = file_->data.size() - std::min(pos_, file_->data.size());
    size_t len = std::min(n, available);
    memcpy(scratch, file_->data.data() + pos_, len);
    *result = Slice(scratch, len);
    pos_ += len;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  std::shared_ptr<MemFile> file_;
  size_t pos_ = 0;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  MemRandomAccessFile(std::shared_ptr<MemFile> file) : file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (offset >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t len = std::min(n, file_->data.size() - static_cast<size_t>(offset));
    memcpy(scratch, file_->data.data() + offset, len);
    *result = Slice(scratch, len);
    return Status::OK();
  }

 private:
  std::shared_ptr<MemFile> file_;
};

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<MemFile> file) : file_(std::move(file)) {}

  Status Append(const Slice& data) override {
    file_->data.append(data.data(), data.size());
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override {
    file_->synced_size = file_->data.size();
    return Status::OK();
  }

 private:
  std::shared_ptr<MemFile> file_;
};

class MemEnvImpl : public MemEnv {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    MutexLock l(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::NotFound(fname);
    }
    result->reset(new MemSequentialFile(it->second));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    MutexLock l(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::NotFound(fname);
    }
    result->reset(new MemRandomAccessFile(it->second));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    MutexLock l(&mu_);
    auto file = std::make_shared<MemFile>();
    files_[fname] = file;
    result->reset(new MemWritableFile(std::move(file)));
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override {
    MutexLock l(&mu_);
    auto it = files_.find(fname);
    std::shared_ptr<MemFile> file;
    if (it == files_.end()) {
      file = std::make_shared<MemFile>();
      files_[fname] = file;
    } else {
      file = it->second;
    }
    result->reset(new MemWritableFile(std::move(file)));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    MutexLock l(&mu_);
    return files_.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    MutexLock l(&mu_);
    result->clear();
    const std::string prefix = dir.back() == '/' ? dir : dir + "/";
    std::set<std::string> names;
    for (const auto& [path, file] : files_) {
      if (path.size() > prefix.size() &&
          path.compare(0, prefix.size(), prefix) == 0) {
        std::string rest = path.substr(prefix.size());
        size_t slash = rest.find('/');
        names.insert(slash == std::string::npos ? rest
                                                : rest.substr(0, slash));
      }
    }
    result->assign(names.begin(), names.end());
    if (result->empty() && dirs_.count(dir) == 0) {
      return Status::NotFound(dir);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    MutexLock l(&mu_);
    if (files_.erase(fname) == 0) {
      return Status::NotFound(fname);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    MutexLock l(&mu_);
    dirs_.insert(dirname);
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    MutexLock l(&mu_);
    dirs_.erase(dirname);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    MutexLock l(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      *size = 0;
      return Status::NotFound(fname);
    }
    *size = it->second->data.size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    MutexLock l(&mu_);
    auto it = files_.find(src);
    if (it == files_.end()) {
      return Status::NotFound(src);
    }
    files_[target] = it->second;
    files_.erase(it);
    return Status::OK();
  }

  uint64_t NowMicros() override { return Env::Default()->NowMicros(); }
  void SleepForMicroseconds(int micros) override {
    Env::Default()->SleepForMicroseconds(micros);
  }

  void DropUnsyncedData() override {
    MutexLock l(&mu_);
    for (auto it = files_.begin(); it != files_.end();) {
      MemFile* f = it->second.get();
      if (f->synced_size == 0) {
        // Never synced: the file would not have survived the crash.
        it = files_.erase(it);
      } else {
        f->data.resize(f->synced_size);
        ++it;
      }
    }
  }

 private:
  Mutex mu_;
  std::map<std::string, std::shared_ptr<MemFile>> files_ GUARDED_BY(mu_);
  std::set<std::string> dirs_ GUARDED_BY(mu_);
};

}  // namespace

MemEnv* NewMemEnv() { return new MemEnvImpl(); }

}  // namespace unikv
