#ifndef UNIKV_UTIL_ARENA_H_
#define UNIKV_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace unikv {

/// Arena provides fast allocation of many small objects with bulk
/// deallocation (everything is freed when the arena is destroyed). Used by
/// the memtable/skiplist.
class Arena {
 public:
  Arena();
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to a newly allocated block of `bytes` bytes.
  char* Allocate(size_t bytes);

  /// Allocate with normal malloc alignment guarantees.
  char* AllocateAligned(size_t bytes);

  /// Estimate of total memory used by the arena.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<char*> blocks_;
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::Allocate(size_t bytes) {
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace unikv

#endif  // UNIKV_UTIL_ARENA_H_
