file(REMOVE_RECURSE
  "CMakeFiles/db_partition_test.dir/db_partition_test.cc.o"
  "CMakeFiles/db_partition_test.dir/db_partition_test.cc.o.d"
  "db_partition_test"
  "db_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
