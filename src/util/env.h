#ifndef UNIKV_UTIL_ENV_H_
#define UNIKV_UTIL_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace unikv {

/// A file abstraction for reading sequentially through a file.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to n bytes. Sets *result to the data read (may point into
  /// scratch, which must be at least n bytes).
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

/// A file abstraction for randomly reading the contents of a file.
/// Thread-safe for concurrent Read() calls.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;

  /// Zero-copy read: if [offset, offset+n) is directly addressable (e.g.
  /// the implementation memory-maps the file), points *result at those
  /// bytes — valid until the file object is destroyed — and returns true.
  /// Returns false when not supported or the range is not addressable
  /// (caller falls back to Read). Thread-safe like Read.
  virtual bool ReadZeroCopy(uint64_t offset, size_t n, Slice* result) const {
    (void)offset;
    (void)n;
    (void)result;
    return false;
  }

  /// Advises the OS that [offset, offset+n) will be read soon (readahead).
  /// Default is a no-op.
  virtual void ReadaheadHint(uint64_t offset, size_t n) const {
    (void)offset;
    (void)n;
  }
};

/// A file abstraction for sequential (append-only) writing.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  /// Persists buffered and OS-cached data to stable storage.
  virtual Status Sync() = 0;
};

/// Env abstracts the operating-system facilities the store uses, so tests
/// can substitute an in-memory filesystem and benchmarks can instrument I/O.
/// Opaque handle for a held DB-directory lock; release via
/// Env::UnlockFile.
class FileLock {
 public:
  FileLock() = default;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  virtual ~FileLock() = default;
};

class Env {
 public:
  virtual ~Env() = default;

  /// The default Env, backed by the local POSIX filesystem. Never deleted.
  static Env* Default();

  /// Acquires an exclusive advisory lock on `fname` (created if missing)
  /// and returns a handle the caller must release via UnlockFile. Fails —
  /// without blocking — while any other holder has it. The base
  /// implementation excludes holders within this process by pathname
  /// (enough for in-memory Envs); PosixEnv overrides it with flock(2) so
  /// a second *process* opening the same DB directory is refused too.
  virtual Status LockFile(const std::string& fname, FileLock** lock);
  virtual Status UnlockFile(FileLock* lock);

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  /// Opens for append, creating if missing.
  virtual Status NewAppendableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Persists directory metadata (file creations, deletions and renames
  /// inside `dirname`) to stable storage. A RenameFile is only guaranteed
  /// to survive a crash once the parent directory has been synced. The
  /// default is a no-op for Envs whose metadata operations are durable
  /// immediately (e.g. MemEnv).
  virtual Status SyncDir(const std::string& dirname) {
    (void)dirname;
    return Status::OK();
  }

  virtual uint64_t NowMicros() = 0;
  virtual void SleepForMicroseconds(int micros) = 0;
};

/// I/O counters accumulated by InstrumentedEnv; used to compute read/write
/// amplification in benchmarks.
struct IoStats {
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> syncs{0};

  void Reset() {
    bytes_read = 0;
    bytes_written = 0;
    reads = 0;
    writes = 0;
    syncs = 0;
  }
};

/// An Env wrapper that forwards all calls to a base Env while counting
/// bytes read/written and sync calls.
class InstrumentedEnv : public Env {
 public:
  explicit InstrumentedEnv(Env* base) : base_(base) {}

  IoStats* stats() { return &stats_; }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewAppendableFile(const std::string& fname,
                           std::unique_ptr<WritableFile>* result) override;

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  Status SyncDir(const std::string& dirname) override {
    return base_->SyncDir(dirname);
  }
  Status LockFile(const std::string& fname, FileLock** lock) override {
    return base_->LockFile(fname, lock);
  }
  Status UnlockFile(FileLock* lock) override {
    return base_->UnlockFile(lock);
  }
  uint64_t NowMicros() override { return base_->NowMicros(); }
  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

 private:
  Env* base_;
  IoStats stats_;
};

/// Creates a new in-memory Env for tests. Supports crash simulation: files
/// track which prefix has been Sync()ed, and DropUnsyncedData() reverts all
/// files to their last-synced state as a power failure would.
class MemEnv;
MemEnv* NewMemEnv();

class MemEnv : public Env {
 public:
  /// Simulates a power failure: truncates every file back to the last
  /// explicitly synced length and forgets unsynced renames/creations.
  virtual void DropUnsyncedData() = 0;
};

/// Removes `dir` and everything inside it (one level; subdirectories are
/// recursed). Utility for tests and benchmarks.
Status RemoveDirRecursively(Env* env, const std::string& dir);

}  // namespace unikv

#endif  // UNIKV_UTIL_ENV_H_
