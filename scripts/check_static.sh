#!/usr/bin/env bash
# Static-analysis gate for UniKV.
#
#   scripts/check_static.sh [--lint-only]
#
# Three layers, strongest available toolchain wins:
#   1. Raw-mutex lint (pure grep, runs everywhere): std::mutex and friends
#      are forbidden outside util/sync.h — all locking must go through the
#      annotated unikv::Mutex/CondVar/MutexLock wrappers so Clang Thread
#      Safety Analysis can see it.
#   2. Thread-safety analysis build (needs clang++): configures a scratch
#      build with -DUNIKV_ANALYZE=ON, turning the GUARDED_BY/REQUIRES
#      annotations into -Werror=thread-safety.
#   3. clang-tidy (needs clang-tidy + a compile_commands.json): the
#      curated check set in .clang-tidy, warnings as errors.
#
# Exit codes: 0 = everything that could run passed; 1 = a check failed;
# 77 = lint passed but the clang layers were skipped (no clang on PATH).
# ctest maps 77 to SKIPPED so CI on gcc-only boxes reports the truth
# instead of a hollow green.
set -u

cd "$(dirname "$0")/.."
LINT_ONLY=0
[ "${1:-}" = "--lint-only" ] && LINT_ONLY=1

fail=0

# ---------------------------------------------------------- 1. grep lint
# util/sync.h is the only file allowed to name the std primitives (it
# wraps them). Tests and benches must use the wrappers too.
echo "== raw-mutex lint =="
matches=$(grep -rn --include='*.cc' --include='*.h' \
    -e 'std::mutex' -e 'std::timed_mutex' -e 'std::recursive_mutex' \
    -e 'std::shared_mutex' -e 'std::lock_guard' -e 'std::unique_lock' \
    -e 'std::scoped_lock' -e 'std::condition_variable' \
    src/ tests/ bench/ examples/ 2>/dev/null \
    | grep -v '^src/util/sync\.h:' || true)
if [ -n "$matches" ]; then
  echo "FAIL: raw std locking primitives outside util/sync.h:"
  echo "$matches"
  echo "Use unikv::Mutex / unikv::CondVar / unikv::MutexLock instead."
  fail=1
else
  echo "OK: no raw std locking primitives outside util/sync.h"
fi

if [ "$LINT_ONLY" = 1 ]; then
  exit "$fail"
fi

skipped=0

# --------------------------------------- 2. thread-safety analysis build
echo "== clang thread-safety build =="
if command -v clang++ >/dev/null 2>&1; then
  BUILD_DIR=build-analyze
  if cmake -B "$BUILD_DIR" -S . \
        -DCMAKE_CXX_COMPILER=clang++ -DUNIKV_ANALYZE=ON \
        -DCMAKE_BUILD_TYPE=Debug >"$BUILD_DIR.cmake.log" 2>&1 \
     && cmake --build "$BUILD_DIR" -j "$(nproc)" >"$BUILD_DIR.build.log" 2>&1
  then
    echo "OK: -Werror=thread-safety build clean"
  else
    echo "FAIL: thread-safety analysis build failed; last 40 lines:"
    tail -40 "$BUILD_DIR.build.log" "$BUILD_DIR.cmake.log" 2>/dev/null
    fail=1
  fi
else
  echo "SKIP: clang++ not found; thread-safety analysis not run"
  skipped=1
fi

# ------------------------------------------------------------ 3. clang-tidy
echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  CDB=""
  for d in build-analyze build; do
    [ -f "$d/compile_commands.json" ] && CDB="$d" && break
  done
  if [ -z "$CDB" ]; then
    echo "SKIP: no compile_commands.json (configure a build first)"
    skipped=1
  else
    if clang-tidy -p "$CDB" --quiet src/*/*.cc >clang-tidy.log 2>&1; then
      echo "OK: clang-tidy clean"
    else
      echo "FAIL: clang-tidy reported errors; last 40 lines:"
      tail -40 clang-tidy.log
      fail=1
    fi
  fi
else
  echo "SKIP: clang-tidy not found"
  skipped=1
fi

if [ "$fail" != 0 ]; then
  exit 1
fi
if [ "$skipped" != 0 ]; then
  exit 77
fi
exit 0
