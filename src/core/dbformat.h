#ifndef UNIKV_CORE_DBFORMAT_H_
#define UNIKV_CORE_DBFORMAT_H_

#include <cassert>
#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace unikv {

/// Monotonic sequence number assigned to every write.
using SequenceNumber = uint64_t;

// Leave room for the 8-bit type tag in the packed trailer.
static constexpr SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

/// Entry types stored in the trailer of an internal key.
enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  /// The value bytes follow inline (memtable / UnsortedStore entries).
  kTypeValue = 0x1,
  /// The value field is an encoded ValuePointer into a value log
  /// (SortedStore entries after partial KV separation).
  kTypeValuePointer = 0x2,
};

/// kValueTypeForSeek is the highest-numbered type, so that a seek to a
/// (user_key, seq) positions before all entries for that user key with
/// sequence <= seq.
static constexpr ValueType kValueTypeForSeek = kTypeValuePointer;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  assert(seq <= kMaxSequenceNumber);
  return (seq << 8) | t;
}

/// An internal key is: user_key bytes + 8-byte packed (seq<<8 | type).
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;

  ParsedInternalKey() {}
  ParsedInternalKey(const Slice& u, const SequenceNumber& seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

inline void AppendInternalKey(std::string* result,
                              const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  const size_t n = internal_key.size();
  if (n < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + n - 8);
  uint8_t c = num & 0xff;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), n - 8);
  return c <= static_cast<uint8_t>(kTypeValuePointer);
}

/// Returns the user key portion of an internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8) >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return static_cast<ValueType>(
      DecodeFixed64(internal_key.data() + internal_key.size() - 8) & 0xff);
}

/// Orders internal keys by user key ascending, then by sequence number
/// descending (newer entries first), then type descending.
class InternalKeyComparator {
 public:
  int Compare(const Slice& a, const Slice& b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r == 0) {
      const uint64_t anum = DecodeFixed64(a.data() + a.size() - 8);
      const uint64_t bnum = DecodeFixed64(b.data() + b.size() - 8);
      if (anum > bnum) {
        r = -1;
      } else if (anum < bnum) {
        r = +1;
      }
    }
    return r;
  }

  int operator()(const Slice& a, const Slice& b) const { return Compare(a, b); }
};

/// A helper to format a (user_key, sequence) pair for memtable lookup:
///   klength varint32 | userkey | seq<<8|kValueTypeForSeek
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  ~LookupKey();

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  /// Key suitable for the memtable's internal format (length-prefixed).
  Slice memtable_key() const { return Slice(start_, end_ - start_); }
  /// The internal key (userkey + trailer).
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }
  /// The user key.
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // Avoids allocation for short keys.
};

inline LookupKey::LookupKey(const Slice& user_key, SequenceNumber s) {
  size_t usize = user_key.size();
  size_t needed = usize + 13;  // A conservative estimate.
  char* dst;
  if (needed <= sizeof(space_)) {
    dst = space_;
  } else {
    dst = new char[needed];
  }
  start_ = dst;
  dst = EncodeVarint32(dst, static_cast<uint32_t>(usize + 8));
  kstart_ = dst;
  std::memcpy(dst, user_key.data(), usize);
  dst += usize;
  EncodeFixed64(dst, PackSequenceAndType(s, kValueTypeForSeek));
  dst += 8;
  end_ = dst;
}

inline LookupKey::~LookupKey() {
  if (start_ != space_) delete[] start_;
}

}  // namespace unikv

#endif  // UNIKV_CORE_DBFORMAT_H_
