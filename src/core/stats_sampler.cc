// The StatsSampler: a background thread (off by default, enabled with
// Options::stats_sample_interval_ms > 0) that periodically snapshots the
// engine's cumulative counters under the DB mutex, keeps the snapshots in
// a bounded in-memory ring served by the `db.stats.history` property, and
// appends one `stats_sample` line per interval to the EVENTS log carrying
// both the interval deltas (d_*) and the cumulative values (cum_*) — so
// the deltas across any run of lines telescope exactly to the cumulative
// counters, and a dropped line costs at most one interval of history.

#include <algorithm>
#include <chrono>

#include "core/unikv_db.h"

namespace unikv {

void UniKVDB::StatsSamplerThread() {
  const auto interval =
      std::chrono::milliseconds(options_.stats_sample_interval_ms);
  MutexLock lock(&mu_);
  // Baseline snapshot: the first logged interval reports deltas against
  // engine state at sampler start, not against zero.
  StatsSample prev = TakeStatsSampleLocked();
  while (!shutting_down_) {
    // Deadline loop: spurious wakeups re-wait for the remainder of the
    // interval, and a shutdown signal ends the wait early.
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (!shutting_down_ && std::chrono::steady_clock::now() < deadline) {
      sampler_cv_.TimedWaitUntil(deadline);
    }
    if (shutting_down_) break;
    StatsSample cur = TakeStatsSampleLocked();
    stats_history_.push_back(cur);
    while (stats_history_.size() > options_.stats_history_size) {
      stats_history_.pop_front();
    }
    // The event logger serializes on its own mutex; logging under mu_
    // matches every background-job event site.
    LogStatsSample(prev, cur);
    prev = std::move(cur);
  }
}

UniKVDB::StatsSample UniKVDB::TakeStatsSampleLocked() {
  StatsSample s;
  s.ts_micros = env_->NowMicros();
  s.gets = metrics_.gets->Value();
  s.writes = metrics_.writes->Value();
  s.scans = metrics_.scans->Value();
  // Stall accounting lives on the shards since the write path went
  // sharded; the sample reports the fleet-wide sums.
  for (const auto& shard : shards_) {
    s.write_stalls += shard->write_stalls.load(std::memory_order_relaxed);
    s.stall_micros += shard->stall_micros.load(std::memory_order_relaxed);
  }
  s.flush_bytes = stats_.flush_bytes;
  s.merge_bytes_written = stats_.merge_bytes_written;
  s.gc_bytes_written = stats_.gc_bytes_written;
  s.block_cache_hits = metrics_.block_cache_hits->Value();
  s.block_cache_misses = metrics_.block_cache_misses->Value();
  s.partitions.reserve(partition_stats_.size());
  for (const auto& [pid, pc] : partition_stats_) {
    s.partitions.push_back({pid, pc.heat_reads, pc.heat_writes});
  }
  std::sort(s.partitions.begin(), s.partitions.end(),
            [](const PartitionHeat& a, const PartitionHeat& b) {
              return a.pid < b.pid;
            });
  return s;
}

void UniKVDB::LogStatsSample(const StatsSample& prev, const StatsSample& cur) {
  JsonBuilder ev;
  ev.AddUint("interval_micros", cur.ts_micros - prev.ts_micros);

  ev.AddUint("d_gets", cur.gets - prev.gets);
  ev.AddUint("d_writes", cur.writes - prev.writes);
  ev.AddUint("d_scans", cur.scans - prev.scans);
  ev.AddUint("d_write_stalls", cur.write_stalls - prev.write_stalls);
  ev.AddUint("d_stall_micros", cur.stall_micros - prev.stall_micros);
  ev.AddUint("d_flush_bytes", cur.flush_bytes - prev.flush_bytes);
  ev.AddUint("d_merge_bytes_written",
             cur.merge_bytes_written - prev.merge_bytes_written);
  ev.AddUint("d_gc_bytes_written",
             cur.gc_bytes_written - prev.gc_bytes_written);

  ev.AddUint("cum_gets", cur.gets);
  ev.AddUint("cum_writes", cur.writes);
  ev.AddUint("cum_scans", cur.scans);
  ev.AddUint("cum_write_stalls", cur.write_stalls);
  ev.AddUint("cum_stall_micros", cur.stall_micros);
  ev.AddUint("cum_flush_bytes", cur.flush_bytes);
  ev.AddUint("cum_merge_bytes_written", cur.merge_bytes_written);
  ev.AddUint("cum_gc_bytes_written", cur.gc_bytes_written);

  const uint64_t d_hits = cur.block_cache_hits - prev.block_cache_hits;
  const uint64_t d_misses = cur.block_cache_misses - prev.block_cache_misses;
  ev.AddDouble("cache_hit_ratio",
               d_hits + d_misses == 0
                   ? 0.0
                   : static_cast<double>(d_hits) / (d_hits + d_misses));

  // Cause breakdown of the interval's stalls. The engine currently has a
  // single stall cause — writers waiting on the in-flight memtable flush
  // — so the breakdown has one entry; new causes get new keys here.
  JsonBuilder causes;
  causes.AddUint("memtable_wait", cur.write_stalls - prev.write_stalls);
  ev.AddRaw("stall_causes", causes.Finish());

  // Per-partition read/write heat moved this interval. Partitions absent
  // from `prev` (created mid-interval) delta against zero.
  std::string parts = "[";
  bool first = true;
  size_t pi = 0;
  for (const PartitionHeat& h : cur.partitions) {
    uint64_t prev_reads = 0, prev_writes = 0;
    while (pi < prev.partitions.size() && prev.partitions[pi].pid < h.pid) {
      pi++;
    }
    if (pi < prev.partitions.size() && prev.partitions[pi].pid == h.pid) {
      prev_reads = prev.partitions[pi].reads;
      prev_writes = prev.partitions[pi].writes;
    }
    JsonBuilder one;
    one.AddUint("id", h.pid);
    one.AddUint("d_reads", h.reads - prev_reads);
    one.AddUint("d_writes", h.writes - prev_writes);
    if (!first) parts += ',';
    first = false;
    parts += one.Finish();
  }
  parts += ']';
  ev.AddRaw("partitions", parts);

  event_log_->Log("stats_sample", &ev);
}

std::string UniKVDB::StatsHistoryJsonLocked() const {
  std::string out = "[";
  bool first = true;
  for (const StatsSample& s : stats_history_) {
    JsonBuilder one;
    one.AddUint("ts_micros", s.ts_micros);
    one.AddUint("gets", s.gets);
    one.AddUint("writes", s.writes);
    one.AddUint("scans", s.scans);
    one.AddUint("write_stalls", s.write_stalls);
    one.AddUint("stall_micros", s.stall_micros);
    one.AddUint("flush_bytes", s.flush_bytes);
    one.AddUint("merge_bytes_written", s.merge_bytes_written);
    one.AddUint("gc_bytes_written", s.gc_bytes_written);
    one.AddUint("block_cache_hits", s.block_cache_hits);
    one.AddUint("block_cache_misses", s.block_cache_misses);
    std::string parts = "[";
    bool pfirst = true;
    for (const PartitionHeat& h : s.partitions) {
      JsonBuilder pj;
      pj.AddUint("id", h.pid);
      pj.AddUint("heat_reads", h.reads);
      pj.AddUint("heat_writes", h.writes);
      if (!pfirst) parts += ',';
      pfirst = false;
      parts += pj.Finish();
    }
    parts += ']';
    one.AddRaw("partitions", parts);
    if (!first) out += ',';
    first = false;
    out += one.Finish();
  }
  out += ']';
  return out;
}

}  // namespace unikv
