// VersionEdit codec and VersionSet recovery tests.

#include "core/version.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/env.h"

namespace unikv {
namespace {

TEST(VersionEdit, EncodeDecodeRoundTrip) {
  VersionEdit edit;
  edit.SetLogNumber(42);
  edit.SetNextFileNumber(100);
  edit.SetLastSequence(999999);
  edit.AddPartition(0, "");
  edit.AddPartition(3, "mboundary");
  edit.RemovePartition(2);
  FileMeta f;
  f.number = 10;
  f.size = 12345;
  f.table_id = 7;
  f.smallest = "aaa";
  f.largest = "zzz";
  edit.AddUnsortedFile(0, f);
  edit.RemoveUnsortedFile(0, 9);
  edit.AddSortedFile(3, f);
  edit.RemoveSortedFile(3, 8);
  VlogMeta v;
  v.number = 55;
  v.size = 777;
  edit.AddValueLog(3, v);
  edit.RemoveValueLog(0, 54);
  edit.SetIndexCheckpoint(0, 77);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(Slice(encoded)).ok());
  std::string reencoded;
  decoded.EncodeTo(&reencoded);
  EXPECT_EQ(encoded, reencoded);
}

TEST(VersionEdit, DecodeRejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\x63garbage")).ok());
}

TEST(VersionData, FindPartition) {
  auto make = [](uint32_t id, const char* lower) {
    auto p = std::make_shared<PartitionState>();
    p->id = id;
    p->lower_bound = lower;
    return p;
  };
  VersionData v;
  v.partitions = {make(0, ""), make(1, "g"), make(2, "p")};
  EXPECT_EQ(0, v.FindPartition("a"));
  EXPECT_EQ(0, v.FindPartition(""));
  EXPECT_EQ(0, v.FindPartition("fzzz"));
  EXPECT_EQ(1, v.FindPartition("g"));
  EXPECT_EQ(1, v.FindPartition("h"));
  EXPECT_EQ(1, v.FindPartition("ozzz"));
  EXPECT_EQ(2, v.FindPartition("p"));
  EXPECT_EQ(2, v.FindPartition("zzzz"));
}

TEST(VersionSet, CreateRecoverAndApply) {
  std::unique_ptr<MemEnv> env(NewMemEnv());
  {
    VersionSet versions(env.get(), "/db");
    ASSERT_TRUE(versions.Recover(true, false).ok());
    ASSERT_EQ(1u, versions.current()->partitions.size());
    EXPECT_EQ("", versions.current()->partitions[0]->lower_bound);

    VersionEdit edit;
    FileMeta f;
    f.number = versions.NewFileNumber();
    f.size = 100;
    f.table_id = 0;
    f.smallest = "a";
    f.largest = "m";
    edit.AddUnsortedFile(0, f);
    edit.SetLogNumber(5);
    ASSERT_TRUE(versions.LogAndApply(&edit).ok());
    ASSERT_EQ(1u, versions.current()->partitions[0]->unsorted.size());
  }
  {
    // Reopen: state must come back from the manifest.
    VersionSet versions(env.get(), "/db");
    ASSERT_TRUE(versions.Recover(true, false).ok());
    ASSERT_EQ(1u, versions.current()->partitions.size());
    ASSERT_EQ(1u, versions.current()->partitions[0]->unsorted.size());
    EXPECT_EQ(100u, versions.current()->partitions[0]->unsorted[0].size);
    EXPECT_EQ(5u, versions.LogNumber());
  }
}

TEST(VersionSet, PartitionSplitOrderingPreserved) {
  std::unique_ptr<MemEnv> env(NewMemEnv());
  VersionSet versions(env.get(), "/db2");
  ASSERT_TRUE(versions.Recover(true, false).ok());

  VersionEdit edit;
  edit.AddPartition(1, "m");
  ASSERT_TRUE(versions.LogAndApply(&edit).ok());
  VersionEdit edit2;
  edit2.AddPartition(2, "e");
  ASSERT_TRUE(versions.LogAndApply(&edit2).ok());

  VersionPtr v = versions.current();
  ASSERT_EQ(3u, v->partitions.size());
  EXPECT_EQ("", v->partitions[0]->lower_bound);
  EXPECT_EQ("e", v->partitions[1]->lower_bound);
  EXPECT_EQ("m", v->partitions[2]->lower_bound);
  EXPECT_EQ(2u, v->partitions[1]->id);
  // Fresh ids continue past the max.
  EXPECT_GE(versions.NewPartitionId(), 3u);
}

TEST(VersionSet, PinnedVersionsKeepFilesLive) {
  std::unique_ptr<MemEnv> env(NewMemEnv());
  VersionSet versions(env.get(), "/db3");
  ASSERT_TRUE(versions.Recover(true, false).ok());

  VersionEdit add;
  FileMeta f;
  f.number = 77;
  f.size = 1;
  f.smallest = "a";
  f.largest = "b";
  add.AddSortedFile(0, f);
  ASSERT_TRUE(versions.LogAndApply(&add).ok());

  VersionPtr pinned = versions.current();  // An iterator would hold this.

  VersionEdit remove;
  remove.RemoveSortedFile(0, 77);
  ASSERT_TRUE(versions.LogAndApply(&remove).ok());

  std::set<uint64_t> live;
  versions.AddLiveFiles(&live);
  EXPECT_TRUE(live.count(77)) << "file pinned by an old version";

  pinned.reset();
  live.clear();
  versions.AddLiveFiles(&live);
  EXPECT_FALSE(live.count(77));
}

TEST(VersionSet, ErrorIfExists) {
  std::unique_ptr<MemEnv> env(NewMemEnv());
  {
    VersionSet versions(env.get(), "/db4");
    ASSERT_TRUE(versions.Recover(true, false).ok());
  }
  VersionSet versions(env.get(), "/db4");
  EXPECT_FALSE(versions.Recover(true, true).ok());
}

TEST(VersionSet, MissingWithoutCreate) {
  std::unique_ptr<MemEnv> env(NewMemEnv());
  VersionSet versions(env.get(), "/db5");
  EXPECT_FALSE(versions.Recover(false, false).ok());
}

}  // namespace
}  // namespace unikv
