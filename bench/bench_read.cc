// Experiment F6 — Random point-read performance and read amplification.
//
// Paper: after loading, issue point lookups (uniform and zipfian) and
// compare throughput and bytes read per logical byte returned. Expected
// shape: UniKV beats LeveledLSM (single-table probes via the hash index /
// one binary search vs multi-level search with bloom false positives) and
// beats TieredLSM by a wider margin (tiered must consult many runs).
//
// F6c adds the batched read path: MultiGet at batch sizes 1/8/64/256
// (uniform and zipfian) against looped Get on the same separated-value
// dataset, persisted as BENCH_read.json via the trajectory writer.

#include <string>
#include <vector>

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("read");
  const uint64_t kKeys = Scaled(30000);
  const uint64_t kReads = Scaled(15000);
  const size_t kValueSize = 1024;

  for (Distribution dist : {Distribution::kUniform, Distribution::kZipfian}) {
    PrintTableHeader(
        std::string("F6 point reads (") +
            (dist == Distribution::kUniform ? "uniform" : "zipfian") +
            "), dataset " + std::to_string(kKeys) + " x 1KiB",
        {"engine", "kops/s", "read_amp", "MB_read", "p99_us"});
    for (Engine engine :
         {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
      BenchDb bdb(engine, BenchOptions(), root);
      LoadSpec load;
      load.num_keys = kKeys;
      load.value_size = kValueSize;
      RunLoad(&bdb, load);
      bdb.io()->Reset();

      PointReadSpec spec;
      spec.num_ops = kReads;
      spec.key_space = kKeys;
      spec.dist = dist;
      spec.value_size = kValueSize;
      PhaseResult r = RunPointReads(&bdb, spec);
      PrintTableRow({EngineName(engine), Fmt(r.kops_per_sec),
                     Fmt(r.read_amp, 2), Fmt(r.bytes_read / 1048576.0),
                     Fmt(r.latency_us.Percentile(99), 0)});
      PrintPhasePerf(EngineName(engine), r);
      DumpMetricsJson(&bdb);
    }
  }

  // Negative lookups: UniKV needs at most one extra table read to confirm
  // absence (paper: no bloom filters yet only one candidate SSTable).
  PrintTableHeader("F6b negative lookups (keys absent)",
                   {"engine", "kops/s", "MB_read"});
  for (Engine engine : {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
    BenchDb bdb(engine, BenchOptions(), root);
    LoadSpec load;
    load.num_keys = kKeys;
    load.value_size = kValueSize;
    RunLoad(&bdb, load);
    bdb.io()->Reset();

    Env* env = Env::Default();
    uint64_t t0 = env->NowMicros();
    std::string value;
    const uint64_t kMisses = Scaled(10000);
    for (uint64_t i = 0; i < kMisses; i++) {
      // Ids beyond the loaded space are never present.
      // Deliberate miss: NotFound is this phase's entire point.
      (void)bdb.db()->Get(ReadOptions(), KeyGenerator::Key(kKeys + i),
                          &value);
    }
    double secs = (env->NowMicros() - t0) / 1e6;
    PrintTableRow({EngineName(engine), Fmt(kMisses / secs / 1000.0),
                   Fmt(bdb.io()->bytes_read.load() / 1048576.0)});
  }

  // F6c — batched reads. One UniKV store with separated values (1KiB >>
  // value_separation_threshold), looped Get vs MultiGet at growing batch
  // sizes; kops/s counts keys for both so the rows compare directly. The
  // whole section is persisted as the repo's BENCH_read.json trajectory.
  {
    BenchDb bdb(Engine::kUniKV, BenchOptions(), root);
    LoadSpec load;
    load.num_keys = kKeys;
    load.value_size = kValueSize;
    std::vector<PhaseResult> phases;
    phases.push_back(RunLoad(&bdb, load));
    bdb.io()->Reset();

    PrintTableHeader("F6c batched reads (UniKV, 1KiB separated values)",
                     {"phase", "batch", "kkeys/s", "p99_us", "read_amp"});
    for (Distribution dist :
         {Distribution::kUniform, Distribution::kZipfian}) {
      const bool uniform = dist == Distribution::kUniform;
      PointReadSpec get;
      get.phase = uniform ? "get_uniform" : "get_zipfian";
      get.num_ops = kReads;
      get.key_space = kKeys;
      get.dist = dist;
      get.value_size = kValueSize;

      std::vector<MultiGetSpec> mgets;
      for (int batch : {1, 8, 64, 256}) {
        MultiGetSpec mget;
        mget.phase = (uniform ? std::string("mget_uniform_b")
                              : std::string("mget_zipfian_b")) +
                     std::to_string(batch);
        mget.num_keys = kReads;
        mget.batch = batch;
        mget.key_space = kKeys;
        mget.dist = dist;
        mgets.push_back(mget);
      }

      // Get and MultiGet run as interleaved slices so the looped-Get
      // baseline and every batch size sample the same machine conditions
      // (see RunInterleavedBatchedReads).
      for (const PhaseResult& p :
           RunInterleavedBatchedReads(&bdb, get, mgets)) {
        phases.push_back(p);
        PrintTableRow({p.phase, p.batch > 0 ? std::to_string(p.batch) : "-",
                       Fmt(p.kops_per_sec),
                       Fmt(p.latency_us.Percentile(99), 0),
                       Fmt(p.read_amp, 2)});
      }
    }
    WriteBenchTrajectory("read", &bdb, phases);
    DumpMetricsJson(&bdb);
  }
  return 0;
}
