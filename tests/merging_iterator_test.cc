// Unit tests for the merging and concatenating iterators over synthetic
// in-memory children.

#include "core/merging_iterator.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/dbformat.h"
#include "util/random.h"

namespace unikv {
namespace {

// A simple vector-backed iterator over (internal key, value) pairs.
class VectorIterator : public Iterator {
 public:
  explicit VectorIterator(
      std::vector<std::pair<std::string, std::string>> data)
      : data_(std::move(data)), pos_(data_.size()) {}

  bool Valid() const override { return pos_ < data_.size(); }
  void SeekToFirst() override { pos_ = 0; }
  void SeekToLast() override {
    pos_ = data_.empty() ? 0 : data_.size() - 1;
    if (data_.empty()) pos_ = data_.size();
  }
  void Seek(const Slice& target) override {
    InternalKeyComparator icmp;
    pos_ = 0;
    while (pos_ < data_.size() &&
           icmp.Compare(Slice(data_[pos_].first), target) < 0) {
      pos_++;
    }
  }
  void Next() override { pos_++; }
  void Prev() override {
    if (pos_ == 0) {
      pos_ = data_.size();
    } else {
      pos_--;
    }
  }
  Slice key() const override { return Slice(data_[pos_].first); }
  Slice value() const override { return Slice(data_[pos_].second); }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> data_;
  size_t pos_;
};

std::string IKey(const std::string& user_key, SequenceNumber seq) {
  std::string r;
  AppendInternalKey(&r, ParsedInternalKey(user_key, seq, kTypeValue));
  return r;
}

TEST(MergingIterator, EmptyChildren) {
  InternalKeyComparator icmp;
  std::vector<Iterator*> children;
  children.push_back(new VectorIterator({}));
  children.push_back(new VectorIterator({}));
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(icmp, std::move(children)));
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
  merged->SeekToLast();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergingIterator, InterleavesInOrder) {
  InternalKeyComparator icmp;
  std::vector<Iterator*> children;
  children.push_back(new VectorIterator(
      {{IKey("a", 1), "a1"}, {IKey("c", 1), "c1"}, {IKey("e", 1), "e1"}}));
  children.push_back(new VectorIterator(
      {{IKey("b", 2), "b2"}, {IKey("d", 2), "d2"}}));
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(icmp, std::move(children)));

  std::string forward;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    forward += ExtractUserKey(merged->key()).ToString();
  }
  EXPECT_EQ("abcde", forward);

  std::string backward;
  for (merged->SeekToLast(); merged->Valid(); merged->Prev()) {
    backward += ExtractUserKey(merged->key()).ToString();
  }
  EXPECT_EQ("edcba", backward);
}

TEST(MergingIterator, SameUserKeyNewestFirst) {
  InternalKeyComparator icmp;
  std::vector<Iterator*> children;
  children.push_back(new VectorIterator({{IKey("k", 5), "new"}}));
  children.push_back(new VectorIterator({{IKey("k", 2), "old"}}));
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(icmp, std::move(children)));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("new", merged->value().ToString());
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("old", merged->value().ToString());
}

TEST(MergingIterator, DirectionSwitchMidStream) {
  InternalKeyComparator icmp;
  std::vector<Iterator*> children;
  children.push_back(new VectorIterator(
      {{IKey("a", 1), "1"}, {IKey("c", 1), "3"}}));
  children.push_back(new VectorIterator({{IKey("b", 1), "2"}}));
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(icmp, std::move(children)));
  merged->SeekToFirst();
  merged->Next();  // At b.
  EXPECT_EQ("b", ExtractUserKey(merged->key()).ToString());
  merged->Prev();  // Back to a.
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("a", ExtractUserKey(merged->key()).ToString());
  merged->Next();
  merged->Next();  // At c.
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ("c", ExtractUserKey(merged->key()).ToString());
  merged->Prev();
  EXPECT_EQ("b", ExtractUserKey(merged->key()).ToString());
}

TEST(MergingIterator, RandomizedAgainstModel) {
  InternalKeyComparator icmp;
  Random rnd(77);
  std::map<std::string, std::string> model;  // internal key -> value.
  std::vector<std::vector<std::pair<std::string, std::string>>> shards(5);
  SequenceNumber seq = 1;
  for (int i = 0; i < 500; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", rnd.Uniform(200));
    std::string ikey = IKey(buf, seq++);
    std::string value = "v" + std::to_string(i);
    shards[rnd.Uniform(5)].emplace_back(ikey, value);
    model[ikey] = value;
  }
  // Children need sorted input.
  std::vector<Iterator*> children;
  for (auto& shard : shards) {
    std::sort(shard.begin(), shard.end(),
              [&icmp](const auto& a, const auto& b) {
                return icmp.Compare(Slice(a.first), Slice(b.first)) < 0;
              });
    children.push_back(new VectorIterator(shard));
  }
  // Model must be in internal-key order too.
  std::vector<std::pair<std::string, std::string>> expected(model.begin(),
                                                            model.end());
  std::sort(expected.begin(), expected.end(),
            [&icmp](const auto& a, const auto& b) {
              return icmp.Compare(Slice(a.first), Slice(b.first)) < 0;
            });

  std::unique_ptr<Iterator> merged(
      NewMergingIterator(icmp, std::move(children)));
  size_t i = 0;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next(), i++) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(expected[i].first, merged->key().ToString());
    EXPECT_EQ(expected[i].second, merged->value().ToString());
  }
  EXPECT_EQ(expected.size(), i);

  // Seek spot checks.
  for (int t = 0; t < 20; t++) {
    size_t target = rnd.Uniform(expected.size());
    merged->Seek(expected[target].first);
    ASSERT_TRUE(merged->Valid());
    EXPECT_EQ(expected[target].first, merged->key().ToString());
  }
}

TEST(ConcatenatingIterator, OrderedRuns) {
  InternalKeyComparator icmp;
  std::vector<Iterator*> children;
  children.push_back(new VectorIterator(
      {{IKey("a", 1), "1"}, {IKey("b", 1), "2"}}));
  children.push_back(new VectorIterator({}));  // Empty child mid-run.
  children.push_back(new VectorIterator(
      {{IKey("m", 1), "3"}, {IKey("z", 1), "4"}}));
  std::unique_ptr<Iterator> concat(
      NewConcatenatingIterator(icmp, std::move(children)));

  std::string forward;
  for (concat->SeekToFirst(); concat->Valid(); concat->Next()) {
    forward += ExtractUserKey(concat->key()).ToString();
  }
  EXPECT_EQ("abmz", forward);

  std::string backward;
  for (concat->SeekToLast(); concat->Valid(); concat->Prev()) {
    backward += ExtractUserKey(concat->key()).ToString();
  }
  EXPECT_EQ("zmba", backward);

  concat->Seek(IKey("c", kMaxSequenceNumber));
  ASSERT_TRUE(concat->Valid());
  EXPECT_EQ("m", ExtractUserKey(concat->key()).ToString());

  concat->Seek(IKey("zz", kMaxSequenceNumber));
  EXPECT_FALSE(concat->Valid());
}

}  // namespace
}  // namespace unikv
