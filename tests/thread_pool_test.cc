#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace unikv {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; i++) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(1000, count.load());
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPool, TasksRunConcurrentlyWithCaller) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.Schedule([&ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ran.store(true);
  });
  // The caller is not blocked by Schedule.
  EXPECT_TRUE(true);
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; wave++) {
    for (int i = 0; i < 100; i++) {
      pool.Schedule([&count] { count.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ((wave + 1) * 100, count.load());
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; i++) {
      pool.Schedule([&count] { count.fetch_add(1); });
    }
    // Destructor runs here; all queued tasks must complete.
  }
  EXPECT_EQ(50, count.load());
}

TEST(ThreadPool, MinimumOneThread) {
  ThreadPool pool(0);  // Clamped to 1.
  EXPECT_EQ(1, pool.num_threads());
  std::atomic<int> count{0};
  pool.Schedule([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(1, count.load());
}

TEST(ThreadPool, TaskGroupWaitsForItsTasks) {
  ThreadPool pool(4);
  ThreadPool::TaskGroup group;
  std::atomic<int> count{0};
  for (int i = 0; i < 200; i++) {
    pool.Schedule(&group, [&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(200, count.load());
}

TEST(ThreadPool, TaskGroupReusableAcrossWaves) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group;
  std::atomic<int> count{0};
  for (int wave = 0; wave < 3; wave++) {
    for (int i = 0; i < 50; i++) {
      pool.Schedule(&group, [&count] { count.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ((wave + 1) * 50, count.load());
  }
}

TEST(ThreadPool, WaitOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group;
  group.Wait();  // Must not hang.
  SUCCEED();
}

// Regression: two concurrent users of one shared pool must not wait on
// each other's tasks. With the old global WaitIdle() flow, the fast
// caller's wait would block on the slow caller's still-running task —
// this test then hangs until the ctest timeout.
TEST(ThreadPool, GroupWaitIgnoresOtherCallersTasks) {
  ThreadPool pool(2);

  Mutex mu;
  CondVar cv(&mu);
  bool release_slow GUARDED_BY(mu) = false;
  std::atomic<bool> slow_running{false};

  ThreadPool::TaskGroup slow_group;
  pool.Schedule(&slow_group, [&] {
    slow_running.store(true);
    MutexLock l(&mu);
    while (!release_slow) cv.Wait();
  });
  while (!slow_running.load()) {
    std::this_thread::yield();
  }

  // The fast caller's group completes even though the pool is not idle.
  ThreadPool::TaskGroup fast_group;
  std::atomic<int> fast_done{0};
  for (int i = 0; i < 10; i++) {
    pool.Schedule(&fast_group, [&fast_done] { fast_done.fetch_add(1); });
  }
  fast_group.Wait();
  EXPECT_EQ(10, fast_done.load());
  EXPECT_TRUE(slow_running.load());

  {
    MutexLock l(&mu);
    release_slow = true;
  }
  cv.SignalAll();
  slow_group.Wait();
}

}  // namespace
}  // namespace unikv
