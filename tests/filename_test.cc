#include "core/filename.h"

#include <gtest/gtest.h>

namespace unikv {
namespace {

TEST(FileName, Construction) {
  EXPECT_EQ("/db/000007.wal", WalFileName("/db", 7));
  EXPECT_EQ("/db/000008.swal", ShardWalFileName("/db", 8));
  EXPECT_EQ("/db/000123.sst", TableFileName("/db", 123));
  EXPECT_EQ("/db/000045.vlog", ValueLogFileName("/db", 45));
  EXPECT_EQ("/db/000001.hidx", IndexCheckpointFileName("/db", 1));
  EXPECT_EQ("/db/MANIFEST-000009", ManifestFileName("/db", 9));
  EXPECT_EQ("/db/CURRENT", CurrentFileName("/db"));
  EXPECT_EQ("/db/000002.tmp", TempFileName("/db", 2));
}

TEST(FileName, ParseRoundTrip) {
  struct Case {
    std::string name;
    uint64_t number;
    FileType type;
  };
  const Case cases[] = {
      {"000007.wal", 7, FileType::kWalFile},
      {"000011.swal", 11, FileType::kShardWalFile},
      {"000123.sst", 123, FileType::kTableFile},
      {"000045.vlog", 45, FileType::kValueLogFile},
      {"000001.hidx", 1, FileType::kIndexCheckpoint},
      {"MANIFEST-000009", 9, FileType::kManifestFile},
      {"CURRENT", 0, FileType::kCurrentFile},
      {"000002.tmp", 2, FileType::kTempFile},
      {"18446744073709551615.sst", ~0ull, FileType::kTableFile},
  };
  for (const Case& c : cases) {
    uint64_t number;
    FileType type;
    EXPECT_TRUE(ParseFileName(c.name, &number, &type)) << c.name;
    EXPECT_EQ(c.number, number) << c.name;
    EXPECT_EQ(static_cast<int>(c.type), static_cast<int>(type)) << c.name;
  }
}

TEST(FileName, RejectsGarbage) {
  const char* bad[] = {
      "",         "foo",        "foo-dx-100.sst", ".sst",   "",
      "manifest", "CURREN",     "CURRENTX",       "100",    "100.",
      "100.xyz",  "abc.sst",    "MANIFEST",       "MANIFEST-x",
      "100.swa",  ".swal",      "abc.swal",
  };
  for (const char* name : bad) {
    uint64_t number;
    FileType type;
    EXPECT_FALSE(ParseFileName(name, &number, &type)) << "'" << name << "'";
  }
}

}  // namespace
}  // namespace unikv
