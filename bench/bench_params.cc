// Experiment F13 — Parameter sensitivity: UnsortedLimit and
// partitionSizeLimit sweeps.
//
// Paper: UnsortedLimit trades hash-index memory + merge frequency against
// read locality; partitionSizeLimit trades split frequency against merge
// cost per partition. Expected shape: larger UnsortedLimit -> fewer,
// bigger merges (higher load throughput, more index memory); smaller
// partition limit -> more partitions.

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("params");
  const uint64_t kKeys = Scaled(25000);
  const size_t kValueSize = 1024;

  PrintTableHeader("F13a UnsortedLimit sweep",
                   {"unsorted_limit", "load kops/s", "write_amp",
                    "read kops/s", "index_KiB"});
  for (size_t limit_mb : {2, 4, 8, 16}) {
    Options opt = BenchOptions();
    opt.unsorted_limit = limit_mb * 1024 * 1024;
    opt.gc_garbage_threshold = opt.unsorted_limit * 2;
    BenchDb bdb(Engine::kUniKV, opt, root);

    LoadSpec load;
    load.num_keys = kKeys;
    load.value_size = kValueSize;
    PhaseResult lr = RunLoad(&bdb, load);

    std::string index_bytes = "0";
    bdb.db()->GetProperty("db.hash-index-bytes", &index_bytes);

    PointReadSpec reads;
    reads.num_ops = Scaled(8000);
    reads.key_space = kKeys;
    reads.value_size = kValueSize;
    PhaseResult rr = RunPointReads(&bdb, reads);

    PrintTableRow({std::to_string(limit_mb) + "MiB", Fmt(lr.kops_per_sec),
                   Fmt(lr.write_amp, 2), Fmt(rr.kops_per_sec),
                   Fmt(std::stod(index_bytes) / 1024.0, 0)});
  }

  PrintTableHeader("F13b partitionSizeLimit sweep",
                   {"partition_limit", "load kops/s", "write_amp",
                    "partitions"});
  for (size_t limit_mb : {8, 16, 32, 64}) {
    Options opt = BenchOptions();
    opt.partition_size_limit = limit_mb * 1024 * 1024;
    BenchDb bdb(Engine::kUniKV, opt, root);

    LoadSpec load;
    load.num_keys = kKeys;
    load.value_size = kValueSize;
    PhaseResult lr = RunLoad(&bdb, load);

    std::string partitions = "1";
    bdb.db()->GetProperty("db.num-partitions", &partitions);
    PrintTableRow({std::to_string(limit_mb) + "MiB", Fmt(lr.kops_per_sec),
                   Fmt(lr.write_amp, 2), partitions});
  }
  return 0;
}
