# Empty compiler generated dependencies file for db_store_behavior_test.
# This may be replaced when dependencies are built.
