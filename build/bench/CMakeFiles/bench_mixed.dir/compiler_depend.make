# Empty compiler generated dependencies file for bench_mixed.
# This may be replaced when dependencies are built.
