file(REMOVE_RECURSE
  "CMakeFiles/value_log_test.dir/value_log_test.cc.o"
  "CMakeFiles/value_log_test.dir/value_log_test.cc.o.d"
  "value_log_test"
  "value_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
