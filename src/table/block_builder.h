#ifndef UNIKV_TABLE_BLOCK_BUILDER_H_
#define UNIKV_TABLE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace unikv {

/// Builds a block with prefix-compressed keys and restart points.
/// Keys must be added in sorted order.
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();

  /// Adds a key/value pair. REQUIRES: key > all previously added keys.
  void Add(const Slice& key, const Slice& value);

  /// Finishes building; returns a slice valid until Reset().
  Slice Finish();

  /// Estimated (uncompressed) size of the block under construction.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;    // Entries since the last restart point.
  bool finished_;
  std::string last_key_;
};

}  // namespace unikv

#endif  // UNIKV_TABLE_BLOCK_BUILDER_H_
