#ifndef UNIKV_TABLE_CACHE_H_
#define UNIKV_TABLE_CACHE_H_

#include <cstdint>

#include "util/slice.h"

namespace unikv {

/// A sharded LRU cache mapping keys to opaque values, with handle-based
/// pinning. Used as the block cache and the open-table cache.
class Cache {
 public:
  Cache() = default;
  virtual ~Cache();

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Opaque handle to a cache entry.
  struct Handle {};

  /// Inserts key→value with the given charge against the capacity.
  /// `deleter` is invoked when the entry is evicted and unpinned.
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         void (*deleter)(const Slice& key, void* value)) = 0;

  /// Returns a pinned handle or nullptr. Call Release() when done.
  virtual Handle* Lookup(const Slice& key) = 0;

  virtual void Release(Handle* handle) = 0;
  virtual void* Value(Handle* handle) = 0;

  /// Drops the entry if present (it stays alive until unpinned).
  virtual void Erase(const Slice& key) = 0;

  /// A new unique id, for constructing disjoint key spaces.
  virtual uint64_t NewId() = 0;

  virtual size_t TotalCharge() const = 0;
};

/// Creates a cache with a fixed capacity (in charge units, typically bytes).
Cache* NewLRUCache(size_t capacity);

}  // namespace unikv

#endif  // UNIKV_TABLE_CACHE_H_
