file(REMOVE_RECURSE
  "CMakeFiles/engine_comparison.dir/engine_comparison.cc.o"
  "CMakeFiles/engine_comparison.dir/engine_comparison.cc.o.d"
  "engine_comparison"
  "engine_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
