#ifndef UNIKV_TABLE_TABLE_BUILDER_H_
#define UNIKV_TABLE_TABLE_BUILDER_H_

#include <cstdint>
#include <string>

#include "core/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace unikv {

class WritableFile;

/// Knobs shared by the table writer and reader.
struct TableOptions {
  /// Approximate uncompressed size of each data block.
  size_t block_size = 4096;
  /// Keys between restart points within a block.
  int block_restart_interval = 16;
  /// Bloom filter bits per key; 0 disables the filter block entirely
  /// (UniKV removes bloom filters; the LSM baselines keep them).
  int bloom_bits_per_key = 0;
};

/// Builds an SSTable from internal keys added in sorted order.
///
/// File layout:
///   [data block]*
///   [filter block]   (optional whole-table bloom over user keys)
///   [index block]    (last key of each data block -> BlockHandle)
///   [footer]
class TableBuilder {
 public:
  /// Writes to *file (caller retains ownership; must outlive the builder).
  TableBuilder(const TableOptions& options, WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  /// Adds an (internal key, value) pair. REQUIRES: key > all previous keys.
  void Add(const Slice& key, const Slice& value);

  /// Flushes any buffered key/value pairs to file (advanced; Add calls it
  /// automatically at block boundaries).
  void Flush();

  Status status() const { return status_; }

  /// Finishes building the table; stops using the file afterwards.
  Status Finish();

  /// Abandons the buffered content (call instead of Finish on error paths).
  void Abandon();

  uint64_t NumEntries() const { return num_entries_; }

  /// Size of the file generated so far; after Finish(), the final size.
  uint64_t FileSize() const { return offset_; }

 private:
  void WriteBlock(class BlockBuilder* block, class BlockHandle* handle);
  bool ok() const { return status_.ok(); }

  struct Rep;
  Rep* rep_;
  Status status_;
  uint64_t num_entries_ = 0;
  uint64_t offset_ = 0;
};

}  // namespace unikv

#endif  // UNIKV_TABLE_TABLE_BUILDER_H_
