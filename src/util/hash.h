#ifndef UNIKV_UTIL_HASH_H_
#define UNIKV_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "util/slice.h"

namespace unikv {

/// 32-bit Murmur-style hash used by bloom filters and the block cache.
uint32_t Hash(const char* data, size_t n, uint32_t seed);

/// 64-bit hash (xxhash-inspired mix) used by the two-level hash index,
/// parameterized by seed so several independent hash functions can be
/// derived for cuckoo-style placement.
uint64_t Hash64(const char* data, size_t n, uint64_t seed);

inline uint32_t HashSlice(const Slice& s, uint32_t seed = 0xbc9f1d34) {
  return Hash(s.data(), s.size(), seed);
}

inline uint64_t Hash64Slice(const Slice& s, uint64_t seed) {
  return Hash64(s.data(), s.size(), seed);
}

}  // namespace unikv

#endif  // UNIKV_UTIL_HASH_H_
