// Quickstart: the minimal UniKV lifecycle — open, write, read, scan,
// delete, reopen. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [db_path]

#include <cstdio>
#include <memory>
#include <string>

#include "core/db.h"

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/unikv_quickstart";
  // Scratch reset; a failure here surfaces as an Open error next.
  (void)unikv::DestroyDB(unikv::Options(), path);

  // 1. Open (creates the store if missing).
  unikv::Options options;
  options.create_if_missing = true;
  unikv::DB* raw = nullptr;
  unikv::Status s = unikv::DB::Open(options, path, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<unikv::DB> db(raw);

  // 2. Write some data. Individual puts...
  s = db->Put(unikv::WriteOptions(), "user:1001:name", "ada");
  if (s.ok()) {
    s = db->Put(unikv::WriteOptions(), "user:1001:email", "ada@example.com");
  }
  // ...and an atomic batch.
  unikv::WriteBatch batch;
  batch.Put("user:1002:name", "grace");
  batch.Put("user:1002:email", "grace@example.com");
  batch.Delete("user:1001:email");
  if (s.ok()) s = db->Write(unikv::WriteOptions(), &batch);
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Point reads.
  std::string value;
  s = db->Get(unikv::ReadOptions(), "user:1002:name", &value);
  std::printf("user:1002:name -> %s\n", s.ok() ? value.c_str() : "(miss)");
  s = db->Get(unikv::ReadOptions(), "user:1001:email", &value);
  std::printf("user:1001:email -> %s\n",
              s.IsNotFound() ? "(deleted)" : value.c_str());

  // 4. Range scan with the optimized Scan API (prefix iteration).
  std::vector<std::pair<std::string, std::string>> rows;
  s = db->Scan(unikv::ReadOptions(), "user:", 10, &rows);
  if (!s.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("scan 'user:' ->\n");
  for (const auto& [key, val] : rows) {
    std::printf("  %s = %s\n", key.c_str(), val.c_str());
  }

  // 5. Or use an iterator for streaming access.
  std::unique_ptr<unikv::Iterator> iter(
      db->NewIterator(unikv::ReadOptions()));
  int n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
  std::printf("iterator saw %d live keys\n", n);
  iter.reset();

  // 6. Reopen: everything is durable.
  db.reset();
  s = unikv::DB::Open(options, path, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n", s.ToString().c_str());
    return 1;
  }
  db.reset(raw);
  s = db->Get(unikv::ReadOptions(), "user:1001:name", &value);
  std::printf("after reopen, user:1001:name -> %s\n",
              s.ok() ? value.c_str() : "(miss)");
  std::printf("quickstart OK\n");
  return 0;
}
