// Deterministic crash-consistency matrix (DESIGN.md §crash consistency).
//
// A CrashHarness workload exercises every background-operation kind —
// flush, UnsortedStore→SortedStore merge, dynamic range split, value-log
// GC, WAL append/sync, manifest/CURRENT install — and the matrix tests
// crash at every counted mutating Env call, recover, reopen, and verify
// the store against the golden model.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>

#include "core/unikv_db.h"
#include "crash_harness.h"
#include "test_util.h"
#include "util/fault_injection_env.h"

namespace unikv {
namespace {

// Stride for the exhaustive matrices, overridable so slower configurations
// (e.g. the ASan variant) can sample the same fault points more coarsely.
uint64_t MatrixStride() {
  const char* s = std::getenv("UNIKV_CRASH_STRIDE");
  if (s != nullptr && s[0] != '\0') {
    long v = std::atol(s);
    if (v > 0) return static_cast<uint64_t>(v);
  }
  return 1;
}

bool TraceHas(const std::vector<FaultInjectionEnv::CallRecord>& trace,
              FaultOp op, const char* substr) {
  for (const auto& rec : trace) {
    if (rec.op == op && rec.filename.find(substr) != std::string::npos) {
      return true;
    }
  }
  return false;
}

uint64_t ParseStat(const std::string& stats, const char* name) {
  std::string needle = std::string(name) + "=";
  size_t pos = stats.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(stats.c_str() + pos + needle.size(), nullptr, 10);
}

// The workload must enumerate at least one fault point per background-op
// kind; otherwise the crash matrix silently loses coverage.
TEST(DbCrashTest, FaultPointCoverage) {
  test::CrashHarness harness;
  test::CrashHarness::Profile profile;
  ASSERT_EQ("", harness.RunProfile(&profile));

  EXPECT_GT(profile.workload_calls, 0u);
  EXPECT_GT(profile.reopen_calls, 0u);

  // One fault point per op kind, recognized by file-name suffix.
  EXPECT_TRUE(TraceHas(profile.trace, FaultOp::kAppend, ".swal"));
  EXPECT_TRUE(TraceHas(profile.trace, FaultOp::kSync, ".swal"));
  EXPECT_TRUE(TraceHas(profile.trace, FaultOp::kAppend, ".sst"));
  EXPECT_TRUE(TraceHas(profile.trace, FaultOp::kAppend, ".vlog"));
  EXPECT_TRUE(TraceHas(profile.trace, FaultOp::kSync, "MANIFEST"));
  EXPECT_TRUE(TraceHas(profile.trace, FaultOp::kRenameFile, "CURRENT"));
  EXPECT_TRUE(TraceHas(profile.trace, FaultOp::kSyncDir, "/"));
  EXPECT_TRUE(TraceHas(profile.trace, FaultOp::kRemoveFile, ".vlog"));
  EXPECT_TRUE(TraceHas(profile.trace, FaultOp::kNewWritableFile, ".hidx"));

  // The stats prove each background op actually ran (not just that some
  // file of the right name was touched).
  EXPECT_GE(ParseStat(profile.stats, "flushes"), 1u) << profile.stats;
  EXPECT_GE(ParseStat(profile.stats, "merges"), 1u) << profile.stats;
  EXPECT_GE(ParseStat(profile.stats, "splits"), 1u) << profile.stats;
  EXPECT_GE(ParseStat(profile.stats, "gcs"), 1u) << profile.stats;
}

TEST(DbCrashTest, CrashAtEveryFaultPoint) {
  test::CrashHarness harness;
  test::CrashHarness::Profile profile;
  ASSERT_EQ("", harness.RunProfile(&profile));

  const uint64_t stride = MatrixStride();
  uint64_t failures = 0;
  for (uint64_t i = 0; i < profile.workload_calls; i += stride) {
    std::string r = harness.RunCrashAt(i);
    if (!r.empty()) {
      failures++;
      EXPECT_EQ("", r) << "crash at call " << i;
      if (failures >= 5) break;  // Enough diagnostics; stop the flood.
    }
  }
  EXPECT_EQ(0u, failures);
}

// Recovery itself is full of fault points: WAL-replay flush, manifest
// rewrite, CURRENT rename + directory sync, obsolete-file sweep. Crash at
// every counted call of a reopen and verify via a third, clean open.
TEST(DbCrashTest, ReopenCrashMatrix) {
  test::CrashHarness harness;
  test::CrashHarness::Profile profile;
  ASSERT_EQ("", harness.RunProfile(&profile));

  const uint64_t stride = MatrixStride();
  uint64_t failures = 0;
  for (uint64_t i = 0; i < profile.reopen_calls; i += stride) {
    std::string r = harness.RunReopenCrashAt(i);
    if (!r.empty()) {
      failures++;
      EXPECT_EQ("", r) << "crash at reopen call " << i;
      if (failures >= 5) break;
    }
  }
  EXPECT_EQ(0u, failures);
}

// The same matrices over a cross-shard workload: four foreground shards,
// four WALs, every sync-put exercising the sync-all durability floor.
// Coverage first — the workload must actually spread across shard WALs.
TEST(DbCrashTest, ShardedFaultPointCoverage) {
  test::CrashHarness harness(/*write_shards=*/4);
  test::CrashHarness::Profile profile;
  ASSERT_EQ("", harness.RunProfile(&profile));

  std::set<std::string> shard_wals;
  for (const auto& rec : profile.trace) {
    if (rec.op == FaultOp::kAppend &&
        rec.filename.find(".swal") != std::string::npos) {
      shard_wals.insert(rec.filename);
    }
  }
  EXPECT_GE(shard_wals.size(), 2u)
      << "workload keys hash onto fewer than 2 shard WALs";
}

// Crash at every counted Env call of the cross-shard workload. Recovery
// must merge the shard WALs by sequence number and land on a consistent
// prefix cut — including the cross-shard last-sequence check.
TEST(DbCrashTest, ShardedCrashAtEveryFaultPoint) {
  test::CrashHarness harness(/*write_shards=*/4);
  test::CrashHarness::Profile profile;
  ASSERT_EQ("", harness.RunProfile(&profile));

  const uint64_t stride = MatrixStride();
  uint64_t failures = 0;
  for (uint64_t i = 0; i < profile.workload_calls; i += stride) {
    std::string r = harness.RunCrashAt(i);
    if (!r.empty()) {
      failures++;
      EXPECT_EQ("", r) << "crash at call " << i;
      if (failures >= 5) break;
    }
  }
  EXPECT_EQ(0u, failures);
}

// Crash at every counted call of a reopen that replays four shard WALs.
TEST(DbCrashTest, ShardedReopenCrashMatrix) {
  test::CrashHarness harness(/*write_shards=*/4);
  test::CrashHarness::Profile profile;
  ASSERT_EQ("", harness.RunProfile(&profile));

  const uint64_t stride = MatrixStride();
  uint64_t failures = 0;
  for (uint64_t i = 0; i < profile.reopen_calls; i += stride) {
    std::string r = harness.RunReopenCrashAt(i);
    if (!r.empty()) {
      failures++;
      EXPECT_EQ("", r) << "crash at reopen call " << i;
      if (failures >= 5) break;
    }
  }
  EXPECT_EQ(0u, failures);
}

// Sensitivity check demanded by the acceptance criteria: reintroduce the
// historical unsafe GC ordering (old value logs deleted before the manifest
// install is durable) and prove the harness catches it. A harness that
// passes both with and without the bug would be vacuous.
TEST(DbCrashTest, DeliberateGcOrderingBugIsCaught) {
  struct BugGuard {
    BugGuard() {
      UniKVDB::TEST_gc_unsafe_delete_before_install_.store(true);
    }
    ~BugGuard() {
      UniKVDB::TEST_gc_unsafe_delete_before_install_.store(false);
    }
  } guard;

  test::CrashHarness harness;
  test::CrashHarness::Profile profile;
  // Without a crash the bug is invisible: deletion and install both land.
  ASSERT_EQ("", harness.RunProfile(&profile));

  // Find the window the bug opens: the first premature vlog deletion, and
  // the manifest sync that follows it. Crashing in between leaves the
  // manifest pointing at value logs that no longer exist.
  uint64_t delete_index = UINT64_MAX;
  uint64_t sync_index = UINT64_MAX;
  for (uint64_t i = 0; i < profile.trace.size(); i++) {
    const auto& rec = profile.trace[i];
    if (delete_index == UINT64_MAX && rec.op == FaultOp::kRemoveFile &&
        rec.filename.find(".vlog") != std::string::npos) {
      delete_index = i;
    } else if (delete_index != UINT64_MAX && rec.op == FaultOp::kSync &&
               rec.filename.find("MANIFEST") != std::string::npos) {
      sync_index = i;
      break;
    }
  }
  ASSERT_NE(UINT64_MAX, delete_index);
  ASSERT_NE(UINT64_MAX, sync_index);

  // Crash right before the manifest sync: the deletions are durable, the
  // install is not. Recovery must detect the lost live values (either as
  // unreadable pointers or as a state matching no valid prefix cut).
  std::string r = harness.RunCrashAt(sync_index);
  EXPECT_NE("", r);
}

// A failed manifest sync must latch a sticky background error: later
// writes are rejected, reads keep working.
TEST(DbCrashTest, BackgroundErrorIsStickyAndRejectsWrites) {
  std::unique_ptr<MemEnv> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  Options opts;
  opts.env = &fenv;
  opts.write_buffer_size = 1 << 20;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(opts, "/bgerrdb", &raw).ok());
  std::unique_ptr<DB> db(raw);
  EXPECT_TRUE(db->GetBackgroundError().ok());

  ASSERT_TRUE(
      db->Put(WriteOptions(), test::TestKey(1), test::TestValue(1)).ok());

  // Every manifest sync from now on fails.
  fenv.FailAt(FaultOp::kSync, "MANIFEST", 0, /*sticky=*/true);
  Status fs = db->FlushMemTable();
  EXPECT_FALSE(fs.ok());
  EXPECT_FALSE(db->GetBackgroundError().ok());

  Status ws = db->Put(WriteOptions(), test::TestKey(2), test::TestValue(2));
  EXPECT_FALSE(ws.ok());

  // Reads still work after the engine goes read-only.
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), test::TestKey(1), &value).ok());
  EXPECT_EQ(test::TestValue(1), value);
}

// A failed WAL sync latches the same sticky error through the write path.
TEST(DbCrashTest, FailedWalSyncLatchesBackgroundError) {
  std::unique_ptr<MemEnv> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  Options opts;
  opts.env = &fenv;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(opts, "/walerrdb", &raw).ok());
  std::unique_ptr<DB> db(raw);

  ASSERT_TRUE(
      db->Put(WriteOptions(), test::TestKey(1), test::TestValue(1)).ok());

  fenv.FailAt(FaultOp::kSync, ".swal", 0, /*sticky=*/true);
  WriteOptions sync_write;
  sync_write.sync = true;
  Status ws = db->Put(sync_write, test::TestKey(2), test::TestValue(2));
  EXPECT_FALSE(ws.ok());
  EXPECT_FALSE(db->GetBackgroundError().ok());
  EXPECT_FALSE(
      db->Put(WriteOptions(), test::TestKey(3), test::TestValue(3)).ok());

  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), test::TestKey(1), &value).ok());
}

}  // namespace
}  // namespace unikv
