file(REMOVE_RECURSE
  "CMakeFiles/bench_params.dir/bench_params.cc.o"
  "CMakeFiles/bench_params.dir/bench_params.cc.o.d"
  "bench_params"
  "bench_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
