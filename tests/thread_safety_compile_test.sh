#!/usr/bin/env bash
# Proves the thread-safety gate rejects what it claims to reject.
#
# Compiles thread_safety_compile_fixture.cc with clang's thread-safety
# analysis once per violation class: the clean variant (0) must compile,
# every violation variant must NOT. Exits 77 (ctest SKIP) when clang++
# is unavailable — gcc parses the annotations away, so there is nothing
# to prove there.
set -u

SRC_DIR="$(cd "$(dirname "$0")" && pwd)"
REPO_ROOT="$(dirname "$SRC_DIR")"
FIXTURE="$SRC_DIR/thread_safety_compile_fixture.cc"

if ! command -v clang++ >/dev/null 2>&1; then
  echo "SKIP: clang++ not found; thread-safety negative-compile test needs it"
  exit 77
fi

compile() {
  clang++ -std=c++20 -fsyntax-only -I "$REPO_ROOT/src" \
      -Wthread-safety -Werror=thread-safety \
      -DUNIKV_TSA_VIOLATION="$1" "$FIXTURE" 2>&1
}

fail=0

if out=$(compile 0); then
  echo "OK: violation 0 (clean) compiles"
else
  echo "FAIL: the clean variant must compile under -Werror=thread-safety:"
  echo "$out"
  fail=1
fi

for v in 1 2 3 4 5; do
  if out=$(compile "$v"); then
    echo "FAIL: violation $v compiled — the analysis did not catch it"
    fail=1
  else
    echo "OK: violation $v rejected"
  fi
done

exit "$fail"
