# Empty compiler generated dependencies file for merging_iterator_test.
# This may be replaced when dependencies are built.
