// Unit tests for the fault-injection Env: the durability model (synced
// prefixes, never-synced files, rename rollback, directory syncs), fault
// rules, counting/tracing, and composition over both MemEnv and the real
// PosixEnv.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "test_util.h"
#include "util/fault_injection_env.h"

namespace unikv {
namespace {

std::string ReadWhole(Env* env, const std::string& fname) {
  uint64_t size = 0;
  if (!env->GetFileSize(fname, &size).ok()) return "<missing>";
  std::unique_ptr<SequentialFile> f;
  if (!env->NewSequentialFile(fname, &f).ok()) return "<missing>";
  std::string scratch(size, '\0');
  Slice data;
  if (!f->Read(size, &data, scratch.data()).ok()) return "<error>";
  return data.ToString();
}

Status WriteWhole(Env* env, const std::string& fname, const std::string& data,
                  bool sync) {
  std::unique_ptr<WritableFile> f;
  Status s = env->NewWritableFile(fname, &f);
  if (!s.ok()) return s;
  s = f->Append(data);
  if (s.ok() && sync) s = f->Sync();
  if (s.ok()) s = f->Close();
  return s;
}

// The shared suite runs against an abstract root directory so it can be
// instantiated over MemEnv and over PosixEnv (in a scratch dir).
class FaultInjectionEnvTest : public testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (UsePosix()) {
      root_ = test::NewTestDir("fault_injection_env");
      base_ = Env::Default();
    } else {
      mem_env_.reset(NewMemEnv());
      base_ = mem_env_.get();
      root_ = "/faultroot";
      ASSERT_TRUE(base_->CreateDir(root_).ok());
    }
    fenv_ = std::make_unique<FaultInjectionEnv>(base_);
  }

  bool UsePosix() const { return GetParam(); }
  std::string Path(const std::string& name) const { return root_ + "/" + name; }

  std::unique_ptr<MemEnv> mem_env_;
  Env* base_ = nullptr;
  std::string root_;
  std::unique_ptr<FaultInjectionEnv> fenv_;
};

TEST_P(FaultInjectionEnvTest, CrashTruncatesToSyncedPrefix) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fenv_->NewWritableFile(Path("a"), &f).ok());
  ASSERT_TRUE(f->Append("durable").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("-volatile").ok());
  // Crash with the tail unsynced.
  fenv_->CrashAtCallIndex(fenv_->TotalMutatingCalls());
  std::unique_ptr<WritableFile> dummy;
  EXPECT_FALSE(fenv_->NewWritableFile(Path("trigger"), &dummy).ok());
  ASSERT_TRUE(fenv_->crashed());
  f.reset();
  ASSERT_TRUE(fenv_->RecoverAfterCrash().ok());
  EXPECT_EQ("durable", ReadWhole(fenv_.get(), Path("a")));
}

TEST_P(FaultInjectionEnvTest, NeverSyncedFileVanishesOnCrash) {
  ASSERT_TRUE(WriteWhole(fenv_.get(), Path("synced"), "x", true).ok());
  ASSERT_TRUE(WriteWhole(fenv_.get(), Path("unsynced"), "y", false).ok());
  fenv_->CrashAtCallIndex(fenv_->TotalMutatingCalls());
  std::unique_ptr<WritableFile> dummy;
  EXPECT_FALSE(fenv_->NewWritableFile(Path("trigger"), &dummy).ok());
  ASSERT_TRUE(fenv_->RecoverAfterCrash().ok());
  EXPECT_TRUE(fenv_->FileExists(Path("synced")));
  EXPECT_FALSE(fenv_->FileExists(Path("unsynced")));
}

TEST_P(FaultInjectionEnvTest, PreexistingFilesAreFullyDurable) {
  // Written through the *base*, so the wrapper never saw a write: treated
  // as durable in full.
  ASSERT_TRUE(WriteWhole(base_, Path("old"), "ancient", false).ok());
  fenv_->CrashAtCallIndex(fenv_->TotalMutatingCalls());
  std::unique_ptr<WritableFile> dummy;
  EXPECT_FALSE(fenv_->NewWritableFile(Path("trigger"), &dummy).ok());
  ASSERT_TRUE(fenv_->RecoverAfterCrash().ok());
  EXPECT_EQ("ancient", ReadWhole(fenv_.get(), Path("old")));
}

TEST_P(FaultInjectionEnvTest, UnsyncedRenameRollsBackAndResurrectsTarget) {
  ASSERT_TRUE(WriteWhole(fenv_.get(), Path("victim"), "old-target", true).ok());
  ASSERT_TRUE(WriteWhole(fenv_.get(), Path("new"), "replacement", true).ok());
  ASSERT_TRUE(fenv_->RenameFile(Path("new"), Path("victim")).ok());
  // No SyncDir: the rename is not durable.
  fenv_->CrashAtCallIndex(fenv_->TotalMutatingCalls());
  std::unique_ptr<WritableFile> dummy;
  EXPECT_FALSE(fenv_->NewWritableFile(Path("trigger"), &dummy).ok());
  ASSERT_TRUE(fenv_->RecoverAfterCrash().ok());
  EXPECT_EQ("old-target", ReadWhole(fenv_.get(), Path("victim")));
  EXPECT_EQ("replacement", ReadWhole(fenv_.get(), Path("new")));
}

TEST_P(FaultInjectionEnvTest, SyncDirMakesRenameDurable) {
  ASSERT_TRUE(WriteWhole(fenv_.get(), Path("victim"), "old-target", true).ok());
  ASSERT_TRUE(WriteWhole(fenv_.get(), Path("new"), "replacement", true).ok());
  ASSERT_TRUE(fenv_->RenameFile(Path("new"), Path("victim")).ok());
  ASSERT_TRUE(fenv_->SyncDir(root_).ok());
  fenv_->CrashAtCallIndex(fenv_->TotalMutatingCalls());
  std::unique_ptr<WritableFile> dummy;
  EXPECT_FALSE(fenv_->NewWritableFile(Path("trigger"), &dummy).ok());
  ASSERT_TRUE(fenv_->RecoverAfterCrash().ok());
  EXPECT_EQ("replacement", ReadWhole(fenv_.get(), Path("victim")));
  EXPECT_FALSE(fenv_->FileExists(Path("new")));
}

TEST_P(FaultInjectionEnvTest, RemoveFileIsDurableImmediately) {
  ASSERT_TRUE(WriteWhole(fenv_.get(), Path("gone"), "data", true).ok());
  ASSERT_TRUE(fenv_->RemoveFile(Path("gone")).ok());
  fenv_->CrashAtCallIndex(fenv_->TotalMutatingCalls());
  std::unique_ptr<WritableFile> dummy;
  EXPECT_FALSE(fenv_->NewWritableFile(Path("trigger"), &dummy).ok());
  ASSERT_TRUE(fenv_->RecoverAfterCrash().ok());
  EXPECT_FALSE(fenv_->FileExists(Path("gone")));
}

TEST_P(FaultInjectionEnvTest, FailAtNthMatchingCall) {
  fenv_->FailAt(FaultOp::kAppend, "log", /*nth=*/1);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fenv_->NewWritableFile(Path("x.log"), &f).ok());
  EXPECT_TRUE(f->Append("first").ok());   // nth=0: passes.
  EXPECT_FALSE(f->Append("second").ok());  // nth=1: injected fault.
  EXPECT_TRUE(f->Append("third").ok());   // One-shot rule is spent.
  EXPECT_FALSE(fenv_->crashed());  // FailAt never freezes the filesystem.
}

TEST_P(FaultInjectionEnvTest, StickyFaultKeepsFailing) {
  fenv_->FailAt(FaultOp::kSync, "db", /*nth=*/0, /*sticky=*/true);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fenv_->NewWritableFile(Path("db"), &f).ok());
  ASSERT_TRUE(f->Append("x").ok());
  EXPECT_FALSE(f->Sync().ok());
  EXPECT_FALSE(f->Sync().ok());
  fenv_->ClearFaults();
  EXPECT_TRUE(f->Sync().ok());
}

TEST_P(FaultInjectionEnvTest, PatternFiltersByFilename) {
  fenv_->FailAt(FaultOp::kAppend, "target", /*nth=*/0, /*sticky=*/true);
  std::unique_ptr<WritableFile> a, b;
  ASSERT_TRUE(fenv_->NewWritableFile(Path("other"), &a).ok());
  ASSERT_TRUE(fenv_->NewWritableFile(Path("target"), &b).ok());
  EXPECT_TRUE(a->Append("ok").ok());
  EXPECT_FALSE(b->Append("fails").ok());
}

TEST_P(FaultInjectionEnvTest, CountersAndTrace) {
  fenv_->EnableTrace(true);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fenv_->NewWritableFile(Path("t"), &f).ok());
  ASSERT_TRUE(f->Append("1").ok());
  ASSERT_TRUE(f->Append("2").ok());
  ASSERT_TRUE(f->Flush().ok());  // Interceptable but never counted.
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_EQ(1u, fenv_->CallCount(FaultOp::kNewWritableFile));
  EXPECT_EQ(2u, fenv_->CallCount(FaultOp::kAppend));
  EXPECT_EQ(0u, fenv_->CallCount(FaultOp::kFlush));
  EXPECT_EQ(1u, fenv_->CallCount(FaultOp::kSync));
  EXPECT_EQ(4u, fenv_->TotalMutatingCalls());
  auto trace = fenv_->Trace();
  ASSERT_EQ(4u, trace.size());
  EXPECT_EQ(FaultOp::kNewWritableFile, trace[0].op);
  EXPECT_EQ(Path("t"), trace[0].filename);
  fenv_->ResetCounters();
  EXPECT_EQ(0u, fenv_->TotalMutatingCalls());
  EXPECT_TRUE(fenv_->Trace().empty());
}

TEST_P(FaultInjectionEnvTest, FrozenEnvRejectsWritesButAllowsReads) {
  ASSERT_TRUE(WriteWhole(fenv_.get(), Path("r"), "readable", true).ok());
  fenv_->CrashAt(FaultOp::kNewWritableFile, "boom", 0);
  std::unique_ptr<WritableFile> w;
  EXPECT_FALSE(fenv_->NewWritableFile(Path("boom"), &w).ok());
  ASSERT_TRUE(fenv_->crashed());
  // Mutations fail while frozen...
  EXPECT_FALSE(fenv_->RemoveFile(Path("r")).ok());
  EXPECT_FALSE(fenv_->RenameFile(Path("r"), Path("r2")).ok());
  EXPECT_FALSE(WriteWhole(fenv_.get(), Path("w"), "x", false).ok());
  // ...reads still work (the dying process can limp to shutdown).
  EXPECT_EQ("readable", ReadWhole(fenv_.get(), Path("r")));
  EXPECT_TRUE(fenv_->FileExists(Path("r")));
}

TEST_P(FaultInjectionEnvTest, AppendableFileKeepsSyncedBase) {
  ASSERT_TRUE(WriteWhole(fenv_.get(), Path("log"), "base|", true).ok());
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(fenv_->NewAppendableFile(Path("log"), &f).ok());
  ASSERT_TRUE(f->Append("synced|").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("lost").ok());
  fenv_->CrashAtCallIndex(fenv_->TotalMutatingCalls());
  std::unique_ptr<WritableFile> dummy;
  EXPECT_FALSE(fenv_->NewWritableFile(Path("trigger"), &dummy).ok());
  f.reset();
  ASSERT_TRUE(fenv_->RecoverAfterCrash().ok());
  EXPECT_EQ("base|synced|", ReadWhole(fenv_.get(), Path("log")));
}

TEST_P(FaultInjectionEnvTest, CrashAtEnumeratesDeterministically) {
  // The same scripted sequence must produce the same call count each run —
  // the property the crash matrix depends on.
  auto run = [&](FaultInjectionEnv* env) {
    std::unique_ptr<WritableFile> f;
    // Statuses deliberately ignored: the scripted sequence runs both
    // clean and with injected faults, and only the call count matters.
    (void)env->NewWritableFile(Path("d"), &f);
    (void)f->Append("1");
    (void)f->Sync();
    (void)env->RenameFile(Path("d"), Path("d2"));
    (void)env->SyncDir(root_);
    (void)env->RemoveFile(Path("d2"));
  };
  run(fenv_.get());
  uint64_t n = fenv_->TotalMutatingCalls();
  EXPECT_EQ(6u, n);
  fenv_->ResetCounters();
  run(fenv_.get());
  EXPECT_EQ(n, fenv_->TotalMutatingCalls());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, FaultInjectionEnvTest,
                         testing::Values(false, true),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "Posix" : "Mem";
                         });

}  // namespace
}  // namespace unikv
