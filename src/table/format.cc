#include "table/format.h"

#include "util/crc32c.h"
#include "util/env.h"

namespace unikv {

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  filter_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // Padding
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
  assert(dst->size() == original_size + kEncodedLength);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic = ((static_cast<uint64_t>(magic_hi) << 32) |
                          (static_cast<uint64_t>(magic_lo)));
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }

  Status result = filter_handle_.DecodeFrom(input);
  if (result.ok()) {
    result = index_handle_.DecodeFrom(input);
  }
  if (result.ok()) {
    // Skip padding and magic.
    const char* end = magic_ptr + 8;
    *input = Slice(end, input->data() + input->size() - end);
  }
  return result;
}

Status ReadBlock(RandomAccessFile* file, const BlockHandle& handle,
                 BlockContents* result) {
  result->data = Slice();
  result->cachable = false;
  result->heap_allocated = false;

  // Read the block contents as well as the type/crc footer.
  size_t n = static_cast<size_t>(handle.size());
  char* buf = new char[n + kBlockTrailerSize];
  Slice contents;
  Status s =
      file->Read(handle.offset(), n + kBlockTrailerSize, &contents, buf);
  if (!s.ok()) {
    delete[] buf;
    return s;
  }
  if (contents.size() != n + kBlockTrailerSize) {
    delete[] buf;
    return Status::Corruption("truncated block read");
  }

  // Check the crc of the type and the block contents.
  const char* data = contents.data();
  const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
  const uint32_t actual = crc32c::Value(data, n + 1);
  if (actual != crc) {
    delete[] buf;
    return Status::Corruption("block checksum mismatch");
  }

  // No compression is implemented (type byte reserved).
  if (data != buf) {
    // File implementation gave us a pointer to some other data; copy not
    // needed, just use it directly but do not cache.
    delete[] buf;
    result->data = Slice(data, n);
    result->heap_allocated = false;
    result->cachable = false;
  } else {
    result->data = Slice(buf, n);
    result->heap_allocated = true;
    result->cachable = true;
  }
  return Status::OK();
}

}  // namespace unikv
