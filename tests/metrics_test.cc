// Unit tests for the metrics subsystem: counters, gauges, histograms,
// the registry, the JSON emitter, and the thread-local PerfContext.
//
// Deliberately DB-free: this file is also compiled into metrics_tsan_test
// with only the util/ sources under -fsanitize=thread, so the concurrency
// tests double as a race check on the lock-free counters.

#include "util/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/perf_context.h"

namespace unikv {
namespace {

TEST(CounterTest, Basics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrements) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; i++) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(GaugeTest, MovesBothWays) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(20);
  EXPECT_EQ(g.Value(), -5);
}

TEST(ConcurrentHistogramTest, ConcurrentAdds) {
  constexpr int kThreads = 4;
  constexpr int kAdds = 20000;
  ConcurrentHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kAdds; i++) h.Add(t * 1000 + i % 100);
    });
  }
  for (auto& t : threads) t.join();
  Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.Count(), static_cast<uint64_t>(kThreads) * kAdds);
  h.Reset();
  EXPECT_EQ(h.Snapshot().Count(), 0u);
}

TEST(ConcurrentHistogramTest, EightThreadHammer) {
  // The sharded lock-free histogram hammered from 8 threads; under
  // metrics_tsan_test this is the race check on the atomic buckets.
  constexpr int kThreads = 8;
  constexpr int kAdds = 50000;
  ConcurrentHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kAdds; i++) h.Add(i % 1000 + 1);
    });
  }
  for (auto& t : threads) t.join();
  Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.Count(), static_cast<uint64_t>(kThreads) * kAdds);
  EXPECT_EQ(snap.Min(), 1.0);
  EXPECT_EQ(snap.Max(), 1000.0);
  // Percentiles over the merged shards are monotone and in-range.
  const double p50 = snap.Percentile(50);
  const double p99 = snap.Percentile(99);
  const double p999 = snap.Percentile(99.9);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_LE(p999, snap.Max());
  EXPECT_NEAR(snap.Average(), 500.5, 50.0);
}

TEST(ConcurrentHistogramTest, SnapshotWhileAdding) {
  // Snapshot() racing Add() must be safe (readers tolerate missing the
  // in-flight sample); TSan checks the absence of data races.
  ConcurrentHistogram h;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) h.Add(++i % 100 + 1);
  });
  // Wait until the writer has demonstrably started; on a single-core box
  // the main thread can otherwise finish every snapshot before the writer
  // is first scheduled.
  while (h.Snapshot().Count() == 0) std::this_thread::yield();
  uint64_t last_count = 0;
  for (int i = 0; i < 200; i++) {
    Histogram snap = h.Snapshot();
    EXPECT_GE(snap.Count(), last_count);  // Counts never go backwards.
    last_count = snap.Count();
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(h.Snapshot().Count(), 0u);
}

TEST(ConcurrentHistogramTest, MergePlainHistogramsWithDisjointRanges) {
  Histogram lo, hi;
  for (int i = 0; i < 100; i++) lo.Add(10);
  for (int i = 0; i < 100; i++) hi.Add(100000);
  ConcurrentHistogram h;
  h.Merge(lo);
  h.Merge(hi);
  h.Add(500);
  Histogram snap = h.Snapshot();
  EXPECT_EQ(snap.Count(), 201u);
  EXPECT_EQ(snap.Min(), 10.0);
  EXPECT_EQ(snap.Max(), 100000.0);
  EXPECT_LE(snap.Percentile(25), 20.0);
  EXPECT_GE(snap.Percentile(95), 50000.0);
  // Merging an empty histogram is a no-op.
  Histogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.Snapshot().Count(), 201u);
}

TEST(MetricsRegistryTest, StablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(reg.GetCounter("x")->Value(), 7u);
  EXPECT_NE(reg.GetCounter("y"), a);
  EXPECT_EQ(reg.NumCounters(), 2u);
  EXPECT_EQ(reg.GetGauge("g"), reg.GetGauge("g"));
  EXPECT_EQ(reg.GetHistogram("h"), reg.GetHistogram("h"));
}

TEST(MetricsRegistryTest, ConcurrentRegistration) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 100; i++) {
        reg.GetCounter("shared" + std::to_string(i % 10))->Inc();
        reg.GetHistogram("hist")->Add(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t total = 0;
  for (int i = 0; i < 10; i++) {
    total += reg.GetCounter("shared" + std::to_string(i))->Value();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 100);
}

TEST(MetricsRegistryTest, ToStringAndJson) {
  MetricsRegistry reg;
  reg.GetCounter("reads")->Add(3);
  reg.GetGauge("depth")->Set(-2);
  reg.GetHistogram("lat")->Add(10.0);

  std::string text = reg.ToString();
  EXPECT_NE(text.find("reads"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);

  std::string json = reg.ToJson();
  EXPECT_TRUE(test::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"reads\":3"), std::string::npos);
}

TEST(JsonBuilderTest, TypesAndEscaping) {
  JsonBuilder b;
  b.AddUint("u", 18446744073709551615ull);
  b.AddInt("i", -5);
  b.AddDouble("d", 0.5);
  b.AddBool("t", true);
  b.AddString("s", "quote\" backslash\\ newline\n ctrl\x01");
  b.AddRaw("nested", "{\"k\":[1,2]}");
  std::string out = b.Finish();
  EXPECT_TRUE(test::IsValidJson(out)) << out;
  EXPECT_NE(out.find("\\\""), std::string::npos);
  EXPECT_NE(out.find("\\\\"), std::string::npos);
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
}

TEST(JsonBuilderTest, EmptyObject) {
  JsonBuilder b;
  std::string out = b.Finish();
  EXPECT_EQ(out, "{}");
  EXPECT_TRUE(test::IsValidJson(out));
}

TEST(PerfContextTest, ResetAndAccumulate) {
  PerfContext* perf = GetPerfContext();
  perf->Reset();
  EXPECT_EQ(perf->gets, 0u);
  perf->gets += 2;
  perf->hash_index_probes += 5;
  EXPECT_EQ(perf->gets, 2u);
  EXPECT_EQ(perf->hash_index_probes, 5u);
  perf->Reset();
  EXPECT_EQ(perf->gets, 0u);
  EXPECT_EQ(perf->hash_index_probes, 0u);
}

TEST(PerfContextTest, DeltaSince) {
  PerfContext* perf = GetPerfContext();
  perf->Reset();
  perf->gets = 10;
  perf->sorted_seeks = 4;
  PerfContext before = *perf;
  perf->gets += 3;
  perf->sorted_seeks += 1;
  perf->vlog_read_bytes += 4096;
  PerfContext d = perf->DeltaSince(before);
  EXPECT_EQ(d.gets, 3u);
  EXPECT_EQ(d.sorted_seeks, 1u);
  EXPECT_EQ(d.vlog_read_bytes, 4096u);
  EXPECT_EQ(d.writes, 0u);
  perf->Reset();
}

TEST(PerfContextTest, ToStringSkipsZeros) {
  PerfContext p;
  p.gets = 2;
  std::string s = p.ToString();
  EXPECT_NE(s.find("gets=2"), std::string::npos);
  EXPECT_EQ(s.find("writes"), std::string::npos);
  std::string all = p.ToString(/*include_zeros=*/true);
  EXPECT_NE(all.find("writes=0"), std::string::npos);
}

TEST(PerfContextTest, ThreadLocal) {
  PerfContext* main_ctx = GetPerfContext();
  main_ctx->Reset();
  main_ctx->gets = 7;
  std::thread t([] {
    PerfContext* other = GetPerfContext();
    // A fresh thread starts from zero; its increments stay its own.
    EXPECT_EQ(other->gets, 0u);
    other->gets = 100;
  });
  t.join();
  EXPECT_EQ(main_ctx->gets, 7u);
  main_ctx->Reset();
}

TEST(StopwatchGuardTest, AccumulatesElapsed) {
  uint64_t total = 0;
  Env* env = Env::Default();
  {
    StopwatchGuard g(env, &total);
    env->SleepForMicroseconds(2000);
  }
  EXPECT_GE(total, 1000u);
  uint64_t first = total;
  {
    StopwatchGuard g(nullptr, &total);  // nullptr -> Env::Default().
  }
  EXPECT_GE(total, first);
}

}  // namespace
}  // namespace unikv
