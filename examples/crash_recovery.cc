// Crash recovery walkthrough: uses the in-memory Env's power-failure
// simulation to show what UniKV guarantees after a crash — synced writes
// survive via WAL replay, partition metadata comes back from the
// MANIFEST, hash indexes are restored from checkpoints, and torn tails
// are dropped cleanly.
//
//   ./build/examples/crash_recovery

#include <cstdio>
#include <memory>
#include <string>

#include "core/db.h"
#include "util/env.h"

namespace {

std::string Key(int i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "acct%06d", i);
  return buf;
}

void Check(unikv::DB* db, int i, const char* expect) {
  std::string value;
  unikv::Status s = db->Get(unikv::ReadOptions(), Key(i), &value);
  const char* got = s.ok() ? value.c_str() : (s.IsNotFound() ? "(miss)"
                                                             : "(error)");
  std::printf("  %s = %-10s (expected %s)%s\n", Key(i).c_str(), got, expect,
              std::string(got) == expect ? "" : "  <-- MISMATCH");
}

}  // namespace

int main() {
  std::unique_ptr<unikv::MemEnv> env(unikv::NewMemEnv());
  unikv::Options options;
  options.env = env.get();
  options.write_buffer_size = 64 * 1024;
  options.unsorted_limit = 256 * 1024;

  unikv::DB* raw = nullptr;
  unikv::Status s = unikv::DB::Open(options, "/bank", &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<unikv::DB> db(raw);

  // Phase 1: durable writes (sync=true -> WAL fsynced per commit).
  std::printf("phase 1: 100 synced account writes\n");
  unikv::WriteOptions synced;
  synced.sync = true;
  for (int i = 0; i < 100; i++) {
    if (!db->Put(synced, Key(i), "committed").ok()) return 1;
  }

  // Phase 2: push some data through flush + merge so it lives in the
  // UnsortedStore/SortedStore rather than the WAL.
  std::printf("phase 2: flush + merge 400 more accounts\n");
  for (int i = 100; i < 500; i++) {
    if (!db->Put(unikv::WriteOptions(), Key(i), "merged").ok()) return 1;
  }
  if (!db->CompactAll().ok()) return 1;

  // Phase 3: unsynced tail the crash may eat.
  std::printf("phase 3: 50 unsynced writes (at-risk tail)\n");
  for (int i = 500; i < 550; i++) {
    if (!db->Put(unikv::WriteOptions(), Key(i), "volatile").ok()) return 1;
  }

  // CRASH: the process dies; everything not fsynced vanishes.
  std::printf("\n*** simulated power failure ***\n\n");
  db.reset();
  env->DropUnsyncedData();

  s = unikv::DB::Open(options, "/bank", &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    return 1;
  }
  db.reset(raw);
  std::printf("recovered. checking guarantees:\n");
  Check(db.get(), 0, "committed");    // WAL-replayed.
  Check(db.get(), 99, "committed");   // WAL-replayed.
  Check(db.get(), 100, "merged");     // From SortedStore via MANIFEST.
  Check(db.get(), 499, "merged");
  std::printf("  (unsynced tail keys may be gone — that is the contract)\n");
  std::string value;
  int survived = 0;
  for (int i = 500; i < 550; i++) {
    if (db->Get(unikv::ReadOptions(), Key(i), &value).ok()) survived++;
  }
  std::printf("  unsynced tail: %d/50 survived\n", survived);

  // The recovered store is fully writable.
  if (!db->Put(synced, Key(9999), "post-crash").ok()) return 1;
  Check(db.get(), 9999, "post-crash");
  std::printf("crash_recovery OK\n");
  return 0;
}
