#ifndef UNIKV_BASELINE_BASELINES_H_
#define UNIKV_BASELINE_BASELINES_H_

#include <string>

#include "core/db.h"

namespace unikv {
namespace baseline {

/// Opens a LevelDB-style LSM-tree: leveled compaction (L0..L6), per-table
/// bloom filters, values inline. Stands in for LevelDB/RocksDB in the
/// paper's comparisons.
Status OpenLeveledDB(const Options& options, const std::string& name,
                     DB** dbptr);

/// Opens a tiered/universal-compaction LSM-tree: up to
/// `options.tiered_runs_per_level` overlapping sorted runs per level,
/// merged wholesale into the next level. Stands in for the
/// write-optimized HyperLevelDB/PebblesDB end of the design space.
Status OpenTieredDB(const Options& options, const std::string& name,
                    DB** dbptr);

/// Opens a SkimpyStash-style hash store: an in-memory bucket directory
/// over an append-only on-disk log with per-bucket chains. O(1)-ish point
/// ops, no range scans, memory fixed by the bucket count — used by the
/// motivation experiment (paper Fig. 1).
Status OpenHashLogDB(const Options& options, const std::string& name,
                     DB** dbptr);

/// Bucket-count knob for OpenHashLogDB (kept out of Options to avoid
/// polluting the main configuration surface).
struct HashLogConfig {
  size_t num_buckets = 1 << 16;
};
Status OpenHashLogDB(const Options& options, const HashLogConfig& config,
                     const std::string& name, DB** dbptr);

}  // namespace baseline
}  // namespace unikv

#endif  // UNIKV_BASELINE_BASELINES_H_
