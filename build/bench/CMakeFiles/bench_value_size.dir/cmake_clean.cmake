file(REMOVE_RECURSE
  "CMakeFiles/bench_value_size.dir/bench_value_size.cc.o"
  "CMakeFiles/bench_value_size.dir/bench_value_size.cc.o.d"
  "bench_value_size"
  "bench_value_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
