#include "util/thread_pool.h"

namespace unikv {

ThreadPool::ThreadPool(int num_threads) : work_cv_(&mu_), idle_cv_(&mu_) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock l(&mu_);
    shutting_down_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    MutexLock l(&mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.Signal();
}

void ThreadPool::Schedule(TaskGroup* group, std::function<void()> task) {
  // Count the task before it becomes runnable so a Wait() issued right
  // after Schedule() can never slip past an unstarted task.
  group->TaskStarted();
  Schedule([group, task = std::move(task)] {
    task();
    group->TaskFinished();
  });
}

void ThreadPool::WaitIdle() {
  MutexLock l(&mu_);
  while (!(queue_.empty() && active_ == 0)) idle_cv_.Wait();
}

void ThreadPool::WorkerLoop() {
  MutexLock l(&mu_);
  while (true) {
    while (!(shutting_down_ || !queue_.empty())) work_cv_.Wait();
    if (shutting_down_ && queue_.empty()) {
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    active_++;
    l.Unlock();
    task();
    l.Lock();
    active_--;
    if (queue_.empty() && active_ == 0) {
      idle_cv_.SignalAll();
    }
  }
}

}  // namespace unikv
