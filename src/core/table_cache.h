#ifndef UNIKV_CORE_TABLE_CACHE_H_
#define UNIKV_CORE_TABLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/iterator.h"
#include "core/options.h"
#include "util/status.h"

namespace unikv {

class Cache;
class Env;
class Table;

/// Caches open Table readers keyed by file number. Thread-safe.
class TableCache {
 public:
  /// `block_cache` may be null. Both must outlive the cache.
  TableCache(Env* env, std::string dbname, const TableOptions& table_options,
             Cache* block_cache, int max_open_tables = 500);
  ~TableCache();

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  /// Returns an iterator over the named table. If `tableptr` is non-null,
  /// also stores the Table* backing the iterator (valid while the iterator
  /// lives).
  Iterator* NewIterator(uint64_t file_number, uint64_t file_size,
                        const Table** tableptr = nullptr);

  /// Seeks `internal_key` in the named table; see Table::Get.
  Status Get(uint64_t file_number, uint64_t file_size,
             const Slice& internal_key, bool* found, std::string* key_out,
             std::string* value_out);

  /// Bloom pre-check for a user key (always true if no filter).
  bool KeyMayMatch(uint64_t file_number, uint64_t file_size,
                   const Slice& user_key);

  /// Per-table access count (Fig. 2 instrumentation); 0 if not open.
  uint64_t AccessCount(uint64_t file_number, uint64_t file_size);

  /// Drops the cached reader for a deleted file.
  void Evict(uint64_t file_number);

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size,
                   void** handle_out);

  Env* const env_;
  const std::string dbname_;
  const TableOptions table_options_;
  Cache* const block_cache_;
  std::unique_ptr<Cache> cache_;
};

}  // namespace unikv

#endif  // UNIKV_CORE_TABLE_CACHE_H_
