// Property-based testing: long randomized operation sequences
// (put/delete/flush/compact/scan/reopen) validated against an in-memory
// model, swept across seeds x engine configurations. Tiny limits force
// many flush/merge/GC/split cycles per run.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baseline/baselines.h"
#include "core/db.h"
#include "test_util.h"
#include "util/random.h"

namespace unikv {
namespace {

struct Config {
  const char* name;
  int engine;  // 0=UniKV, 1=Leveled, 2=Tiered.
  bool hash_index = true;
  bool kv_separation = true;
  bool partitioning = true;
};

const Config kConfigs[] = {
    {"unikv", 0},
    {"unikv_nohash", 0, false, true, true},
    {"unikv_nosep", 0, true, false, true},
    {"unikv_nopart", 0, true, true, false},
    {"leveled", 1},
    {"tiered", 2},
};

class ModelTest
    : public testing::TestWithParam<std::tuple<int, int>> {  // (config, seed)
 protected:
  const Config& Cfg() const { return kConfigs[std::get<0>(GetParam())]; }
  uint32_t Seed() const { return 1000 + std::get<1>(GetParam()); }

  Options MakeOptions() const {
    Options opt;
    opt.write_buffer_size = 16 * 1024;
    opt.unsorted_limit = 48 * 1024;
    opt.partition_size_limit = 192 * 1024;
    opt.sorted_table_size = 16 * 1024;
    opt.gc_garbage_threshold = 32 * 1024;
    opt.scan_merge_limit = 3;
    opt.max_bytes_for_level_base = 64 * 1024;
    opt.l0_compaction_trigger = 3;
    opt.tiered_runs_per_level = 3;
    opt.enable_hash_index = Cfg().hash_index;
    opt.enable_kv_separation = Cfg().kv_separation;
    opt.enable_partitioning = Cfg().partitioning;
    return opt;
  }

  void Open() {
    DB* raw = nullptr;
    Options opt = MakeOptions();
    switch (Cfg().engine) {
      case 0:
        ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
        break;
      case 1:
        ASSERT_TRUE(baseline::OpenLeveledDB(opt, dir_, &raw).ok());
        break;
      case 2:
        ASSERT_TRUE(baseline::OpenTieredDB(opt, dir_, &raw).ok());
        break;
    }
    db_.reset(raw);
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_P(ModelTest, RandomOpsMatchModel) {
  dir_ = test::NewTestDir(std::string("model_") + Cfg().name + "_" +
                          std::to_string(Seed()));
  Open();

  std::map<std::string, std::string> model;
  Random rnd(Seed());
  const int kKeySpace = 200;
  const int kOps = 2500;

  for (int op = 0; op < kOps; op++) {
    int dice = rnd.Uniform(100);
    if (dice < 55) {
      // Put with variable value sizes (exercises blocks + vlog).
      std::string key = test::TestKey(rnd.Uniform(kKeySpace));
      size_t len = rnd.OneIn(20) ? 2048 + rnd.Uniform(4096)
                                 : 16 + rnd.Uniform(256);
      std::string value = test::TestValue(op, len);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    } else if (dice < 70) {
      std::string key = test::TestKey(rnd.Uniform(kKeySpace));
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
      model.erase(key);
    } else if (dice < 85) {
      // Point read.
      std::string key = test::TestKey(rnd.Uniform(kKeySpace));
      std::string value;
      Status s = db_->Get(ReadOptions(), key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound()) << key << " op " << op;
      } else {
        ASSERT_TRUE(s.ok()) << key << " op " << op << " " << s.ToString();
        ASSERT_EQ(it->second, value) << key << " op " << op;
      }
    } else if (dice < 93) {
      // Short scan.
      std::string start = test::TestKey(rnd.Uniform(kKeySpace));
      int count = 1 + rnd.Uniform(20);
      std::vector<std::pair<std::string, std::string>> out;
      ASSERT_TRUE(db_->Scan(ReadOptions(), start, count, &out).ok());
      auto it = model.lower_bound(start);
      for (size_t i = 0; i < out.size(); i++, ++it) {
        ASSERT_NE(it, model.end()) << "scan overshot at op " << op;
        ASSERT_EQ(it->first, out[i].first) << "op " << op;
        ASSERT_EQ(it->second, out[i].second) << "op " << op;
      }
      ASSERT_TRUE(out.size() == static_cast<size_t>(count) ||
                  it == model.end());
    } else if (dice < 97) {
      ASSERT_TRUE(db_->FlushMemTable().ok());
    } else {
      ASSERT_TRUE(db_->CompactAll().ok());
    }
  }

  // Final sweep: full iterator vs model.
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    ASSERT_EQ(mit->first, iter->key().ToString());
    ASSERT_EQ(mit->second, iter->value().ToString());
  }
  ASSERT_EQ(mit, model.end());
  iter.reset();

  // Reopen and recheck a sample.
  db_.reset();
  Open();
  Random probe(Seed() * 3);
  for (int i = 0; i < 100; i++) {
    std::string key = test::TestKey(probe.Uniform(kKeySpace));
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      ASSERT_TRUE(s.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
      ASSERT_EQ(it->second, value) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsBySeeds, ModelTest,
    testing::Combine(testing::Range(0, 6), testing::Range(0, 3)),
    [](const testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kConfigs[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace unikv
