#include "util/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define UNIKV_CRC32C_X86 1
#endif

namespace unikv {
namespace crc32c {

namespace {

// Table-driven CRC-32C (Castagnoli polynomial 0x82F63B78, reflected),
// generated at static-init time into a constexpr 8-way sliced table.
struct Tables {
  uint32_t t[8][256];
  constexpr Tables() : t{} {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; i++) {
      for (int k = 1; k < 8; k++) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

constexpr Tables kTables;

#ifdef UNIKV_CRC32C_X86
// SSE4.2 CRC32 instruction path (~10x the sliced-table throughput on
// value-sized payloads — every record read verifies its checksum, so
// this is on the hot path of Get/MultiGet/Scan). Compiled with a target
// attribute so the TU needs no global -msse4.2; only called when cpuid
// reports the instruction at runtime.
bool HaveSse42() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 20)) != 0;
}

// The CRC32 instruction has ~3-cycle latency, so a single dependency
// chain runs at 8 bytes / 3 cycles. Three independent chains over three
// interleaved lanes saturate the unit's 1/cycle throughput; the lane
// CRCs are stitched back together with a precomputed "advance the CRC
// state by kLane zero bytes" linear operator (the CRC of a message
// suffix is independent of the prefix state, so
// U(s, A||B) == shift(U(s, A)) ^ U(0, B)).
constexpr size_t kLane = 336;  // Bytes per lane (42 CRC32 steps).

// shift(s) == raw CRC state after feeding kLane zero bytes from state s.
// Linear over GF(2), so four 256-entry byte tables compose it.
struct ShiftTables {
  uint32_t t[4][256];
  ShiftTables() {
    for (int j = 0; j < 4; j++) {
      for (uint32_t b = 0; b < 256; b++) {
        uint32_t crc = b << (8 * j);
        for (size_t k = 0; k < kLane; k++) {
          crc = (crc >> 8) ^ kTables.t[0][crc & 0xFF];
        }
        t[j][b] = crc;
      }
    }
  }
};

const ShiftTables kShift;

inline uint32_t ShiftLane(uint32_t crc) {
  return kShift.t[0][crc & 0xFF] ^ kShift.t[1][(crc >> 8) & 0xFF] ^
         kShift.t[2][(crc >> 16) & 0xFF] ^ kShift.t[3][crc >> 24];
}

__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t init_crc,
                                                    const char* data,
                                                    size_t n) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  uint64_t crc = init_crc ^ 0xFFFFFFFFu;
  while (n >= 3 * kLane) {
    uint64_t a = crc, b = 0, c = 0;
    const uint8_t* pb = p + kLane;
    const uint8_t* pc = p + 2 * kLane;
    for (size_t i = 0; i < kLane; i += 8) {
      uint64_t va, vb, vc;
      std::memcpy(&va, p + i, 8);
      std::memcpy(&vb, pb + i, 8);
      std::memcpy(&vc, pc + i, 8);
      a = __builtin_ia32_crc32di(a, va);
      b = __builtin_ia32_crc32di(b, vb);
      c = __builtin_ia32_crc32di(c, vc);
    }
    crc = ShiftLane(ShiftLane(static_cast<uint32_t>(a)) ^
                    static_cast<uint32_t>(b)) ^
          static_cast<uint32_t>(c);
    p += 3 * kLane;
    n -= 3 * kLane;
  }
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = __builtin_ia32_crc32di(crc, chunk);
    p += 8;
    n -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  while (n--) {
    crc32 = __builtin_ia32_crc32qi(crc32, *p++);
  }
  return crc32 ^ 0xFFFFFFFFu;
}
#endif  // UNIKV_CRC32C_X86

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
#ifdef UNIKV_CRC32C_X86
  static const bool have_hw = HaveSse42();
  if (have_hw) return ExtendHw(init_crc, data, n);
#endif
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  // Process 8 bytes at a time using the sliced tables.
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         (static_cast<uint32_t>(p[1]) << 8) |
                         (static_cast<uint32_t>(p[2]) << 16) |
                         (static_cast<uint32_t>(p[3]) << 24));
    crc = kTables.t[7][lo & 0xFF] ^ kTables.t[6][(lo >> 8) & 0xFF] ^
          kTables.t[5][(lo >> 16) & 0xFF] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace unikv
