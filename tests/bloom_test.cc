#include "table/bloom.h"

#include <gtest/gtest.h>

#include "util/coding.h"

namespace unikv {
namespace {

std::string NumKey(int i) {
  char buf[4];
  EncodeFixed32(buf, i);
  return std::string(buf, 4);
}

TEST(Bloom, EmptyFilterMatchesNothing) {
  BloomFilterBuilder builder(10);
  std::string filter;
  builder.Finish(&filter);
  EXPECT_FALSE(BloomFilterMayMatch("hello", filter));
  EXPECT_FALSE(BloomFilterMayMatch("world", filter));
}

TEST(Bloom, Small) {
  BloomFilterBuilder builder(10);
  builder.AddKey("hello");
  builder.AddKey("world");
  std::string filter;
  builder.Finish(&filter);
  EXPECT_TRUE(BloomFilterMayMatch("hello", filter));
  EXPECT_TRUE(BloomFilterMayMatch("world", filter));
  EXPECT_FALSE(BloomFilterMayMatch("x", filter));
  EXPECT_FALSE(BloomFilterMayMatch("foo", filter));
}

TEST(Bloom, NoFalseNegativesEver) {
  for (int n : {1, 10, 100, 1000, 10000}) {
    BloomFilterBuilder builder(10);
    for (int i = 0; i < n; i++) {
      builder.AddKey(NumKey(i));
    }
    std::string filter;
    builder.Finish(&filter);
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(BloomFilterMayMatch(NumKey(i), filter))
          << "false negative for " << i << " at n=" << n;
    }
  }
}

TEST(Bloom, FalsePositiveRateIsReasonable) {
  // With 10 bits/key the FP rate should be around 1%; assert < 3%.
  const int n = 10000;
  BloomFilterBuilder builder(10);
  for (int i = 0; i < n; i++) {
    builder.AddKey(NumKey(i));
  }
  std::string filter;
  builder.Finish(&filter);
  int false_positives = 0;
  for (int i = 0; i < 10000; i++) {
    if (BloomFilterMayMatch(NumKey(i + 1000000000), filter)) {
      false_positives++;
    }
  }
  double rate = false_positives / 10000.0;
  EXPECT_LT(rate, 0.03) << "fp rate " << rate;
}

TEST(Bloom, FewerBitsMeansMoreFalsePositives) {
  const int n = 5000;
  auto fp_rate = [n](int bits_per_key) {
    BloomFilterBuilder builder(bits_per_key);
    for (int i = 0; i < n; i++) builder.AddKey(NumKey(i));
    std::string filter;
    builder.Finish(&filter);
    int fp = 0;
    for (int i = 0; i < 5000; i++) {
      if (BloomFilterMayMatch(NumKey(i + 1000000000), filter)) fp++;
    }
    return fp / 5000.0;
  };
  EXPECT_GT(fp_rate(2), fp_rate(12));
}

TEST(Bloom, FilterSizeScalesWithKeysAndBits) {
  for (int bits : {4, 10, 16}) {
    BloomFilterBuilder builder(bits);
    for (int i = 0; i < 1000; i++) builder.AddKey(NumKey(i));
    std::string filter;
    builder.Finish(&filter);
    // bits/8 bytes per key plus the k byte, rounded up.
    EXPECT_GE(filter.size(), 1000u * bits / 8);
    EXPECT_LE(filter.size(), 1000u * bits / 8 + 16);
  }
}

TEST(Bloom, GarbageFilterIsSafe) {
  EXPECT_FALSE(BloomFilterMayMatch("key", Slice("")));
  EXPECT_FALSE(BloomFilterMayMatch("key", Slice("x")));
  // A filter claiming an absurd k is treated as match-all (safe).
  std::string weird(100, '\0');
  weird.back() = static_cast<char>(40);
  EXPECT_TRUE(BloomFilterMayMatch("key", weird));
}

}  // namespace
}  // namespace unikv
