#include "util/coding.h"

namespace unikv {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

char* EncodeVarint32(char* dst, uint32_t v) {
  uint8_t* ptr = reinterpret_cast<uint8_t*>(dst);
  static const int B = 128;
  if (v < (1 << 7)) {
    *(ptr++) = v;
  } else if (v < (1 << 14)) {
    *(ptr++) = v | B;
    *(ptr++) = v >> 7;
  } else if (v < (1 << 21)) {
    *(ptr++) = v | B;
    *(ptr++) = (v >> 7) | B;
    *(ptr++) = v >> 14;
  } else if (v < (1 << 28)) {
    *(ptr++) = v | B;
    *(ptr++) = (v >> 7) | B;
    *(ptr++) = (v >> 14) | B;
    *(ptr++) = v >> 21;
  } else {
    *(ptr++) = v | B;
    *(ptr++) = (v >> 7) | B;
    *(ptr++) = (v >> 14) | B;
    *(ptr++) = (v >> 21) | B;
    *(ptr++) = v >> 28;
  }
  return reinterpret_cast<char*>(ptr);
}

void PutVarint32(std::string* dst, uint32_t v) {
  char buf[5];
  char* ptr = EncodeVarint32(buf, v);
  dst->append(buf, ptr - buf);
}

char* EncodeVarint64(char* dst, uint64_t v) {
  static const unsigned B = 128;
  uint8_t* ptr = reinterpret_cast<uint8_t*>(dst);
  while (v >= B) {
    *(ptr++) = v | B;
    v >>= 7;
  }
  *(ptr++) = static_cast<uint8_t>(v);
  return reinterpret_cast<char*>(ptr);
}

void PutVarint64(std::string* dst, uint64_t v) {
  char buf[10];
  char* ptr = EncodeVarint64(buf, v);
  dst->append(buf, ptr - buf);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 128) {
    v >>= 7;
    len++;
  }
  return len;
}

const char* GetVarint32PtrFallback(const char* p, const char* limit,
                                   uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = *(reinterpret_cast<const uint8_t*>(p));
    p++;
    if (byte & 128) {
      result |= ((byte & 127) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value) {
  if (p < limit) {
    uint32_t result = *(reinterpret_cast<const uint8_t*>(p));
    if ((result & 128) == 0) {
      *value = result;
      return p + 1;
    }
  }
  return GetVarint32PtrFallback(p, limit, value);
}

bool GetVarint32(Slice* input, uint32_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint32Ptr(p, limit, value);
  if (q == nullptr) {
    return false;
  }
  *input = Slice(q, limit - q);
  return true;
}

const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = *(reinterpret_cast<const uint8_t*>(p));
    p++;
    if (byte & 128) {
      result |= ((byte & 127) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      return p;
    }
  }
  return nullptr;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint64Ptr(p, limit, value);
  if (q == nullptr) {
    return false;
  }
  *input = Slice(q, limit - q);
  return true;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len;
  if (GetVarint32(input, &len) && input->size() >= len) {
    *result = Slice(input->data(), len);
    input->remove_prefix(len);
    return true;
  }
  return false;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

}  // namespace unikv
