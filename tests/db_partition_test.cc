// Dynamic range partitioning tests: splits happen under load, routing
// stays correct across splits, iterators span partitions, and lazy value
// splitting via GC completes.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/db.h"
#include "test_util.h"
#include "util/random.h"

namespace unikv {
namespace {

Options SplittyOptions() {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.partition_size_limit = 512 * 1024;  // Splits after ~0.5 MiB.
  opt.sorted_table_size = 32 * 1024;
  opt.gc_garbage_threshold = 256 * 1024;
  return opt;
}

int NumPartitions(DB* db) {
  std::string v;
  EXPECT_TRUE(db->GetProperty("db.num-partitions", &v));
  return std::stoi(v);
}

class DbPartitionTest : public testing::Test {
 protected:
  void Open(const Options& opt, const std::string& name) {
    opt_ = opt;
    dir_ = test::NewTestDir(name);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }
  void Reopen() {
    db_.reset();
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt_, dir_, &raw).ok());
    db_.reset(raw);
  }

  Options opt_;
  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbPartitionTest, SplitsHappenAndDataSurvives) {
  Open(SplittyOptions(), "part_split");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 4000; i++) {
    std::string key = test::TestKey(i);
    std::string value = test::TestValue(i, 512);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_GT(NumPartitions(db_.get()), 1) << "expected at least one split";

  // Every key still readable (routing by boundary keys works).
  for (int i = 0; i < 4000; i += 17) {
    std::string key = test::TestKey(i);
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
    EXPECT_EQ(model[key], value);
  }
}

TEST_F(DbPartitionTest, IteratorSpansPartitions) {
  Open(SplittyOptions(), "part_iter");
  std::map<std::string, std::string> model;
  Random rnd(3);
  for (int i = 0; i < 4000; i++) {
    int id = rnd.Uniform(5000);
    std::string key = test::TestKey(id);
    std::string value = test::TestValue(id, 400);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_GT(NumPartitions(db_.get()), 1);

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(mit->first, iter->key().ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, model.end());
}

TEST_F(DbPartitionTest, WritesContinueAcrossSplitBoundaries) {
  Open(SplittyOptions(), "part_writes");
  // Load enough for splits, then write into both halves again.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 512))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  int parts = NumPartitions(db_.get());
  ASSERT_GT(parts, 1);

  for (int i = 0; i < 3000; i += 3) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "rewritten").ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  for (int i = 0; i < 3000; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(i), &value).ok());
    if (i % 3 == 0) {
      EXPECT_EQ("rewritten", value) << i;
    } else {
      EXPECT_EQ(test::TestValue(i, 512), value) << i;
    }
  }
}

TEST_F(DbPartitionTest, PartitionsSurviveReopen) {
  Open(SplittyOptions(), "part_reopen");
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 512))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  int parts_before = NumPartitions(db_.get());
  ASSERT_GT(parts_before, 1);

  Reopen();
  EXPECT_EQ(parts_before, NumPartitions(db_.get()));
  for (int i = 0; i < 4000; i += 23) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i, 512), value);
  }
}

TEST_F(DbPartitionTest, NoPartitioningAblationNeverSplits) {
  Options opt = SplittyOptions();
  opt.enable_partitioning = false;
  Open(opt, "part_off");
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 512))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ(1, NumPartitions(db_.get()));
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(100), &value).ok());
}

TEST_F(DbPartitionTest, SplitCountGrowsWithData) {
  Open(SplittyOptions(), "part_growth");
  int last_parts = 1;
  for (int wave = 1; wave <= 3; wave++) {
    for (int i = (wave - 1) * 2000; i < wave * 2000; i++) {
      ASSERT_TRUE(
          db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 512))
              .ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
    int parts = NumPartitions(db_.get());
    EXPECT_GE(parts, last_parts);
    last_parts = parts;
  }
  EXPECT_GT(last_parts, 2);
}

}  // namespace
}  // namespace unikv
