#ifndef UNIKV_TABLE_BLOCK_H_
#define UNIKV_TABLE_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "core/dbformat.h"
#include "core/iterator.h"
#include "table/format.h"

namespace unikv {

/// An immutable, parsed block with restart-point binary search.
class Block {
 public:
  /// Takes ownership per contents.heap_allocated.
  explicit Block(const BlockContents& contents);
  ~Block();

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return size_; }

  /// Iterator over (internal key, value) entries ordered by `cmp`.
  Iterator* NewIterator(const InternalKeyComparator& cmp);

 private:
  class Iter;

  uint32_t NumRestarts() const;

  const char* data_;
  size_t size_;
  uint32_t restart_offset_;  // Offset in data_ of the restart array.
  bool owned_;               // Block owns data_[].
};

}  // namespace unikv

#endif  // UNIKV_TABLE_BLOCK_H_
