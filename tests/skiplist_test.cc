#include "mem/skiplist.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "util/arena.h"
#include "util/random.h"

namespace unikv {
namespace {

typedef uint64_t Key;

struct Comparator {
  int operator()(const Key& a, const Key& b) const {
    if (a < b) {
      return -1;
    } else if (a > b) {
      return +1;
    } else {
      return 0;
    }
  }
};

TEST(SkipList, Empty) {
  Arena arena;
  Comparator cmp;
  SkipList<Key, Comparator> list(cmp, &arena);
  EXPECT_TRUE(!list.Contains(10));

  SkipList<Key, Comparator>::Iterator iter(&list);
  EXPECT_TRUE(!iter.Valid());
  iter.SeekToFirst();
  EXPECT_TRUE(!iter.Valid());
  iter.Seek(100);
  EXPECT_TRUE(!iter.Valid());
  iter.SeekToLast();
  EXPECT_TRUE(!iter.Valid());
}

TEST(SkipList, InsertAndLookup) {
  const int N = 2000;
  const int R = 5000;
  Random rnd(1000);
  std::set<Key> keys;
  Arena arena;
  Comparator cmp;
  SkipList<Key, Comparator> list(cmp, &arena);
  for (int i = 0; i < N; i++) {
    Key key = rnd.Next() % R;
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }

  for (int i = 0; i < R; i++) {
    if (list.Contains(i)) {
      EXPECT_EQ(keys.count(i), 1u);
    } else {
      EXPECT_EQ(keys.count(i), 0u);
    }
  }

  // Simple iterator tests.
  {
    SkipList<Key, Comparator>::Iterator iter(&list);
    EXPECT_TRUE(!iter.Valid());

    iter.Seek(0);
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*(keys.begin()), iter.key());

    iter.SeekToFirst();
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*(keys.begin()), iter.key());

    iter.SeekToLast();
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(*(keys.rbegin()), iter.key());
  }

  // Forward iteration.
  for (int i = 0; i < R; i++) {
    SkipList<Key, Comparator>::Iterator iter(&list);
    iter.Seek(i);

    // Compare against model iterator.
    std::set<Key>::iterator model_iter = keys.lower_bound(i);
    for (int j = 0; j < 3; j++) {
      if (model_iter == keys.end()) {
        EXPECT_TRUE(!iter.Valid());
        break;
      } else {
        ASSERT_TRUE(iter.Valid());
        EXPECT_EQ(*model_iter, iter.key());
        ++model_iter;
        iter.Next();
      }
    }
  }

  // Backward iteration.
  {
    SkipList<Key, Comparator>::Iterator iter(&list);
    iter.SeekToLast();
    for (std::set<Key>::reverse_iterator model_iter = keys.rbegin();
         model_iter != keys.rend(); ++model_iter) {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(*model_iter, iter.key());
      iter.Prev();
    }
    EXPECT_TRUE(!iter.Valid());
  }
}

// One writer inserting while readers iterate concurrently: every key a
// reader observes must exist, and iteration stays sorted.
TEST(SkipList, ConcurrentReadersSingleWriter) {
  Arena arena;
  Comparator cmp;
  SkipList<Key, Comparator> list(cmp, &arena);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> max_inserted{0};

  std::thread readers[2];
  for (auto& t : readers) {
    t = std::thread([&] {
      while (!done.load(std::memory_order_acquire)) {
        SkipList<Key, Comparator>::Iterator iter(&list);
        Key prev = 0;
        bool first = true;
        for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
          Key k = iter.key();
          if (!first) {
            ASSERT_LT(prev, k);  // Strictly sorted.
          }
          first = false;
          prev = k;
        }
        // Everything inserted before this iteration began must be there.
        uint64_t floor = max_inserted.load(std::memory_order_acquire);
        if (floor > 0) {
          ASSERT_TRUE(list.Contains(floor));
        }
      }
    });
  }

  Random rnd(7);
  for (uint64_t i = 1; i <= 20000; i++) {
    list.Insert(i);
    max_inserted.store(i, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
}

}  // namespace
}  // namespace unikv
