#ifndef UNIKV_UTIL_THREAD_POOL_H_
#define UNIKV_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace unikv {

/// A fixed-size pool of worker threads draining a FIFO task queue. UniKV
/// uses it for parallel value fetches during scans (the paper uses a
/// 32-thread pool) and for background GC reads.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; wakes a sleeping worker.
  void Schedule(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace unikv

#endif  // UNIKV_UTIL_THREAD_POOL_H_
