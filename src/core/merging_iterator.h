#ifndef UNIKV_CORE_MERGING_ITERATOR_H_
#define UNIKV_CORE_MERGING_ITERATOR_H_

#include <vector>

#include "core/dbformat.h"
#include "core/iterator.h"

namespace unikv {

/// Returns an iterator yielding the union of children in internal-key
/// order. Takes ownership of the children. On ties (same internal key,
/// which cannot happen with unique sequence numbers) earlier children win.
Iterator* NewMergingIterator(const InternalKeyComparator& comparator,
                             std::vector<Iterator*> children);

/// Returns an iterator that concatenates non-overlapping children in
/// order (a "sorted run" iterator). `children` must be key-ordered.
Iterator* NewConcatenatingIterator(const InternalKeyComparator& comparator,
                                   std::vector<Iterator*> children);

}  // namespace unikv

#endif  // UNIKV_CORE_MERGING_ITERATOR_H_
