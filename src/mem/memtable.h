#ifndef UNIKV_MEM_MEMTABLE_H_
#define UNIKV_MEM_MEMTABLE_H_

#include <atomic>
#include <string>

#include "core/dbformat.h"
#include "core/iterator.h"
#include "mem/skiplist.h"
#include "util/arena.h"

namespace unikv {

/// In-memory write buffer: a skiplist of internal keys. Reference-counted
/// so flush can proceed while readers hold the immutable memtable.
class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& comparator);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }

  /// Drops a reference; deletes this when the count reaches zero.
  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }

  /// Approximate memory used by this table.
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  /// Returns an iterator over internal keys (caller owns it; the memtable
  /// must stay referenced while it is live).
  Iterator* NewIterator();

  /// Adds an entry that maps key to value at the given sequence number.
  /// For kTypeDeletion, value is ignored.
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  /// If the memtable contains a value for key, stores it in *value and
  /// returns true. If it contains a deletion for key, stores NotFound in
  /// *s and returns true. Else returns false.
  bool Get(const LookupKey& key, std::string* value, Status* s);

  /// Number of entries added.
  uint64_t NumEntries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  typedef SkipList<const char*, KeyComparator> Table;

  ~MemTable();  // Private: use Unref().

  KeyComparator comparator_;
  std::atomic<int> refs_;
  std::atomic<uint64_t> num_entries_;
  Arena arena_;
  Table table_;
};

}  // namespace unikv

#endif  // UNIKV_MEM_MEMTABLE_H_
