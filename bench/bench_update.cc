// Experiment F8 — Update-heavy performance including GC cost.
//
// Paper: load, then overwrite the key space repeatedly under a zipfian
// distribution; GC work is charged to write performance. Expected shape:
// UniKV sustains higher update throughput than LeveledLSM because
// overwritten values become log garbage reclaimed by per-partition GC
// instead of being rewritten through every level.

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("update");
  const uint64_t kKeys = Scaled(20000);
  const size_t kValueSize = 1024;

  PrintTableHeader(
      "F8 zipfian updates, 2x key-space ops after load (GC included)",
      {"engine", "kops/s", "write_amp", "MB_written", "gc/compact stats"});
  for (Engine engine : {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
    BenchDb bdb(engine, BenchOptions(), root);
    LoadSpec load;
    load.num_keys = kKeys;
    load.value_size = kValueSize;
    RunLoad(&bdb, load);
    bdb.io()->Reset();

    UpdateSpec spec;
    spec.num_ops = kKeys * 2;
    spec.key_space = kKeys;
    spec.value_size = kValueSize;
    PhaseResult r = RunUpdates(&bdb, spec);
    std::string stats;
    bdb.db()->GetProperty("db.stats", &stats);
    PrintTableRow({EngineName(engine), Fmt(r.kops_per_sec),
                   Fmt(r.write_amp, 2), Fmt(r.bytes_written / 1048576.0),
                   stats});
  }

  // Uniform updates (worst case for locality).
  PrintTableHeader("F8b uniform updates",
                   {"engine", "kops/s", "write_amp"});
  for (Engine engine : {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
    BenchDb bdb(engine, BenchOptions(), root);
    LoadSpec load;
    load.num_keys = kKeys;
    load.value_size = kValueSize;
    RunLoad(&bdb, load);
    bdb.io()->Reset();

    UpdateSpec spec;
    spec.num_ops = kKeys * 2;
    spec.key_space = kKeys;
    spec.value_size = kValueSize;
    spec.dist = Distribution::kUniform;
    PhaseResult r = RunUpdates(&bdb, spec);
    PrintTableRow(
        {EngineName(engine), Fmt(r.kops_per_sec), Fmt(r.write_amp, 2)});
  }
  return 0;
}
