// The canonical perf-trajectory suite: a fixed fill -> mixed -> scan run
// and a fixed fill -> YCSB A/B/C run against UniKV, each persisted as a
// schema-versioned BENCH_<workload>.json (current directory by default,
// $UNIKV_BENCH_OUT to redirect). Run it from the repo root after perf
// work so the repo's performance over time accumulates in-tree:
//
//   ./build/bench/bench_trajectory
//
// Op counts scale with UNIKV_BENCH_SCALE like every other bench.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace unikv {
namespace bench {
namespace {

void RunMixedTrajectory(const std::string& root) {
  const uint64_t keys = Scaled(20000);
  BenchDb bdb(Engine::kUniKV, BenchOptions(), root);

  std::vector<PhaseResult> phases;
  LoadSpec load;
  load.num_keys = keys;
  load.value_size = 1024;
  phases.push_back(RunLoad(&bdb, load));

  MixedSpec mixed;
  mixed.num_ops = Scaled(30000);
  mixed.key_space = keys;
  mixed.value_size = 1024;
  mixed.read_fraction = 0.5;
  phases.push_back(RunMixed(&bdb, mixed));

  ScanSpec scan;
  scan.num_ops = Scaled(300);
  scan.scan_len = 100;
  scan.key_space = keys;
  phases.push_back(RunScans(&bdb, scan));

  for (const PhaseResult& r : phases) {
    std::printf("[mixed/%s] %.1f kops/s over %llu ops\n", r.phase.c_str(),
                r.kops_per_sec, static_cast<unsigned long long>(r.ops));
  }
  WriteBenchTrajectory("mixed", &bdb, phases);
}

void RunYcsbTrajectory(const std::string& root) {
  const uint64_t keys = Scaled(20000);
  BenchDb bdb(Engine::kUniKV, BenchOptions(), root);

  std::vector<PhaseResult> phases;
  LoadSpec load;
  load.num_keys = keys;
  load.value_size = 1024;
  phases.push_back(RunLoad(&bdb, load));

  for (char w : {'A', 'B', 'C'}) {
    YcsbRunSpec spec;
    spec.workload = w;
    spec.num_ops = Scaled(15000);
    spec.key_space = keys;
    spec.value_size = 1024;
    phases.push_back(RunYcsb(&bdb, spec));
  }

  for (const PhaseResult& r : phases) {
    std::printf("[ycsb/%s] %.1f kops/s over %llu ops\n", r.phase.c_str(),
                r.kops_per_sec, static_cast<unsigned long long>(r.ops));
  }
  WriteBenchTrajectory("ycsb", &bdb, phases);
}

// Scan trajectory: the same random fill scanned twice — once with the
// sorted anchor view disabled (every scan pays a k-way heap merge over
// the overlapping unsorted tables) and once with it enabled (one
// anchor-guided child per partition, DESIGN.md §12). The options stack
// many overlapping tables and suppress merges/scan-merges so both phase
// sets run against an identical >= 8-table UnsortedStore; the view-on
// store reopens the view-off store's files, so the bytes scanned are the
// same down to the block.
void RunScanTrajectory(const std::string& root) {
  const uint64_t keys = Scaled(8000);
  Options opt = BenchOptions();
  opt.write_buffer_size = 128 * 1024;
  opt.unsorted_limit = 256 * 1024 * 1024;       // Never merge.
  opt.partition_size_limit = 512 * 1024 * 1024;  // Never split.
  opt.scan_merge_limit = 100000;                 // Never scan-merge.

  std::vector<PhaseResult> phases;

  opt.enable_anchor_view = false;
  {
    BenchDb off(Engine::kUniKV, opt, root);
    LoadSpec load;
    load.num_keys = keys;
    load.value_size = 512;
    phases.push_back(RunLoad(&off, load));

    // RunLoad settles with CompactAll, draining the UnsortedStore.
    // Overwrite every key in shuffled order with periodic flushes so the
    // scans run over a stack of overlapping unsorted tables (~16 with
    // the default scale) — the store state scan-merge used to be needed
    // for. The view-on scope below reopens these exact files.
    for (uint64_t i = 0; i < keys; i++) {
      uint64_t id = (i * 977) % keys;
      Status s = off.db()->Put(WriteOptions(), KeyGenerator::Key(id),
                               MakeValue(id, 512));
      if (!s.ok()) {
        std::fprintf(stderr, "refill failed: %s\n", s.ToString().c_str());
        std::abort();
      }
      if (i % 500 == 499) OrDie(off.db()->FlushMemTable(), "FlushMemTable");
    }

    ScanSpec scan;
    scan.key_space = keys;
    scan.phase = "scan_short_flat";
    scan.scan_len = 20;
    scan.num_ops = Scaled(300);
    phases.push_back(RunScans(&off, scan));
    scan.phase = "scan_long_flat";
    scan.scan_len = 200;
    scan.num_ops = Scaled(100);
    phases.push_back(RunScans(&off, scan));
  }

  // Reopen the same store with the view on; recovery rebuilds the
  // per-partition views from the tables.
  opt.enable_anchor_view = true;
  BenchDb on(Engine::kUniKV, opt, root, /*keep_existing=*/true);
  ScanSpec scan;
  scan.key_space = keys;
  scan.phase = "scan_short_view";
  scan.scan_len = 20;
  scan.num_ops = Scaled(300);
  phases.push_back(RunScans(&on, scan));
  scan.phase = "scan_long_view";
  scan.scan_len = 200;
  scan.num_ops = Scaled(100);
  phases.push_back(RunScans(&on, scan));

  double flat_short = 0, flat_long = 0, view_short = 0, view_long = 0;
  for (const PhaseResult& r : phases) {
    std::printf("[scan/%s] %.1f kops/s over %llu ops\n", r.phase.c_str(),
                r.kops_per_sec, static_cast<unsigned long long>(r.ops));
    if (r.phase == "scan_short_flat") flat_short = r.kops_per_sec;
    if (r.phase == "scan_long_flat") flat_long = r.kops_per_sec;
    if (r.phase == "scan_short_view") view_short = r.kops_per_sec;
    if (r.phase == "scan_long_view") view_long = r.kops_per_sec;
  }
  if (flat_short > 0 && flat_long > 0) {
    std::printf("[scan] anchor-view speedup: short=%.2fx long=%.2fx\n",
                view_short / flat_short, view_long / flat_long);
  }
  WriteBenchTrajectory("scan", &on, phases);
}

}  // namespace
}  // namespace bench
}  // namespace unikv

int main() {
  using namespace unikv::bench;
  RunMixedTrajectory(BenchRoot("trajectory_mixed"));
  RunYcsbTrajectory(BenchRoot("trajectory_ycsb"));
  RunScanTrajectory(BenchRoot("trajectory_scan"));
  return 0;
}
