#include "mem/write_batch.h"

#include "mem/memtable.h"
#include "util/coding.h"

namespace unikv {

// Header: 8-byte sequence followed by 4-byte count.
static const size_t kHeader = 12;

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader);
}

int WriteBatch::Count() const { return DecodeFixed32(rep_.data() + 8); }

void WriteBatch::SetCount(int n) {
  EncodeFixed32(&rep_[8], static_cast<uint32_t>(n));
}

SequenceNumber WriteBatch::Sequence() const {
  return SequenceNumber(DecodeFixed64(rep_.data()));
}

void WriteBatch::SetSequence(SequenceNumber seq) {
  EncodeFixed64(&rep_[0], seq);
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }

  input.remove_prefix(kHeader);
  Slice key, value;
  int found = 0;
  while (!input.empty()) {
    found++;
    char tag = input[0];
    input.remove_prefix(1);
    switch (tag) {
      case kTypeValue:
        if (GetLengthPrefixedSlice(&input, &key) &&
            GetLengthPrefixedSlice(&input, &value)) {
          handler->Put(key, value);
        } else {
          return Status::Corruption("bad WriteBatch Put");
        }
        break;
      case kTypeDeletion:
        if (GetLengthPrefixedSlice(&input, &key)) {
          handler->Delete(key);
        } else {
          return Status::Corruption("bad WriteBatch Delete");
        }
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != Count()) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

void WriteBatch::SetContents(const Slice& contents) {
  assert(contents.size() >= kHeader);
  rep_.assign(contents.data(), contents.size());
}

void WriteBatch::Append(const WriteBatch& src) {
  SetCount(Count() + src.Count());
  assert(src.rep_.size() >= kHeader);
  rep_.append(src.rep_.data() + kHeader, src.rep_.size() - kHeader);
}

namespace {

class MemTableInserter : public WriteBatch::Handler {
 public:
  SequenceNumber sequence;
  MemTable* mem;

  void Put(const Slice& key, const Slice& value) override {
    mem->Add(sequence, kTypeValue, key, value);
    sequence++;
  }
  void Delete(const Slice& key) override {
    mem->Add(sequence, kTypeDeletion, key, Slice());
    sequence++;
  }
};

}  // namespace

Status WriteBatch::InsertInto(MemTable* memtable) const {
  MemTableInserter inserter;
  inserter.sequence = Sequence();
  inserter.mem = memtable;
  return Iterate(&inserter);
}

}  // namespace unikv
