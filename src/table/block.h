#ifndef UNIKV_TABLE_BLOCK_H_
#define UNIKV_TABLE_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "core/dbformat.h"
#include "core/iterator.h"
#include "table/format.h"
#include "util/status.h"

namespace unikv {

/// An immutable, parsed block with restart-point binary search.
class Block {
 public:
  /// Takes ownership per contents.heap_allocated.
  explicit Block(const BlockContents& contents);
  ~Block();

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return size_; }

  /// Iterator over (internal key, value) entries ordered by `cmp`.
  Iterator* NewIterator(const InternalKeyComparator& cmp);

  /// Point seek without constructing an iterator: finds the first entry
  /// with key >= target. Sets *found and, when found, stores the entry key
  /// in *key_out (also used as the working buffer for prefix-shared
  /// decoding — clobbered even on a miss) and points *value_out at the
  /// value bytes inside the block. Returns non-OK on block corruption.
  /// This is the hot Get/MultiGet probe path: the iterator form costs two
  /// heap allocations per probe that this avoids.
  Status Find(const InternalKeyComparator& cmp, const Slice& target,
              bool* found, std::string* key_out, Slice* value_out) const;

 private:
  class Iter;

  uint32_t NumRestarts() const;

  const char* data_;
  size_t size_;
  uint32_t restart_offset_;  // Offset in data_ of the restart array.
  bool owned_;               // Block owns data_[].
};

}  // namespace unikv

#endif  // UNIKV_TABLE_BLOCK_H_
