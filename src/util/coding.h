#ifndef UNIKV_UTIL_CODING_H_
#define UNIKV_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace unikv {

// Fixed-width little-endian encodings -------------------------------------

inline void EncodeFixed32(char* dst, uint32_t value) {
  uint8_t* const buffer = reinterpret_cast<uint8_t*>(dst);
  buffer[0] = static_cast<uint8_t>(value);
  buffer[1] = static_cast<uint8_t>(value >> 8);
  buffer[2] = static_cast<uint8_t>(value >> 16);
  buffer[3] = static_cast<uint8_t>(value >> 24);
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  uint8_t* const buffer = reinterpret_cast<uint8_t*>(dst);
  for (int i = 0; i < 8; i++) {
    buffer[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

inline uint32_t DecodeFixed32(const char* ptr) {
  const uint8_t* const buffer = reinterpret_cast<const uint8_t*>(ptr);
  return (static_cast<uint32_t>(buffer[0])) |
         (static_cast<uint32_t>(buffer[1]) << 8) |
         (static_cast<uint32_t>(buffer[2]) << 16) |
         (static_cast<uint32_t>(buffer[3]) << 24);
}

inline uint64_t DecodeFixed64(const char* ptr) {
  const uint8_t* const buffer = reinterpret_cast<const uint8_t*>(ptr);
  uint64_t result = 0;
  for (int i = 0; i < 8; i++) {
    result |= static_cast<uint64_t>(buffer[i]) << (8 * i);
  }
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

// Varint encodings ---------------------------------------------------------

/// Appends a varint32 to *dst.
void PutVarint32(std::string* dst, uint32_t value);
/// Appends a varint64 to *dst.
void PutVarint64(std::string* dst, uint64_t value);
/// Appends varint32 length followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Writes value into dst[0..] and returns a pointer just past the last
/// written byte. dst must have room for up to 5 bytes.
char* EncodeVarint32(char* dst, uint32_t value);
/// As above; dst must have room for up to 10 bytes.
char* EncodeVarint64(char* dst, uint64_t value);

/// Parses a varint32 from *input, advancing it. Returns false on underflow
/// or malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
/// Reads a fixed64 from *input, advancing it.
bool GetFixed64(Slice* input, uint64_t* value);
bool GetFixed32(Slice* input, uint32_t* value);

/// Low-level varint32 parser over [p, limit); returns nullptr on error, else
/// a pointer just past the parsed value.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Number of bytes EncodeVarint64 would produce.
int VarintLength(uint64_t v);

}  // namespace unikv

#endif  // UNIKV_UTIL_CODING_H_
