// Tests for the Env abstraction: POSIX, in-memory (with crash
// simulation), and the instrumented wrapper used for I/O accounting.

#include "util/env.h"

#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"

namespace unikv {
namespace {

class EnvKindTest : public testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    if (GetParam() == 0) {
      env_ = Env::Default();
      dir_ = test::NewTestDir("env_posix");
    } else {
      mem_env_.reset(NewMemEnv());
      env_ = mem_env_.get();
      dir_ = "/mem";
      ASSERT_TRUE(env_->CreateDir(dir_).ok());
    }
  }

  std::unique_ptr<MemEnv> mem_env_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvKindTest, WriteThenReadSequential) {
  const std::string fname = dir_ + "/f";
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_->NewWritableFile(fname, &w).ok());
  ASSERT_TRUE(w->Append("hello ").ok());
  ASSERT_TRUE(w->Append("world").ok());
  ASSERT_TRUE(w->Sync().ok());
  ASSERT_TRUE(w->Close().ok());

  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  EXPECT_EQ(11u, size);

  std::unique_ptr<SequentialFile> r;
  ASSERT_TRUE(env_->NewSequentialFile(fname, &r).ok());
  char scratch[64];
  Slice result;
  ASSERT_TRUE(r->Read(5, &result, scratch).ok());
  EXPECT_EQ("hello", result.ToString());
  ASSERT_TRUE(r->Skip(1).ok());
  ASSERT_TRUE(r->Read(64, &result, scratch).ok());
  EXPECT_EQ("world", result.ToString());
  ASSERT_TRUE(r->Read(64, &result, scratch).ok());
  EXPECT_TRUE(result.empty());  // EOF.
}

TEST_P(EnvKindTest, RandomAccessRead) {
  const std::string fname = dir_ + "/ra";
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_->NewWritableFile(fname, &w).ok());
  ASSERT_TRUE(w->Append("0123456789").ok());
  ASSERT_TRUE(w->Close().ok());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &r).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(r->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ("3456", result.ToString());
  ASSERT_TRUE(r->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ("89", result.ToString());  // Truncated at EOF.
  r->ReadaheadHint(0, 10);             // Must not crash.
}

TEST_P(EnvKindTest, AppendableFile) {
  const std::string fname = dir_ + "/app";
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(env_->NewAppendableFile(fname, &w).ok());
    ASSERT_TRUE(w->Append("abc").ok());
    ASSERT_TRUE(w->Close().ok());
  }
  {
    std::unique_ptr<WritableFile> w;
    ASSERT_TRUE(env_->NewAppendableFile(fname, &w).ok());
    ASSERT_TRUE(w->Append("def").ok());
    ASSERT_TRUE(w->Close().ok());
  }
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  EXPECT_EQ(6u, size);
}

TEST_P(EnvKindTest, FileOps) {
  const std::string a = dir_ + "/a", b = dir_ + "/b";
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env_->NewWritableFile(a, &w).ok());
  ASSERT_TRUE(w->Append("x").ok());
  ASSERT_TRUE(w->Close().ok());
  EXPECT_TRUE(env_->FileExists(a));
  EXPECT_FALSE(env_->FileExists(b));
  ASSERT_TRUE(env_->RenameFile(a, b).ok());
  EXPECT_FALSE(env_->FileExists(a));
  EXPECT_TRUE(env_->FileExists(b));

  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  EXPECT_NE(std::find(children.begin(), children.end(), "b"),
            children.end());

  ASSERT_TRUE(env_->RemoveFile(b).ok());
  EXPECT_FALSE(env_->FileExists(b));
  EXPECT_FALSE(env_->RemoveFile(b).ok());  // Already gone.
}

TEST_P(EnvKindTest, MissingFileErrors) {
  std::unique_ptr<SequentialFile> r;
  EXPECT_FALSE(env_->NewSequentialFile(dir_ + "/missing", &r).ok());
  std::unique_ptr<RandomAccessFile> ra;
  EXPECT_FALSE(env_->NewRandomAccessFile(dir_ + "/missing", &ra).ok());
  uint64_t size;
  EXPECT_FALSE(env_->GetFileSize(dir_ + "/missing", &size).ok());
}

INSTANTIATE_TEST_SUITE_P(PosixAndMem, EnvKindTest, testing::Range(0, 2));

TEST(MemEnv, DropUnsyncedDataSimulatesPowerLoss) {
  std::unique_ptr<MemEnv> env(NewMemEnv());
  ASSERT_TRUE(env->CreateDir("/db").ok());

  // File A: partially synced.
  std::unique_ptr<WritableFile> a;
  ASSERT_TRUE(env->NewWritableFile("/db/a", &a).ok());
  ASSERT_TRUE(a->Append("durable").ok());
  ASSERT_TRUE(a->Sync().ok());
  ASSERT_TRUE(a->Append("-volatile").ok());

  // File B: never synced.
  std::unique_ptr<WritableFile> b;
  ASSERT_TRUE(env->NewWritableFile("/db/b", &b).ok());
  ASSERT_TRUE(b->Append("gone").ok());

  env->DropUnsyncedData();

  uint64_t size;
  ASSERT_TRUE(env->GetFileSize("/db/a", &size).ok());
  EXPECT_EQ(7u, size);  // Only "durable" survived.
  EXPECT_FALSE(env->FileExists("/db/b"));
}

TEST(InstrumentedEnv, CountsBytes) {
  std::unique_ptr<MemEnv> base(NewMemEnv());
  InstrumentedEnv env(base.get());
  ASSERT_TRUE(env.CreateDir("/d").ok());

  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/d/f", &w).ok());
  ASSERT_TRUE(w->Append("0123456789").ok());
  ASSERT_TRUE(w->Sync().ok());
  ASSERT_TRUE(w->Close().ok());
  EXPECT_EQ(10u, env.stats()->bytes_written.load());
  EXPECT_EQ(1u, env.stats()->syncs.load());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/d/f", &r).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(r->Read(0, 4, &result, scratch).ok());
  EXPECT_EQ(4u, env.stats()->bytes_read.load());

  env.stats()->Reset();
  EXPECT_EQ(0u, env.stats()->bytes_written.load());
}

TEST(EnvUtil, RemoveDirRecursively) {
  std::unique_ptr<MemEnv> env(NewMemEnv());
  ASSERT_TRUE(env->CreateDir("/top").ok());
  ASSERT_TRUE(env->CreateDir("/top/sub").ok());
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env->NewWritableFile("/top/f1", &w).ok());
  ASSERT_TRUE(w->Close().ok());
  ASSERT_TRUE(env->NewWritableFile("/top/sub/f2", &w).ok());
  ASSERT_TRUE(w->Close().ok());
  ASSERT_TRUE(RemoveDirRecursively(env.get(), "/top").ok());
  EXPECT_FALSE(env->FileExists("/top/f1"));
  EXPECT_FALSE(env->FileExists("/top/sub/f2"));
}

}  // namespace
}  // namespace unikv
