#ifndef UNIKV_CORE_OPTIONS_H_
#define UNIKV_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "table/table_builder.h"

namespace unikv {

class Cache;
class Env;

/// Options controlling a DB instance (UniKV or one of the baselines).
struct Options {
  /// Environment used for all file access. Defaults to Env::Default().
  Env* env = nullptr;

  bool create_if_missing = true;
  bool error_if_exists = false;

  /// Verify checksums on every read path (table blocks always carry CRCs).
  bool paranoid_checks = false;

  /// Memtable size that triggers a flush.
  size_t write_buffer_size = 4 * 1024 * 1024;

  /// Block cache capacity in bytes (0 disables the shared cache).
  size_t block_cache_size = 8 * 1024 * 1024;

  /// SSTable layout knobs.
  TableOptions table_options;

  // --- UniKV-specific knobs (ignored by baselines) ---

  /// UnsortedStore size that triggers a merge into the SortedStore
  /// (paper: UnsortedLimit, configured by available memory).
  size_t unsorted_limit = 16 * 1024 * 1024;

  /// Partition size (sorted keys + live log data) that triggers a range
  /// split (paper: partitionSizeLimit).
  size_t partition_size_limit = 256 * 1024 * 1024;

  /// Number of UnsortedStore tables that triggers the size-based merge
  /// scan optimization (paper: scanMergeLimit). With the sorted anchor
  /// view (enable_anchor_view) scans no longer pay a per-Next() merge-heap
  /// pop per overlapping table, so the default is raised from 8 to 16:
  /// fewer consolidation rewrites, less background write traffic.
  int scan_merge_limit = 16;

  /// Stale value-log bytes in a partition that trigger GC.
  size_t gc_garbage_threshold = 16 * 1024 * 1024;

  /// Target size of each SortedStore SSTable produced by merges/GC.
  size_t sorted_table_size = 2 * 1024 * 1024;

  /// Data-block size for SortedStore tables (merge and GC outputs).
  /// 0 inherits table_options.block_size. Once values separate, a
  /// SortedStore entry is just a key plus a value pointer (~40 bytes), so
  /// a 4KiB block holds only ~100 entries: every point probe lands in a
  /// different block and pays a full block-cache lookup, and batched
  /// sorted probes almost never reuse the previously pinned block.
  /// Larger blocks amortize both (binary search only grows
  /// logarithmically with entries per block); the cost is coarser reads
  /// on a cold block-cache miss. 16KiB keeps that cold read moderate.
  size_t sorted_block_size = 16 * 1024;

  /// Restart interval for SortedStore data blocks (merge and GC outputs).
  /// SortedStore entries are short — a key plus a value pointer once
  /// values separate — so prefix compression saves almost nothing, while
  /// every point probe pays a linear prefix-decode scan between restart
  /// points. 1 makes every entry a restart: the in-block search becomes a
  /// pure binary search over full keys and the scan disappears.
  /// UnsortedStore tables keep table_options.block_restart_interval
  /// (default 16): their blocks carry full values, where the prefix bytes
  /// saved are cheap relative to the payload.
  int sorted_block_restart_interval = 1;

  /// Values shorter than this stay inline in SortedStore tables instead
  /// of being separated into the value logs (the paper's suggested
  /// mitigation for small-KV workloads, where pointer overhead and
  /// scan-time dereferences outweigh the merge savings). 0 separates
  /// everything.
  size_t value_separation_threshold = 64;

  /// Hash functions used for cuckoo-style candidate buckets (paper: n).
  int index_num_hashes = 2;

  /// Average KV size estimate used to size each partition's hash index.
  size_t index_expected_entry_size = 1024;

  /// Thread-pool size for parallel value fetches during scans and GC
  /// (the paper uses 32; scale to the machine).
  int value_fetch_threads = 8;

  /// MultiGet value-log coalescing: two value pointers into the same log
  /// whose byte ranges are within this many bytes of each other are
  /// fetched as one span. 0 coalesces only truly adjacent/overlapping
  /// records. Spans are served zero-copy from the log's memory mapping
  /// when the Env supports it (gap bytes then cost nothing — they are
  /// never touched); on the pread fallback the gap bytes are read and
  /// discarded, so the default is one page: bridging more than a few
  /// records' worth to save one syscall is a net loss there — raise it
  /// (e.g. to 64KB) only for cold data on seek-bound media.
  size_t multiget_coalesce_gap_bytes = 4096;

  /// Background maintenance workers. Each worker picks one job at a time
  /// (memtable flush, merge, scan merge, GC, or split); jobs touching the
  /// same partition are mutually exclusive, jobs in different partitions
  /// run in parallel, and at most one flush is in flight. 1 restores the
  /// single-threaded scheduler (the crash harness pins this for
  /// deterministic Env-call traces). Clamped to [1, 16] at Open.
  int background_threads = 3;

  /// Foreground write shards. Keys are striped across shards by user-key
  /// hash; each shard owns its own memtable, WAL (.swal), writer queue and
  /// group commit, so concurrent writers to different shards never
  /// contend. Sequence numbers stay globally ordered and sync writes are
  /// durable across all shards, so crash recovery (which merges all shard
  /// WALs by sequence number) keeps the same prefix-cut guarantee as the
  /// single-queue path. 1 (the default) restores the single-queue write
  /// path. Not persisted: the shard count may change across restarts.
  /// Clamped to [1, 64] at Open.
  int write_shards = 1;

  /// Persist a hash-index checkpoint every this many UnsortedStore
  /// flushes (paper: every UnsortedLimit/2 of flushed tables). 0 disables
  /// checkpointing (recovery then rebuilds the index by scanning tables).
  int index_checkpoint_interval = 2;

  // --- Observability knobs ---

  /// Interval, in milliseconds, at which a background StatsSampler thread
  /// snapshots the metrics registry, appends a `stats_sample` line (with
  /// interval deltas) to the EVENTS log, and records the snapshot in the
  /// bounded ring served by the `db.stats.history` property. 0 (the
  /// default) starts no sampler thread at all.
  int stats_sample_interval_ms = 0;

  /// Capacity of the in-memory `db.stats.history` ring (oldest samples
  /// are dropped once it is full). Ignored when the sampler is off.
  size_t stats_history_size = 128;

  /// Size cap for the `<dbname>/EVENTS` structured log. When appending
  /// would exceed it, EVENTS is rotated to EVENTS.old (replacing any
  /// previous rotation), bounding event history to ~2x this value.
  /// 0 disables rotation (unbounded growth, the pre-cap behavior).
  uint64_t max_event_log_bytes = 64 * 1024 * 1024;

  // --- Ablation switches (F12 experiment). All default on. ---

  /// Off: point lookups in the UnsortedStore scan tables newest-to-oldest
  /// instead of consulting the hash index.
  bool enable_hash_index = true;
  /// Off: merges write values inline into SortedStore tables (no value
  /// logs, no GC).
  bool enable_kv_separation = true;
  /// Off: never split; a single partition grows without bound.
  bool enable_partitioning = true;
  /// Off: no size-based merge, no readahead, no parallel value fetch.
  bool enable_scan_optimization = true;
  /// Off: scans always k-way-merge the overlapping unsorted tables. On:
  /// each partition with >= 2 unsorted tables maintains a sorted anchor
  /// view (<id>.anchors; DESIGN.md §12) that iterators binary-search once
  /// and then stream with one lockstep cursor per table.
  bool enable_anchor_view = true;

  // --- Baseline LSM knobs ---

  /// L0 file count that triggers an L0->L1 compaction.
  int l0_compaction_trigger = 4;
  /// Target size of L1; each deeper level is 10x larger.
  size_t max_bytes_for_level_base = 10 * 1024 * 1024;
  /// Max sorted runs per level for the tiered baseline.
  int tiered_runs_per_level = 4;
  /// Bloom bits per key for baseline tables (UniKV stores none).
  int baseline_bloom_bits_per_key = 10;
  /// Bucket-directory size for the HashLogDB baseline (its fixed memory
  /// budget; chains lengthen as data outgrows it — motivation Fig. 1).
  size_t hashlog_buckets = 1 << 16;
};

struct ReadOptions {
  /// Checksum verification on reads. Table blocks and value-log records
  /// always carry CRCs and this engine always verifies them on read, so
  /// the default (off) is already satisfied with the stronger behavior;
  /// setting it true asserts the same thing explicitly.
  bool verify_checksums = false;
  /// Insert data blocks read by this operation into the block cache.
  /// Turn off for bulk scans that should not evict the hot working set.
  bool fill_cache = true;

  /// Snapshot sequence for iterators and scans: entries written with a
  /// sequence number greater than this are invisible, giving a
  /// point-in-time read. 0 (the default) reads at the latest visible
  /// sequence. Obtain the current visible sequence from
  /// GetProperty("db.visible-sequence"); the store keeps all versions
  /// until merge time, so recent snapshots stay readable while the
  /// iterator pins its version.
  uint64_t snapshot = 0;

  /// MultiGet only: upper bound on reader tasks a batch may fan out
  /// across the value-fetch pool when its keys span several partitions.
  /// <= 1 (the default) resolves every partition group on the calling
  /// thread. Clamped to the pool size (Options::value_fetch_threads).
  int multiget_parallelism = 1;
};

struct WriteOptions {
  /// fsync the WAL before acknowledging the write.
  bool sync = false;
};

}  // namespace unikv

#endif  // UNIKV_CORE_OPTIONS_H_
