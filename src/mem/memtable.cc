#include "mem/memtable.h"

#include "util/coding.h"

namespace unikv {

// Memtable entry format:
//   klength  varint32    (internal key length = user key + 8)
//   key      char[klength]
//   vlength  varint32
//   value    char[vlength]

static Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = data;
  p = GetVarint32Ptr(p, p + 5, &len);  // +5: varint32 max size
  return Slice(p, len);
}

MemTable::MemTable(const InternalKeyComparator& comparator)
    : comparator_(comparator), refs_(0), num_entries_(0),
      table_(comparator_, &arena_) {}

MemTable::~MemTable() { assert(refs_.load() == 0); }

int MemTable::KeyComparator::operator()(const char* aptr,
                                        const char* bptr) const {
  // Internal keys are encoded as length-prefixed strings.
  Slice a = GetLengthPrefixedSliceAt(aptr);
  Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

// Encodes a suitable internal-key target for Seek from a memtable key.
static const char* EncodeKey(std::string* scratch, const Slice& target) {
  scratch->clear();
  PutVarint32(scratch, static_cast<uint32_t>(target.size()));
  scratch->append(target.data(), target.size());
  return scratch->data();
}

class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override { iter_.Seek(EncodeKey(&tmp_, k)); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixedSliceAt(iter_.key()); }
  Slice value() const override {
    Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }

  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string tmp_;  // For passing to EncodeKey.
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(&table_); }

void MemTable::Add(SequenceNumber s, ValueType type, const Slice& key,
                   const Slice& value) {
  // buf := klength + key + (seq<<8|type) + vlength + value
  size_t key_size = key.size();
  size_t val_size = value.size();
  size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  std::memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, PackSequenceAndType(s, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  std::memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s) {
  Slice memkey = key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (iter.Valid()) {
    // entry format is:  klength | userkey | tag | vlength | value
    // Check that it belongs to the same user key; the comparator already
    // positioned us at the newest entry with sequence <= lookup sequence.
    const char* entry = iter.key();
    uint32_t key_length;
    const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
    if (Slice(key_ptr, key_length - 8) == key.user_key()) {
      const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
      switch (static_cast<ValueType>(tag & 0xff)) {
        case kTypeValue: {
          Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
          value->assign(v.data(), v.size());
          return true;
        }
        case kTypeDeletion:
          *s = Status::NotFound(Slice());
          return true;
        case kTypeValuePointer:
          // Never stored in memtables.
          break;
      }
    }
  }
  return false;
}

}  // namespace unikv
