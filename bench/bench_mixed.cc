// Experiment F9 — Mixed read/write ratio sweep (the paper's headline:
// total throughput under read-write mixed workloads).
//
// Expected shape: UniKV leads across the whole sweep because it combines
// the hash index's fast reads on hot data with log-structured writes;
// LeveledLSM loses on the write-heavy end (compaction), TieredLSM loses
// on the read-heavy end (many runs per lookup).

#include <cstdlib>

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

namespace {

// Pulls `<key>=<uint>` out of the db.stats property text.
uint64_t StatsField(DB* db, const std::string& key) {
  std::string s;
  if (!db->GetProperty("db.stats", &s)) return 0;
  size_t pos = s.find(key + "=");
  if (pos == std::string::npos) return 0;
  return std::strtoull(s.c_str() + pos + key.size() + 1, nullptr, 10);
}

}  // namespace

int main() {
  const std::string root = BenchRoot("mixed");
  const uint64_t kKeys = Scaled(20000);
  const size_t kValueSize = 1024;

  PrintTableHeader("F9 mixed zipfian workload, ops=" +
                       std::to_string(Scaled(30000)),
                   {"read%", "UniKV", "LeveledLSM", "TieredLSM", "(kops/s)"});
  for (double read_fraction : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    std::vector<std::string> row;
    row.push_back(Fmt(read_fraction * 100, 0));
    for (Engine engine :
         {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
      BenchDb bdb(engine, BenchOptions(), root);
      LoadSpec load;
      load.num_keys = kKeys;
      load.value_size = kValueSize;
      RunLoad(&bdb, load);

      MixedSpec spec;
      spec.num_ops = Scaled(30000);
      spec.key_space = kKeys;
      spec.value_size = kValueSize;
      spec.read_fraction = read_fraction;
      PhaseResult r = RunMixed(&bdb, spec);
      row.push_back(Fmt(r.kops_per_sec));
    }
    row.push_back("");
    PrintTableRow(row);
  }

  // F9b — foreground stalls vs background worker count. The parallel
  // maintenance scheduler exists to keep writers out of stalls: with one
  // worker a long merge delays the flush every writer is queued behind;
  // with several, the flush runs while merges/GC proceed in other
  // partitions. Write-heavy mix to keep the flush pipeline under
  // pressure.
  PrintTableHeader(
      "F9b UniKV update-heavy mix (10% reads), background_threads sweep",
      {"bg_threads", "kops/s", "write_stalls", "stall_ms"});
  for (int bg : {1, 3}) {
    Options opt = BenchOptions();
    opt.background_threads = bg;
    // Tighter maintenance thresholds than the headline sweep: merges and
    // GC must run *during* the workload, so a stalled flush queued behind
    // them is a real possibility the scheduler has to solve.
    opt.unsorted_limit = 2 * 1024 * 1024;
    opt.gc_garbage_threshold = 3 * 1024 * 1024;
    BenchDb bdb(Engine::kUniKV, opt,
                BenchRoot("mixed_bg" + std::to_string(bg)));
    LoadSpec load;
    load.num_keys = kKeys;
    load.value_size = kValueSize;
    RunLoad(&bdb, load);

    MixedSpec spec;
    spec.num_ops = Scaled(60000);
    spec.key_space = kKeys;
    spec.value_size = kValueSize;
    spec.read_fraction = 0.1;
    PhaseResult r = RunMixed(&bdb, spec);
    PrintTableRow({std::to_string(bg), Fmt(r.kops_per_sec),
                   std::to_string(StatsField(bdb.db(), "write_stalls")),
                   Fmt(StatsField(bdb.db(), "stall_micros") / 1000.0)});
  }
  return 0;
}
