#include "util/arena.h"

#include <cassert>

namespace unikv {

static const int kBlockSize = 4096;

Arena::Arena()
    : alloc_ptr_(nullptr), alloc_bytes_remaining_(0), memory_usage_(0) {}

Arena::~Arena() {
  for (char* block : blocks_) {
    delete[] block;
  }
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large objects get their own block to avoid wasting remaining space.
    return AllocateNewBlock(bytes);
  }

  alloc_ptr_ = AllocateNewBlock(kBlockSize);
  alloc_bytes_remaining_ = kBlockSize;

  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateAligned(size_t bytes) {
  const int align = (sizeof(void*) > 8) ? sizeof(void*) : 8;
  static_assert((align & (align - 1)) == 0,
                "Pointer size should be a power of 2");
  size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
  size_t slop = (current_mod == 0 ? 0 : align - current_mod);
  size_t needed = bytes + slop;
  char* result;
  if (needed <= alloc_bytes_remaining_) {
    result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
  } else {
    result = AllocateFallback(bytes);
  }
  assert((reinterpret_cast<uintptr_t>(result) & (align - 1)) == 0);
  return result;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  char* result = new char[block_bytes];
  blocks_.push_back(result);
  memory_usage_.fetch_add(block_bytes + sizeof(char*),
                          std::memory_order_relaxed);
  return result;
}

}  // namespace unikv
