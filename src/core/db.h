#ifndef UNIKV_CORE_DB_H_
#define UNIKV_CORE_DB_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/iterator.h"
#include "core/options.h"
#include "mem/write_batch.h"
#include "util/slice.h"
#include "util/status.h"

namespace unikv {

/// The key-value store interface implemented by UniKV and by the baseline
/// engines (LeveledDB, TieredDB, HashLogDB). All methods are thread-safe
/// unless noted.
class DB {
 public:
  DB() = default;
  virtual ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  /// Opens the UniKV store rooted at `name`. On success stores a heap-
  /// allocated DB in *dbptr.
  static Status Open(const Options& options, const std::string& name,
                     DB** dbptr);

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  /// Batched point lookup: fetches `keys[i]` into `(*values)[i]` with its
  /// outcome in `(*statuses)[i]` (NotFound for absent keys). Both output
  /// vectors are resized to keys.size(); a value slot whose status is not
  /// OK is left in an unspecified state (reusing the vectors across
  /// batches keeps each slot's allocation). Returns OK when every per-key
  /// status is OK or NotFound, else the first real error. The default
  /// loops Get (per-key snapshots); UniKV overrides it with a real
  /// batched path — one snapshot + version pin per batch (a concurrent
  /// write batch is visible to all of the MultiGet or none of it), bulk
  /// hash-index probes, table-handle reuse, coalesced value-log I/O —
  /// see DESIGN.md §11.
  virtual Status MultiGet(const ReadOptions& options,
                          const std::vector<Slice>& keys,
                          std::vector<std::string>* values,
                          std::vector<Status>* statuses);

  /// Heap-allocated iterator over user keys (newest version, tombstones
  /// hidden). Delete it before the DB.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  /// Range scan convenience: up to `count` pairs with key >= start.
  /// UniKV's implementation applies the paper's scan optimizations
  /// (readahead + parallel value fetch); the default wraps NewIterator.
  virtual Status Scan(const ReadOptions& options, const Slice& start,
                      int count,
                      std::vector<std::pair<std::string, std::string>>* out);

  /// Forces the memtable out and waits for all background work (merges,
  /// GC, splits, compactions) to settle. Benchmarks call this to measure
  /// total I/O fairly.
  virtual Status CompactAll() = 0;

  /// Flushes the memtable to level-0 / UnsortedStore and waits for it.
  virtual Status FlushMemTable() = 0;

  /// The sticky background error, if any. Once a WAL write, flush, merge,
  /// GC or split fails (e.g. a failed manifest sync), the engine stops
  /// accepting writes and every later write returns this error; reads
  /// keep working. Engines without background work return OK.
  virtual Status GetBackgroundError() { return Status::OK(); }

  /// DB introspection; returns false for unknown properties. Common:
  ///   "db.num-partitions", "db.hash-index-bytes", "db.hash-index-entries",
  ///   "db.stats", "db.sstables", "db.table-accesses", "db.num-files"
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;
};

/// Destroys the contents of the DB directory (all files). Must not be
/// called while the DB is open.
Status DestroyDB(const Options& options, const std::string& name);

}  // namespace unikv

#endif  // UNIKV_CORE_DB_H_
