// Tests for UniKV's two-level hash index: insert/lookup semantics,
// newest-first candidate ordering, overflow chains, memory accounting,
// and checkpoint round-trips.

#include "index/hash_index.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "util/random.h"

namespace unikv {
namespace {

std::string K(int i) { return "key" + std::to_string(i); }

TEST(HashIndex, EmptyLookup) {
  HashIndex index(100);
  std::vector<uint16_t> candidates;
  index.Lookup("missing", &candidates);
  EXPECT_TRUE(candidates.empty());
  EXPECT_EQ(0u, index.NumEntries());
}

TEST(HashIndex, InsertedKeysAreFound) {
  HashIndex index(1000);
  for (int i = 0; i < 500; i++) {
    index.Insert(K(i), static_cast<uint16_t>(i % 7));
  }
  EXPECT_EQ(500u, index.NumEntries());
  for (int i = 0; i < 500; i++) {
    std::vector<uint16_t> candidates;
    index.Lookup(K(i), &candidates);
    // The true table id must be among the candidates.
    EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                        static_cast<uint16_t>(i % 7)),
              candidates.end())
        << K(i);
  }
}

TEST(HashIndex, DuplicateKeyNewestWinsByTableIdOrder) {
  // Re-inserting the same key with increasing table ids must keep every
  // version reachable; resolving by max table id (as the read path does)
  // picks the newest.
  HashIndex index(64);
  for (uint16_t round = 0; round < 20; round++) {
    index.Insert("hot-key", round);
  }
  std::vector<uint16_t> candidates;
  index.Lookup("hot-key", &candidates);
  ASSERT_FALSE(candidates.empty());
  uint16_t max_id = 0;
  for (uint16_t id : candidates) max_id = std::max(max_id, id);
  EXPECT_EQ(19, max_id);
  // Newest-first property: the first matching candidate is the newest.
  EXPECT_EQ(19, candidates.front());
}

TEST(HashIndex, OverflowChainsFormUnderPressure) {
  // Far more keys than buckets force overflow entries.
  HashIndex index(10);  // ~12 buckets.
  for (int i = 0; i < 500; i++) {
    index.Insert(K(i), static_cast<uint16_t>(i % 3));
  }
  EXPECT_GT(index.NumOverflowEntries(), 0u);
  // Everything must remain findable.
  for (int i = 0; i < 500; i++) {
    std::vector<uint16_t> candidates;
    index.Lookup(K(i), &candidates);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                        static_cast<uint16_t>(i % 3)),
              candidates.end());
  }
}

TEST(HashIndex, ClearRemovesEverything) {
  HashIndex index(100);
  for (int i = 0; i < 200; i++) {
    index.Insert(K(i), 1);
  }
  index.Clear();
  EXPECT_EQ(0u, index.NumEntries());
  EXPECT_EQ(0u, index.NumOverflowEntries());
  for (int i = 0; i < 200; i++) {
    std::vector<uint16_t> candidates;
    index.Lookup(K(i), &candidates);
    EXPECT_TRUE(candidates.empty());
  }
  // Reusable after clear.
  index.Insert(K(1), 9);
  std::vector<uint16_t> candidates;
  index.Lookup(K(1), &candidates);
  EXPECT_FALSE(candidates.empty());
}

TEST(HashIndex, MemoryMatchesPaperBudget) {
  // Paper: 8 bytes per entry; for ~1M 1KiB KVs per GiB of UnsortedStore
  // the index stays under ~1% of the data size at 80% utilization.
  const size_t n = 100000;
  HashIndex index(n);
  for (size_t i = 0; i < n; i++) {
    index.Insert(K(static_cast<int>(i)), static_cast<uint16_t>(i & 0xff));
  }
  double bytes_per_entry = static_cast<double>(index.MemoryUsage()) / n;
  // 8B/entry + bucket-array headroom for the 1/0.8 sizing.
  EXPECT_LT(bytes_per_entry, 16.0);
  EXPECT_GT(index.InlineUtilization(), 0.5);
}

TEST(HashIndex, CheckpointRoundTrip) {
  HashIndex index(200);
  for (int i = 0; i < 300; i++) {  // Forces overflow entries too.
    index.Insert(K(i), static_cast<uint16_t>(i % 11));
  }
  std::string image;
  index.EncodeTo(&image);

  HashIndex restored(1);  // Wrong initial sizing: DecodeFrom must fix it.
  ASSERT_TRUE(restored.DecodeFrom(Slice(image)).ok());
  EXPECT_EQ(index.NumEntries(), restored.NumEntries());
  EXPECT_EQ(index.NumBuckets(), restored.NumBuckets());
  for (int i = 0; i < 300; i++) {
    std::vector<uint16_t> a, b;
    index.Lookup(K(i), &a);
    restored.Lookup(K(i), &b);
    EXPECT_EQ(a, b) << K(i);
  }
}

TEST(HashIndex, CheckpointCorruptionRejected) {
  HashIndex index(10);
  index.Insert("k", 1);
  std::string image;
  index.EncodeTo(&image);

  HashIndex restored(1);
  EXPECT_FALSE(restored.DecodeFrom(Slice("garbage")).ok());
  EXPECT_FALSE(
      restored.DecodeFrom(Slice(image.data(), image.size() / 2)).ok());
  std::string bad_magic = image;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(restored.DecodeFrom(Slice(bad_magic)).ok());
}

// Property sweep: random workloads across hash-function counts must keep
// the "true table id among candidates, newest first by id" invariant.
class HashIndexPropertyTest : public testing::TestWithParam<int> {};

TEST_P(HashIndexPropertyTest, RandomizedAgainstModel) {
  const int num_hashes = GetParam();
  Random rnd(1234 + num_hashes);
  HashIndex index(500, num_hashes);
  std::map<std::string, uint16_t> model;  // Key -> newest table id.

  uint16_t table_id = 0;
  for (int round = 0; round < 30; round++) {
    // Each round mimics one flushed table with a batch of keys.
    for (int j = 0; j < 100; j++) {
      std::string key = K(rnd.Uniform(800));
      if (model.count(key) && model[key] == table_id) continue;
      index.Insert(key, table_id);
      model[key] = table_id;
    }
    table_id++;
  }

  for (const auto& [key, newest] : model) {
    std::vector<uint16_t> candidates;
    index.Lookup(key, &candidates);
    ASSERT_FALSE(candidates.empty()) << key;
    uint16_t max_id = 0;
    for (uint16_t id : candidates) max_id = std::max(max_id, id);
    // Resolving by max table id yields the newest version.
    EXPECT_EQ(newest, max_id) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(HashFunctionCounts, HashIndexPropertyTest,
                         testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace unikv
