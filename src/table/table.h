#ifndef UNIKV_TABLE_TABLE_H_
#define UNIKV_TABLE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/iterator.h"
#include "table/cache.h"
#include "table/table_builder.h"
#include "util/status.h"

namespace unikv {

class Block;
class BlockHandle;
class RandomAccessFile;

/// An immutable, sorted map from internal keys to values backed by an
/// SSTable file. Safe for concurrent reads without external locking.
class Table {
 public:
  /// Opens the table stored in file[0..file_size). On success *table is
  /// set and owns `file`. `block_cache` (optional) caches data blocks
  /// across tables; it must outlive the table.
  static Status Open(const TableOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, Cache* block_cache, Table** table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Returns a new iterator over the table contents. `fill_cache` false
  /// keeps data blocks read by this iterator out of the block cache
  /// (bulk scans that should not evict the hot working set).
  Iterator* NewIterator(bool fill_cache = true) const;

  /// Returns an iterator over the index block: keys are the last internal
  /// key of each data block, values decode to BlockHandles (feed them to
  /// BlockReader). Used by the anchor-view builder to walk data blocks
  /// with their file offsets in hand.
  Iterator* NewIndexIterator() const;

  /// Batch-local reuse state for a run of Get() calls with ascending keys
  /// (one MultiGet partition group probes its keys in sorted order, so
  /// consecutive keys usually land in the same data block). Holds the last
  /// resolved block — pinned in the block cache or owned — plus reusable
  /// output buffers, so repeat hits skip the cache lookup and the per-call
  /// string allocations. Release() (or destruction) drops the pin; a Probe
  /// must not outlive the table handle (BatchPin) or block cache it
  /// borrows from.
  struct Probe {
    ~Probe() { Release(); }
    void Release();

    const Table* table = nullptr;
    uint64_t block_offset = ~0ull;
    Block* block = nullptr;
    Cache::Handle* cache_handle = nullptr;
    Cache* cache = nullptr;
    std::string key_scratch;    // Callers' reusable found-key buffer.
    std::string value_scratch;  // Callers' reusable found-value buffer.
  };

  /// Seeks to the first entry with internal key >= `internal_key`. If such
  /// an entry exists in this table, stores its key/value and sets *found.
  /// `probe` (optional) carries the last resolved data block between calls.
  Status Get(const Slice& internal_key, bool* found, std::string* key_out,
             std::string* value_out, Probe* probe = nullptr) const;

  /// Bloom-filter check on a user key. Always true when the table was
  /// built without a filter.
  bool KeyMayMatch(const Slice& user_key) const;

  /// Number of Get/Seek probes served by this table (Fig. 2 motivation
  /// experiment instrumentation).
  uint64_t AccessCount() const {
    return access_count_.load(std::memory_order_relaxed);
  }
  void RecordAccess() const {
    access_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Decodes a BlockHandle from `index_value` and returns an iterator over
  /// that data block. `arg` is the Table*. (Used by the two-level iterator.)
  static Iterator* BlockReader(void* arg, const Slice& index_value);

  Iterator* NewBlockIterator(const BlockHandle& handle,
                             bool fill_cache = true) const;

 private:
  struct Rep;

  explicit Table(Rep* rep) : rep_(rep) {}

  /// Resolves a data block through the block cache (or a direct read).
  /// On success the caller must Release(*cache_handle) when it is non-null,
  /// else delete *block. `fill_cache` false skips inserting a freshly read
  /// block into the cache.
  Status FindBlock(const BlockHandle& handle, bool fill_cache, Block** block,
                   Cache::Handle** cache_handle) const;

  Rep* const rep_;
  mutable std::atomic<uint64_t> access_count_{0};
};

}  // namespace unikv

#endif  // UNIKV_TABLE_TABLE_H_
