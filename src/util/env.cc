#include "util/env.h"

#include <set>

#include "util/sync.h"

namespace unikv {

namespace {

// In-process lock registry backing the default Env::LockFile: pathname
// keyed, so two DB instances in one process exclude each other even on
// Envs with no OS-level lock (MemEnv, wrappers over it).
Mutex g_locked_files_mu;
std::set<std::string>& LockedFiles() {
  static std::set<std::string>* files = new std::set<std::string>();
  return *files;
}

class InProcessFileLock : public FileLock {
 public:
  explicit InProcessFileLock(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace

Status Env::LockFile(const std::string& fname, FileLock** lock) {
  *lock = nullptr;
  {
    MutexLock l(&g_locked_files_mu);
    if (!LockedFiles().insert(fname).second) {
      return Status::IOError(fname, "lock already held");
    }
  }
  *lock = new InProcessFileLock(fname);
  return Status::OK();
}

Status Env::UnlockFile(FileLock* lock) {
  if (lock == nullptr) return Status::OK();
  auto* held = static_cast<InProcessFileLock*>(lock);
  {
    MutexLock l(&g_locked_files_mu);
    LockedFiles().erase(held->name());
  }
  delete held;
  return Status::OK();
}

namespace {

class CountingSequentialFile : public SequentialFile {
 public:
  CountingSequentialFile(std::unique_ptr<SequentialFile> base, IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok()) {
      stats_->bytes_read.fetch_add(result->size(), std::memory_order_relaxed);
      stats_->reads.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  IoStats* stats_;
};

class CountingRandomAccessFile : public RandomAccessFile {
 public:
  CountingRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                           IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      stats_->bytes_read.fetch_add(result->size(), std::memory_order_relaxed);
      stats_->reads.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  void ReadaheadHint(uint64_t offset, size_t n) const override {
    base_->ReadaheadHint(offset, n);
  }
  bool ReadZeroCopy(uint64_t offset, size_t n, Slice* result) const override {
    // Still a logical read: count it so read-amplification metrics keep
    // their meaning whether the bytes came via pread or a mapping.
    if (!base_->ReadZeroCopy(offset, n, result)) return false;
    stats_->bytes_read.fetch_add(result->size(), std::memory_order_relaxed);
    stats_->reads.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  IoStats* stats_;
};

class CountingWritableFile : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base, IoStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    if (s.ok()) {
      stats_->bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
      stats_->writes.fetch_add(1, std::memory_order_relaxed);
    }
    return s;
  }
  Status Close() override { return base_->Close(); }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    stats_->syncs.fetch_add(1, std::memory_order_relaxed);
    return base_->Sync();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  IoStats* stats_;
};

}  // namespace

Status InstrumentedEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base;
  Status s = base_->NewSequentialFile(fname, &base);
  if (s.ok()) {
    result->reset(new CountingSequentialFile(std::move(base), &stats_));
  }
  return s;
}

Status InstrumentedEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base;
  Status s = base_->NewRandomAccessFile(fname, &base);
  if (s.ok()) {
    result->reset(new CountingRandomAccessFile(std::move(base), &stats_));
  }
  return s;
}

Status InstrumentedEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base;
  Status s = base_->NewWritableFile(fname, &base);
  if (s.ok()) {
    result->reset(new CountingWritableFile(std::move(base), &stats_));
  }
  return s;
}

Status InstrumentedEnv::NewAppendableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base;
  Status s = base_->NewAppendableFile(fname, &base);
  if (s.ok()) {
    result->reset(new CountingWritableFile(std::move(base), &stats_));
  }
  return s;
}

Status RemoveDirRecursively(Env* env, const std::string& dir) {
  std::vector<std::string> children;
  Status s = env->GetChildren(dir, &children);
  if (!s.ok()) {
    return Status::OK();  // Nothing to remove.
  }
  for (const std::string& child : children) {
    if (child == "." || child == "..") continue;
    const std::string path = dir + "/" + child;
    uint64_t size;
    if (env->GetFileSize(path, &size).ok()) {
      (void)env->RemoveFile(path);  // Best-effort recursive cleanup; the
    } else {                        // final RemoveDir reports the truth.
      (void)RemoveDirRecursively(env, path);
    }
  }
  return env->RemoveDir(dir);
}

}  // namespace unikv
