file(REMOVE_RECURSE
  "CMakeFiles/bench_read.dir/bench_read.cc.o"
  "CMakeFiles/bench_read.dir/bench_read.cc.o.d"
  "bench_read"
  "bench_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
