#ifndef UNIKV_UTIL_METRICS_H_
#define UNIKV_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/histogram.h"
#include "util/slice.h"
#include "util/sync.h"

namespace unikv {

/// Monotonic event counter. The hot path is a single relaxed fetch_add:
/// no ordering is implied between counters, which is fine because they
/// are only ever read for reporting.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Inc() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// An instantaneous value that can move both ways (e.g. live file count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Thread-safe, mergeable latency histogram for hot paths. Add() is a
/// few relaxed atomic RMWs on per-thread-sharded exponential buckets
/// (no mutex, recording threads land on different cache lines); the
/// cross-shard merge is lazy — deferred to Snapshot(), which folds every
/// shard into a plain Histogram for percentile queries. Snapshot() and
/// Reset() racing an in-flight Add() can miss that single sample; the
/// per-sample fields themselves are always internally consistent enough
/// for reporting (count/sum may disagree transiently by one sample).
class ConcurrentHistogram {
 public:
  ConcurrentHistogram();
  ConcurrentHistogram(const ConcurrentHistogram&) = delete;
  ConcurrentHistogram& operator=(const ConcurrentHistogram&) = delete;

  /// Lock-free; safe from any number of concurrent threads.
  void Add(double value);
  /// Folds a plain histogram (e.g. a driver-side per-phase histogram)
  /// into this one. Safe against concurrent Add/Snapshot.
  void Merge(const Histogram& other);
  /// Merges all shards into one Histogram.
  Histogram Snapshot() const;
  void Reset();

 private:
  static constexpr int kShards = 8;
  // One cache-line-aligned shard per recording-thread slot; threads are
  // assigned to shards round-robin on first use.
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[Histogram::kNumBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> sum_squares{0.0};
    std::atomic<double> min{0.0};  // Reset() installs the real sentinel.
    std::atomic<double> max{0.0};
  };

  Shard* ShardForThisThread() const;

  std::unique_ptr<Shard[]> shards_;
};

/// Minimal one-object JSON emitter shared by `db.metrics.json` and the
/// EVENTS logger. Produces {"k":v,...}; nested objects/arrays are added
/// pre-rendered via AddRaw.
class JsonBuilder {
 public:
  JsonBuilder() : out_("{") {}

  void AddUint(const Slice& key, uint64_t v);
  void AddInt(const Slice& key, int64_t v);
  void AddDouble(const Slice& key, double v);
  void AddBool(const Slice& key, bool v);
  void AddString(const Slice& key, const Slice& v);
  /// Adds `raw` verbatim as the value (must itself be valid JSON).
  void AddRaw(const Slice& key, const Slice& raw);

  /// Closes the object and returns it. The builder is spent afterwards.
  std::string Finish();

  /// Appends `s` to *dst as a quoted JSON string with escaping.
  static void AppendEscaped(std::string* dst, const Slice& s);

 private:
  void Key(const Slice& key);

  std::string out_;
  bool first_ = true;
};

/// Named counters/gauges/histograms for one engine instance. Lookup by
/// name happens once at registration; returned pointers are stable for
/// the registry's lifetime, so hot paths hold raw pointers and never
/// touch the map again.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  ConcurrentHistogram* GetHistogram(const std::string& name);

  size_t NumCounters() const;

  /// Human-readable dump, one metric per line.
  std::string ToString() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string ToJson() const;

 private:
  // mu_ guards the name->metric maps only; the Counter/Gauge/Histogram
  // objects they own are internally synchronized (lock-free atomics) and
  // are handed out as raw pointers that outlive the lock.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<ConcurrentHistogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace unikv

#endif  // UNIKV_UTIL_METRICS_H_
