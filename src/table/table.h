#ifndef UNIKV_TABLE_TABLE_H_
#define UNIKV_TABLE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/iterator.h"
#include "table/table_builder.h"
#include "util/status.h"

namespace unikv {

class Block;
class BlockHandle;
class Cache;
class RandomAccessFile;

/// An immutable, sorted map from internal keys to values backed by an
/// SSTable file. Safe for concurrent reads without external locking.
class Table {
 public:
  /// Opens the table stored in file[0..file_size). On success *table is
  /// set and owns `file`. `block_cache` (optional) caches data blocks
  /// across tables; it must outlive the table.
  static Status Open(const TableOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, Cache* block_cache, Table** table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Returns a new iterator over the table contents.
  Iterator* NewIterator() const;

  /// Seeks to the first entry with internal key >= `internal_key`. If such
  /// an entry exists in this table, stores its key/value and sets *found.
  Status Get(const Slice& internal_key, bool* found, std::string* key_out,
             std::string* value_out) const;

  /// Bloom-filter check on a user key. Always true when the table was
  /// built without a filter.
  bool KeyMayMatch(const Slice& user_key) const;

  /// Number of Get/Seek probes served by this table (Fig. 2 motivation
  /// experiment instrumentation).
  uint64_t AccessCount() const {
    return access_count_.load(std::memory_order_relaxed);
  }
  void RecordAccess() const {
    access_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Decodes a BlockHandle from `index_value` and returns an iterator over
  /// that data block. `arg` is the Table*. (Used by the two-level iterator.)
  static Iterator* BlockReader(void* arg, const Slice& index_value);

 private:
  struct Rep;

  explicit Table(Rep* rep) : rep_(rep) {}

  Iterator* NewBlockIterator(const BlockHandle& handle) const;

  Rep* const rep_;
  mutable std::atomic<uint64_t> access_count_{0};
};

}  // namespace unikv

#endif  // UNIKV_TABLE_TABLE_H_
