#include "core/anchor_view.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "core/table_cache.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "table/table.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/env.h"

namespace unikv {

namespace {

// <number>.anchors layout:
//   fixed32 magic  fixed32 format_version  varint32 pid
//   varint32 covered_count
//     per covered table: varint64 number  varint64 size  varint32 table_id
//   varint64 entry_count
//   varint64 block_len  block image bytes
//   fixed32 masked crc32c over everything above
constexpr uint32_t kAnchorMagic = 0x414e4348;  // "ANCH"
constexpr uint32_t kAnchorFormatVersion = 1;
constexpr int kAnchorRestartInterval = 16;

struct Anchor {
  uint32_t ordinal = 0;
  uint64_t block_offset = 0;
  uint32_t restart_index = 0;
};

void EncodeAnchor(std::string* dst, const Anchor& a) {
  PutVarint32(dst, a.ordinal);
  PutVarint64(dst, a.block_offset);
  PutVarint32(dst, a.restart_index);
}

bool DecodeAnchor(Slice value, Anchor* a) {
  return GetVarint32(&value, &a->ordinal) &&
         GetVarint64(&value, &a->block_offset) &&
         GetVarint32(&value, &a->restart_index);
}

/// One sorted stream of (internal key, anchor) pairs feeding the merge.
class AnchorSource {
 public:
  virtual ~AnchorSource() = default;
  virtual bool Valid() const = 0;
  virtual void Next() = 0;
  virtual Slice key() const = 0;
  virtual Anchor anchor() const = 0;
  virtual Status status() const = 0;
};

/// Walks one table block by block (via its index block), so every entry
/// comes with the file offset of its data block and a restart slot hint.
class TableSource : public AnchorSource {
 public:
  TableSource(TableCache* cache, const FileMeta& meta, uint32_t ordinal,
              int restart_interval)
      : ordinal_(ordinal),
        restart_interval_(restart_interval < 1 ? 1 : restart_interval) {
    const Table* table = nullptr;
    // The iterator is kept solely as the table-cache pin for `table`.
    pin_.reset(cache->NewIterator(meta.number, meta.size, &table,
                                  false /*fill_cache*/));
    if (table == nullptr) {
      status_ = pin_->status();
      if (status_.ok()) status_ = Status::Corruption("table open failed");
      return;
    }
    table_ = table;
    index_iter_.reset(table_->NewIndexIterator());
    index_iter_->SeekToFirst();
    InitDataBlock();
  }

  bool Valid() const override {
    return status_.ok() && data_iter_ != nullptr && data_iter_->Valid();
  }

  void Next() override {
    assert(Valid());
    data_iter_->Next();
    entry_index_++;
    while (data_iter_ != nullptr && !data_iter_->Valid() && status_.ok()) {
      if (!data_iter_->status().ok()) {
        status_ = data_iter_->status();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
    }
  }

  Slice key() const override { return data_iter_->key(); }

  Anchor anchor() const override {
    Anchor a;
    a.ordinal = ordinal_;
    a.block_offset = block_offset_;
    a.restart_index =
        static_cast<uint32_t>(entry_index_ / restart_interval_);
    return a;
  }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (index_iter_ != nullptr && !index_iter_->status().ok()) {
      return index_iter_->status();
    }
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return Status::OK();
  }

 private:
  void InitDataBlock() {
    data_iter_.reset();
    entry_index_ = 0;
    while (index_iter_->Valid()) {
      BlockHandle handle;
      Slice input = index_iter_->value();
      Status s = handle.DecodeFrom(&input);
      if (!s.ok()) {
        status_ = s;
        return;
      }
      block_offset_ = handle.offset();
      data_iter_.reset(table_->NewBlockIterator(handle, false /*fill_cache*/));
      data_iter_->SeekToFirst();
      if (data_iter_->Valid()) return;
      if (!data_iter_->status().ok()) {
        status_ = data_iter_->status();
        return;
      }
      index_iter_->Next();  // Empty data block; keep walking.
    }
    data_iter_.reset();
  }

  const uint32_t ordinal_;
  const int restart_interval_;
  const Table* table_ = nullptr;
  std::unique_ptr<Iterator> pin_;
  std::unique_ptr<Iterator> index_iter_;
  std::unique_ptr<Iterator> data_iter_;
  uint64_t block_offset_ = 0;
  uint64_t entry_index_ = 0;
  Status status_;
};

/// Streams an existing view's entries, remapping nothing: ordinals stay
/// valid because flush installs only append to the covered list.
class ViewSource : public AnchorSource {
 public:
  ViewSource(const InternalKeyComparator& icmp, const AnchorView& base) {
    iter_.reset(base.block->NewIterator(icmp));
    iter_->SeekToFirst();
  }

  bool Valid() const override { return status_.ok() && iter_->Valid(); }
  void Next() override { iter_->Next(); }
  Slice key() const override { return iter_->key(); }

  Anchor anchor() const override {
    Anchor a;
    if (!DecodeAnchor(iter_->value(), &a)) {
      status_ = Status::Corruption("bad anchor payload");
    }
    return a;
  }

  Status status() const override {
    return status_.ok() ? iter_->status() : status_;
  }

 private:
  std::unique_ptr<Iterator> iter_;
  mutable Status status_;
};

/// K-way merge of sorted sources into a finished view block. Ties
/// (identical internal keys, e.g. a recovery re-flush landing the same
/// record in two tables) keep the earliest source's entry and drop the
/// others — they are byte-identical copies of the same logical write, and
/// dropping them keeps every surviving entry's cursor alignable by key.
Status MergeSources(const InternalKeyComparator& icmp,
                    std::vector<std::unique_ptr<AnchorSource>>* sources,
                    AnchorView* out) {
  BlockBuilder builder(kAnchorRestartInterval);
  std::string payload;
  uint64_t entries = 0;

  for (;;) {
    int min_idx = -1;
    for (size_t i = 0; i < sources->size(); i++) {
      AnchorSource* s = (*sources)[i].get();
      if (!s->Valid()) continue;
      if (min_idx < 0 ||
          icmp.Compare(s->key(), (*sources)[min_idx]->key()) < 0) {
        min_idx = static_cast<int>(i);
      }
    }
    if (min_idx < 0) break;

    AnchorSource* min_src = (*sources)[min_idx].get();
    payload.clear();
    EncodeAnchor(&payload, min_src->anchor());
    builder.Add(min_src->key(), Slice(payload));
    entries++;

    // Advance duplicates before the winner (their keys compare against
    // the winner's still-valid slice).
    for (size_t i = 0; i < sources->size(); i++) {
      if (static_cast<int>(i) == min_idx) continue;
      AnchorSource* s = (*sources)[i].get();
      if (s->Valid() && icmp.Compare(s->key(), min_src->key()) == 0) {
        s->Next();
      }
    }
    min_src->Next();
  }

  for (const auto& s : *sources) {
    if (!s->status().ok()) return s->status();
  }

  Slice image = builder.Finish();
  auto owned = std::make_shared<const std::string>(image.data(), image.size());
  BlockContents contents;
  contents.data = Slice(owned->data(), owned->size());
  contents.cachable = false;
  contents.heap_allocated = false;
  out->image = owned;
  out->block = std::make_shared<Block>(contents);
  out->entry_count = entries;
  out->byte_size = owned->size();
  out->file_number = 0;
  return Status::OK();
}

}  // namespace

bool AnchorView::Covers(const std::vector<FileMeta>& unsorted) const {
  if (covered.size() != unsorted.size()) return false;
  for (size_t i = 0; i < covered.size(); i++) {
    if (covered[i].number != unsorted[i].number) return false;
  }
  return true;
}

Status BuildAnchorView(const InternalKeyComparator& icmp, TableCache* cache,
                       const std::vector<FileMeta>& tables,
                       int restart_interval, AnchorView* out) {
  *out = AnchorView();
  std::vector<std::unique_ptr<AnchorSource>> sources;
  for (size_t i = 0; i < tables.size(); i++) {
    out->covered.push_back(
        {tables[i].number, tables[i].size, tables[i].table_id});
    sources.push_back(std::make_unique<TableSource>(
        cache, tables[i], static_cast<uint32_t>(i), restart_interval));
  }
  return MergeSources(icmp, &sources, out);
}

Status MergeAnchorView(const InternalKeyComparator& icmp, TableCache* cache,
                       const AnchorView& base, const FileMeta& added,
                       int restart_interval, AnchorView* out) {
  AnchorView result;
  result.covered = base.covered;
  result.covered.push_back({added.number, added.size, added.table_id});
  std::vector<std::unique_ptr<AnchorSource>> sources;
  sources.push_back(std::make_unique<ViewSource>(icmp, base));
  sources.push_back(std::make_unique<TableSource>(
      cache, added, static_cast<uint32_t>(base.covered.size()),
      restart_interval));
  Status s = MergeSources(icmp, &sources, &result);
  if (!s.ok()) return s;
  *out = std::move(result);
  return Status::OK();
}

Status WriteAnchorViewFile(Env* env, const std::string& fname, uint32_t pid,
                           const AnchorView& view) {
  std::string buf;
  PutFixed32(&buf, kAnchorMagic);
  PutFixed32(&buf, kAnchorFormatVersion);
  PutVarint32(&buf, pid);
  PutVarint32(&buf, static_cast<uint32_t>(view.covered.size()));
  for (const auto& t : view.covered) {
    PutVarint64(&buf, t.number);
    PutVarint64(&buf, t.size);
    PutVarint32(&buf, t.table_id);
  }
  PutVarint64(&buf, view.entry_count);
  PutVarint64(&buf, view.image->size());
  buf.append(*view.image);
  PutFixed32(&buf, crc32c::Mask(crc32c::Value(buf.data(), buf.size())));

  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(buf);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  return s;
}

Status LoadAnchorViewFile(Env* env, const std::string& fname,
                          uint32_t expected_pid, AnchorView* out) {
  *out = AnchorView();
  uint64_t size = 0;
  Status s = env->GetFileSize(fname, &size);
  if (!s.ok()) return s;
  if (size < 12) return Status::Corruption("anchor view file too short");

  std::unique_ptr<SequentialFile> file;
  s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  std::string buf;
  buf.resize(size);
  Slice contents;
  s = file->Read(size, &contents, buf.data());
  if (!s.ok()) return s;
  if (contents.size() != size) {
    return Status::Corruption("anchor view short read");
  }

  const uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(contents.data() + size - 4));
  if (crc32c::Value(contents.data(), size - 4) != stored_crc) {
    return Status::Corruption("anchor view crc mismatch");
  }

  Slice input(contents.data(), size - 4);
  if (input.size() < 8 || DecodeFixed32(input.data()) != kAnchorMagic ||
      DecodeFixed32(input.data() + 4) != kAnchorFormatVersion) {
    return Status::Corruption("bad anchor view header");
  }
  input.remove_prefix(8);

  uint32_t pid = 0, covered_count = 0;
  if (!GetVarint32(&input, &pid) || !GetVarint32(&input, &covered_count)) {
    return Status::Corruption("bad anchor view header");
  }
  if (pid != expected_pid) {
    return Status::Corruption("anchor view partition mismatch");
  }
  for (uint32_t i = 0; i < covered_count; i++) {
    uint64_t number = 0, fsize = 0;
    uint32_t table_id = 0;
    if (!GetVarint64(&input, &number) || !GetVarint64(&input, &fsize) ||
        !GetVarint32(&input, &table_id)) {
      return Status::Corruption("bad anchor view covered list");
    }
    out->covered.push_back({number, fsize, static_cast<uint16_t>(table_id)});
  }
  uint64_t entry_count = 0, block_len = 0;
  if (!GetVarint64(&input, &entry_count) ||
      !GetVarint64(&input, &block_len) || input.size() != block_len) {
    return Status::Corruption("bad anchor view block length");
  }
  auto image = std::make_shared<const std::string>(input.data(), input.size());
  BlockContents bc;
  bc.data = Slice(image->data(), image->size());
  bc.cachable = false;
  bc.heap_allocated = false;
  out->image = image;
  out->block = std::make_shared<Block>(bc);
  out->entry_count = entry_count;
  out->byte_size = image->size();
  return Status::OK();
}

// ---------------------------------------------------------------- iterator

namespace {

/// Internal-key iterator driven by the view block. key() always comes
/// straight from the view; value() resolves through the owning table's
/// cursor. Cursors open lazily (a scan over a narrow range touches only
/// the tables that contribute entries in it) and advance in lockstep with
/// the view; any cursor found misaligned is simply re-seeked to the
/// current view key, and a re-seek that still disagrees means the view
/// does not describe the table anymore — surfaced as Corruption.
class AnchorViewIterator : public Iterator {
 public:
  AnchorViewIterator(const InternalKeyComparator& icmp, AnchorViewPtr view,
                     TableCache* cache, bool fill_cache)
      : icmp_(icmp),
        view_(std::move(view)),
        cache_(cache),
        fill_cache_(fill_cache),
        view_iter_(view_->block->NewIterator(icmp)),
        cursors_(view_->covered.size()) {}

  bool Valid() const override { return status_.ok() && view_iter_->Valid(); }

  void Seek(const Slice& target) override { view_iter_->Seek(target); }
  void SeekToFirst() override { view_iter_->SeekToFirst(); }
  void SeekToLast() override { view_iter_->SeekToLast(); }

  void Next() override {
    assert(Valid());
    StepAlignedCursor(+1);
    view_iter_->Next();
  }

  void Prev() override {
    assert(Valid());
    StepAlignedCursor(-1);
    view_iter_->Prev();
  }

  Slice key() const override {
    assert(Valid());
    return view_iter_->key();
  }

  Slice value() const override {
    assert(Valid());
    Iterator* cursor = AlignedCursor();
    if (cursor == nullptr) return Slice();
    return cursor->value();
  }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (!view_iter_->status().ok()) return view_iter_->status();
    for (const auto& c : cursors_) {
      if (c.iter != nullptr && !c.iter->status().ok()) {
        return c.iter->status();
      }
    }
    return Status::OK();
  }

 private:
  struct Cursor {
    std::unique_ptr<Iterator> iter;
  };

  bool CurrentAnchor(Anchor* a) const {
    if (!DecodeAnchor(view_iter_->value(), a) ||
        a->ordinal >= cursors_.size()) {
      status_ = Status::Corruption("bad anchor payload");
      return false;
    }
    return true;
  }

  /// If the current entry's cursor is open and sitting exactly on the
  /// current view key, step it along with the view (the cheap lockstep
  /// path). A closed or misaligned cursor is left alone — value() will
  /// re-seek it if and when it is next needed.
  void StepAlignedCursor(int dir) {
    Anchor a;
    if (!CurrentAnchor(&a)) return;
    Iterator* iter = cursors_[a.ordinal].iter.get();
    if (iter == nullptr || !iter->Valid()) return;
    if (icmp_.Compare(iter->key(), view_iter_->key()) != 0) return;
    if (dir > 0) {
      iter->Next();
    } else {
      iter->Prev();
    }
  }

  /// Returns the current entry's cursor positioned exactly on the current
  /// view key, opening or re-seeking it as needed. nullptr (with status_
  /// set) when the table disagrees with the view.
  Iterator* AlignedCursor() const {
    Anchor a;
    if (!CurrentAnchor(&a)) return nullptr;
    Cursor& c = cursors_[a.ordinal];
    const Slice target = view_iter_->key();
    if (c.iter == nullptr) {
      const AnchorView::CoveredTable& t = view_->covered[a.ordinal];
      c.iter.reset(cache_->NewIterator(t.number, t.size, nullptr,
                                       fill_cache_));
      c.iter->Seek(target);
    } else if (!c.iter->Valid() ||
               icmp_.Compare(c.iter->key(), target) != 0) {
      c.iter->Seek(target);
    }
    if (!c.iter->Valid() || icmp_.Compare(c.iter->key(), target) != 0) {
      if (status_.ok()) {
        status_ = c.iter->status().ok()
                      ? Status::Corruption("anchor view out of sync")
                      : c.iter->status();
      }
      return nullptr;
    }
    return c.iter.get();
  }

  const InternalKeyComparator icmp_;
  const AnchorViewPtr view_;
  TableCache* const cache_;
  const bool fill_cache_;
  const std::unique_ptr<Iterator> view_iter_;
  mutable std::vector<Cursor> cursors_;
  mutable Status status_;
};

}  // namespace

Iterator* NewAnchorViewIterator(const InternalKeyComparator& icmp,
                                AnchorViewPtr view, TableCache* cache,
                                bool fill_cache) {
  return new AnchorViewIterator(icmp, std::move(view), cache, fill_cache);
}

}  // namespace unikv
