// Differential tests for the sorted anchor view over the UnsortedStore
// (DESIGN.md §12): every ordered read path — full iteration both ways,
// random seeks, Scan() — is compared entry-for-entry against a golden
// std::map and against the forced heap-merge fallback
// (enable_anchor_view=false over the same files), across flush, merge,
// and recovery epochs, with inline and log-separated values, under a
// pinned snapshot, against a concurrent flusher, and after the backing
// .anchors file is deleted or corrupted.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/db.h"
#include "core/filename.h"
#include "test_util.h"
#include "util/env.h"
#include "util/random.h"

namespace unikv {
namespace {

// Stacks many overlapping unsorted tables and keeps them stacked: a tiny
// write buffer, a merge limit the test can't reach, and a scan-merge
// limit high enough that the scans below never trigger consolidation —
// the view (or the fallback heap) stays the component under test.
Options AnchorOptions() {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 64 * 1024 * 1024;
  opt.partition_size_limit = 256 * 1024 * 1024;
  opt.scan_merge_limit = 100000;
  return opt;
}

double MetricValue(DB* db, const std::string& name) {
  std::string json;
  if (!db->GetProperty("db.metrics.json", &json)) return -1;
  size_t pos = json.find("\"" + name + "\":");
  if (pos == std::string::npos) return -1;
  return std::strtod(json.c_str() + pos + name.size() + 3, nullptr);
}

class DbAnchorViewTest : public testing::Test {
 protected:
  void Open(const Options& opt, const std::string& name) {
    opt_ = opt;
    dir_ = test::NewTestDir(name);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt_, dir_, &raw).ok());
    db_.reset(raw);
  }

  void Reopen(bool enable_anchor_view) {
    db_.reset();
    opt_.enable_anchor_view = enable_anchor_view;
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt_, dir_, &raw).ok());
    db_.reset(raw);
  }

  // Ten interleaved batches, one flushed table each, every table spanning
  // the whole key range so the UnsortedStore is maximally overlapping.
  // Values alternate below and above value_separation_threshold so the
  // view is exercised over both inline values and vlog pointers; some
  // keys are overwritten across batches and some deleted.
  void FillManyTables(std::map<std::string, std::string>* model,
                      int batches = 10, uint64_t stride = 977) {
    for (int b = 0; b < batches; b++) {
      for (int i = 0; i < 60; i++) {
        uint64_t id = (static_cast<uint64_t>(i) * stride + b) % 600;
        std::string key = test::TestKey(id);
        std::string value = (i % 3 == 0)
                                ? "inline" + std::to_string(b * 1000 + i)
                                : test::TestValue(b * 1000 + i, 200);
        ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
        (*model)[key] = value;
      }
      for (int i = 0; i < 5; i++) {
        uint64_t id = (static_cast<uint64_t>(b) * 131 + i * 17) % 600;
        std::string key = test::TestKey(id);
        ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
        model->erase(key);
      }
      ASSERT_TRUE(db_->FlushMemTable().ok());
    }
  }

  int UnsortedTableCount() {
    std::string text;
    if (!db_->GetProperty("db.sstables", &text)) return -1;
    int total = 0;
    size_t pos = 0;
    while ((pos = text.find("unsorted=", pos)) != std::string::npos) {
      total += std::atoi(text.c_str() + pos + 9);
      pos += 9;
    }
    return total;
  }

  void ExpectMatchesModel(const std::map<std::string, std::string>& model) {
    // Full forward pass.
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    auto mit = model.begin();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
      ASSERT_NE(mit, model.end());
      ASSERT_EQ(mit->first, iter->key().ToString());
      ASSERT_EQ(mit->second, iter->value().ToString());
    }
    ASSERT_EQ(mit, model.end());
    ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();

    // Full reverse pass.
    auto rit = model.rbegin();
    for (iter->SeekToLast(); iter->Valid(); iter->Prev(), ++rit) {
      ASSERT_NE(rit, model.rend());
      ASSERT_EQ(rit->first, iter->key().ToString());
      ASSERT_EQ(rit->second, iter->value().ToString());
    }
    ASSERT_EQ(rit, model.rend());
    ASSERT_TRUE(iter->status().ok()) << iter->status().ToString();

    // Random seeks + short walks in both directions.
    Random rnd(42);
    for (int trial = 0; trial < 40; trial++) {
      std::string target = test::TestKey(rnd.Uniform(650));
      iter->Seek(target);
      auto lb = model.lower_bound(target);
      if (lb == model.end()) {
        ASSERT_FALSE(iter->Valid()) << target;
        continue;
      }
      ASSERT_TRUE(iter->Valid()) << target;
      ASSERT_EQ(lb->first, iter->key().ToString());
      ASSERT_EQ(lb->second, iter->value().ToString());
      for (int step = 0; step < 5 && iter->Valid(); step++) {
        ++lb;
        iter->Next();
        if (lb == model.end()) {
          ASSERT_FALSE(iter->Valid());
        } else {
          ASSERT_TRUE(iter->Valid());
          ASSERT_EQ(lb->first, iter->key().ToString());
        }
      }
    }

    // Scan().
    for (int trial = 0; trial < 20; trial++) {
      std::string start = test::TestKey(rnd.Uniform(600));
      int count = 1 + rnd.Uniform(80);
      std::vector<std::pair<std::string, std::string>> out;
      ASSERT_TRUE(db_->Scan(ReadOptions(), start, count, &out).ok());
      auto sit = model.lower_bound(start);
      size_t i = 0;
      for (; sit != model.end() && i < static_cast<size_t>(count);
           ++sit, ++i) {
        ASSERT_LT(i, out.size());
        ASSERT_EQ(sit->first, out[i].first);
        ASSERT_EQ(sit->second, out[i].second);
      }
      ASSERT_EQ(i, out.size());
    }
  }

  std::vector<std::string> AnchorsFiles() {
    std::vector<std::string> children, out;
    // Empty-on-failure is fine: the assertions on `out` then fail with
    // the missing-file story the test is about.
    (void)Env::Default()->GetChildren(dir_, &children);
    for (const std::string& c : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(c, &number, &type) &&
          type == FileType::kAnchorsFile) {
        out.push_back(dir_ + "/" + c);
      }
    }
    return out;
  }

  Options opt_;
  std::string dir_;
  std::unique_ptr<DB> db_;
};

// The core differential: view-on scans match the golden map across a
// many-table UnsortedStore, then the exact same files reopened with the
// view disabled (forced heap-merge fallback) match too, then a merge
// epoch (CompactAll) and a fresh round of flushes still match.
TEST_F(DbAnchorViewTest, DifferentialAcrossEpochs) {
  Open(AnchorOptions(), "anchor_diff");
  std::map<std::string, std::string> model;
  FillManyTables(&model);
  ASSERT_GE(UnsortedTableCount(), 8);

  ExpectMatchesModel(model);
  EXPECT_GT(MetricValue(db_.get(), "scan_anchor_hits"), 0.0);
  EXPECT_GT(MetricValue(db_.get(), "anchor_view_builds"), 0.0);
  EXPECT_GT(MetricValue(db_.get(), "anchor_view_bytes"), 0.0);

  // Same store, view off: the fallback merging iterator must agree.
  Reopen(/*enable_anchor_view=*/false);
  ASSERT_GE(UnsortedTableCount(), 8);
  ExpectMatchesModel(model);
  EXPECT_EQ(MetricValue(db_.get(), "scan_anchor_hits"), 0.0);

  // View back on: recovery rebuilds it from the tables.
  Reopen(/*enable_anchor_view=*/true);
  ExpectMatchesModel(model);
  EXPECT_GT(MetricValue(db_.get(), "scan_anchor_hits"), 0.0);

  // Merge epoch: the unsorted tables drain into the SortedStore and the
  // view retires.
  ASSERT_TRUE(db_->CompactAll().ok());
  ExpectMatchesModel(model);

  // Post-merge flushes grow a fresh view via the single-pass merge path.
  FillManyTables(&model, 6, 1013);
  ASSERT_GE(UnsortedTableCount(), 6);
  ExpectMatchesModel(model);
}

// ReadOptions::snapshot pins iterators and scans to a point in time.
TEST_F(DbAnchorViewTest, SnapshotPinsIteratorsAndScans) {
  Open(AnchorOptions(), "anchor_snapshot");
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "old").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::string seq_str;
  ASSERT_TRUE(db_->GetProperty("db.visible-sequence", &seq_str));
  const uint64_t snapshot = std::strtoull(seq_str.c_str(), nullptr, 10);
  ASSERT_GT(snapshot, 0u);

  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "new").ok());
  }
  ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(500), "later-key").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());

  ReadOptions pinned;
  pinned.snapshot = snapshot;
  std::unique_ptr<Iterator> iter(db_->NewIterator(pinned));
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), count++) {
    EXPECT_EQ("old", iter->value().ToString());
  }
  EXPECT_EQ(200, count);

  std::vector<std::pair<std::string, std::string>> out;
  ASSERT_TRUE(db_->Scan(pinned, test::TestKey(0), 500, &out).ok());
  ASSERT_EQ(200u, out.size());
  for (const auto& [k, v] : out) EXPECT_EQ("old", v);

  // Unpinned reads see the later writes.
  out.clear();
  ASSERT_TRUE(db_->Scan(ReadOptions(), test::TestKey(0), 500, &out).ok());
  ASSERT_EQ(201u, out.size());
  EXPECT_EQ("new", out[0].second);
}

// Scans racing a concurrent flusher: each scan is a point-in-time
// snapshot, so results must stay sorted and agree with the model for
// every key written before the scan started.
TEST_F(DbAnchorViewTest, ScanRacesConcurrentFlush) {
  Open(AnchorOptions(), "anchor_race");
  std::map<std::string, std::string> base;
  FillManyTables(&base, 4);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Disjoint key range (>= 1000) so the base model stays authoritative
    // for the scanned range.
    uint64_t id = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 50; i++) {
        ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(id++), "race")
                        .ok());
      }
      ASSERT_TRUE(db_->FlushMemTable().ok());
    }
  });

  Random rnd(7);
  for (int trial = 0; trial < 60; trial++) {
    std::string start = test::TestKey(rnd.Uniform(600));
    std::vector<std::pair<std::string, std::string>> out;
    ASSERT_TRUE(db_->Scan(ReadOptions(), start, 40, &out).ok());
    auto mit = base.lower_bound(start);
    size_t i = 0;
    for (; mit != base.end() && i < 40u && i < out.size(); ++mit, ++i) {
      if (mit->first >= test::TestKey(1000)) break;
      ASSERT_EQ(mit->first, out[i].first);
      ASSERT_EQ(mit->second, out[i].second);
    }
  }
  stop.store(true);
  writer.join();
}

// A deleted .anchors file is a recovery non-event: the tables are the
// source of truth and the view is rebuilt in memory.
TEST_F(DbAnchorViewTest, DeletedAnchorsFileRebuilds) {
  Open(AnchorOptions(), "anchor_delete");
  std::map<std::string, std::string> model;
  FillManyTables(&model);
  db_.reset();

  std::vector<std::string> files = AnchorsFiles();
  ASSERT_FALSE(files.empty());
  for (const std::string& f : files) {
    ASSERT_TRUE(Env::Default()->RemoveFile(f).ok());
  }

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(opt_, dir_, &raw).ok());
  db_.reset(raw);
  ExpectMatchesModel(model);
  EXPECT_GT(MetricValue(db_.get(), "scan_anchor_hits"), 0.0);
}

// A corrupted .anchors file fails its crc and is likewise rebuilt.
TEST_F(DbAnchorViewTest, CorruptedAnchorsFileRebuilds) {
  Open(AnchorOptions(), "anchor_corrupt");
  std::map<std::string, std::string> model;
  FillManyTables(&model);
  db_.reset();

  std::vector<std::string> files = AnchorsFiles();
  ASSERT_FALSE(files.empty());
  for (const std::string& fname : files) {
    std::FILE* f = std::fopen(fname.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 24, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(opt_, dir_, &raw).ok());
  db_.reset(raw);
  ExpectMatchesModel(model);
  EXPECT_GT(MetricValue(db_.get(), "scan_anchor_hits"), 0.0);
}

// fill_cache=false reads bypass block-cache insertion but return the
// same data.
TEST_F(DbAnchorViewTest, NoFillCacheScanMatches) {
  Open(AnchorOptions(), "anchor_nofill");
  std::map<std::string, std::string> model;
  FillManyTables(&model, 6);

  ReadOptions ro;
  ro.fill_cache = false;
  std::unique_ptr<Iterator> iter(db_->NewIterator(ro));
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    ASSERT_EQ(mit->first, iter->key().ToString());
    ASSERT_EQ(mit->second, iter->value().ToString());
  }
  ASSERT_EQ(mit, model.end());
  ASSERT_TRUE(iter->status().ok());
}

}  // namespace
}  // namespace unikv
