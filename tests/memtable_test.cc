#include "mem/memtable.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/dbformat.h"

namespace unikv {
namespace {

class MemTableTest : public testing::Test {
 protected:
  MemTableTest() : mem_(new MemTable(InternalKeyComparator())) {
    mem_->Ref();
  }
  ~MemTableTest() override { mem_->Unref(); }

  std::string Get(const std::string& key, SequenceNumber seq,
                  bool* is_deleted = nullptr) {
    LookupKey lkey(key, seq);
    std::string value;
    Status s;
    if (is_deleted != nullptr) *is_deleted = false;
    if (!mem_->Get(lkey, &value, &s)) {
      return "MISS";
    }
    if (s.IsNotFound()) {
      if (is_deleted != nullptr) *is_deleted = true;
      return "DELETED";
    }
    return value;
  }

  MemTable* mem_;
};

TEST_F(MemTableTest, AddAndGet) {
  mem_->Add(1, kTypeValue, "key1", "value1");
  mem_->Add(2, kTypeValue, "key2", "value2");
  EXPECT_EQ("value1", Get("key1", 100));
  EXPECT_EQ("value2", Get("key2", 100));
  EXPECT_EQ("MISS", Get("key3", 100));
  EXPECT_EQ(2u, mem_->NumEntries());
}

TEST_F(MemTableTest, NewestVersionWins) {
  mem_->Add(1, kTypeValue, "k", "old");
  mem_->Add(5, kTypeValue, "k", "new");
  EXPECT_EQ("new", Get("k", 100));
}

TEST_F(MemTableTest, SnapshotReadsSeeOldVersions) {
  mem_->Add(1, kTypeValue, "k", "v1");
  mem_->Add(5, kTypeValue, "k", "v5");
  EXPECT_EQ("v1", Get("k", 1));
  EXPECT_EQ("v1", Get("k", 4));
  EXPECT_EQ("v5", Get("k", 5));
  EXPECT_EQ("MISS", Get("k", 0));
}

TEST_F(MemTableTest, Deletion) {
  mem_->Add(1, kTypeValue, "k", "v");
  mem_->Add(2, kTypeDeletion, "k", "");
  bool deleted = false;
  EXPECT_EQ("DELETED", Get("k", 100, &deleted));
  EXPECT_TRUE(deleted);
  EXPECT_EQ("v", Get("k", 1));
}

TEST_F(MemTableTest, EmptyKeyAndValue) {
  mem_->Add(1, kTypeValue, "", "");
  EXPECT_EQ("", Get("", 100));
}

TEST_F(MemTableTest, BinaryData) {
  std::string key("\x00\xff\x01", 3);
  std::string value("\x00\x00", 2);
  mem_->Add(1, kTypeValue, key, value);
  EXPECT_EQ(value, Get(key, 100));
}

TEST_F(MemTableTest, IteratorYieldsInternalKeyOrder) {
  mem_->Add(3, kTypeValue, "b", "b3");
  mem_->Add(1, kTypeValue, "a", "a1");
  mem_->Add(2, kTypeValue, "b", "b2");
  mem_->Add(4, kTypeDeletion, "c", "");

  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  iter->SeekToFirst();
  // Expected: a@1, b@3 (newer first), b@2, c@4(del).
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("a", ExtractUserKey(iter->key()).ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", ExtractUserKey(iter->key()).ToString());
  EXPECT_EQ(3u, ExtractSequence(iter->key()));
  EXPECT_EQ("b3", iter->value().ToString());
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("b", ExtractUserKey(iter->key()).ToString());
  EXPECT_EQ(2u, ExtractSequence(iter->key()));
  iter->Next();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("c", ExtractUserKey(iter->key()).ToString());
  EXPECT_EQ(kTypeDeletion, ExtractValueType(iter->key()));
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST_F(MemTableTest, IteratorSeek) {
  for (int i = 0; i < 100; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    mem_->Add(i + 1, kTypeValue, buf, "v");
  }
  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  std::string target;
  AppendInternalKey(&target,
                    ParsedInternalKey("k050", kMaxSequenceNumber,
                                      kValueTypeForSeek));
  iter->Seek(target);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k050", ExtractUserKey(iter->key()).ToString());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ("k049", ExtractUserKey(iter->key()).ToString());
  iter->SeekToLast();
  EXPECT_EQ("k099", ExtractUserKey(iter->key()).ToString());
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem_->Add(i + 1, kTypeValue, "key" + std::to_string(i),
              std::string(100, 'v'));
  }
  EXPECT_GT(mem_->ApproximateMemoryUsage(), before + 100 * 1000);
}

TEST(InternalKey, ComparatorOrdersUserKeyAscSeqDesc) {
  InternalKeyComparator icmp;
  std::string a1, a5, b1;
  AppendInternalKey(&a1, ParsedInternalKey("a", 1, kTypeValue));
  AppendInternalKey(&a5, ParsedInternalKey("a", 5, kTypeValue));
  AppendInternalKey(&b1, ParsedInternalKey("b", 1, kTypeValue));
  EXPECT_LT(icmp.Compare(a5, a1), 0);  // Higher seq sorts first.
  EXPECT_LT(icmp.Compare(a1, b1), 0);
  EXPECT_GT(icmp.Compare(b1, a5), 0);
  EXPECT_EQ(0, icmp.Compare(a1, a1));
}

TEST(InternalKey, ParseRoundTrip) {
  std::string encoded;
  AppendInternalKey(&encoded,
                    ParsedInternalKey("the-key", 0x123456, kTypeDeletion));
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(encoded, &parsed));
  EXPECT_EQ("the-key", parsed.user_key.ToString());
  EXPECT_EQ(0x123456u, parsed.sequence);
  EXPECT_EQ(kTypeDeletion, parsed.type);
}

TEST(InternalKey, LookupKeyParts) {
  LookupKey lkey("user-key", 42);
  EXPECT_EQ("user-key", lkey.user_key().ToString());
  EXPECT_EQ("user-key", ExtractUserKey(lkey.internal_key()).ToString());
  EXPECT_EQ(42u, ExtractSequence(lkey.internal_key()));
  // Long keys exercise the heap-allocation path.
  std::string long_key(500, 'k');
  LookupKey lkey2(long_key, 7);
  EXPECT_EQ(long_key, lkey2.user_key().ToString());
}

}  // namespace
}  // namespace unikv
