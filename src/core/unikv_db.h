#ifndef UNIKV_CORE_UNIKV_DB_H_
#define UNIKV_CORE_UNIKV_DB_H_

#include <atomic>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/anchor_view.h"
#include "core/db.h"
#include "core/dbformat.h"
#include "core/table_cache.h"
#include "core/version.h"
#include "index/hash_index.h"
#include "mem/memtable.h"
#include "util/event_logger.h"
#include "util/metrics.h"
#include "util/perf_context.h"
#include "util/sync.h"
#include "util/thread_pool.h"
#include "vlog/value_log.h"
#include "wal/log_writer.h"

namespace unikv {

class Cache;

/// Counters describing the background work a UniKV instance has done.
/// Exposed through GetProperty("db.stats").
struct UniKVStats {
  uint64_t flushes = 0;
  uint64_t merges = 0;
  uint64_t scan_merges = 0;
  uint64_t gcs = 0;
  uint64_t splits = 0;
  uint64_t flush_bytes = 0;
  uint64_t merge_bytes_written = 0;
  uint64_t merge_bytes_read = 0;
  uint64_t gc_bytes_written = 0;
  uint64_t gc_bytes_read = 0;
};

/// Background work done on behalf of one partition (guarded by the DB
/// mutex; reported per partition through db.metrics[.json]).
struct PartitionCounters {
  uint64_t flushes = 0;
  uint64_t merges = 0;
  uint64_t scan_merges = 0;
  uint64_t gcs = 0;
  uint64_t splits = 0;
  /// Heat accounting — the substrate for hotness-aware GC scheduling.
  /// Reads count Gets routed into the partition; writes count entries
  /// flushed into it (update frequency is measured at flush routing
  /// time, where keys first meet partition boundaries, not per Put).
  uint64_t heat_reads = 0;
  uint64_t heat_writes = 0;
  /// Byte accounting for per-partition write amplification: logical user
  /// bytes flushed in (the denominator) vs. physical bytes written by
  /// flush/merge/GC on the partition's behalf (the numerator).
  uint64_t user_bytes_flushed = 0;
  uint64_t flush_bytes = 0;
  uint64_t merge_bytes_written = 0;
  uint64_t gc_bytes_written = 0;
};

/// The engine-wide metrics surface: a MetricsRegistry plus cached pointers
/// to the hot-path counters/histograms, so instrumented paths never pay a
/// map lookup. Counters are folded in from the thread-local PerfContext
/// after each operation and after each background job; value-log reads are
/// wired directly (they can run on thread-pool workers).
struct EngineMetrics {
  EngineMetrics();

  /// Adds a PerfContext delta into the engine counters. Skips the vlog_*
  /// fields (counted at source via ValueLogCache::SetCounters, which sees
  /// all threads).
  void FoldPerf(const PerfContext& d);

  MetricsRegistry registry;

  // Read path.
  Counter* gets;
  Counter* memtable_hits;
  Counter* hash_index_lookups;
  Counter* hash_index_probes;
  Counter* hash_index_candidates;
  Counter* bloom_checks;
  Counter* bloom_negatives;
  Counter* bloom_false_positives;
  Counter* unsorted_tables_probed;
  Counter* sorted_seeks;
  Counter* table_cache_hits;
  Counter* table_cache_misses;
  Counter* block_cache_hits;
  Counter* block_cache_misses;
  Counter* block_reads;
  Counter* vlog_reads;
  Counter* vlog_span_reads;
  Counter* vlog_read_bytes;
  Counter* vlog_mmap_reads;

  // Batched read path (DESIGN.md §11).
  Counter* multigets;
  Counter* multiget_keys;
  Counter* multiget_coalesced_reads;
  Counter* multiget_io_bytes_saved;

  // Write path.
  Counter* writes;
  Counter* write_bytes;
  Counter* write_stalls;
  Counter* stall_micros;
  Counter* wal_micros_total;
  Counter* memtable_micros_total;

  // Scans.
  Counter* scans;
  Counter* scan_entries;

  // Sorted anchor view (DESIGN.md §12).
  Counter* anchor_view_builds;  // Views built or extended (installs, recovery).
  Counter* scan_anchor_hits;    // Iterator trees that used a view.
  Gauge* anchor_view_bytes;     // Current total view bytes across partitions.

  // Operation and background-job latencies (microseconds).
  ConcurrentHistogram* get_latency;
  ConcurrentHistogram* write_latency;
  ConcurrentHistogram* scan_latency;
  ConcurrentHistogram* multiget_latency;
  ConcurrentHistogram* multiget_keys_per_batch;
  ConcurrentHistogram* flush_latency;
  ConcurrentHistogram* merge_latency;
  ConcurrentHistogram* scan_merge_latency;
  ConcurrentHistogram* gc_latency;
  ConcurrentHistogram* split_latency;
};

/// The UniKV store: differentiated indexing (hash-indexed UnsortedStore +
/// fully-sorted SortedStore with partial KV separation), dynamic range
/// partitioning, and scan/GC machinery. See DESIGN.md.
class UniKVDB : public DB {
 public:
  UniKVDB(const Options& options, const std::string& dbname);
  ~UniKVDB() override;

  static Status Open(const Options& options, const std::string& name,
                     DB** dbptr);

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Status MultiGet(const ReadOptions& options, const std::vector<Slice>& keys,
                  std::vector<std::string>* values,
                  std::vector<Status>* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  Status Scan(const ReadOptions& options, const Slice& start, int count,
              std::vector<std::pair<std::string, std::string>>* out) override;
  Status CompactAll() override;
  Status FlushMemTable() override;
  Status GetBackgroundError() override;
  bool GetProperty(const Slice& property, std::string* value) override;

  /// Test-only: reintroduces the historical unsafe GC ordering (old value
  /// logs deleted before the manifest install is durable), so the crash
  /// harness can prove it catches ordering bugs. Never set in production.
  static std::atomic<bool> TEST_gc_unsafe_delete_before_install_;

 private:
  friend class DB;
  struct Writer;

  /// One foreground write shard (DESIGN.md §10). Keys are striped across
  /// shards by user-key hash; each shard owns a memtable pair, a WAL
  /// (.swal), a writer deque with LevelDB-style group commit, and its own
  /// stall accounting — so concurrent writers to different shards never
  /// contend. Lock order: mu_ (DB) -> mu (shard) -> log_mu (shard);
  /// err_mu_ is a leaf taken after any of them.
  struct WriteShard {
    WriteShard() : cv(&mu) {}

    /// Guards the writer queue, memtable pointers, rotation, and the
    /// stall wait. Writers take this, never mu_.
    Mutex mu;
    CondVar cv;  // Queue-front handoff + stall wakeup.

    MemTable* mem GUARDED_BY(mu) = nullptr;
    /// Non-null while a rotation awaits flush. Guarded by mu; the flush
    /// worker additionally pins it (Ref under mu) before reading outside.
    MemTable* imm GUARDED_BY(mu) = nullptr;
    std::unique_ptr<WritableFile> wal_file GUARDED_BY(log_mu);
    std::unique_ptr<log::Writer> wal GUARDED_BY(log_mu);
    /// Numbers of the active WAL and (while imm != nullptr) the retired
    /// WAL the imm's contents live in; 0 = no retired WAL. Atomics so the
    /// flush installer can compute the manifest log-number floor.
    std::atomic<uint64_t> wal_number{0};
    std::atomic<uint64_t> imm_wal_number{0};

    std::deque<Writer*> writers GUARDED_BY(mu);
    WriteBatch scratch;  // Group-commit scratch; only the group leader's.

    /// Serializes {sequence allocation, WAL append, own sync} as one
    /// critical section, and cross-shard syncs against rotation. Held by
    /// the group leader (inside mu) and, alone, by sync writers and the
    /// flush installer syncing peer shards. Lock order: mu before log_mu.
    Mutex log_mu;
    /// Lowest sequence the active WAL may hold unsynced: 0 = fully
    /// synced, kSeqAllocating = a group is mid-allocation (transient,
    /// nanoseconds). Published (seq_cst) BEFORE the group allocates its
    /// sequences and reset to 0 only by a Sync covering the append — so
    /// a reader holding sequence C who then sees 0 or a value > C has a
    /// lock-free proof that every sequence <= C on this shard is
    /// durable. Mutated only under log_mu; read lock-free by the
    /// sync-all fast path (see SyncAllShardWals).
    std::atomic<uint64_t> first_unsynced_seq{0};

    /// Scheduler-visible flush signal (set by rotation, cleared by the
    /// flush install). flush_in_progress is scheduler claim state and is
    /// guarded by mu_, not by this shard's mu.
    std::atomic<bool> has_imm{false};
    bool flush_in_progress = false;

    /// Per-shard write-stall accounting; aggregated into db.stats /
    /// db.metrics[.json] / the stats sampler.
    std::atomic<uint64_t> write_stalls{0};
    std::atomic<uint64_t> stall_micros{0};
  };

  Status Recover() EXCLUDES(mu_);
  /// One WAL record (one group-committed batch) read back at recovery.
  struct WalBatch {
    SequenceNumber seq = 0;
    uint32_t count = 0;
    std::string contents;
  };
  /// Reads every batch from one WAL into *out (torn tails are silently
  /// ignored, mid-file corruption is an error). Recovery merges batches
  /// from all shard WALs by sequence number before replaying.
  Status CollectWalBatches(const std::string& fname,
                           std::vector<WalBatch>* out);
  Status RebuildHashIndexes();
  Status InsertTableIntoIndex(HashIndex* index, const FileMeta& f);

  /// The shard responsible for `user_key` (stable hash stripe; not
  /// persisted, so write_shards may change across restarts).
  uint32_t ShardOf(const Slice& user_key) const;
  /// Publishes `seq` as visible to readers (CAS-max); called after the
  /// memtable insert, before the writers are acked.
  void AdvanceVisibleSeq(uint64_t seq);

  /// Ensures s->mem has room (rotating memtable+WAL when full). With
  /// `force`, rotates a non-empty memtable unconditionally — the manual
  /// FlushMemTable path. Only the shard's front writer calls this, so the
  /// WAL is never rotated under a concurrent same-shard AddRecord (the
  /// swap itself happens under log_mu against cross-shard syncs). Called
  /// with s->mu held; stall waits block on the shard cv, which is bound
  /// to s->mu, so the lock is released and re-taken inside the wait.
  Status MakeRoomForWrite(WriteShard* s, bool force) REQUIRES(s->mu);
  WriteBatch* BuildBatchGroup(WriteShard* s, Writer** last_writer)
      REQUIRES(s->mu);
  /// Rotates to a fresh WAL; takes s->log_mu itself for the swap. Must
  /// run as the queue-front writer, hence REQUIRES(s->mu).
  Status SwitchWal(WriteShard* s) REQUIRES(s->mu);
  /// The whole write path of one shard: queue, group commit, WAL append +
  /// sync, memtable insert, visibility publish.
  Status WriteToShard(WriteShard* s, const WriteOptions& options,
                      WriteBatch* updates) EXCLUDES(mu_);
  /// Sentinel for WriteShard::first_unsynced_seq: a group has claimed
  /// the shard but not yet allocated its sequences, so its eventual
  /// sequences are unknown and must be assumed low.
  static constexpr uint64_t kSeqAllocating = ~0ull;

  /// Makes every sequence number <= `ceiling` durable — required before
  /// a sync write (ceiling = its last sequence) is acked and before a
  /// flush advances the manifest floor. Fast path: a lock-free scan of
  /// the shards' first_unsynced_seq watermarks proves the prefix durable
  /// without touching any lock (the common case when every writer
  /// syncs). Slow path: a coordinated round — concurrent callers whose
  /// ceiling is covered by an in-flight or completed round wait on it
  /// instead of issuing their own fsync storm, and the round only locks
  /// and fsyncs shards whose watermark says they matter. With `force`
  /// (the flush path) every short-circuit is disabled and every live
  /// WAL is synced: flushes are rare, and an unconditional round keeps
  /// the env call sequence deterministic for twin-run crash tests
  /// (whether a skip fires would otherwise depend on how background
  /// flushes race foreground writers).
  Status SyncAllShardWals(uint64_t ceiling, bool force = false)
      EXCLUDES(sync_mu_);
  /// One shard's share of a sync-all round: re-checks the watermark
  /// under the lock, fsyncs, and clears the watermark on success.
  Status SyncShardWalLocked(WriteShard* t, bool force, uint64_t target)
      REQUIRES(t->log_mu);

  /// Uninstrumented bodies of Write/Scan; the public entry points wrap
  /// them with PerfContext accounting (one fold per op regardless of
  /// which internal return path fires).
  Status WriteImpl(const WriteOptions& options, WriteBatch* updates);
  Status ScanImpl(const ReadOptions& options, const Slice& start, int count,
                  std::vector<std::pair<std::string, std::string>>* out);

  /// Batched PerfContext -> MetricsRegistry folding. Folding the delta on
  /// every op costs ~25 atomic RMWs, which roughly doubles the latency of
  /// a negative point lookup; instead each foreground op calls PerfEndOp
  /// on completion and the accumulated delta is pushed into the registry
  /// once per kPerfFoldBatch ops (plus whenever the calling thread reads
  /// the metrics properties, via FlushPerfPending). Pending deltas are
  /// abandoned — never folded — when the thread switches to a different
  /// DB (the old registry may already be destroyed) or when the user
  /// Reset() the context, so the registry can momentarily lag the
  /// thread-local context by at most one batch.
  void PerfEndOp(PerfContext* perf);
  void FlushPerfPending();

  enum class WorkKind {
    kNone,
    kFlush,
    kMerge,
    kScanMerge,
    kGc,
    kSplit,
  };
  struct WorkItem {
    WorkKind kind = WorkKind::kNone;
    std::shared_ptr<const PartitionState> partition;
    /// For kFlush: index of the shard whose imm is to be flushed.
    int shard = -1;
  };

  void MaybeScheduleWork() REQUIRES(mu_);

  /// Body of one background worker thread. `options_.background_threads`
  /// of these run concurrently; each picks one schedulable job at a time
  /// (PickWork skips busy partitions), marks its target busy, and executes
  /// it with mu_ released. Jobs in different partitions proceed in
  /// parallel; jobs on the same partition — and concurrent flushes — are
  /// mutually exclusive.
  void BackgroundWorker() EXCLUDES(mu_);

  /// Next schedulable job: skips partitions in busy_partitions_ and the
  /// flush when one is already in flight.
  WorkItem PickWork() REQUIRES(mu_);

  /// Whether *any* work remains (pending or currently running elsewhere's
  /// preconditions still hold) — the raw threshold check, ignoring the
  /// busy set. CompactAll drains on this.
  bool HasWorkPending() REQUIRES(mu_);
  /// Runs one job start to finish; all I/O, so never under mu_.
  Status DispatchWork(const WorkItem& item) EXCLUDES(mu_);

  struct FlushOutput {
    uint32_t pid = 0;
    FileMeta meta;
    std::vector<std::string> keys;  // Deduplicated user keys, table order.
  };

  /// Flushes `mem` contents to per-partition UnsortedStore tables routed
  /// by `base`'s partition boundaries and fills *outputs. Called without
  /// holding mu_ (takes it briefly for file-number allocation). Does not
  /// assign table_ids, build an edit, or touch the hash indexes — the
  /// caller does that under mu_ after re-validating the routing against
  /// the then-current version (a concurrent split may have moved
  /// boundaries while the tables were being built).
  Status FlushMemTableToUnsorted(MemTable* mem, const VersionPtr& base,
                                 std::vector<FlushOutput>* outputs)
      EXCLUDES(mu_);

  /// True iff every output's [smallest, largest] still maps to the
  /// partition it was built for in `ver`.
  bool RoutingStillValid(const VersionData& ver,
                         const std::vector<FlushOutput>& outputs)
      REQUIRES(mu_);
  Status CompactMemTable(size_t shard_idx) EXCLUDES(mu_);

  Status MergePartition(std::shared_ptr<const PartitionState> p)
      EXCLUDES(mu_);
  Status ScanMergePartition(std::shared_ptr<const PartitionState> p)
      EXCLUDES(mu_);
  Status GcPartition(std::shared_ptr<const PartitionState> p) EXCLUDES(mu_);
  Status SplitPartition(std::shared_ptr<const PartitionState> p)
      EXCLUDES(mu_);

  void RemoveObsoleteFiles() EXCLUDES(mu_);
  void RecordBackgroundError(const Status& s) EXCLUDES(mu_, err_mu_);

  /// Renders `db.metrics` / `db.metrics.json`.
  std::string MetricsTextLocked(const VersionData& ver) REQUIRES(mu_);
  std::string MetricsJsonLocked(const VersionData& ver) REQUIRES(mu_);

  // ---- StatsSampler (stats_sampler.cc) ----

  /// Heat of one partition at sampling time.
  struct PartitionHeat {
    uint32_t pid = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
  };

  /// One sampler snapshot: *cumulative* engine counters at ts_micros.
  /// Deltas between consecutive samples are what the EVENTS
  /// `stats_sample` lines and `db.stats.history` report.
  struct StatsSample {
    uint64_t ts_micros = 0;
    uint64_t gets = 0;
    uint64_t writes = 0;
    uint64_t scans = 0;
    uint64_t write_stalls = 0;
    uint64_t stall_micros = 0;
    uint64_t flush_bytes = 0;
    uint64_t merge_bytes_written = 0;
    uint64_t gc_bytes_written = 0;
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
    std::vector<PartitionHeat> partitions;
  };

  /// Body of the sampler thread: every stats_sample_interval_ms, takes a
  /// snapshot under mu_, pushes it into the bounded history ring, and
  /// appends a `stats_sample` delta line to the EVENTS log.
  void StatsSamplerThread() EXCLUDES(mu_);
  StatsSample TakeStatsSampleLocked() REQUIRES(mu_);
  /// Emits one `stats_sample` EVENTS line carrying both the interval
  /// deltas (d_*) and the cumulative values (cum_*) of `cur` vs `prev`.
  void LogStatsSample(const StatsSample& prev, const StatsSample& cur);
  /// Renders the history ring as a JSON array (db.stats.history).
  std::string StatsHistoryJsonLocked() const REQUIRES(mu_);

  /// When `pin` is non-null, table lookups go through it so repeated
  /// probes of the same table within one batch reuse the pinned handle.
  Status GetFromUnsorted(const PartitionState& p,
                         std::vector<uint16_t> candidates,
                         const LookupKey& lkey, std::string* value,
                         bool* found, TableCache::BatchPin* pin = nullptr);
  /// When `dptr`/`deferred` are non-null, a hit on a separated value is
  /// not fetched from its log: *found and *deferred are set and the
  /// decoded pointer stored in *dptr, for the caller to resolve (MultiGet
  /// sorts and coalesces those fetches). `value` then stays untouched.
  /// `probe` (optional, batched callers) carries the last resolved data
  /// block and reusable scratch strings across a run of sorted-order keys.
  Status GetFromSorted(const PartitionState& p, const LookupKey& lkey,
                       std::string* value, bool* found,
                       TableCache::BatchPin* pin = nullptr,
                       ValuePointer* dptr = nullptr, bool* deferred = nullptr,
                       Table::Probe* probe = nullptr);

  /// Body of the batched read path (DESIGN.md §11): one snapshot + shard
  /// pin + version/index capture per batch, per-partition store probes
  /// with table-handle reuse, and a sorted, gap-coalesced value-log fetch
  /// of every separated value the batch touched.
  Status MultiGetImpl(const ReadOptions& options,
                      const std::vector<Slice>& keys,
                      std::vector<std::string>* values,
                      std::vector<Status>* statuses) EXCLUDES(mu_);

  /// Builds a merged internal iterator over memtables and all partitions;
  /// *latest_seq receives the snapshot sequence. FileMeta lists and the
  /// pinned version are captured under a short mu_ hold; the table
  /// iterators themselves (which can do disk I/O) open after it is
  /// released. Partitions whose anchor view exactly covers their unsorted
  /// tables contribute one anchor-guided child instead of one child per
  /// table (DESIGN.md §12).
  Iterator* NewInternalIterator(const ReadOptions& options,
                                SequenceNumber* latest_seq) EXCLUDES(mu_);

  /// Replaces (or retires, view == nullptr) a partition's in-memory
  /// anchor view and keeps the anchor_view_bytes gauge in sync.
  void InstallAnchorViewLocked(uint32_t pid, AnchorViewPtr view)
      REQUIRES(mu_);

  /// Install-path maintenance (under mu_, like the survivor
  /// hash-index rebuild it mirrors): builds the post-install view for
  /// `pid` over `tables`, persists it, and records it in `edit`. With
  /// fewer than two tables the view is retired instead. `base` (optional)
  /// is the pre-flush view a flush install extends with `added` in one
  /// merge pass; otherwise the view is rebuilt by walking `tables`.
  /// Failures retire the view (scans fall back to the merging iterator) —
  /// never fatal.
  void MaintainAnchorViewLocked(uint32_t pid,
                                const std::vector<FileMeta>& tables,
                                const AnchorView* base, const FileMeta* added,
                                VersionEdit* edit) REQUIRES(mu_);

  /// Recovery: loads each partition's persisted view (validating coverage
  /// against the recovered unsorted set) and rebuilds missing or stale
  /// ones from the tables themselves.
  Status RecoverAnchorViews() EXCLUDES(mu_);

  // ---- Immutable after Open ----
  Options options_;
  const std::string dbname_;
  Env* env_;
  /// Exclusive claim on dbname_ (the LOCK file), held from Recover until
  /// destruction so a second instance cannot sweep this one's files.
  FileLock* db_lock_ = nullptr;
  InternalKeyComparator icmp_;
  EngineMetrics metrics_;  // Before the caches that hold counter pointers.
  std::unique_ptr<EventLogger> event_log_;
  std::unique_ptr<Cache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<ValueLogCache> vlog_cache_;
  std::unique_ptr<ThreadPool> fetch_pool_;

  // ---- Sharded foreground write path (DESIGN.md §10) ----

  /// Fixed at Open from options_.write_shards (clamped to [1, 64]).
  /// Writers touch only their shard; the DB mutex below guards background
  /// scheduling and version state, never the hot write path.
  std::vector<std::unique_ptr<WriteShard>> shards_;

  /// Global sequence allocator: the last allocated sequence number. A
  /// group leader allocates [n+1, n+count] via fetch_add *inside* its
  /// shard's log_mu critical section, which is what makes gap-cut
  /// recovery sound (see DESIGN.md §10).
  std::atomic<uint64_t> seq_alloc_{0};
  /// Highest sequence published to readers: advanced (CAS-max) after each
  /// group's memtable insert, before its writers are acked. Get and
  /// iterators snapshot this, so acked writes are always visible; a
  /// cross-shard snapshot is best-effort (a lagging group on another
  /// shard may surface later under an older snapshot).
  std::atomic<uint64_t> visible_seq_{0};

  /// Cross-shard sync coordinator (DESIGN.md §10). A sync-all round
  /// promises "every sequence allocated before the round began is
  /// durable"; synced_seq_floor_ records the highest such promise kept.
  /// Callers whose ceiling is already under the floor return instantly;
  /// callers arriving while a round is in flight wait for it and
  /// re-check — so N concurrent sync writers trigger O(1) rounds, not N
  /// fsync storms. sync_mu_ guards only the flags; it is never held
  /// across an fsync or while acquiring any other lock.
  Mutex sync_mu_;
  CondVar sync_cv_;
  bool sync_all_in_flight_ GUARDED_BY(sync_mu_) = false;
  uint64_t synced_seq_floor_ GUARDED_BY(sync_mu_) = 0;

  /// Leaf lock for the sticky background error. Writers check
  /// has_bg_error_ lock-free and only take err_mu_ to read the Status;
  /// nothing else is ever acquired while holding err_mu_.
  Mutex err_mu_;
  Status bg_error_ GUARDED_BY(err_mu_);
  std::atomic<bool> has_bg_error_{false};

  // ---- State guarded by mu_ ----
  Mutex mu_;
  CondVar bg_cv_;       // Signalled when bg work finishes.
  CondVar bg_work_cv_;  // Wakes the background thread.

  /// Not GUARDED_BY(mu_) on purpose: current()/NewFileNumber()/
  /// LastSequence() are internally synchronized and intentionally called
  /// without mu_ (read paths pin a version snapshot); the *mutating*
  /// VersionSet methods (LogAndApply, SetLastSequence, ...) must be
  /// called with mu_ held — a contract the install paths keep by
  /// construction (every LogAndApply site sits in a REQUIRES(mu_) region).
  std::unique_ptr<VersionSet> versions_;

  // Mutable per-partition side state (not versioned).
  std::unordered_map<uint32_t, std::shared_ptr<HashIndex>> indexes_
      GUARDED_BY(mu_);
  /// Immutable per-partition anchor views (DESIGN.md §12). The map is
  /// guarded by mu_; the views themselves are immutable, so readers
  /// snapshot the shared_ptr under mu_ and use it lock-free.
  std::unordered_map<uint32_t, AnchorViewPtr> anchor_views_ GUARDED_BY(mu_);
  std::unordered_map<uint32_t, uint64_t> vlog_garbage_ GUARDED_BY(mu_);
  std::unordered_map<uint32_t, int> flushes_since_checkpoint_
      GUARDED_BY(mu_);
  std::unordered_map<uint32_t, PartitionCounters> partition_stats_
      GUARDED_BY(mu_);

  std::set<uint64_t> pending_outputs_ GUARDED_BY(mu_);

  /// Background jobs currently executing across all workers. CompactAll,
  /// FlushMemTable, and the destructor drain on this reaching zero.
  int bg_jobs_running_ GUARDED_BY(mu_) = 0;
  /// Partitions with a merge/scan-merge/GC/split in flight; PickWork
  /// skips them so same-partition jobs never overlap.
  std::set<uint32_t> busy_partitions_ GUARDED_BY(mu_);

  bool shutting_down_ GUARDED_BY(mu_) = false;
  /// Count of CompactAll callers currently draining; while nonzero the
  /// scheduler compacts below the usual thresholds.
  int compact_all_ GUARDED_BY(mu_) = 0;
  UniKVStats stats_ GUARDED_BY(mu_);

  /// Bounded ring of sampler snapshots (newest at the back), capped at
  /// options_.stats_history_size. Empty when the sampler is off.
  std::deque<StatsSample> stats_history_ GUARDED_BY(mu_);
  /// Wakes the sampler thread early on shutdown (waits on mu_).
  CondVar sampler_cv_;

  std::vector<std::thread> bg_threads_;
  /// Running only when options_.stats_sample_interval_ms > 0.
  std::thread sampler_thread_;

  size_t IndexExpectedEntries() const {
    size_t n = options_.unsorted_limit / options_.index_expected_entry_size;
    return n < 1024 ? 1024 : n;
  }
  std::shared_ptr<HashIndex> GetOrCreateIndex(uint32_t pid);
};

}  // namespace unikv

#endif  // UNIKV_CORE_UNIKV_DB_H_
