file(REMOVE_RECURSE
  "CMakeFiles/slice_status_test.dir/slice_status_test.cc.o"
  "CMakeFiles/slice_status_test.dir/slice_status_test.cc.o.d"
  "slice_status_test"
  "slice_status_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
