#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "util/env.h"
#include "util/sync.h"

namespace unikv {

namespace {

Status PosixError(const std::string& context, int error_number) {
  if (error_number == ENOENT) {
    return Status::NotFound(context, std::strerror(error_number));
  }
  return Status::IOError(context, std::strerror(error_number));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string filename, int fd)
      : fd_(fd), filename_(std::move(filename)) {}
  ~PosixSequentialFile() override { close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t read_size = ::read(fd_, scratch, n);
      if (read_size < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(filename_, errno);
      }
      *result = Slice(scratch, read_size);
      break;
    }
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, n, SEEK_CUR) == static_cast<off_t>(-1)) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

 private:
  const int fd_;
  const std::string filename_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string filename, int fd)
      : fd_(fd), filename_(std::move(filename)) {}
  ~PosixRandomAccessFile() override {
    for (const auto& m : mappings_) {
      ::munmap(m.first, m.second);
    }
    close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t read_size = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    *result = Slice(scratch, (read_size < 0) ? 0 : read_size);
    if (read_size < 0) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

  bool ReadZeroCopy(uint64_t offset, size_t n, Slice* result) const override {
    MutexLock l(&map_mu_);
    if (map_ == nullptr || offset + n > map_len_) {
      // (Re)map lazily at the file's current size. An earlier, shorter
      // mapping may still back live Slices, so it is retired — kept until
      // the destructor — instead of munmapped here. Growth is rare (only
      // a log that was still being appended when first mapped), so the
      // retired list stays tiny.
      struct stat st;
      if (::fstat(fd_, &st) != 0) return false;
      const uint64_t size = static_cast<uint64_t>(st.st_size);
      if (offset + n > size || size == 0) return false;
      void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd_, 0);
      if (base == MAP_FAILED) return false;
      mappings_.emplace_back(base, size);
      map_ = static_cast<const char*>(base);
      map_len_ = size;
    }
    *result = Slice(map_ + offset, n);
    return true;
  }

  void ReadaheadHint(uint64_t offset, size_t n) const override {
#ifdef POSIX_FADV_WILLNEED
    ::posix_fadvise(fd_, static_cast<off_t>(offset), static_cast<off_t>(n),
                    POSIX_FADV_WILLNEED);
#else
    (void)offset;
    (void)n;
#endif
  }

 private:
  const int fd_;
  const std::string filename_;
  mutable Mutex map_mu_;
  // Current (longest) mapping.
  mutable const char* map_ GUARDED_BY(map_mu_) = nullptr;
  mutable uint64_t map_len_ GUARDED_BY(map_mu_) = 0;
  // All mappings ever made, for the destructor (old ones may still back
  // live Slices). The dtor reads this without map_mu_: no concurrent
  // readers can exist once destruction starts.
  mutable std::vector<std::pair<void*, size_t>> mappings_;
};

constexpr size_t kWritableFileBufferSize = 65536;

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string filename, int fd)
      : pos_(0), fd_(fd), filename_(std::move(filename)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      // Destructor: nowhere to report. Callers that care about the final
      // flush call Close() themselves and check it.
      (void)Close();
    }
  }

  Status Append(const Slice& data) override {
    size_t write_size = data.size();
    const char* write_data = data.data();

    // Fit as much as possible into the buffer.
    size_t copy_size = std::min(write_size, kWritableFileBufferSize - pos_);
    std::memcpy(buf_ + pos_, write_data, copy_size);
    write_data += copy_size;
    write_size -= copy_size;
    pos_ += copy_size;
    if (write_size == 0) {
      return Status::OK();
    }

    Status status = FlushBuffer();
    if (!status.ok()) {
      return status;
    }

    // Small leftovers go to the buffer; large writes go straight to disk.
    if (write_size < kWritableFileBufferSize) {
      std::memcpy(buf_, write_data, write_size);
      pos_ = write_size;
      return Status::OK();
    }
    return WriteUnbuffered(write_data, write_size);
  }

  Status Close() override {
    Status status = FlushBuffer();
    const int close_result = ::close(fd_);
    if (close_result < 0 && status.ok()) {
      status = PosixError(filename_, errno);
    }
    fd_ = -1;
    return status;
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    Status status = FlushBuffer();
    if (!status.ok()) {
      return status;
    }
    if (::fdatasync(fd_) != 0) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

 private:
  Status FlushBuffer() {
    Status status = WriteUnbuffered(buf_, pos_);
    pos_ = 0;
    return status;
  }

  Status WriteUnbuffered(const char* data, size_t size) {
    while (size > 0) {
      ssize_t write_result = ::write(fd_, data, size);
      if (write_result < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(filename_, errno);
      }
      data += write_result;
      size -= write_result;
    }
    return Status::OK();
  }

  char buf_[kWritableFileBufferSize];
  size_t pos_;
  int fd_;
  const std::string filename_;
};

class PosixFileLock : public FileLock {
 public:
  PosixFileLock(int fd, std::string filename)
      : fd_(fd), filename_(std::move(filename)) {}
  int fd() const { return fd_; }
  const std::string& filename() const { return filename_; }

 private:
  int fd_;
  std::string filename_;
};

class PosixEnv : public Env {
 public:
  // flock(2) locks conflict per open file description, so a second
  // LockFile on the same path is refused whether the holder is another
  // process or another DB instance in this one.
  Status LockFile(const std::string& filename, FileLock** lock) override {
    *lock = nullptr;
    int fd = ::open(filename.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      return PosixError(filename, errno);
    }
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      int err = errno;
      ::close(fd);
      return Status::IOError(filename,
                             err == EWOULDBLOCK
                                 ? "lock held by another process"
                                 : std::strerror(err));
    }
    *lock = new PosixFileLock(fd, filename);
    return Status::OK();
  }

  Status UnlockFile(FileLock* lock) override {
    if (lock == nullptr) return Status::OK();
    auto* held = static_cast<PosixFileLock*>(lock);
    Status s;
    if (::flock(held->fd(), LOCK_UN) != 0) {
      s = PosixError(held->filename(), errno);
    }
    ::close(held->fd());
    delete held;
    return s;
  }

  Status NewSequentialFile(const std::string& filename,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(filename.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    result->reset(new PosixSequentialFile(filename, fd));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& filename,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(filename.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    result->reset(new PosixRandomAccessFile(filename, fd));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& filename,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(filename.c_str(),
                    O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    result->reset(new PosixWritableFile(filename, fd));
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& filename,
                           std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(filename.c_str(),
                    O_APPEND | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    result->reset(new PosixWritableFile(filename, fd));
    return Status::OK();
  }

  bool FileExists(const std::string& filename) override {
    return ::access(filename.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& directory_path,
                     std::vector<std::string>* result) override {
    result->clear();
    ::DIR* dir = ::opendir(directory_path.c_str());
    if (dir == nullptr) {
      return PosixError(directory_path, errno);
    }
    struct ::dirent* entry;
    while ((entry = ::readdir(dir)) != nullptr) {
      if (std::strcmp(entry->d_name, ".") == 0 ||
          std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      result->emplace_back(entry->d_name);
    }
    ::closedir(dir);
    return Status::OK();
  }

  Status RemoveFile(const std::string& filename) override {
    if (::unlink(filename.c_str()) != 0) {
      return PosixError(filename, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0) {
      if (errno == EEXIST) {
        return Status::OK();
      }
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& filename, uint64_t* size) override {
    struct ::stat file_stat;
    if (::stat(filename.c_str(), &file_stat) != 0) {
      *size = 0;
      return PosixError(filename, errno);
    }
    if (S_ISDIR(file_stat.st_mode)) {
      *size = 0;
      return Status::IOError(filename, "is a directory");
    }
    *size = file_stat.st_size;
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError(from, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dirname) override {
    int fd = ::open(dirname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return PosixError(dirname, errno);
    }
    Status s;
    if (::fsync(fd) != 0) {
      s = PosixError(dirname, errno);
    }
    ::close(fd);
    return s;
  }

  uint64_t NowMicros() override {
    struct ::timeval tv;
    ::gettimeofday(&tv, nullptr);
    return static_cast<uint64_t>(tv.tv_sec) * 1000000 + tv.tv_usec;
  }

  void SleepForMicroseconds(int micros) override { ::usleep(micros); }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace unikv
