// Experiment T4 — Hash-index memory overhead.
//
// Paper: each UnsortedStore entry costs one 8-byte index entry; for 1 GiB
// of 1 KiB KVs that is ~10 MiB (<1% of data) at ~80% bucket utilization.
// This bench loads data kept entirely in the UnsortedStore and reports
// bytes/entry, utilization and the index:data ratio.

#include "bench_common.h"

#include "core/db.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("memory");

  PrintTableHeader("T4 hash index memory overhead",
                   {"value_size", "entries", "index_KiB", "bytes/entry",
                    "index/data %"});
  for (size_t value_size : {256, 1024, 4096}) {
    Options opt = BenchOptions();
    // Size the UnsortedStore (and thus the index's expected-entry
    // capacity) to the data we will actually hold, as a deployment
    // tuning UnsortedLimit to its memory budget would.
    const uint64_t data_target = Scaled(16 * 1024 * 1024);
    opt.unsorted_limit = data_target + data_target / 4;
    opt.partition_size_limit = 4ull * 1024 * 1024 * 1024;
    opt.scan_merge_limit = 1 << 20;
    opt.index_expected_entry_size = value_size;
    BenchDb bdb(Engine::kUniKV, opt, root);

    const uint64_t keys = data_target / value_size;
    uint64_t data_bytes = 0;
    for (uint64_t i = 0; i < keys; i++) {
      std::string key = KeyGenerator::Key(i);
      std::string value = MakeValue(i, value_size);
      data_bytes += key.size() + value.size();
      OrDie(bdb.db()->Put(WriteOptions(), key, value), "Put");
    }
    OrDie(bdb.db()->FlushMemTable(), "FlushMemTable");

    std::string entries = "0", bytes = "0";
    bdb.db()->GetProperty("db.hash-index-entries", &entries);
    bdb.db()->GetProperty("db.hash-index-bytes", &bytes);
    double n = std::stod(entries);
    double b = std::stod(bytes);
    PrintTableRow({std::to_string(value_size), entries, Fmt(b / 1024, 1),
                   Fmt(n > 0 ? b / n : 0, 2),
                   Fmt(data_bytes > 0 ? 100.0 * b / data_bytes : 0, 2)});
  }
  return 0;
}
