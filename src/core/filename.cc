#include "core/filename.h"

#include <cstdio>

namespace unikv {

static std::string MakeFileName(const std::string& dbname, uint64_t number,
                                const char* suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

std::string WalFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "wal");
}

std::string ShardWalFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "swal");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "sst");
}

std::string ValueLogFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "vlog");
}

std::string IndexCheckpointFileName(const std::string& dbname,
                                    uint64_t number) {
  return MakeFileName(dbname, number, "hidx");
}

std::string AnchorViewFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "anchors");
}

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string LockFileName(const std::string& dbname) {
  return dbname + "/LOCK";
}

std::string TempFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "tmp");
}

bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  if (filename == "CURRENT") {
    *number = 0;
    *type = FileType::kCurrentFile;
    return true;
  }
  if (filename.rfind("MANIFEST-", 0) == 0) {
    unsigned long long num;
    if (std::sscanf(filename.c_str() + 9, "%llu", &num) != 1) {
      return false;
    }
    *number = num;
    *type = FileType::kManifestFile;
    return true;
  }
  // NNNNNN.suffix
  size_t dot = filename.find('.');
  if (dot == std::string::npos || dot == 0) {
    return false;
  }
  for (size_t i = 0; i < dot; i++) {
    if (filename[i] < '0' || filename[i] > '9') return false;
  }
  unsigned long long num;
  if (std::sscanf(filename.c_str(), "%llu", &num) != 1) {
    return false;
  }
  *number = num;
  const std::string suffix = filename.substr(dot + 1);
  if (suffix == "wal") {
    *type = FileType::kWalFile;
  } else if (suffix == "swal") {
    *type = FileType::kShardWalFile;
  } else if (suffix == "sst") {
    *type = FileType::kTableFile;
  } else if (suffix == "vlog") {
    *type = FileType::kValueLogFile;
  } else if (suffix == "hidx") {
    *type = FileType::kIndexCheckpoint;
  } else if (suffix == "anchors") {
    *type = FileType::kAnchorsFile;
  } else if (suffix == "tmp") {
    *type = FileType::kTempFile;
  } else {
    *type = FileType::kUnknown;
    return false;
  }
  return true;
}

}  // namespace unikv
