// Experiment F11 — Value-size sensitivity.
//
// Paper: load + read with values from 256 B to 16 KiB at constant total
// data volume. Expected shape: UniKV's write advantage grows with value
// size (KV separation keeps merges key-only), while small values shrink
// the gap (pointer overhead is relatively larger).

#include "bench_common.h"

using namespace unikv;
using namespace unikv::bench;

int main() {
  const std::string root = BenchRoot("value_size");
  const uint64_t kTotalBytes = Scaled(24ull * 1024 * 1024);

  PrintTableHeader(
      "F11 value-size sweep (load kops/s | write_amp | read kops/s)",
      {"value_size", "UniKV", "LeveledLSM", "TieredLSM"});
  for (size_t value_size : {256, 1024, 4096, 16384}) {
    uint64_t keys = kTotalBytes / value_size;
    std::vector<std::string> row;
    row.push_back(std::to_string(value_size));
    for (Engine engine :
         {Engine::kUniKV, Engine::kLeveled, Engine::kTiered}) {
      BenchDb bdb(engine, BenchOptions(), root);
      LoadSpec load;
      load.num_keys = keys;
      load.value_size = value_size;
      PhaseResult lr = RunLoad(&bdb, load);

      PointReadSpec reads;
      reads.num_ops = std::min<uint64_t>(keys, Scaled(8000));
      reads.key_space = keys;
      reads.value_size = value_size;
      PhaseResult rr = RunPointReads(&bdb, reads);

      row.push_back(Fmt(lr.kops_per_sec) + "|" + Fmt(lr.write_amp, 1) + "|" +
                    Fmt(rr.kops_per_sec));
    }
    PrintTableRow(row);
  }
  return 0;
}
