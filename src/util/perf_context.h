#ifndef UNIKV_UTIL_PERF_CONTEXT_H_
#define UNIKV_UTIL_PERF_CONTEXT_H_

#include <cstdint>
#include <string>

#include "util/env.h"

namespace unikv {

/// Per-thread, per-operation tracing counters (RocksDB-style PerfContext).
///
/// Every field is a plain uint64_t in thread-local storage: instrumentation
/// sites on the read/write hot paths do `GetPerfContext()->field++` with no
/// atomics and no locks. Counters accumulate across operations on the same
/// thread until Reset(); callers that want per-operation numbers snapshot
/// the struct before the operation and subtract (DeltaSince).
///
/// Caveat: work handed to other threads (parallel value fetches during
/// scans/GC) lands in *those* threads' contexts. The engine-wide
/// MetricsRegistry counters (see util/metrics.h) do cover cross-thread
/// work; PerfContext is for tracing what the calling thread did.
struct PerfContext {
  // Operation counts.
  uint64_t gets = 0;
  uint64_t writes = 0;
  uint64_t scans = 0;
  uint64_t multigets = 0;        // MultiGet batches.
  uint64_t multiget_keys = 0;    // Keys across those batches.

  // Read-path breakdown.
  uint64_t memtable_hits = 0;
  uint64_t hash_index_lookups = 0;    // HashIndex::Lookup calls.
  uint64_t hash_index_probes = 0;     // Buckets + overflow entries examined.
  uint64_t hash_index_candidates = 0; // Candidate table ids returned.
  uint64_t bloom_checks = 0;          // Filter consultations (filter present).
  uint64_t bloom_negatives = 0;       // Filter said "definitely absent".
  uint64_t bloom_false_positives = 0; // Filter passed but key absent.
  uint64_t unsorted_tables_probed = 0;// UnsortedStore tables Get() touched.
  uint64_t sorted_seeks = 0;          // SortedStore table seeks.
  uint64_t table_cache_hits = 0;
  uint64_t table_cache_misses = 0;    // Table reader opened from disk.
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_reads = 0;           // Data blocks read from disk.
  uint64_t vlog_reads = 0;            // Point fetches from value logs.
  uint64_t vlog_span_reads = 0;       // Coalesced span reads (scans).
  uint64_t vlog_read_bytes = 0;
  uint64_t vlog_mmap_reads = 0;       // Span reads served zero-copy (mmap).
  // MultiGet value-log coalescing: spans that served >= 2 pointers, and
  // the record bytes those merged members would have re-read as separate
  // point preads (both counted on the batch's calling thread).
  uint64_t multiget_coalesced_reads = 0;
  uint64_t multiget_io_bytes_saved = 0;

  // Timers (microseconds), accumulated via StopwatchGuard. Per-point-get
  // timing is sampled (1 in ~32 gets take the clock), so get_micros is an
  // estimate of ~1/32 of the true total; the other timers are exact.
  uint64_t get_micros = 0;
  uint64_t write_micros = 0;
  uint64_t write_wal_micros = 0;
  uint64_t write_memtable_micros = 0;
  uint64_t write_stall_micros = 0;
  uint64_t scan_micros = 0;
  uint64_t multiget_micros = 0;  // Exact (timed per batch, not sampled).

  // Generation counter: bumped by Reset() instead of being zeroed, so code
  // holding an older snapshot of this context can tell that a Reset()
  // happened in between and must not subtract across it. Not a tracing
  // field: excluded from ToString(), and DeltaSince() leaves it zero.
  uint64_t resets = 0;

  void Reset() {
    const uint64_t generation = resets + 1;
    *this = PerfContext();
    resets = generation;
  }

  /// Field-wise `*this - before`; both must come from the same thread's
  /// context (or copies of it).
  PerfContext DeltaSince(const PerfContext& before) const;

  /// Field-wise `*this += other` (tracing fields only; `resets` is left
  /// alone). For folding per-slice deltas into a phase total.
  void Add(const PerfContext& other);

  /// Space-separated `name=value` pairs; zero fields are skipped unless
  /// `include_zeros`.
  std::string ToString(bool include_zeros = false) const;
};

namespace internal {
extern constinit thread_local PerfContext tls_perf_context;
}  // namespace internal

/// The calling thread's context. Never null; valid for the thread's
/// lifetime. Header-inline on purpose: instrumentation sites sit on paths
/// where a sub-microsecond op may touch the context half a dozen times,
/// and an out-of-line call per touch is measurable; inline, each touch is
/// a thread-pointer-relative access.
inline PerfContext* GetPerfContext() { return &internal::tls_perf_context; }

/// Accumulates wall-clock time into *target while in scope. `env` supplies
/// the clock so tests can substitute; pass nullptr to use Env::Default().
class StopwatchGuard {
 public:
  StopwatchGuard(Env* env, uint64_t* target)
      : env_(env != nullptr ? env : Env::Default()),
        target_(target),
        start_(env_->NowMicros()) {}
  ~StopwatchGuard() { *target_ += ElapsedMicros(); }

  StopwatchGuard(const StopwatchGuard&) = delete;
  StopwatchGuard& operator=(const StopwatchGuard&) = delete;

  uint64_t ElapsedMicros() const { return env_->NowMicros() - start_; }

 private:
  Env* env_;
  uint64_t* target_;
  uint64_t start_;
};

}  // namespace unikv

#endif  // UNIKV_UTIL_PERF_CONTEXT_H_
