# Empty dependencies file for slice_status_test.
# This may be replaced when dependencies are built.
