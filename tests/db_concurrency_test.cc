// Concurrency tests: multiple writer threads (group commit), readers
// racing background merges/GC/splits, and iterators racing writers.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/db.h"
#include "test_util.h"
#include "util/random.h"

namespace unikv {
namespace {

Options BusyOptions() {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.partition_size_limit = 1 * 1024 * 1024;
  opt.sorted_table_size = 32 * 1024;
  opt.gc_garbage_threshold = 128 * 1024;
  return opt;
}

class DbConcurrencyTest : public testing::Test {
 protected:
  void Open(const std::string& name) {
    dir_ = test::NewTestDir(name);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(BusyOptions(), dir_, &raw).ok());
    db_.reset(raw);
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbConcurrencyTest, ParallelWritersAllLand) {
  Open("conc_writers");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1500;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([this, t, &failures] {
      for (int i = 0; i < kPerThread; i++) {
        std::string key = test::TestKey(t * kPerThread + i);
        if (!db_->Put(WriteOptions(), key, test::TestValue(i, 128)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(0, failures.load());
  ASSERT_TRUE(db_->CompactAll().ok());
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i += 37) {
      std::string key = test::TestKey(t * kPerThread + i);
      std::string value;
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok())
          << key;
      EXPECT_EQ(test::TestValue(i, 128), value);
    }
  }
}

TEST_F(DbConcurrencyTest, ReadersRaceWritersAndCompactions) {
  Open("conc_readers");
  // Seed a baseline every reader can rely on.
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), "stable").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; r++) {
    readers.emplace_back([this, r, &done, &violations] {
      Random rnd(r * 7 + 1);
      std::string value;
      while (!done.load(std::memory_order_acquire)) {
        // Baseline keys 0..999 must always resolve to a value: either
        // "stable" or a later overwrite. A miss or error is a violation.
        std::string key = test::TestKey(rnd.Uniform(1000));
        Status s = db_->Get(ReadOptions(), key, &value);
        if (!s.ok()) {
          violations.fetch_add(1);
        }
      }
    });
  }

  // Writer churns new keys and overwrites baseline ones, driving
  // flushes, merges, splits and GC underneath the readers.
  Random rnd(99);
  for (int i = 0; i < 8000; i++) {
    if (rnd.OneIn(4)) {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(rnd.Uniform(1000)),
                           test::TestValue(i, 256))
                      .ok());
    } else {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(1000 + i),
                           test::TestValue(i, 256))
                      .ok());
    }
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(0, violations.load());
}

TEST_F(DbConcurrencyTest, IteratorsRaceWriters) {
  Open("conc_iters");
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i * 2), "seed").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::thread scanner([this, &done, &violations] {
    while (!done.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
      std::string prev;
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        std::string key = iter->key().ToString();
        if (!prev.empty() && prev >= key) {
          violations.fetch_add(1);  // Must stay strictly sorted.
        }
        prev = key;
      }
      if (!iter->status().ok()) {
        violations.fetch_add(1);
      }
    }
  });

  Random rnd(5);
  for (int i = 0; i < 6000; i++) {
    std::string key = test::TestKey(rnd.Uniform(4000));
    if (rnd.OneIn(6)) {
      ASSERT_TRUE(db_->Delete(WriteOptions(), key).ok());
    } else {
      ASSERT_TRUE(db_->Put(WriteOptions(), key,
                           test::TestValue(i, 64 + rnd.Uniform(512)))
                      .ok());
    }
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  done.store(true, std::memory_order_release);
  scanner.join();
  EXPECT_EQ(0, violations.load());
}

TEST_F(DbConcurrencyTest, GroupCommitBatchesConcurrentWrites) {
  Open("conc_group");
  // Many tiny concurrent writes: correctness matters here, batching is
  // the mechanism. Mixed sync/async writers exercise the group-commit
  // boundary handling.
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; t++) {
    threads.emplace_back([this, t] {
      WriteOptions wo;
      wo.sync = (t % 3 == 0);
      for (int i = 0; i < 400; i++) {
        WriteBatch batch;
        batch.Put(test::TestKey(t * 1000 + i), "g");
        batch.Put(test::TestKey(t * 1000 + i + 500), "h");
        ASSERT_TRUE(db_->Write(wo, &batch).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 6; t++) {
    std::string value;
    ASSERT_TRUE(
        db_->Get(ReadOptions(), test::TestKey(t * 1000 + 399), &value).ok());
    EXPECT_EQ("g", value);
    ASSERT_TRUE(
        db_->Get(ReadOptions(), test::TestKey(t * 1000 + 899), &value).ok());
    EXPECT_EQ("h", value);
  }
}

}  // namespace
}  // namespace unikv
