// The canonical perf-trajectory suite: a fixed fill -> mixed -> scan run
// and a fixed fill -> YCSB A/B/C run against UniKV, each persisted as a
// schema-versioned BENCH_<workload>.json (current directory by default,
// $UNIKV_BENCH_OUT to redirect). Run it from the repo root after perf
// work so the repo's performance over time accumulates in-tree:
//
//   ./build/bench/bench_trajectory
//
// Op counts scale with UNIKV_BENCH_SCALE like every other bench.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace unikv {
namespace bench {
namespace {

void RunMixedTrajectory(const std::string& root) {
  const uint64_t keys = Scaled(20000);
  BenchDb bdb(Engine::kUniKV, BenchOptions(), root);

  std::vector<PhaseResult> phases;
  LoadSpec load;
  load.num_keys = keys;
  load.value_size = 1024;
  phases.push_back(RunLoad(&bdb, load));

  MixedSpec mixed;
  mixed.num_ops = Scaled(30000);
  mixed.key_space = keys;
  mixed.value_size = 1024;
  mixed.read_fraction = 0.5;
  phases.push_back(RunMixed(&bdb, mixed));

  ScanSpec scan;
  scan.num_ops = Scaled(300);
  scan.scan_len = 100;
  scan.key_space = keys;
  phases.push_back(RunScans(&bdb, scan));

  for (const PhaseResult& r : phases) {
    std::printf("[mixed/%s] %.1f kops/s over %llu ops\n", r.phase.c_str(),
                r.kops_per_sec, static_cast<unsigned long long>(r.ops));
  }
  WriteBenchTrajectory("mixed", &bdb, phases);
}

void RunYcsbTrajectory(const std::string& root) {
  const uint64_t keys = Scaled(20000);
  BenchDb bdb(Engine::kUniKV, BenchOptions(), root);

  std::vector<PhaseResult> phases;
  LoadSpec load;
  load.num_keys = keys;
  load.value_size = 1024;
  phases.push_back(RunLoad(&bdb, load));

  for (char w : {'A', 'B', 'C'}) {
    YcsbRunSpec spec;
    spec.workload = w;
    spec.num_ops = Scaled(15000);
    spec.key_space = keys;
    spec.value_size = 1024;
    phases.push_back(RunYcsb(&bdb, spec));
  }

  for (const PhaseResult& r : phases) {
    std::printf("[ycsb/%s] %.1f kops/s over %llu ops\n", r.phase.c_str(),
                r.kops_per_sec, static_cast<unsigned long long>(r.ops));
  }
  WriteBenchTrajectory("ycsb", &bdb, phases);
}

}  // namespace
}  // namespace bench
}  // namespace unikv

int main() {
  using namespace unikv::bench;
  RunMixedTrajectory(BenchRoot("trajectory_mixed"));
  RunYcsbTrajectory(BenchRoot("trajectory_ycsb"));
  return 0;
}
