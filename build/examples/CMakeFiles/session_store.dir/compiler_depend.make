# Empty compiler generated dependencies file for session_store.
# This may be replaced when dependencies are built.
