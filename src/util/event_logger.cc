#include "util/event_logger.h"

namespace unikv {

EventLogger::EventLogger(Env* env, std::string dir, uint64_t max_bytes)
    : env_(env), dir_(std::move(dir)), max_bytes_(max_bytes) {}

EventLogger::~EventLogger() {
  MutexLock lock(&mu_);
  if (file_ != nullptr) {
    (void)file_->Close();  // Destructor: the log is best-effort.
  }
}

void EventLogger::Log(const Slice& event_name, JsonBuilder* event) {
  event->AddString("event", event_name);
  std::string line;
  {
    MutexLock lock(&mu_);
    if (disabled_) return;
    if (!opened_) {
      opened_ = true;
      const std::string path = dir_ + "/" + kFileName;
      Status s = env_->NewAppendableFile(path, &file_);
      if (!s.ok()) {
        disabled_ = true;
        return;
      }
      // Appending to a pre-existing log: resume the size accounting from
      // what is already on disk so the cap holds across reopen.
      uint64_t existing = 0;
      bytes_ = env_->GetFileSize(path, &existing).ok() ? existing : 0;
    }
    event->AddUint("ts_micros", env_->NowMicros());
    line = event->Finish();
    line.push_back('\n');
    if (max_bytes_ > 0 && bytes_ > 0 && bytes_ + line.size() > max_bytes_) {
      // Rotate: the finished file becomes EVENTS.old (replacing any prior
      // rotation) and the new line starts a fresh EVENTS. A rotation
      // failure disables the logger, same as any other logging failure.
      // A close failure can only truncate the tail of the *retiring*
      // file; the logger is best-effort by contract.
      (void)file_->Close();
      file_.reset();
      Status s =
          env_->RenameFile(dir_ + "/" + kFileName, dir_ + "/" + kOldFileName);
      if (s.ok()) {
        s = env_->NewAppendableFile(dir_ + "/" + kFileName, &file_);
      }
      if (!s.ok()) {
        disabled_ = true;
        return;
      }
      bytes_ = 0;
    }
    bytes_ += line.size();
    if (!file_->Append(line).ok() || !file_->Flush().ok()) {
      disabled_ = true;
      (void)file_->Close();  // Already failing; disable and move on.
      file_.reset();
    }
  }
}

}  // namespace unikv
