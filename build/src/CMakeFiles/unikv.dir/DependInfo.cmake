
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/base_lsm.cc" "src/CMakeFiles/unikv.dir/baseline/base_lsm.cc.o" "gcc" "src/CMakeFiles/unikv.dir/baseline/base_lsm.cc.o.d"
  "/root/repo/src/baseline/hashlog_db.cc" "src/CMakeFiles/unikv.dir/baseline/hashlog_db.cc.o" "gcc" "src/CMakeFiles/unikv.dir/baseline/hashlog_db.cc.o.d"
  "/root/repo/src/benchutil/driver.cc" "src/CMakeFiles/unikv.dir/benchutil/driver.cc.o" "gcc" "src/CMakeFiles/unikv.dir/benchutil/driver.cc.o.d"
  "/root/repo/src/benchutil/workload.cc" "src/CMakeFiles/unikv.dir/benchutil/workload.cc.o" "gcc" "src/CMakeFiles/unikv.dir/benchutil/workload.cc.o.d"
  "/root/repo/src/core/compaction.cc" "src/CMakeFiles/unikv.dir/core/compaction.cc.o" "gcc" "src/CMakeFiles/unikv.dir/core/compaction.cc.o.d"
  "/root/repo/src/core/db_iter.cc" "src/CMakeFiles/unikv.dir/core/db_iter.cc.o" "gcc" "src/CMakeFiles/unikv.dir/core/db_iter.cc.o.d"
  "/root/repo/src/core/filename.cc" "src/CMakeFiles/unikv.dir/core/filename.cc.o" "gcc" "src/CMakeFiles/unikv.dir/core/filename.cc.o.d"
  "/root/repo/src/core/iterator.cc" "src/CMakeFiles/unikv.dir/core/iterator.cc.o" "gcc" "src/CMakeFiles/unikv.dir/core/iterator.cc.o.d"
  "/root/repo/src/core/merging_iterator.cc" "src/CMakeFiles/unikv.dir/core/merging_iterator.cc.o" "gcc" "src/CMakeFiles/unikv.dir/core/merging_iterator.cc.o.d"
  "/root/repo/src/core/table_cache.cc" "src/CMakeFiles/unikv.dir/core/table_cache.cc.o" "gcc" "src/CMakeFiles/unikv.dir/core/table_cache.cc.o.d"
  "/root/repo/src/core/unikv_db.cc" "src/CMakeFiles/unikv.dir/core/unikv_db.cc.o" "gcc" "src/CMakeFiles/unikv.dir/core/unikv_db.cc.o.d"
  "/root/repo/src/core/version.cc" "src/CMakeFiles/unikv.dir/core/version.cc.o" "gcc" "src/CMakeFiles/unikv.dir/core/version.cc.o.d"
  "/root/repo/src/index/hash_index.cc" "src/CMakeFiles/unikv.dir/index/hash_index.cc.o" "gcc" "src/CMakeFiles/unikv.dir/index/hash_index.cc.o.d"
  "/root/repo/src/mem/memtable.cc" "src/CMakeFiles/unikv.dir/mem/memtable.cc.o" "gcc" "src/CMakeFiles/unikv.dir/mem/memtable.cc.o.d"
  "/root/repo/src/mem/write_batch.cc" "src/CMakeFiles/unikv.dir/mem/write_batch.cc.o" "gcc" "src/CMakeFiles/unikv.dir/mem/write_batch.cc.o.d"
  "/root/repo/src/table/block.cc" "src/CMakeFiles/unikv.dir/table/block.cc.o" "gcc" "src/CMakeFiles/unikv.dir/table/block.cc.o.d"
  "/root/repo/src/table/block_builder.cc" "src/CMakeFiles/unikv.dir/table/block_builder.cc.o" "gcc" "src/CMakeFiles/unikv.dir/table/block_builder.cc.o.d"
  "/root/repo/src/table/bloom.cc" "src/CMakeFiles/unikv.dir/table/bloom.cc.o" "gcc" "src/CMakeFiles/unikv.dir/table/bloom.cc.o.d"
  "/root/repo/src/table/cache.cc" "src/CMakeFiles/unikv.dir/table/cache.cc.o" "gcc" "src/CMakeFiles/unikv.dir/table/cache.cc.o.d"
  "/root/repo/src/table/format.cc" "src/CMakeFiles/unikv.dir/table/format.cc.o" "gcc" "src/CMakeFiles/unikv.dir/table/format.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/unikv.dir/table/table.cc.o" "gcc" "src/CMakeFiles/unikv.dir/table/table.cc.o.d"
  "/root/repo/src/table/table_builder.cc" "src/CMakeFiles/unikv.dir/table/table_builder.cc.o" "gcc" "src/CMakeFiles/unikv.dir/table/table_builder.cc.o.d"
  "/root/repo/src/util/arena.cc" "src/CMakeFiles/unikv.dir/util/arena.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/arena.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/CMakeFiles/unikv.dir/util/coding.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/coding.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/CMakeFiles/unikv.dir/util/crc32c.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/crc32c.cc.o.d"
  "/root/repo/src/util/env.cc" "src/CMakeFiles/unikv.dir/util/env.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/env.cc.o.d"
  "/root/repo/src/util/env_mem.cc" "src/CMakeFiles/unikv.dir/util/env_mem.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/env_mem.cc.o.d"
  "/root/repo/src/util/env_posix.cc" "src/CMakeFiles/unikv.dir/util/env_posix.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/env_posix.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/unikv.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/hash.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/unikv.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/unikv.dir/util/status.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/unikv.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/unikv.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/vlog/value_log.cc" "src/CMakeFiles/unikv.dir/vlog/value_log.cc.o" "gcc" "src/CMakeFiles/unikv.dir/vlog/value_log.cc.o.d"
  "/root/repo/src/wal/log_reader.cc" "src/CMakeFiles/unikv.dir/wal/log_reader.cc.o" "gcc" "src/CMakeFiles/unikv.dir/wal/log_reader.cc.o.d"
  "/root/repo/src/wal/log_writer.cc" "src/CMakeFiles/unikv.dir/wal/log_writer.cc.o" "gcc" "src/CMakeFiles/unikv.dir/wal/log_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
