// Tests for the structured event logger: standalone JSON-line behavior,
// and end-to-end coverage that UniKV background jobs (flush, merge, GC)
// each append one well-formed JSON event with a measured duration to
// <dbname>/EVENTS.

#include "util/event_logger.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/db.h"
#include "test_util.h"

namespace unikv {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return lines;
  std::string current;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(c));
    }
  }
  if (!current.empty()) lines.push_back(current);
  std::fclose(f);
  return lines;
}

TEST(EventLoggerTest, WritesOneJsonObjectPerLine) {
  std::string dir = test::NewTestDir("event_logger");
  EventLogger logger(Env::Default(), dir);

  for (int i = 0; i < 3; i++) {
    JsonBuilder ev;
    ev.AddUint("round", i);
    ev.AddString("note", "hello \"world\"\n");
    logger.Log("unit_test", &ev);
  }
  EXPECT_FALSE(logger.disabled());

  std::vector<std::string> lines =
      ReadLines(dir + "/" + EventLogger::kFileName);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(test::IsValidJson(line)) << line;
    EXPECT_NE(line.find("\"event\":\"unit_test\""), std::string::npos);
    EXPECT_NE(line.find("\"ts_micros\":"), std::string::npos);
  }
  EXPECT_NE(lines[2].find("\"round\":2"), std::string::npos);
}

TEST(EventLoggerTest, AppendsAcrossLoggerInstances) {
  std::string dir = test::NewTestDir("event_logger_append");
  {
    EventLogger logger(Env::Default(), dir);
    JsonBuilder ev;
    logger.Log("first", &ev);
  }
  {
    EventLogger logger(Env::Default(), dir);
    JsonBuilder ev;
    logger.Log("second", &ev);
  }
  std::vector<std::string> lines =
      ReadLines(dir + "/" + EventLogger::kFileName);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("first"), std::string::npos);
  EXPECT_NE(lines[1].find("second"), std::string::npos);
}

TEST(EventLoggerTest, DisabledOnUnwritableDir) {
  // A directory that cannot be created (parent missing).
  EventLogger logger(Env::Default(),
                     "/nonexistent-unikv-root/sub/dir");
  JsonBuilder ev;
  logger.Log("ignored", &ev);
  EXPECT_TRUE(logger.disabled());
  // Further logging is a silent no-op, not a crash.
  JsonBuilder ev2;
  logger.Log("ignored2", &ev2);
}

TEST(EventLoggerTest, RotatesAtSizeCap) {
  std::string dir = test::NewTestDir("event_logger_rotate");
  constexpr uint64_t kCap = 512;
  EventLogger logger(Env::Default(), dir, kCap);

  // Each line is ~100 bytes after padding, so the cap fits ~5 of them and
  // 50 events force many rotations.
  const std::string pad(60, 'x');
  const int kEvents = 50;
  for (int i = 0; i < kEvents; i++) {
    JsonBuilder ev;
    ev.AddUint("round", i);
    ev.AddString("pad", pad);
    logger.Log("rotate_test", &ev);
  }
  EXPECT_FALSE(logger.disabled());

  Env* env = Env::Default();
  const std::string cur_path = dir + "/" + EventLogger::kFileName;
  const std::string old_path = dir + "/" + EventLogger::kOldFileName;
  ASSERT_TRUE(env->FileExists(cur_path));
  ASSERT_TRUE(env->FileExists(old_path));

  uint64_t cur_size = 0;
  ASSERT_TRUE(env->GetFileSize(cur_path, &cur_size).ok());
  EXPECT_LE(cur_size, kCap);

  // Both generations hold well-formed JSON lines, and together they cover
  // a contiguous tail of the rounds: EVENTS.old ends exactly where EVENTS
  // begins, and EVENTS ends with the newest round.
  std::vector<std::string> old_lines = ReadLines(old_path);
  std::vector<std::string> cur_lines = ReadLines(cur_path);
  ASSERT_FALSE(old_lines.empty());
  ASSERT_FALSE(cur_lines.empty());
  for (const std::string& line : old_lines) {
    EXPECT_TRUE(test::IsValidJson(line)) << line;
  }
  for (const std::string& line : cur_lines) {
    EXPECT_TRUE(test::IsValidJson(line)) << line;
  }
  auto round_of = [](const std::string& line) {
    size_t pos = line.find("\"round\":");
    EXPECT_NE(pos, std::string::npos) << line;
    return std::stoi(line.substr(pos + 8));
  };
  EXPECT_EQ(round_of(cur_lines.back()), kEvents - 1);
  EXPECT_EQ(round_of(cur_lines.front()), round_of(old_lines.back()) + 1);
  int prev = round_of(old_lines.front());
  for (size_t i = 1; i < old_lines.size(); i++) {
    EXPECT_EQ(round_of(old_lines[i]), prev + 1);
    prev = round_of(old_lines[i]);
  }
}

TEST(EventLoggerTest, DbBackgroundJobsEmitEvents) {
  std::string dir = test::NewTestDir("event_logger_db");
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.sorted_table_size = 64 * 1024;
  opt.gc_garbage_threshold = 64 * 1024;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(opt, dir, &raw).ok());
  std::unique_ptr<DB> db(raw);

  // Write enough (with overwrites, so merges create vlog garbage and GC
  // has work) to force flushes and merges, then drain everything.
  const int kKeys = 2000;
  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < kKeys; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), test::TestKey(i),
                          test::TestValue(i ^ round, 256))
                      .ok());
    }
  }
  ASSERT_TRUE(db->CompactAll().ok());

  std::vector<std::string> lines =
      ReadLines(dir + "/" + EventLogger::kFileName);
  ASSERT_FALSE(lines.empty());

  int flushes = 0, merges = 0;
  for (const std::string& line : lines) {
    EXPECT_TRUE(test::IsValidJson(line)) << line;
    EXPECT_NE(line.find("\"duration_micros\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"ts_micros\":"), std::string::npos) << line;
    if (line.find("\"event\":\"flush\"") != std::string::npos) flushes++;
    if (line.find("\"event\":\"merge\"") != std::string::npos) merges++;
  }
  EXPECT_GT(flushes, 0);
  EXPECT_GT(merges, 0);

  // The event counts match what db.stats reports: one line per job.
  std::string stats;
  ASSERT_TRUE(db->GetProperty("db.stats", &stats));
  EXPECT_NE(stats.find("flushes=" + std::to_string(flushes)),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find(" merges=" + std::to_string(merges)),
            std::string::npos)
      << stats;

  // EVENTS must survive RemoveObsoleteFiles (it is not a tracked file
  // type) and reopen.
  db.reset();
  ASSERT_TRUE(DB::Open(opt, dir, &raw).ok());
  db.reset(raw);
  EXPECT_TRUE(Env::Default()->FileExists(dir + "/" +
                                         EventLogger::kFileName));
}

}  // namespace
}  // namespace unikv
