// Tests for the baseline engines: the LevelDB-style leveled LSM, the
// tiered LSM, and the SkimpyStash-style hash-log store. Each is checked
// against an in-memory model under the same mixed workload.

#include "baseline/baselines.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "test_util.h"
#include "util/env.h"
#include "util/random.h"

namespace unikv {
namespace baseline {
namespace {

Options SmallOptions() {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.sorted_table_size = 32 * 1024;
  opt.max_bytes_for_level_base = 128 * 1024;
  opt.l0_compaction_trigger = 3;
  opt.tiered_runs_per_level = 3;
  return opt;
}

using OpenFn = Status (*)(const Options&, const std::string&, DB**);

class LsmBaselineTest : public testing::TestWithParam<int> {
 protected:
  OpenFn Opener() const {
    return GetParam() == 0 ? &OpenLeveledDB : &OpenTieredDB;
  }
  std::string Name() const {
    return GetParam() == 0 ? "leveled" : "tiered";
  }
};

TEST_P(LsmBaselineTest, PutGetDeleteAcrossCompactions) {
  Options opt = SmallOptions();
  std::string dir = test::NewTestDir("baseline_" + Name());
  DB* raw = nullptr;
  ASSERT_TRUE(Opener()(opt, dir, &raw).ok());
  std::unique_ptr<DB> db(raw);

  std::map<std::string, std::string> model;
  Random rnd(42 + GetParam());
  for (int i = 0; i < 4000; i++) {
    std::string key = test::TestKey(rnd.Uniform(600));
    if (rnd.OneIn(5)) {
      model.erase(key);
      ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
    } else {
      std::string value = test::TestValue(i, 64 + rnd.Uniform(128));
      model[key] = value;
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    }
  }
  ASSERT_TRUE(db->FlushMemTable().ok());

  for (int i = 0; i < 600; i++) {
    std::string key = test::TestKey(i);
    std::string value;
    Status s = db->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(s.ok()) << key << ": " << s.ToString();
      EXPECT_EQ(it->second, value) << key;
    }
  }

  // Iterator yields exactly the model, in order.
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  auto mit = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(mit->first, iter->key().ToString());
    EXPECT_EQ(mit->second, iter->value().ToString());
  }
  EXPECT_EQ(mit, model.end());
  iter.reset();

  // Reopen and spot check durability.
  db.reset();
  ASSERT_TRUE(Opener()(opt, dir, &raw).ok());
  db.reset(raw);
  for (int i = 0; i < 600; i += 7) {
    std::string key = test::TestKey(i);
    std::string value;
    Status s = db->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(s.ok()) << key;
      EXPECT_EQ(it->second, value) << key;
    }
  }
}

TEST_P(LsmBaselineTest, CompactAllConsolidates) {
  Options opt = SmallOptions();
  std::string dir = test::NewTestDir("baseline_compactall_" + Name());
  DB* raw = nullptr;
  ASSERT_TRUE(Opener()(opt, dir, &raw).ok());
  std::unique_ptr<DB> db(raw);
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), test::TestKey(i), test::TestValue(i)).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  std::string v;
  ASSERT_TRUE(db->GetProperty("db.sstables", &v));
  for (int i = 0; i < 2000; i += 13) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i), value);
  }
}

TEST_P(LsmBaselineTest, StatsExposed) {
  Options opt = SmallOptions();
  std::string dir = test::NewTestDir("baseline_stats_" + Name());
  DB* raw = nullptr;
  ASSERT_TRUE(Opener()(opt, dir, &raw).ok());
  std::unique_ptr<DB> db(raw);
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), test::TestKey(i), test::TestValue(i)).ok());
  }
  std::string v;
  EXPECT_TRUE(db->GetProperty("db.stats", &v));
  EXPECT_NE(v.find("compactions="), std::string::npos);
  EXPECT_TRUE(db->GetProperty("db.num-files", &v));
  EXPECT_GT(std::stoi(v), 0);
}

// An Env whose directory listing fails, as a flaky disk's would.
// InstrumentedEnv already forwards everything else to the base Env.
class FailingListEnv : public InstrumentedEnv {
 public:
  explicit FailingListEnv(Env* base) : InstrumentedEnv(base) {}
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    return Status::IOError(dir, "injected listing failure");
  }
};

// Regression: Recover() ignored the GetChildren status, so a listing
// failure looked like an empty directory and recovery silently skipped
// every WAL — acknowledged writes vanished without any error. Open must
// surface the listing failure instead.
TEST_P(LsmBaselineTest, OpenFailsWhenDirListingFails) {
  Options opt = SmallOptions();
  std::string dir = test::NewTestDir("baseline_lsfail_" + Name());
  DB* raw = nullptr;
  ASSERT_TRUE(Opener()(opt, dir, &raw).ok());
  std::unique_ptr<DB> db(raw);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), test::TestKey(i), test::TestValue(i)).ok());
  }
  db.reset();  // WALs (and possibly tables) now on disk.

  FailingListEnv bad_env(Env::Default());
  Options bad = opt;
  bad.env = &bad_env;
  raw = nullptr;
  Status s = Opener()(bad, dir, &raw);
  EXPECT_FALSE(s.ok()) << "open must not silently skip WAL replay";
  EXPECT_EQ(raw, nullptr);

  // The data is still there once the listing works again.
  ASSERT_TRUE(Opener()(opt, dir, &raw).ok());
  db.reset(raw);
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), test::TestKey(7), &value).ok());
  EXPECT_EQ(test::TestValue(7), value);
}

INSTANTIATE_TEST_SUITE_P(BothStyles, LsmBaselineTest, testing::Range(0, 2));

TEST(HashLogDbTest, PutGetDelete) {
  Options opt;
  std::string dir = test::NewTestDir("hashlog");
  HashLogConfig config;
  config.num_buckets = 128;  // Small so chains form.
  DB* raw = nullptr;
  ASSERT_TRUE(OpenHashLogDB(opt, config, dir, &raw).ok());
  std::unique_ptr<DB> db(raw);

  std::map<std::string, std::string> model;
  Random rnd(7);
  for (int i = 0; i < 2000; i++) {
    std::string key = test::TestKey(rnd.Uniform(300));
    if (rnd.OneIn(6)) {
      model.erase(key);
      ASSERT_TRUE(db->Delete(WriteOptions(), key).ok());
    } else {
      std::string value = test::TestValue(i);
      model[key] = value;
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
    }
  }
  for (int i = 0; i < 300; i++) {
    std::string key = test::TestKey(i);
    std::string value;
    Status s = db->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(s.ok()) << key;
      EXPECT_EQ(it->second, value);
    }
  }

  // No ordered scans.
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  EXPECT_FALSE(iter->status().ok());
  iter.reset();

  // Recovery rebuilds the directory from the log.
  ASSERT_TRUE(db->FlushMemTable().ok());
  db.reset();
  ASSERT_TRUE(OpenHashLogDB(opt, config, dir, &raw).ok());
  db.reset(raw);
  for (int i = 0; i < 300; i += 5) {
    std::string key = test::TestKey(i);
    std::string value;
    Status s = db->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
      EXPECT_EQ(it->second, value);
    }
  }
}

TEST(HashLogDbTest, ChainHopsGrowWithLoad) {
  Options opt;
  std::string dir = test::NewTestDir("hashlog_chains");
  HashLogConfig config;
  config.num_buckets = 16;
  DB* raw = nullptr;
  ASSERT_TRUE(OpenHashLogDB(opt, config, dir, &raw).ok());
  std::unique_ptr<DB> db(raw);
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 16))
            .ok());
  }
  std::string value;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Get(ReadOptions(), test::TestKey(i), &value).ok());
  }
  std::string stats;
  ASSERT_TRUE(db->GetProperty("db.stats", &stats));
  // With 1000 keys over 16 buckets, average chain walk is large.
  EXPECT_NE(stats.find("chain_hops="), std::string::npos);
}

// Regression: chain_hops_ was a plain uint64_t bumped during the
// lock-free chain walk (a data race between concurrent readers), and
// GetProperty read records_/offset_ without the directory mutex. Both
// now go through atomics / a locked snapshot; this test runs the racing
// shape — concurrent readers, a writer, and a stats poller — so a
// sanitizer build flags any regression, and asserts the stats snapshot
// stays coherent (records= only ever grows: appends never remove
// records, so a torn or unlocked read shows up as a backwards step).
TEST(HashLogDbTest, ConcurrentGetsAndStatsSnapshot) {
  Options opt;
  std::string dir = test::NewTestDir("hashlog_race");
  HashLogConfig config;
  config.num_buckets = 16;  // Long chains: readers hop while racing.
  DB* raw = nullptr;
  ASSERT_TRUE(OpenHashLogDB(opt, config, dir, &raw).ok());
  std::unique_ptr<DB> db(raw);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 16))
            .ok());
  }

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 200; i < 1200 && failures.load() == 0; i++) {
      if (!db->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 16))
               .ok()) {
        failures.fetch_add(1);
      }
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; t++) {
    readers.emplace_back([&] {
      std::string value;
      while (!done.load(std::memory_order_acquire)) {
        for (int i = 0; i < 200; i++) {
          if (!db->Get(ReadOptions(), test::TestKey(i), &value).ok()) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  uint64_t last_records = 0;
  while (!done.load(std::memory_order_acquire)) {
    std::string stats;
    ASSERT_TRUE(db->GetProperty("db.stats", &stats));
    const size_t pos = stats.find("records=");
    ASSERT_NE(pos, std::string::npos) << stats;
    const uint64_t records =
        std::strtoull(stats.c_str() + pos + 8, nullptr, 10);
    EXPECT_GE(records, last_records) << stats;
    last_records = records;
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_GE(last_records, 200u);
}

}  // namespace
}  // namespace baseline
}  // namespace unikv
