file(REMOVE_RECURSE
  "CMakeFiles/bench_load.dir/bench_load.cc.o"
  "CMakeFiles/bench_load.dir/bench_load.cc.o.d"
  "bench_load"
  "bench_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
