#include "table/table.h"

#include <string>

#include "table/block.h"
#include "table/bloom.h"
#include "table/cache.h"
#include "table/format.h"
#include "util/coding.h"
#include "util/env.h"
#include "util/perf_context.h"

namespace unikv {

struct Table::Rep {
  ~Rep() { delete index_block; }

  TableOptions options;
  Status status;
  std::unique_ptr<RandomAccessFile> file;
  uint64_t cache_id = 0;
  Cache* block_cache = nullptr;

  std::string filter_data;  // Whole-table bloom filter (may be empty).
  Block* index_block = nullptr;
  InternalKeyComparator icmp;
};

Status Table::Open(const TableOptions& options,
                   std::unique_ptr<RandomAccessFile> file, uint64_t size,
                   Cache* block_cache, Table** table) {
  *table = nullptr;
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                        &footer_input, footer_space);
  if (!s.ok()) return s;

  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  // Read the index block.
  BlockContents index_block_contents;
  s = ReadBlock(file.get(), footer.index_handle(), &index_block_contents);
  if (!s.ok()) return s;

  Rep* rep = new Rep;
  rep->options = options;
  rep->file = std::move(file);
  rep->index_block = new Block(index_block_contents);
  rep->block_cache = block_cache;
  rep->cache_id = (block_cache != nullptr) ? block_cache->NewId() : 0;

  // Read the filter block, if any.
  if (footer.filter_handle().size() > 0) {
    BlockContents filter_contents;
    if (ReadBlock(rep->file.get(), footer.filter_handle(), &filter_contents)
            .ok()) {
      rep->filter_data.assign(filter_contents.data.data(),
                              filter_contents.data.size());
      if (filter_contents.heap_allocated) {
        delete[] filter_contents.data.data();
      }
    }
  }

  *table = new Table(rep);
  return Status::OK();
}

Table::~Table() { delete rep_; }

bool Table::KeyMayMatch(const Slice& user_key) const {
  if (rep_->filter_data.empty()) return true;
  PerfContext* perf = GetPerfContext();
  perf->bloom_checks++;
  const bool may = BloomFilterMayMatch(user_key, Slice(rep_->filter_data));
  if (!may) perf->bloom_negatives++;
  return may;
}

static void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  Block* block = reinterpret_cast<Block*>(value);
  delete block;
}

static void DeleteBlock(void* arg) { delete reinterpret_cast<Block*>(arg); }

static void ReleaseBlockHandle(Cache* cache, Cache::Handle* handle) {
  cache->Release(handle);
}

Status Table::FindBlock(const BlockHandle& handle, bool fill_cache,
                        Block** block, Cache::Handle** cache_handle) const {
  Rep* r = rep_;
  *block = nullptr;
  *cache_handle = nullptr;

  if (r->block_cache != nullptr) {
    char cache_key_buffer[16];
    EncodeFixed64(cache_key_buffer, r->cache_id);
    EncodeFixed64(cache_key_buffer + 8, handle.offset());
    Slice key(cache_key_buffer, sizeof(cache_key_buffer));
    *cache_handle = r->block_cache->Lookup(key);
    if (*cache_handle != nullptr) {
      GetPerfContext()->block_cache_hits++;
      *block = reinterpret_cast<Block*>(r->block_cache->Value(*cache_handle));
    } else {
      PerfContext* perf = GetPerfContext();
      perf->block_cache_misses++;
      perf->block_reads++;
      BlockContents contents;
      Status s = ReadBlock(r->file.get(), handle, &contents);
      if (!s.ok()) return s;
      *block = new Block(contents);
      if (contents.cachable && fill_cache) {
        *cache_handle = r->block_cache->Insert(key, *block, (*block)->size(),
                                               &DeleteCachedBlock);
      }
    }
  } else {
    GetPerfContext()->block_reads++;
    BlockContents contents;
    Status s = ReadBlock(r->file.get(), handle, &contents);
    if (!s.ok()) return s;
    *block = new Block(contents);
  }
  return Status::OK();
}

Iterator* Table::NewBlockIterator(const BlockHandle& handle,
                                  bool fill_cache) const {
  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;
  Status s = FindBlock(handle, fill_cache, &block, &cache_handle);
  if (!s.ok()) return NewErrorIterator(s);

  Iterator* iter = block->NewIterator(rep_->icmp);
  if (cache_handle != nullptr) {
    Cache* cache = rep_->block_cache;
    iter->RegisterCleanup(
        [cache, cache_handle] { ReleaseBlockHandle(cache, cache_handle); });
  } else {
    iter->RegisterCleanup([block] { DeleteBlock(block); });
  }
  return iter;
}

namespace {

/// Iterates over the entries of a table by driving an index-block iterator
/// whose values are handles to data blocks.
class TwoLevelIterator : public Iterator {
 public:
  TwoLevelIterator(const Table* table, Iterator* index_iter, bool fill_cache)
      : table_(table), index_iter_(index_iter), fill_cache_(fill_cache) {}

  ~TwoLevelIterator() override {
    delete index_iter_;
    delete data_iter_;
  }

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }
  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }
  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToLast();
    SkipEmptyDataBlocksBackward();
  }
  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }
  void Prev() override {
    assert(Valid());
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  Slice key() const override {
    assert(Valid());
    return data_iter_->key();
  }
  Slice value() const override {
    assert(Valid());
    return data_iter_->value();
  }
  Status status() const override {
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void SaveError(const Status& s) {
    if (status_.ok() && !s.ok()) status_ = s;
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToLast();
    }
  }

  void SetDataIterator(Iterator* data_iter) {
    if (data_iter_ != nullptr) SaveError(data_iter_->status());
    delete data_iter_;
    data_iter_ = data_iter;
  }

  void InitDataBlock();

  const Table* table_;
  Iterator* index_iter_;
  const bool fill_cache_;
  Iterator* data_iter_ = nullptr;
  std::string data_block_handle_;
  Status status_;
};

}  // namespace

Iterator* Table::BlockReader(void* arg, const Slice& index_value) {
  const Table* table = reinterpret_cast<const Table*>(arg);
  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewErrorIterator(s);
  return table->NewBlockIterator(handle);
}

void TwoLevelIterator::InitDataBlock() {
  if (!index_iter_->Valid()) {
    SetDataIterator(nullptr);
    return;
  }
  Slice handle_value = index_iter_->value();
  if (data_iter_ != nullptr &&
      handle_value.compare(Slice(data_block_handle_)) == 0) {
    // Already at the right block.
    return;
  }
  BlockHandle handle;
  Slice input = handle_value;
  Status s = handle.DecodeFrom(&input);
  Iterator* iter = s.ok() ? table_->NewBlockIterator(handle, fill_cache_)
                          : NewErrorIterator(s);
  data_block_handle_.assign(handle_value.data(), handle_value.size());
  SetDataIterator(iter);
}

Iterator* Table::NewIterator(bool fill_cache) const {
  return new TwoLevelIterator(
      this, rep_->index_block->NewIterator(rep_->icmp), fill_cache);
}

Iterator* Table::NewIndexIterator() const {
  return rep_->index_block->NewIterator(rep_->icmp);
}

void Table::Probe::Release() {
  if (cache_handle != nullptr) {
    cache->Release(cache_handle);
  } else {
    delete block;
  }
  table = nullptr;
  block = nullptr;
  cache_handle = nullptr;
  cache = nullptr;
  block_offset = ~0ull;
}

Status Table::Get(const Slice& internal_key, bool* found, std::string* key_out,
                  std::string* value_out, Probe* probe) const {
  *found = false;
  RecordAccess();
  // Iterator-free probe: both block searches run through Block::Find,
  // reusing *key_out as the shared-prefix working buffer for the index
  // search (its contents only matter on a data-block hit, which overwrites
  // it), so the whole probe does no heap allocation of its own.
  bool index_found = false;
  Slice index_value;
  Status s = rep_->index_block->Find(rep_->icmp, internal_key, &index_found,
                                     key_out, &index_value);
  if (s.ok() && index_found) {
    BlockHandle handle;
    s = handle.DecodeFrom(&index_value);
    if (s.ok()) {
      Block* block = nullptr;
      Cache::Handle* cache_handle = nullptr;
      const bool reused = probe != nullptr && probe->table == this &&
                          probe->block_offset == handle.offset();
      if (reused) {
        block = probe->block;
        if (rep_->block_cache != nullptr) {
          GetPerfContext()->block_cache_hits++;
        }
      } else {
        s = FindBlock(handle, true /*fill_cache*/, &block, &cache_handle);
      }
      if (s.ok()) {
        Slice value;
        s = block->Find(rep_->icmp, internal_key, found, key_out, &value);
        if (s.ok() && *found) {
          value_out->assign(value.data(), value.size());
        }
        if (!reused) {
          if (probe != nullptr) {
            // Keep the block pinned for the caller's next probe.
            probe->Release();
            probe->table = this;
            probe->block_offset = handle.offset();
            probe->block = block;
            probe->cache_handle = cache_handle;
            probe->cache = rep_->block_cache;
          } else if (cache_handle != nullptr) {
            rep_->block_cache->Release(cache_handle);
          } else {
            delete block;
          }
        }
      } else if (!reused) {
        if (cache_handle != nullptr) {
          rep_->block_cache->Release(cache_handle);
        } else {
          delete block;
        }
      }
    }
  }
  if (s.ok() && !rep_->filter_data.empty()) {
    // Callers consult KeyMayMatch before Get on filtered tables, so a
    // seek that lands past the sought user key means the filter lied.
    if (!*found ||
        ExtractUserKey(Slice(*key_out)) != ExtractUserKey(internal_key)) {
      GetPerfContext()->bloom_false_positives++;
    }
  }
  return s;
}

}  // namespace unikv
