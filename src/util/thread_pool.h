#ifndef UNIKV_UTIL_THREAD_POOL_H_
#define UNIKV_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace unikv {

/// A fixed-size pool of worker threads draining a FIFO task queue. UniKV
/// uses it for parallel value fetches during scans (the paper uses a
/// 32-thread pool) and for background GC reads.
///
/// The pool is shared by concurrent requests (foreground scans and
/// background GC batches at the same time), so callers that need to wait
/// for *their* tasks — and only theirs — schedule them through a
/// TaskGroup. WaitIdle() waits for the whole pool and is only appropriate
/// when the caller owns every outstanding task (tests, shutdown).
class ThreadPool {
 public:
  /// Completion latch for one caller's batch of tasks. Schedule tasks
  /// through Schedule(&group, ...) and then Wait(); tasks submitted by
  /// other callers (other groups, or groupless Schedule) do not delay the
  /// wait. A group is reusable after Wait() returns and must outlive every
  /// task scheduled through it.
  class TaskGroup {
   public:
    TaskGroup() : done_cv_(&mu_) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Blocks until every task scheduled through this group has finished.
    void Wait() EXCLUDES(mu_) {
      MutexLock l(&mu_);
      while (pending_ != 0) done_cv_.Wait();
    }

   private:
    friend class ThreadPool;

    void TaskStarted() EXCLUDES(mu_) {
      MutexLock l(&mu_);
      pending_++;
    }
    void TaskFinished() EXCLUDES(mu_) {
      MutexLock l(&mu_);
      if (--pending_ == 0) done_cv_.SignalAll();
    }

    Mutex mu_;
    CondVar done_cv_;
    int pending_ GUARDED_BY(mu_) = 0;
  };

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; wakes a sleeping worker.
  void Schedule(std::function<void()> task) EXCLUDES(mu_);

  /// Enqueues a task attributed to `group`; the group's Wait() returns
  /// only after the task finishes (or the pool destructor drains it).
  void Schedule(TaskGroup* group, std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until the queue is empty and all in-flight tasks finished.
  /// Waits on the *whole pool*: a concurrent caller's tasks delay this
  /// return. Prefer TaskGroup for per-request completion.
  void WaitIdle() EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> threads_;
  int active_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
};

}  // namespace unikv

#endif  // UNIKV_UTIL_THREAD_POOL_H_
