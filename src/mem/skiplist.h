#ifndef UNIKV_MEM_SKIPLIST_H_
#define UNIKV_MEM_SKIPLIST_H_

/// SkipList<Key, Comparator>
///
/// Thread-safety contract (same as LevelDB): writes require external
/// synchronization (one writer at a time). Reads require only that the
/// SkipList outlives the reader; readers proceed without locks thanks to
/// release/acquire publication of new nodes. Keys are never deleted until
/// the list itself is destroyed.

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "util/arena.h"
#include "util/random.h"

namespace unikv {

template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  /// Creates a new SkipList that uses "cmp" and allocates from "*arena".
  /// The arena must outlive the list.
  explicit SkipList(Comparator cmp, Arena* arena);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key; key must not already be present.
  void Insert(const Key& key);

  bool Contains(const Key& key) const;

  /// Iteration over the contents of a skip list.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }

    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }

    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

    void SeekToFirst() { node_ = list_->head_->Next(0); }

    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  enum { kMaxHeight = 12 };

  inline int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  Node* NewNode(const Key& key, int height);
  int RandomHeight();
  bool Equal(const Key& a, const Key& b) const {
    return (compare_(a, b) == 0);
  }

  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return (n != nullptr) && (compare_(n->key, key) < 0);
  }

  /// Returns the earliest node >= key; fills prev[0..max_height-1] with
  /// the predecessor pointers if prev != nullptr.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const;

  /// Returns the latest node < key (head_ if none).
  Node* FindLessThan(const Key& key) const;

  /// Returns the last node in the list (head_ if empty).
  Node* FindLast() const;

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;

  std::atomic<int> max_height_;  // Height of the entire list.
  Random rnd_;
};

template <typename Key, class Comparator>
struct SkipList<Key, Comparator>::Node {
  explicit Node(const Key& k) : key(k) {}

  Key const key;

  Node* Next(int n) {
    assert(n >= 0);
    // Acquire: observe fully initialized versions of the returned node.
    return next_[n].load(std::memory_order_acquire);
  }
  void SetNext(int n, Node* x) {
    assert(n >= 0);
    // Release: anyone who reads through this pointer observes a fully
    // initialized inserted node.
    next_[n].store(x, std::memory_order_release);
  }

  Node* NoBarrier_Next(int n) {
    assert(n >= 0);
    return next_[n].load(std::memory_order_relaxed);
  }
  void NoBarrier_SetNext(int n, Node* x) {
    assert(n >= 0);
    next_[n].store(x, std::memory_order_relaxed);
  }

 private:
  // Array of length equal to the node height; next_[0] is the lowest level.
  std::atomic<Node*> next_[1];
};

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node* SkipList<Key, Comparator>::NewNode(
    const Key& key, int height) {
  char* const node_memory = arena_->AllocateAligned(
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  return new (node_memory) Node(key);
}

template <typename Key, class Comparator>
int SkipList<Key, Comparator>::RandomHeight() {
  // Increase height with probability 1 in kBranching.
  static const unsigned int kBranching = 4;
  int height = 1;
  while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
    height++;
  }
  assert(height > 0);
  assert(height <= kMaxHeight);
  return height;
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindGreaterOrEqual(const Key& key,
                                              Node** prev) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (KeyIsAfterNode(key, next)) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) {
        return next;
      }
      level--;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLessThan(const Key& key) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    assert(x == head_ || compare_(x->key, key) < 0);
    Node* next = x->Next(level);
    if (next == nullptr || compare_(next->key, key) >= 0) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node* SkipList<Key, Comparator>::FindLast()
    const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next == nullptr) {
      if (level == 0) {
        return x;
      }
      level--;
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
SkipList<Key, Comparator>::SkipList(Comparator cmp, Arena* arena)
    : compare_(cmp),
      arena_(arena),
      head_(NewNode(Key() /* any key will do */, kMaxHeight)),
      max_height_(1),
      rnd_(0xdeadbeef) {
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::Insert(const Key& key) {
  Node* prev[kMaxHeight];
  Node* x = FindGreaterOrEqual(key, prev);

  // Our structure does not allow duplicate insertion.
  assert(x == nullptr || !Equal(key, x->key));
  (void)x;

  int height = RandomHeight();
  if (height > GetMaxHeight()) {
    for (int i = GetMaxHeight(); i < height; i++) {
      prev[i] = head_;
    }
    // A concurrent reader observing the new max_height_ before the new
    // node pointers will just descend from head_, which is harmless.
    max_height_.store(height, std::memory_order_relaxed);
  }

  x = NewNode(key, height);
  for (int i = 0; i < height; i++) {
    x->NoBarrier_SetNext(i, prev[i]->NoBarrier_Next(i));
    prev[i]->SetNext(i, x);
  }
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::Contains(const Key& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && Equal(key, x->key);
}

}  // namespace unikv

#endif  // UNIKV_MEM_SKIPLIST_H_
