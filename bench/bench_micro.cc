// Component micro-benchmarks (google-benchmark): the substrates whose
// costs underlie every macro experiment — hashing, CRC, varint coding,
// skiplist ops, the two-level hash index, block build/read, and bloom
// filter probes.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "index/hash_index.h"
#include "mem/memtable.h"
#include "mem/skiplist.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/bloom.h"
#include "util/arena.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/hash.h"
#include "util/random.h"

namespace unikv {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Hash64(benchmark::State& state) {
  std::string data(state.range(0), 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(data.data(), data.size(), 17));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Hash64)->Arg(16)->Arg(64)->Arg(1024);

void BM_VarintRoundTrip(benchmark::State& state) {
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    for (uint64_t v = 1; v < (1ull << 40); v <<= 4) {
      PutVarint64(&buf, v);
    }
    Slice input(buf);
    uint64_t out;
    while (GetVarint64(&input, &out)) {
      benchmark::DoNotOptimize(out);
    }
  }
}
BENCHMARK(BM_VarintRoundTrip);

void BM_SkipListInsert(benchmark::State& state) {
  struct Cmp {
    int operator()(uint64_t a, uint64_t b) const {
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  };
  Random rnd(42);
  for (auto _ : state) {
    state.PauseTiming();
    Arena arena;
    SkipList<uint64_t, Cmp> list(Cmp(), &arena);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); i++) {
      list.Insert((static_cast<uint64_t>(rnd.Next()) << 20) | i);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SkipListInsert)->Arg(10000);

void BM_SkipListLookup(benchmark::State& state) {
  struct Cmp {
    int operator()(uint64_t a, uint64_t b) const {
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  };
  Arena arena;
  SkipList<uint64_t, Cmp> list(Cmp(), &arena);
  const int n = state.range(0);
  for (int i = 0; i < n; i++) {
    list.Insert(static_cast<uint64_t>(i) * 2654435761u % (n * 16));
  }
  Random rnd(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        list.Contains(static_cast<uint64_t>(rnd.Next()) % (n * 16)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SkipListLookup)->Arg(100000);

void BM_HashIndexInsert(benchmark::State& state) {
  const int n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    HashIndex index(n);
    state.ResumeTiming();
    for (int i = 0; i < n; i++) {
      index.Insert(Key(i), static_cast<uint16_t>(i & 0xff));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashIndexInsert)->Arg(100000);

void BM_HashIndexLookup(benchmark::State& state) {
  const int n = 100000;
  HashIndex index(n);
  for (int i = 0; i < n; i++) {
    index.Insert(Key(i), static_cast<uint16_t>(i & 0xff));
  }
  Random rnd(9);
  std::vector<uint16_t> candidates;
  for (auto _ : state) {
    candidates.clear();
    index.Lookup(Key(rnd.Next() % n), &candidates);
    benchmark::DoNotOptimize(candidates.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashIndexLookup);

void BM_BlockBuildAndSeek(benchmark::State& state) {
  // Build one 4 KiB-ish block and binary-search it.
  BlockBuilder builder(16);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; i++) {
    std::string ikey;
    AppendInternalKey(&ikey, ParsedInternalKey(Key(i), 100, kTypeValue));
    keys.push_back(ikey);
    builder.Add(ikey, "value-payload-for-benchmarks");
  }
  Slice raw = builder.Finish();
  BlockContents contents{raw, false, false};
  Block block(contents);
  InternalKeyComparator icmp;
  Random rnd(11);
  for (auto _ : state) {
    std::unique_ptr<Iterator> iter(block.NewIterator(icmp));
    iter->Seek(keys[rnd.Next() % keys.size()]);
    benchmark::DoNotOptimize(iter->Valid());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockBuildAndSeek);

void BM_BloomBuild(benchmark::State& state) {
  const int n = state.range(0);
  for (auto _ : state) {
    BloomFilterBuilder bloom(10);
    for (int i = 0; i < n; i++) {
      bloom.AddKey(Key(i));
    }
    std::string out;
    bloom.Finish(&out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BloomBuild)->Arg(4096);

void BM_BloomProbe(benchmark::State& state) {
  BloomFilterBuilder bloom(10);
  const int n = 100000;
  for (int i = 0; i < n; i++) bloom.AddKey(Key(i));
  std::string filter;
  bloom.Finish(&filter);
  Random rnd(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BloomFilterMayMatch(Key(rnd.Next() % (2 * n)), filter));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe);

void BM_MemTableAdd(benchmark::State& state) {
  InternalKeyComparator icmp;
  std::string value(256, 'v');
  for (auto _ : state) {
    state.PauseTiming();
    MemTable* mem = new MemTable(icmp);
    mem->Ref();
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); i++) {
      mem->Add(i + 1, kTypeValue, Key(i), value);
    }
    state.PauseTiming();
    mem->Unref();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MemTableAdd)->Arg(10000);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator zipf(1000000, 0.99, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
}
BENCHMARK(BM_ZipfianNext);

}  // namespace
}  // namespace unikv

BENCHMARK_MAIN();
