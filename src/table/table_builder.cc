#include "table/table_builder.h"

#include <cassert>

#include "table/block_builder.h"
#include "table/bloom.h"
#include "table/format.h"
#include "util/crc32c.h"
#include "util/env.h"

namespace unikv {

struct TableBuilder::Rep {
  Rep(const TableOptions& opt, WritableFile* f)
      : options(opt),
        file(f),
        data_block(opt.block_restart_interval),
        index_block(1),
        bloom(opt.bloom_bits_per_key > 0
                  ? new BloomFilterBuilder(opt.bloom_bits_per_key)
                  : nullptr) {}

  ~Rep() { delete bloom; }

  TableOptions options;
  WritableFile* file;
  BlockBuilder data_block;
  BlockBuilder index_block;
  std::string last_key;
  bool closed = false;

  // Invariant: pending_index_entry is true only if data_block is empty.
  bool pending_index_entry = false;
  BlockHandle pending_handle;  // Handle of the block just finished.

  BloomFilterBuilder* bloom;
  InternalKeyComparator icmp;
  std::string handle_encoding;
};

TableBuilder::TableBuilder(const TableOptions& options, WritableFile* file)
    : rep_(new Rep(options, file)) {}

TableBuilder::~TableBuilder() {
  assert(rep_->closed);  // Finish() or Abandon() must have been called.
  delete rep_;
}

void TableBuilder::Add(const Slice& key, const Slice& value) {
  Rep* r = rep_;
  assert(!r->closed);
  if (!ok()) return;
  if (num_entries_ > 0) {
    assert(r->icmp.Compare(key, Slice(r->last_key)) > 0);
  }

  if (r->pending_index_entry) {
    assert(r->data_block.empty());
    r->handle_encoding.clear();
    r->pending_handle.EncodeTo(&r->handle_encoding);
    r->index_block.Add(r->last_key, Slice(r->handle_encoding));
    r->pending_index_entry = false;
  }

  if (r->bloom != nullptr) {
    r->bloom->AddKey(ExtractUserKey(key));
  }

  r->last_key.assign(key.data(), key.size());
  num_entries_++;
  r->data_block.Add(key, value);

  const size_t estimated_block_size = r->data_block.CurrentSizeEstimate();
  if (estimated_block_size >= r->options.block_size) {
    Flush();
  }
}

void TableBuilder::Flush() {
  Rep* r = rep_;
  assert(!r->closed);
  if (!ok()) return;
  if (r->data_block.empty()) return;
  assert(!r->pending_index_entry);
  WriteBlock(&r->data_block, &r->pending_handle);
  if (ok()) {
    r->pending_index_entry = true;
    status_ = r->file->Flush();
  }
}

void TableBuilder::WriteBlock(BlockBuilder* block, BlockHandle* handle) {
  assert(ok());
  Rep* r = rep_;
  Slice raw = block->Finish();

  handle->set_offset(offset_);
  handle->set_size(raw.size());
  status_ = r->file->Append(raw);
  if (status_.ok()) {
    char trailer[kBlockTrailerSize];
    trailer[0] = 0;  // No compression.
    uint32_t crc = crc32c::Value(raw.data(), raw.size());
    crc = crc32c::Extend(crc, trailer, 1);  // Extend to cover the type.
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    status_ = r->file->Append(Slice(trailer, kBlockTrailerSize));
    if (status_.ok()) {
      offset_ += raw.size() + kBlockTrailerSize;
    }
  }
  block->Reset();
}

Status TableBuilder::Finish() {
  Rep* r = rep_;
  Flush();
  assert(!r->closed);
  r->closed = true;

  BlockHandle filter_block_handle, index_block_handle;

  // Filter block (raw, no prefix compression needed).
  if (ok() && r->bloom != nullptr) {
    std::string filter_contents;
    r->bloom->Finish(&filter_contents);
    filter_block_handle.set_offset(offset_);
    filter_block_handle.set_size(filter_contents.size());
    status_ = r->file->Append(filter_contents);
    if (status_.ok()) {
      char trailer[kBlockTrailerSize];
      trailer[0] = 0;
      uint32_t crc = crc32c::Value(filter_contents.data(),
                                   filter_contents.size());
      crc = crc32c::Extend(crc, trailer, 1);
      EncodeFixed32(trailer + 1, crc32c::Mask(crc));
      status_ = r->file->Append(Slice(trailer, kBlockTrailerSize));
      if (status_.ok()) {
        offset_ += filter_contents.size() + kBlockTrailerSize;
      }
    }
  } else {
    filter_block_handle.set_offset(0);
    filter_block_handle.set_size(0);
  }

  // Index block.
  if (ok()) {
    if (r->pending_index_entry) {
      r->handle_encoding.clear();
      r->pending_handle.EncodeTo(&r->handle_encoding);
      r->index_block.Add(r->last_key, Slice(r->handle_encoding));
      r->pending_index_entry = false;
    }
    WriteBlock(&r->index_block, &index_block_handle);
  }

  // Footer.
  if (ok()) {
    Footer footer;
    footer.set_filter_handle(filter_block_handle);
    footer.set_index_handle(index_block_handle);
    std::string footer_encoding;
    footer.EncodeTo(&footer_encoding);
    status_ = r->file->Append(footer_encoding);
    if (status_.ok()) {
      offset_ += footer_encoding.size();
    }
  }
  return status_;
}

void TableBuilder::Abandon() {
  Rep* r = rep_;
  assert(!r->closed);
  r->closed = true;
}

}  // namespace unikv
