#include "util/arena.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/random.h"

namespace unikv {
namespace {

TEST(Arena, Empty) {
  Arena arena;
  EXPECT_EQ(0u, arena.MemoryUsage());
}

TEST(Arena, AllocatedBytesAreUsable) {
  Arena arena;
  char* p = arena.Allocate(100);
  memset(p, 0xab, 100);
  char* q = arena.Allocate(100);
  memset(q, 0xcd, 100);
  // The first allocation must remain intact.
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(static_cast<char>(0xab), p[i]);
  }
}

TEST(Arena, ManyRandomAllocations) {
  std::vector<std::pair<size_t, char*>> allocated;
  Arena arena;
  const int N = 100000;
  size_t bytes = 0;
  Random rnd(301);
  for (int i = 0; i < N; i++) {
    size_t s;
    if (i % (N / 10) == 0) {
      s = i;
    } else {
      s = rnd.OneIn(4000)
              ? rnd.Uniform(6000)
              : (rnd.OneIn(10) ? rnd.Uniform(100) : rnd.Uniform(20));
    }
    if (s == 0) {
      s = 1;  // Disallow size 0 allocations.
    }
    char* r;
    if (rnd.OneIn(10)) {
      r = arena.AllocateAligned(s);
    } else {
      r = arena.Allocate(s);
    }
    for (size_t b = 0; b < s; b++) {
      // Fill with a known pattern.
      r[b] = i % 256;
    }
    bytes += s;
    allocated.push_back(std::make_pair(s, r));
    ASSERT_GE(arena.MemoryUsage(), bytes);
    if (i > N / 10) {
      ASSERT_LE(arena.MemoryUsage(), bytes * 1.10);
    }
  }
  for (size_t i = 0; i < allocated.size(); i++) {
    size_t num_bytes = allocated[i].first;
    const char* p = allocated[i].second;
    for (size_t b = 0; b < num_bytes; b++) {
      // Check the "i"th allocation for the known bit pattern.
      ASSERT_EQ(static_cast<int>(p[b]) & 0xff, static_cast<int>(i % 256));
    }
  }
}

TEST(Arena, AlignedAllocationsAreAligned) {
  Arena arena;
  for (int i = 0; i < 100; i++) {
    arena.Allocate(1);  // Misalign the bump pointer.
    char* p = arena.AllocateAligned(8);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % 8);
  }
}

TEST(Arena, LargeAllocationsGetOwnBlocks) {
  Arena arena;
  char* small = arena.Allocate(16);
  char* big = arena.Allocate(100000);  // Own block.
  char* small2 = arena.Allocate(16);
  memset(big, 1, 100000);
  memset(small, 2, 16);
  memset(small2, 3, 16);
  EXPECT_EQ(1, big[50000]);
  EXPECT_EQ(2, small[0]);
  EXPECT_EQ(3, small2[0]);
}

}  // namespace
}  // namespace unikv
