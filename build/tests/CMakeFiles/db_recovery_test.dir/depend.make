# Empty dependencies file for db_recovery_test.
# This may be replaced when dependencies are built.
