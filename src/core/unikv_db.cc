#include "core/unikv_db.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "core/db_iter.h"
#include "core/filename.h"
#include "core/merging_iterator.h"
#include "table/cache.h"
#include "util/coding.h"
#include "util/env.h"
#include "wal/log_reader.h"

namespace unikv {

DB::~DB() = default;

// --------------------------------------------------------- engine metrics

EngineMetrics::EngineMetrics() {
  gets = registry.GetCounter("gets");
  memtable_hits = registry.GetCounter("memtable_hits");
  hash_index_lookups = registry.GetCounter("hash_index_lookups");
  hash_index_probes = registry.GetCounter("hash_index_probes");
  hash_index_candidates = registry.GetCounter("hash_index_candidates");
  bloom_checks = registry.GetCounter("bloom_checks");
  bloom_negatives = registry.GetCounter("bloom_negatives");
  bloom_false_positives = registry.GetCounter("bloom_false_positives");
  unsorted_tables_probed = registry.GetCounter("unsorted_tables_probed");
  sorted_seeks = registry.GetCounter("sorted_seeks");
  table_cache_hits = registry.GetCounter("table_cache_hits");
  table_cache_misses = registry.GetCounter("table_cache_misses");
  block_cache_hits = registry.GetCounter("block_cache_hits");
  block_cache_misses = registry.GetCounter("block_cache_misses");
  block_reads = registry.GetCounter("block_reads");
  vlog_reads = registry.GetCounter("vlog_reads");
  vlog_span_reads = registry.GetCounter("vlog_span_reads");
  vlog_read_bytes = registry.GetCounter("vlog_read_bytes");
  vlog_mmap_reads = registry.GetCounter("vlog_mmap_reads");
  multigets = registry.GetCounter("multigets");
  multiget_keys = registry.GetCounter("multiget_keys");
  multiget_coalesced_reads = registry.GetCounter("multiget_coalesced_reads");
  multiget_io_bytes_saved = registry.GetCounter("multiget_io_bytes_saved");
  writes = registry.GetCounter("writes");
  write_bytes = registry.GetCounter("write_bytes");
  write_stalls = registry.GetCounter("write_stalls");
  stall_micros = registry.GetCounter("stall_micros");
  wal_micros_total = registry.GetCounter("wal_micros_total");
  memtable_micros_total = registry.GetCounter("memtable_micros_total");
  scans = registry.GetCounter("scans");
  scan_entries = registry.GetCounter("scan_entries");
  anchor_view_builds = registry.GetCounter("anchor_view_builds");
  scan_anchor_hits = registry.GetCounter("scan_anchor_hits");
  anchor_view_bytes = registry.GetGauge("anchor_view_bytes");

  get_latency = registry.GetHistogram("get_latency_us");
  write_latency = registry.GetHistogram("write_latency_us");
  scan_latency = registry.GetHistogram("scan_latency_us");
  multiget_latency = registry.GetHistogram("multiget_latency_us");
  multiget_keys_per_batch = registry.GetHistogram("multiget_keys_per_batch");
  flush_latency = registry.GetHistogram("flush_latency_us");
  merge_latency = registry.GetHistogram("merge_latency_us");
  scan_merge_latency = registry.GetHistogram("scan_merge_latency_us");
  gc_latency = registry.GetHistogram("gc_latency_us");
  split_latency = registry.GetHistogram("split_latency_us");
}

void EngineMetrics::FoldPerf(const PerfContext& d) {
  if (d.gets) gets->Add(d.gets);
  if (d.memtable_hits) memtable_hits->Add(d.memtable_hits);
  if (d.hash_index_lookups) hash_index_lookups->Add(d.hash_index_lookups);
  if (d.hash_index_probes) hash_index_probes->Add(d.hash_index_probes);
  if (d.hash_index_candidates) {
    hash_index_candidates->Add(d.hash_index_candidates);
  }
  if (d.bloom_checks) bloom_checks->Add(d.bloom_checks);
  if (d.bloom_negatives) bloom_negatives->Add(d.bloom_negatives);
  if (d.bloom_false_positives) {
    bloom_false_positives->Add(d.bloom_false_positives);
  }
  if (d.unsorted_tables_probed) {
    unsorted_tables_probed->Add(d.unsorted_tables_probed);
  }
  if (d.sorted_seeks) sorted_seeks->Add(d.sorted_seeks);
  if (d.table_cache_hits) table_cache_hits->Add(d.table_cache_hits);
  if (d.table_cache_misses) table_cache_misses->Add(d.table_cache_misses);
  if (d.block_cache_hits) block_cache_hits->Add(d.block_cache_hits);
  if (d.block_cache_misses) block_cache_misses->Add(d.block_cache_misses);
  if (d.block_reads) block_reads->Add(d.block_reads);
  if (d.writes) writes->Add(d.writes);
  if (d.write_stall_micros) stall_micros->Add(d.write_stall_micros);
  if (d.write_wal_micros) wal_micros_total->Add(d.write_wal_micros);
  if (d.write_memtable_micros) {
    memtable_micros_total->Add(d.write_memtable_micros);
  }
  if (d.scans) scans->Add(d.scans);
  if (d.multigets) multigets->Add(d.multigets);
  if (d.multiget_keys) multiget_keys->Add(d.multiget_keys);
  if (d.multiget_coalesced_reads) {
    multiget_coalesced_reads->Add(d.multiget_coalesced_reads);
  }
  if (d.multiget_io_bytes_saved) {
    multiget_io_bytes_saved->Add(d.multiget_io_bytes_saved);
  }
}

namespace {

// Per-thread registry-folding window (see PerfEndOp in unikv_db.h).
// `owner` is compared by address only and never dereferenced: when the
// thread moves on to a different DB the old EngineMetrics may be gone, so
// the pending window is dropped rather than folded.
struct PerfFoldState {
  const void* owner = nullptr;  // &metrics_ of the DB the window belongs to.
  PerfContext last;             // Context snapshot at the last fold.
  uint32_t ops = 0;             // Foreground ops since the last fold.
  uint32_t sample_tick = 0;     // Latency-clock sampling phase for Get.
};
constinit thread_local PerfFoldState tls_fold;

constexpr uint32_t kPerfFoldBatch = 64;
constexpr uint32_t kPerfSampleEvery = 32;

}  // namespace

void UniKVDB::PerfEndOp(PerfContext* perf) {
  PerfFoldState& fs = tls_fold;
  if (fs.owner != &metrics_ || fs.last.resets != perf->resets) {
    // The pending window belongs to another DB (whose registry may be
    // gone) or was invalidated by a Reset(); abandon it and start a fresh
    // window here. The op that just finished is dropped from the
    // registry, matching the at-most-one-batch-lag contract.
    fs.owner = &metrics_;
    fs.last = *perf;
    fs.ops = 0;
    return;
  }
  if (++fs.ops >= kPerfFoldBatch) {
    metrics_.FoldPerf(perf->DeltaSince(fs.last));
    fs.last = *perf;
    fs.ops = 0;
  }
}

void UniKVDB::FlushPerfPending() {
  PerfFoldState& fs = tls_fold;
  PerfContext* perf = GetPerfContext();
  if (fs.owner != &metrics_ || fs.last.resets != perf->resets) return;
  metrics_.FoldPerf(perf->DeltaSince(fs.last));
  fs.last = *perf;
  fs.ops = 0;
}

Status DB::Scan(const ReadOptions& options, const Slice& start, int count,
                std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // Non-positive counts are an empty scan, not an error. (Callers that
  // sized buffers from `count` have been bitten by a negative int turning
  // into a huge size_t.)
  if (count <= 0) return Status::OK();
  std::unique_ptr<Iterator> iter(NewIterator(options));
  for (iter->Seek(start); iter->Valid() && count > 0; iter->Next(), count--) {
    out->emplace_back(iter->key().ToString(), iter->value().ToString());
  }
  return iter->status();
}

Status DB::MultiGet(const ReadOptions& options, const std::vector<Slice>& keys,
                    std::vector<std::string>* values,
                    std::vector<Status>* statuses) {
  values->clear();
  values->resize(keys.size());
  statuses->assign(keys.size(), Status::OK());
  Status first_err;
  for (size_t i = 0; i < keys.size(); i++) {
    Status s = Get(options, keys[i], &(*values)[i]);
    (*statuses)[i] = s;
    if (!s.ok() && !s.IsNotFound() && first_err.ok()) first_err = s;
  }
  return first_err;
}

Status DestroyDB(const Options& options, const std::string& name) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  return RemoveDirRecursively(env, name);
}

// ------------------------------------------------------------- lifecycle

std::atomic<bool> UniKVDB::TEST_gc_unsafe_delete_before_install_{false};

UniKVDB::UniKVDB(const Options& options, const std::string& dbname)
    : options_(options),
      dbname_(dbname),
      sync_cv_(&sync_mu_),
      bg_cv_(&mu_),
      bg_work_cv_(&mu_),
      sampler_cv_(&mu_) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  options_.env = env_;
  options_.write_shards = std::clamp(options_.write_shards, 1, 64);
  shards_.reserve(options_.write_shards);
  for (int i = 0; i < options_.write_shards; i++) {
    shards_.push_back(std::make_unique<WriteShard>());
  }
  if (options_.block_cache_size > 0) {
    block_cache_.reset(NewLRUCache(options_.block_cache_size));
  }
  table_cache_ = std::make_unique<TableCache>(
      env_, dbname_, options_.table_options, block_cache_.get());
  vlog_cache_ = std::make_unique<ValueLogCache>(env_, dbname_);
  vlog_cache_->SetCounters(metrics_.vlog_reads, metrics_.vlog_span_reads,
                           metrics_.vlog_read_bytes,
                           metrics_.vlog_mmap_reads);
  event_log_ = std::make_unique<EventLogger>(env_, dbname_,
                                             options_.max_event_log_bytes);
  fetch_pool_ = std::make_unique<ThreadPool>(options_.value_fetch_threads);
  versions_ = std::make_unique<VersionSet>(env_, dbname_);
}

UniKVDB::~UniKVDB() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
    bg_work_cv_.SignalAll();
    sampler_cv_.SignalAll();
    while (bg_jobs_running_ != 0) bg_cv_.Wait();
  }
  for (std::thread& t : bg_threads_) {
    if (t.joinable()) t.join();
  }
  if (sampler_thread_.joinable()) sampler_thread_.join();
  for (auto& s : shards_) {
    // Workers are joined; this thread is the last owner, but Unref frees
    // the memtable, so hold the shard capability for the annotations.
    MutexLock shard_lock(&s->mu);
    if (s->mem != nullptr) s->mem->Unref();
    if (s->imm != nullptr) s->imm->Unref();
  }
  if (db_lock_ != nullptr) {
    // Destructor: nowhere to report. The lock dies with the process
    // either way; the next Open re-locks from scratch.
    (void)env_->UnlockFile(db_lock_);
    db_lock_ = nullptr;
  }
}

Status DB::Open(const Options& options, const std::string& name, DB** dbptr) {
  return UniKVDB::Open(options, name, dbptr);
}

Status UniKVDB::Open(const Options& options, const std::string& name,
                     DB** dbptr) {
  *dbptr = nullptr;
  auto db = std::make_unique<UniKVDB>(options, name);
  Status s = db->Recover();
  if (!s.ok()) {
    // The destructor joins the (not yet started) background machinery.
    return s;
  }
  const int workers = std::clamp(db->options_.background_threads, 1, 16);
  db->bg_threads_.reserve(workers);
  for (int i = 0; i < workers; i++) {
    db->bg_threads_.emplace_back(
        [raw = db.get()] { raw->BackgroundWorker(); });
  }
  if (db->options_.stats_sample_interval_ms > 0) {
    db->sampler_thread_ =
        std::thread([raw = db.get()] { raw->StatsSamplerThread(); });
  }
  *dbptr = db.release();
  return Status::OK();
}

Status UniKVDB::Recover() {
  // Claim the directory before touching any state in it. Two instances
  // sweeping the same directory delete each other's live tables — seen
  // in practice when two test binaries shared a scratch dir — so a
  // second Open fails fast here instead.
  // Usually exists already; if creation truly failed, LockFile fails
  // next with the actual errno.
  (void)env_->CreateDir(dbname_);
  Status s = env_->LockFile(LockFileName(dbname_), &db_lock_);
  if (!s.ok()) return s;
  s = versions_->Recover(options_.create_if_missing, options_.error_if_exists);
  if (!s.ok()) return s;

  // Collect WAL files newer than the manifest's log number: per-shard
  // .swal files plus legacy single-queue .wal files (a DB written before
  // sharding, or with a different shard count, recovers the same way —
  // the shard mapping is not persisted).
  std::vector<std::string> children;
  s = env_->GetChildren(dbname_, &children);
  if (!s.ok()) return s;
  std::vector<uint64_t> wal_numbers;
  std::vector<std::string> wal_files;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) &&
        (type == FileType::kWalFile || type == FileType::kShardWalFile) &&
        number >= versions_->LogNumber()) {
      wal_numbers.push_back(number);
      wal_files.push_back(dbname_ + "/" + child);
    }
  }

  // Gap-cut replay (DESIGN.md §10): batches from all WALs are merged by
  // sequence number and replayed contiguously from the manifest floor;
  // the run stops at the first missing sequence. A gap can only arise
  // from batches that were appended but never made durable, and the
  // write path never acks a sync write (nor advances the manifest floor)
  // before syncing *every* shard's WAL — so everything beyond a gap is
  // unacked by construction and safe to drop.
  std::vector<WalBatch> batches;
  for (const std::string& fname : wal_files) {
    s = CollectWalBatches(fname, &batches);
    if (!s.ok()) return s;
  }
  std::sort(batches.begin(), batches.end(),
            [](const WalBatch& a, const WalBatch& b) { return a.seq < b.seq; });

  // The manifest floor F promises every sequence <= F is durable — in a
  // table or in a surviving WAL — but not *which*: a flush advances F to
  // the sync-all ceiling, which covers records living only in other
  // shards' current WALs. So batches at or below F are replayed
  // unconditionally (re-flushing data that also sits in a table is a
  // harmless duplicate at an identical sequence); holes below F are
  // expected, they are the retired WALs. Above F contiguity is required.
  MemTable* recovered = new MemTable(icmp_);
  recovered->Ref();
  const SequenceNumber floor = versions_->LastSequence();
  SequenceNumber next = floor + 1;
  WriteBatch batch;
  for (const WalBatch& wb : batches) {
    const SequenceNumber last = wb.seq + wb.count - 1;
    if (last > floor && wb.seq > next) break;  // Gap: never acked beyond it.
    batch.SetContents(wb.contents);
    s = batch.InsertInto(recovered);
    if (!s.ok()) {
      recovered->Unref();
      return s;
    }
    if (last >= next) next = last + 1;
  }
  const SequenceNumber max_seq = next - 1;
  versions_->SetLastSequence(max_seq);
  seq_alloc_.store(max_seq, std::memory_order_relaxed);
  visible_seq_.store(max_seq, std::memory_order_relaxed);

  // Flush recovered entries so the old WALs can be retired, then start a
  // fresh WAL per shard.
  VersionEdit edit;
  if (recovered->NumEntries() > 0) {
    VersionPtr base = versions_->current();
    std::vector<FlushOutput> new_tables;
    s = FlushMemTableToUnsorted(recovered, base, &new_tables);
    if (!s.ok()) {
      recovered->Unref();
      return s;
    }
    // Recovery is single-threaded: `base` is still current, so the
    // routing cannot have moved and table ids come straight from it.
    for (FlushOutput& out : new_tables) {
      auto p = base->FindById(out.pid);
      uint16_t next_id = 0;
      if (p != nullptr) {
        for (const FileMeta& f : p->unsorted) {
          if (f.table_id >= next_id) next_id = f.table_id + 1;
        }
      }
      out.meta.table_id = next_id;
      edit.AddUnsortedFile(out.pid, out.meta);
      MutexLock lock(&mu_);
      stats_.flush_bytes += out.meta.size;
    }
  }
  recovered->Unref();

  uint64_t min_wal = 0;
  for (auto& shard : shards_) {
    const uint64_t number = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    s = env_->NewWritableFile(ShardWalFileName(dbname_, number), &lfile);
    if (!s.ok()) return s;
    // Recovery is single-threaded, but the shard capabilities keep the
    // field annotations uniform (wal under log_mu, mem under mu).
    MutexLock shard_lock(&shard->mu);
    MutexLock log_lock(&shard->log_mu);
    shard->wal_file = std::move(lfile);
    shard->wal = std::make_unique<log::Writer>(shard->wal_file.get());
    shard->wal_number.store(number, std::memory_order_relaxed);
    shard->mem = new MemTable(icmp_);
    shard->mem->Ref();
    if (min_wal == 0 || number < min_wal) min_wal = number;
  }
  edit.SetLogNumber(min_wal);
  {
    MutexLock lock(&mu_);
    s = versions_->LogAndApply(&edit);
    pending_outputs_.clear();
  }
  if (!s.ok()) return s;

  s = RebuildHashIndexes();
  if (!s.ok()) return s;

  s = RecoverAnchorViews();
  if (!s.ok()) return s;

  RemoveObsoleteFiles();
  return Status::OK();
}

namespace {
struct WalReporter : public log::Reader::Reporter {
  Status* status;
  void Corruption(size_t /*bytes*/, const Status& s) override {
    if (status != nullptr && status->ok()) *status = s;
  }
};
}  // namespace

Status UniKVDB::CollectWalBatches(const std::string& fname,
                                  std::vector<WalBatch>* out) {
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;

  Status read_status;
  WalReporter reporter;
  reporter.status = &read_status;
  log::Reader reader(file.get(), &reporter, true);
  Slice record;
  std::string scratch;
  WriteBatch batch;
  while (reader.ReadRecord(&record, &scratch)) {
    if (record.size() < 12) {
      read_status = Status::Corruption("WAL record too small");
      break;
    }
    batch.SetContents(record);
    WalBatch wb;
    wb.seq = batch.Sequence();
    wb.count = static_cast<uint32_t>(batch.Count());
    wb.contents.assign(record.data(), record.size());
    out->push_back(std::move(wb));
  }
  return read_status;
}

std::shared_ptr<HashIndex> UniKVDB::GetOrCreateIndex(uint32_t pid) {
  auto it = indexes_.find(pid);
  if (it != indexes_.end()) return it->second;
  auto index = std::make_shared<HashIndex>(IndexExpectedEntries(),
                                           options_.index_num_hashes);
  indexes_[pid] = index;
  return index;
}

Status UniKVDB::InsertTableIntoIndex(HashIndex* index, const FileMeta& f) {
  std::unique_ptr<Iterator> iter(table_cache_->NewIterator(f.number, f.size));
  std::string prev_user_key;
  bool has_prev = false;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    Slice user_key = ExtractUserKey(iter->key());
    if (!has_prev || Slice(prev_user_key) != user_key) {
      index->Insert(user_key, f.table_id);
      prev_user_key.assign(user_key.data(), user_key.size());
      has_prev = true;
    }
  }
  return iter->status();
}

Status UniKVDB::RebuildHashIndexes() {
  VersionPtr ver = versions_->current();
  for (const auto& p : ver->partitions) {
    auto index = std::make_shared<HashIndex>(IndexExpectedEntries(),
                                             options_.index_num_hashes);
    std::set<uint16_t> covered;
    if (p->index_checkpoint != 0) {
      // Load the checkpoint image: [count varint32][table ids varint32...]
      // [HashIndex image].
      std::string fname = IndexCheckpointFileName(dbname_, p->index_checkpoint);
      uint64_t size;
      Status s = env_->GetFileSize(fname, &size);
      if (s.ok()) {
        std::unique_ptr<SequentialFile> file;
        s = env_->NewSequentialFile(fname, &file);
        if (s.ok()) {
          std::string buf;
          buf.resize(size);
          Slice contents;
          s = file->Read(size, &contents, buf.data());
          if (s.ok()) {
            Slice input = contents;
            uint32_t count = 0;
            if (GetVarint32(&input, &count)) {
              bool ok = true;
              for (uint32_t i = 0; i < count && ok; i++) {
                uint32_t id;
                ok = GetVarint32(&input, &id);
                if (ok) covered.insert(static_cast<uint16_t>(id));
              }
              if (ok && index->DecodeFrom(input).ok()) {
                // Loaded; fall through to replay uncovered tables.
              } else {
                covered.clear();
                index->Clear();
              }
            }
          }
        }
      }
      // On any checkpoint trouble fall back to a full rebuild.
    }
    for (const FileMeta& f : p->unsorted) {
      if (covered.count(f.table_id)) continue;
      Status s = InsertTableIntoIndex(index.get(), f);
      if (!s.ok()) return s;
    }
    indexes_[p->id] = index;
    vlog_garbage_[p->id] = 0;
    flushes_since_checkpoint_[p->id] = 0;
  }
  return Status::OK();
}

// ---------------------------------------------------- anchor views (§12)

void UniKVDB::InstallAnchorViewLocked(uint32_t pid, AnchorViewPtr view) {
  auto it = anchor_views_.find(pid);
  if (it != anchor_views_.end()) {
    metrics_.anchor_view_bytes->Add(
        -static_cast<int64_t>(it->second->byte_size));
    anchor_views_.erase(it);
  }
  if (view != nullptr) {
    metrics_.anchor_view_bytes->Add(static_cast<int64_t>(view->byte_size));
    anchor_views_.emplace(pid, std::move(view));
  }
}

void UniKVDB::MaintainAnchorViewLocked(uint32_t pid,
                                       const std::vector<FileMeta>& tables,
                                       const AnchorView* base,
                                       const FileMeta* added,
                                       VersionEdit* edit) {
  if (!options_.enable_anchor_view || tables.size() < 2) {
    // A single table is already sorted; nothing to accelerate. Retire
    // the view (the edit also drops the backing file from the live set,
    // so RemoveObsoleteFiles sweeps it).
    InstallAnchorViewLocked(pid, nullptr);
    edit->SetAnchorView(pid, 0);
    return;
  }

  const int restart_interval = options_.table_options.block_restart_interval;
  AnchorView built;
  Status s;
  if (base != nullptr && added != nullptr) {
    // Flush install: one merge pass over the existing view and the new
    // table instead of re-reading every covered table.
    s = MergeAnchorView(icmp_, table_cache_.get(), *base, *added,
                        restart_interval, &built);
  } else {
    s = BuildAnchorView(icmp_, table_cache_.get(), tables, restart_interval,
                        &built);
  }
  if (!s.ok()) {
    // View maintenance is never fatal: retire it and let scans fall back
    // to the merging iterator until the next install rebuilds it.
    InstallAnchorViewLocked(pid, nullptr);
    edit->SetAnchorView(pid, 0);
    return;
  }

  // Persist before the manifest edit lands; mu_ is held through
  // LogAndApply, so the file becomes live atomically with the edit (same
  // install-time I/O precedent as InsertTableIntoIndex). On a write
  // failure keep the view in memory only — RemoveObsoleteFiles sweeps
  // the orphan.
  const uint64_t number = versions_->NewFileNumber();
  Status ws = WriteAnchorViewFile(
      env_, AnchorViewFileName(dbname_, number), pid, built);
  if (ws.ok()) {
    built.file_number = number;
    edit->SetAnchorView(pid, number);
  } else {
    built.file_number = 0;
    edit->SetAnchorView(pid, 0);
  }
  metrics_.anchor_view_builds->Inc();
  InstallAnchorViewLocked(
      pid, std::make_shared<const AnchorView>(std::move(built)));
}

Status UniKVDB::RecoverAnchorViews() {
  if (!options_.enable_anchor_view) return Status::OK();
  const int restart_interval = options_.table_options.block_restart_interval;
  VersionPtr ver = versions_->current();
  for (const auto& p : ver->partitions) {
    if (p->unsorted.size() < 2) continue;
    AnchorView view;
    bool have = false;
    if (p->anchor_view != 0) {
      Status s = LoadAnchorViewFile(
          env_, AnchorViewFileName(dbname_, p->anchor_view), p->id, &view);
      if (s.ok() && view.Covers(p->unsorted)) {
        view.file_number = p->anchor_view;
        have = true;
      }
      // A missing, corrupt, or stale file (e.g. the manifest edit landed
      // but the crash hit before/after unevenly) is not an error — the
      // tables are the source of truth; rebuild below.
    }
    if (!have) {
      Status s = BuildAnchorView(icmp_, table_cache_.get(), p->unsorted,
                                 restart_interval, &view);
      if (!s.ok()) continue;  // scans fall back to the merging iterator
      view.file_number = 0;   // memory-only; next flush install re-persists
      metrics_.anchor_view_builds->Inc();
    }
    InstallAnchorViewLocked(p->id,
                            std::make_shared<const AnchorView>(std::move(view)));
  }
  return Status::OK();
}

// ------------------------------------------------------------ write path

struct UniKVDB::Writer {
  explicit Writer(Mutex* mu) : batch(nullptr), cv(mu) {}

  Status status;
  WriteBatch* batch;
  bool sync = false;
  bool done = false;
  CondVar cv;
};

Status UniKVDB::Put(const WriteOptions& options, const Slice& key,
                    const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status UniKVDB::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status UniKVDB::Write(const WriteOptions& options, WriteBatch* updates) {
  PerfContext* perf = GetPerfContext();
  const uint64_t start_us = env_->NowMicros();
  perf->writes++;
  if (updates != nullptr) {
    metrics_.write_bytes->Add(updates->ApproximateSize());
  }
  Status s = WriteImpl(options, updates);
  const uint64_t dur = env_->NowMicros() - start_us;
  perf->write_micros += dur;
  metrics_.write_latency->Add(dur == 0 ? 1 : dur);
  PerfEndOp(perf);
  return s;
}

namespace {
// FNV-1a over the user key: stable within a process, cheap, and evenly
// striped. Never persisted — recovery re-routes at insert time.
uint32_t ShardHash(const Slice& user_key, size_t nshards) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < user_key.size(); i++) {
    h ^= static_cast<uint8_t>(user_key.data()[i]);
    h *= 1099511628211ull;
  }
  return static_cast<uint32_t>(h % nshards);
}
}  // namespace

uint32_t UniKVDB::ShardOf(const Slice& user_key) const {
  return ShardHash(user_key, shards_.size());
}

void UniKVDB::AdvanceVisibleSeq(uint64_t seq) {
  uint64_t cur = visible_seq_.load(std::memory_order_acquire);
  while (cur < seq && !visible_seq_.compare_exchange_weak(
                          cur, seq, std::memory_order_release,
                          std::memory_order_acquire)) {
  }
}

namespace {
/// Splits a multi-shard batch into per-shard sub-batches.
struct ShardSplitter : public WriteBatch::Handler {
  explicit ShardSplitter(std::vector<WriteBatch>* subs_arg)
      : subs(subs_arg) {}
  void Put(const Slice& key, const Slice& value) override {
    (*subs)[ShardHash(key, subs->size())].Put(key, value);
  }
  void Delete(const Slice& key) override {
    (*subs)[ShardHash(key, subs->size())].Delete(key);
  }
  std::vector<WriteBatch>* subs;
};
}  // namespace

Status UniKVDB::WriteImpl(const WriteOptions& options, WriteBatch* updates) {
  if (updates == nullptr) {
    // Manual-flush sentinel: rotate every shard (FlushMemTable waits for
    // the resulting imms to drain).
    Status s;
    for (auto& shard : shards_) {
      s = WriteToShard(shard.get(), options, nullptr);
      if (!s.ok()) return s;
    }
    return s;
  }
  if (shards_.size() == 1) {
    return WriteToShard(shards_[0].get(), options, updates);
  }

  // Route the batch. The common case — every record in one shard (always
  // true for single-record Put/Delete batches) — is submitted as-is.
  std::vector<WriteBatch> subs(shards_.size());
  ShardSplitter splitter(&subs);
  Status s = updates->Iterate(&splitter);
  if (!s.ok()) return s;
  int touched = 0, only = -1;
  for (size_t i = 0; i < subs.size(); i++) {
    if (subs[i].Count() > 0) {
      touched++;
      only = static_cast<int>(i);
    }
  }
  if (touched == 0) return Status::OK();
  if (touched == 1) {
    return WriteToShard(shards_[only].get(), options, updates);
  }
  // Multi-shard batch: each sub-batch commits as its own group, so
  // cross-shard atomicity is not preserved under a crash (each sub-batch
  // is individually atomic). Documented in DESIGN.md §10.
  for (size_t i = 0; i < subs.size(); i++) {
    if (subs[i].Count() == 0) continue;
    s = WriteToShard(shards_[i].get(), options, &subs[i]);
    if (!s.ok()) return s;
  }
  return s;
}

Status UniKVDB::WriteToShard(WriteShard* s, const WriteOptions& options,
                             WriteBatch* updates) {
  Writer w(&s->mu);
  w.batch = updates;
  w.sync = options.sync;

  MutexLock lock(&s->mu);
  s->writers.push_back(&w);
  while (!(w.done || &w == s->writers.front())) w.cv.Wait();
  if (w.done) {
    return w.status;
  }

  // This writer is responsible for the group at the queue front. A null
  // batch is the manual-flush sentinel: it forces a rotation and carries
  // no payload. Routing the rotation through the queue front is what
  // makes it safe — no concurrent group writer can be appending to the
  // WAL being retired.
  Status status = MakeRoomForWrite(s, /*force=*/updates == nullptr);
  Writer* last_writer = &w;
  if (status.ok() && updates != nullptr) {
    WriteBatch* write_batch = BuildBatchGroup(s, &last_writer);
    MemTable* mem = s->mem;

    // Allocate sequence numbers and append to the WAL inside one log_mu
    // critical section. This is what makes gap-cut recovery sound: when
    // any sync (ours or a peer's sync-all) later acquires this log_mu,
    // every already-allocated sequence on this shard is fully appended —
    // so a sequence can only be missing from the synced prefix if it was
    // allocated afterwards, i.e. is higher than everything acked.
    {
      MutexLock log_lock(&s->log_mu);
      lock.Unlock();
      const uint32_t count = static_cast<uint32_t>(write_batch->Count());
      // Publish the unsynced watermark BEFORE allocating: in the seq_cst
      // total order the claim exists before this group's sequences do,
      // so any prefix-check that has seen a later sequence and then
      // reads this shard as clean (or unsynced only above its ceiling)
      // has a sound lock-free proof (see SyncAllShardWals). An already
      // set watermark is older — and therefore lower — than this group,
      // so it stands.
      const uint64_t prev_unsynced =
          s->first_unsynced_seq.load(std::memory_order_relaxed);
      if (prev_unsynced == 0) {
        s->first_unsynced_seq.store(kSeqAllocating,
                                    std::memory_order_seq_cst);
      }
      const uint64_t first_seq =
          seq_alloc_.fetch_add(count, std::memory_order_seq_cst) + 1;
      const uint64_t group_last = first_seq + count - 1;
      if (prev_unsynced == 0) {
        s->first_unsynced_seq.store(first_seq, std::memory_order_seq_cst);
      }
      write_batch->SetSequence(first_seq);
      {
        StopwatchGuard wal_timer(env_, &GetPerfContext()->write_wal_micros);
        status = s->wal->AddRecord(write_batch->Contents());
        if (status.ok() && options.sync) {
          // Own-shard sync inside the append critical section: concurrent
          // sync writers fsync their own WALs from their own threads, so
          // the I/O waits overlap — and the cross-shard round below then
          // finds every sync-written shard clean and skips it.
          status = s->wal_file->Sync();
          if (status.ok()) {
            // The fsync covered everything appended to this WAL, older
            // async groups included.
            s->first_unsynced_seq.store(0, std::memory_order_seq_cst);
          }
        }
      }
      log_lock.Unlock();
      if (!status.ok()) {
        // A failed WAL append or sync leaves the log tail undefined: later
        // records could land after a torn fragment and silently vanish at
        // replay. Latch the error so subsequent writes are rejected.
        RecordBackgroundError(status);
      }
      if (status.ok() && options.sync && shards_.size() > 1) {
        // A sync ack promises the whole prefix up to group_last is
        // durable, and lower sequences may live in peer shards' WALs.
        status = SyncAllShardWals(group_last);
      }
      if (status.ok()) {
        StopwatchGuard mem_timer(env_,
                                 &GetPerfContext()->write_memtable_micros);
        status = write_batch->InsertInto(mem);
      }
      if (status.ok()) {
        AdvanceVisibleSeq(group_last);
      }
      lock.Lock();
    }
    if (write_batch == &s->scratch) {
      s->scratch.Clear();
    }
  }

  while (true) {
    Writer* ready = s->writers.front();
    s->writers.pop_front();
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.Signal();
    }
    if (ready == last_writer) break;
  }
  if (!s->writers.empty()) {
    s->writers.front()->cv.Signal();
  }
  return status;
}

Status UniKVDB::SyncAllShardWals(uint64_t ceiling, bool force) {
  // Lock-free fast path. first_unsynced_seq is published (seq_cst)
  // BEFORE a group allocates its sequences, so for any group whose
  // sequences could be <= ceiling the publish precedes our ceiling's
  // allocation, which precedes this scan. Reading a shard as 0 (clean)
  // therefore means any such group was since synced; reading a value
  // above the ceiling means the shard's oldest unsynced record is newer
  // than the prefix we promise — not our problem either way. Only
  // kSeqAllocating (sequences unknown) or a watermark <= ceiling forces
  // the locked path. In an all-sync workload every writer leaves its own
  // shard clean, so concurrent sync writers pass through here without
  // ever touching a peer shard's lock — this is what lets durable
  // writes scale with the thread count instead of serializing on a
  // cross-shard fsync round.
  if (!force) {
    bool covered = true;
    for (const auto& t : shards_) {
      const uint64_t w = t->first_unsynced_seq.load(std::memory_order_seq_cst);
      if (w != 0 && w <= ceiling) {  // kSeqAllocating compares <= nothing
        covered = false;             // except as the sentinel below.
        break;
      }
      if (w == kSeqAllocating) {
        covered = false;
        break;
      }
    }
    if (covered) return Status::OK();
  }

  MutexLock coord(&sync_mu_);
  while (true) {
    if (!force && synced_seq_floor_ >= ceiling) return Status::OK();
    if (!sync_all_in_flight_) break;
    // A round is running but began before our ceiling was allocated (or
    // we cannot tell). Wait for it; either its floor covers us or we
    // become the next round's leader — N waiters fold into O(1) rounds.
    sync_cv_.Wait();
  }
  sync_all_in_flight_ = true;
  // Everything allocated up to here rides this round for free: their
  // appends either finished or are inside a log_mu this round will take.
  const uint64_t target = seq_alloc_.load(std::memory_order_seq_cst);
  coord.Unlock();

  // One log_mu at a time (never two — no ordering to deadlock on). By
  // the allocation-inside-log_mu invariant, after this loop every
  // sequence allocated before it started is durable. Shards whose
  // watermark proves them irrelevant (same argument as the fast path,
  // anchored at the `target` load above) are skipped without locking.
  // The first pass visits the rest opportunistically (try_lock): a
  // shard whose writer is mid-own-fsync holds log_mu for the whole
  // fsync, and blocking on each in turn would stretch the round to the
  // SUM of the in-flight syncs. Deferring busy shards lets their fsyncs
  // overlap; the blocking second pass picks up stragglers (by then
  // usually clean, since a sync writer leaves its shard synced).
  Status s;
  std::vector<WriteShard*> pending;
  pending.reserve(shards_.size());
  for (auto& t : shards_) pending.push_back(t.get());
  for (int pass = 0; pass < 2 && s.ok() && !pending.empty(); pass++) {
    std::vector<WriteShard*> busy;
    for (WriteShard* t : pending) {
      if (!force) {
        const uint64_t w =
            t->first_unsynced_seq.load(std::memory_order_seq_cst);
        if (w == 0 || (w != kSeqAllocating && w > target)) continue;
      }
      // The TryLock branch is written as a direct if so thread-safety
      // analysis can track the acquired/skipped paths separately; the
      // per-shard sync body lives in a REQUIRES(t->log_mu) helper so
      // every early-out below joins with a consistent lock set.
      if (pass == 0) {
        if (!t->log_mu.TryLock()) {
          busy.push_back(t);
          continue;
        }
      } else {
        t->log_mu.Lock();
      }
      const Status ss = SyncShardWalLocked(t, force, target);
      t->log_mu.Unlock();
      if (!ss.ok()) {
        s = ss;
        break;
      }
    }
    pending = std::move(busy);
  }

  coord.Lock();
  sync_all_in_flight_ = false;
  if (s.ok() && target > synced_seq_floor_) synced_seq_floor_ = target;
  sync_cv_.SignalAll();
  coord.Unlock();
  if (!s.ok()) {
    // Latched outside log_mu/sync_mu_: RecordBackgroundError briefly
    // takes mu_ and the shard mutexes to wake waiters.
    RecordBackgroundError(s);
  }
  return s;
}

Status UniKVDB::SyncShardWalLocked(WriteShard* t, bool force,
                                   uint64_t target) {
  if (t->wal_file == nullptr) return Status::OK();
  if (!force) {
    // Re-check under the lock: the in-flight writer we waited out may
    // have synced (or turned out to be newer than the target).
    const uint64_t w = t->first_unsynced_seq.load(std::memory_order_seq_cst);
    if (w == 0 || w > target) return Status::OK();  // Never kSeqAllocating
  }                                                 // here: holders are
  Status ss = t->wal_file->Sync();                  // inside log_mu.
  if (ss.ok()) {
    t->first_unsynced_seq.store(0, std::memory_order_seq_cst);
  }
  return ss;
}

WriteBatch* UniKVDB::BuildBatchGroup(WriteShard* s, Writer** last_writer) {
  Writer* first = s->writers.front();
  WriteBatch* result = first->batch;
  size_t size = first->batch->ApproximateSize();

  // Allow the group to grow up to a maximum size, but keep it small if
  // the head batch is small to not slow down small writes too much.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) {
    max_size = size + (128 << 10);
  }

  *last_writer = first;
  for (auto it = s->writers.begin() + 1; it != s->writers.end(); ++it) {
    Writer* w = *it;
    if (w->sync && !first->sync) {
      break;  // Do not include a sync write into a non-sync group.
    }
    if (w->batch == nullptr) {
      // A manual-flush sentinel: it must reach the queue front itself to
      // run its rotation. Absorbing it into this group would mark it done
      // without ever rotating.
      break;
    }
    size += w->batch->ApproximateSize();
    if (size > max_size) break;
    if (result == first->batch) {
      // Switch to a temporary batch instead of disturbing the caller's.
      result = &s->scratch;
      assert(result->Count() == 0);
      result->Append(*first->batch);
    }
    result->Append(*w->batch);
    *last_writer = w;
  }
  return result;
}

Status UniKVDB::SwitchWal(WriteShard* s) {
  // The swap must exclude cross-shard sync-alls (they hold log_mu while
  // touching wal_file), and the old log must be durable before being
  // retired: otherwise a sync on the new WAL could make post-rotation ops
  // durable while unsynced pre-rotation ops are lost — a mid-sequence gap
  // that breaks prefix recovery.
  MutexLock log_lock(&s->log_mu);
  if (s->wal_file != nullptr) {
    Status sync_status = s->wal_file->Sync();
    if (!sync_status.ok()) return sync_status;
  }
  s->first_unsynced_seq.store(0, std::memory_order_seq_cst);
  uint64_t new_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  Status st =
      env_->NewWritableFile(ShardWalFileName(dbname_, new_number), &lfile);
  if (!st.ok()) return st;
  s->wal_file = std::move(lfile);
  s->wal = std::make_unique<log::Writer>(s->wal_file.get());
  // Publish the retiring number before the new one so the flush
  // installer's min-over-shards log-number floor never moves backwards.
  s->imm_wal_number.store(s->wal_number.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  s->wal_number.store(new_number, std::memory_order_relaxed);
  return Status::OK();
}

Status UniKVDB::MakeRoomForWrite(WriteShard* s, bool force) {
  bool counted_stall = false;
  while (true) {
    if (has_bg_error_.load(std::memory_order_acquire)) {
      MutexLock el(&err_mu_);
      return bg_error_;
    }
    if (!force &&
        s->mem->ApproximateMemoryUsage() <= options_.write_buffer_size) {
      return Status::OK();
    }
    if (force && s->mem->NumEntries() == 0) {
      return Status::OK();  // Nothing to rotate out.
    }
    if (s->imm != nullptr) {
      // The previous memtable is still being flushed: wait. For normal
      // writes the whole blocked span is one stall episode; stall_micros
      // reaches the registry through the PerfContext fold in Write(). A
      // forced rotation (manual flush) waiting here is not a write stall.
      const uint64_t stall_start = env_->NowMicros();
      bg_work_cv_.SignalAll();
      s->cv.TimedWaitFor(std::chrono::milliseconds(100));
      if (!force) {
        const uint64_t waited = env_->NowMicros() - stall_start;
        if (!counted_stall) {
          counted_stall = true;
          s->write_stalls.fetch_add(1, std::memory_order_relaxed);
          metrics_.write_stalls->Inc();
        }
        s->stall_micros.fetch_add(waited, std::memory_order_relaxed);
        GetPerfContext()->write_stall_micros += waited;
      }
      continue;
    }
    // Switch to a new memtable + WAL and hand the old one to the
    // background workers. has_imm is the scheduler's wake signal; the
    // notify below is fired without mu_ (writers never take it), so the
    // workers' wait uses a timeout to cover the lost-wakeup window.
    Status st = SwitchWal(s);
    if (!st.ok()) return st;
    s->imm = s->mem;
    s->mem = new MemTable(icmp_);
    s->mem->Ref();
    s->has_imm.store(true, std::memory_order_release);
    MaybeScheduleWork();
    return Status::OK();
  }
}

// ------------------------------------------------------------- read path

Status UniKVDB::Get(const ReadOptions& /*options*/, const Slice& key,
                    std::string* value) {
  PerfContext* perf = GetPerfContext();
  // Point gets are fast enough (sub-microsecond on a negative lookup) that
  // two clock reads per call measurably dent throughput, so only every
  // kPerfSampleEvery-th get takes the latency sample.
  const bool timed = (tls_fold.sample_tick++ % kPerfSampleEvery) == 0;
  const uint64_t start_us = timed ? env_->NowMicros() : 0;
  perf->gets++;

  MemTable* mem;
  MemTable* imm = nullptr;
  VersionPtr ver;
  std::vector<uint16_t> candidates;
  int pi;
  // Snapshot at the published sequence: everything at or below it has
  // completed its memtable insert, so acked writes are always readable.
  const SequenceNumber snapshot =
      visible_seq_.load(std::memory_order_acquire);
  {
    // Pin the key's shard memtables *before* capturing the version: if a
    // flush installs between the two, the entry is in both the pinned imm
    // and the newer version's tables — never in neither.
    WriteShard* shard = shards_[ShardOf(key)].get();
    MutexLock shard_lock(&shard->mu);
    mem = shard->mem;
    mem->Ref();
    imm = shard->imm;
    if (imm != nullptr) imm->Ref();
  }
  {
    // Capture what must be mutually consistent — the version and the
    // hash-index candidates — under one mutex hold. Index contents always
    // correspond to the version installed under the same lock.
    MutexLock lock(&mu_);
    ver = versions_->current();
    pi = ver->FindPartition(key);
    // Read-heat accounting: the partition is already resolved under mu_,
    // so the bump is one hash-map increment on the lock we hold anyway.
    partition_stats_[ver->partitions[pi]->id].heat_reads++;
    if (options_.enable_hash_index) {
      auto it = indexes_.find(ver->partitions[pi]->id);
      if (it != indexes_.end()) {
        it->second->Lookup(key, &candidates);
      }
    }
  }

  LookupKey lkey(key, snapshot);
  Status s;
  bool done = false;
  if (mem->Get(lkey, value, &s)) {
    done = true;
    perf->memtable_hits++;
  } else if (imm != nullptr && imm->Get(lkey, value, &s)) {
    done = true;
    perf->memtable_hits++;
  }

  if (!done) {
    const PartitionState& p = *ver->partitions[pi];
    bool found = false;
    s = GetFromUnsorted(p, candidates, lkey, value, &found);
    if (s.ok() && !found) {
      s = GetFromSorted(p, lkey, value, &found);
    }
    if (s.ok() && !found) {
      s = Status::NotFound(Slice());
    }
  }

  mem->Unref();
  if (imm != nullptr) imm->Unref();

  if (timed) {
    const uint64_t dur = env_->NowMicros() - start_us;
    perf->get_micros += dur;
    // Clock-granularity floor: a 0us reading means "< 1us", and recording
    // it as 0 would drag histogram percentiles to zero on fast paths.
    metrics_.get_latency->Add(dur == 0 ? 1 : dur);
  }
  PerfEndOp(perf);
  return s;
}

// ----------------------------------------------- batched read (MultiGet)

Status UniKVDB::MultiGet(const ReadOptions& options,
                         const std::vector<Slice>& keys,
                         std::vector<std::string>* values,
                         std::vector<Status>* statuses) {
  PerfContext* perf = GetPerfContext();
  // Unlike point gets, a batch amortizes its two clock reads over every
  // key, so MultiGet latency is timed exactly rather than sampled.
  const uint64_t start_us = env_->NowMicros();
  perf->multigets++;
  perf->multiget_keys += keys.size();
  Status s = MultiGetImpl(options, keys, values, statuses);
  const uint64_t dur = env_->NowMicros() - start_us;
  perf->multiget_micros += dur;
  metrics_.multiget_latency->Add(dur == 0 ? 1 : dur);
  metrics_.multiget_keys_per_batch->Add(keys.size());
  PerfEndOp(perf);
  return s;
}

Status UniKVDB::MultiGetImpl(const ReadOptions& options,
                             const std::vector<Slice>& keys,
                             std::vector<std::string>* values,
                             std::vector<Status>* statuses) {
  const size_t n = keys.size();
  // resize() (not clear+resize) so a caller reusing its vectors across
  // batches keeps each slot's string capacity: values are assigned over,
  // never appended. Slots whose status ends up non-OK are unspecified.
  values->resize(n);
  statuses->assign(n, Status::OK());
  if (n == 0) return Status::OK();

  PerfContext* perf = GetPerfContext();

  // One snapshot for the whole batch: every key reads at or below the
  // same published sequence, so a concurrent write batch is visible to
  // all of the MultiGet or to none of it.
  const SequenceNumber snapshot =
      visible_seq_.load(std::memory_order_acquire);

  // Pin every touched shard's memtables once, *before* capturing the
  // version (same order as Get: an entry flushed mid-capture is in a
  // pinned imm or in the version's tables, never in neither).
  struct ShardPin {
    MemTable* mem = nullptr;
    MemTable* imm = nullptr;
  };
  std::vector<uint32_t> shard_of(n);
  std::vector<ShardPin> pins(shards_.size());
  for (size_t i = 0; i < n; i++) shard_of[i] = ShardOf(keys[i]);
  for (size_t i = 0; i < n; i++) {
    ShardPin& pin = pins[shard_of[i]];
    if (pin.mem != nullptr) continue;
    WriteShard* shard = shards_[shard_of[i]].get();
    MutexLock shard_lock(&shard->mu);
    pin.mem = shard->mem;
    pin.mem->Ref();
    pin.imm = shard->imm;
    if (pin.imm != nullptr) pin.imm->Ref();
  }

  // Probe order: key-sorted, so partition routing walks the boundary list
  // monotonically and each partition group below probes its tables in
  // ascending key order.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&keys](size_t a, size_t b) {
    return keys[a].compare(keys[b]) < 0;
  });

  // Duplicate keys resolve once: the whole batch reads one snapshot, so
  // every repeat of a key must produce the same answer. `rep[i]` is the
  // index that does the work; duplicate slots copy its result at the end.
  // (Skewed batches repeat their hot keys — a looped Get pays the full
  // lookup for every repeat.)
  std::vector<size_t> rep(n);
  std::vector<size_t> uniq;
  uniq.reserve(n);
  for (size_t j = 0; j < n; j++) {
    const size_t idx = order[j];
    if (j > 0 && keys[idx] == keys[order[j - 1]]) {
      rep[idx] = rep[order[j - 1]];
      continue;
    }
    rep[idx] = idx;
    uniq.push_back(idx);
  }

  // One mu_ hold for the whole batch captures what must be mutually
  // consistent — the version and the hash-index candidates — and bumps
  // the per-partition read-heat counters in bulk. A point Get pays this
  // lock per key; the batch pays it once.
  VersionPtr ver;
  std::vector<int> part_of(n);
  std::vector<std::vector<uint16_t>> candidates(n);
  {
    MutexLock lock(&mu_);
    ver = versions_->current();
    // Keys arrive sorted, so partition routing repeats: memoize the last
    // partition's stats slot instead of re-hashing per key.
    int last_pi = -1;
    PartitionCounters* last_stats = nullptr;
    for (size_t idx : uniq) {
      const int pi = ver->FindPartition(keys[idx]);
      part_of[idx] = pi;
      if (pi != last_pi) {
        last_pi = pi;
        last_stats = &partition_stats_[ver->partitions[pi]->id];
      }
      last_stats->heat_reads++;
      // No unsorted tables -> no candidates to find; skip the hash.
      if (options_.enable_hash_index && !ver->partitions[pi]->unsorted.empty()) {
        auto it = indexes_.find(ver->partitions[pi]->id);
        if (it != indexes_.end()) {
          it->second->Lookup(keys[idx], &candidates[idx]);
        }
      }
    }
  }


  // Memtable probes run lock-free against the pinned tables (skipped
  // entirely against empty memtables — the common read-mostly case).
  std::vector<char> done(n, 0);
  for (size_t idx : uniq) {
    const ShardPin& pin = pins[shard_of[idx]];
    const bool mem_live = pin.mem->NumEntries() != 0;
    const bool imm_live = pin.imm != nullptr && pin.imm->NumEntries() != 0;
    if (!mem_live && !imm_live) continue;
    LookupKey lkey(keys[idx], snapshot);
    Status s;
    if ((mem_live && pin.mem->Get(lkey, &(*values)[idx], &s)) ||
        (imm_live && pin.imm->Get(lkey, &(*values)[idx], &s))) {
      perf->memtable_hits++;
      (*statuses)[idx] = s;
      done[idx] = 1;
    }
  }


  // Group the unresolved keys by partition (members stay key-sorted).
  std::vector<std::vector<size_t>> groups;
  {
    // Sorted keys visit partitions in runs, so almost every key joins the
    // group just appended; the map only resolves the rare re-visit.
    std::unordered_map<int, size_t> group_of;
    int last_part = -1;
    size_t last_group = 0;
    for (size_t idx : uniq) {
      if (done[idx]) continue;
      if (part_of[idx] != last_part) {
        auto [it, inserted] =
            group_of.try_emplace(part_of[idx], groups.size());
        if (inserted) groups.emplace_back();
        last_part = part_of[idx];
        last_group = it->second;
      }
      groups[last_group].push_back(idx);
    }
  }

  // Probe each partition group's stores with one pinned table-handle set
  // per group (N probes of the same table cost one cache lookup, not N).
  // Separated values are not fetched here: their pointers are collected
  // for the coalescing pass below.
  struct Deferred {
    size_t key_idx = 0;
    ValuePointer ptr;
  };
  std::vector<std::vector<Deferred>> deferred_per_group(groups.size());

  auto resolve_group = [this, &keys, &candidates, &part_of, &ver, snapshot,
                        values, statuses](const std::vector<size_t>& members,
                                          std::vector<Deferred>* defer) {
    TableCache::BatchPin pin(table_cache_.get());
    // Declared after `pin` so the destructor order releases the probe's
    // block before the table handles it borrows from. Members are probed
    // in ascending key order, so consecutive keys usually resolve to the
    // same sorted-store data block and skip its cache lookup entirely.
    Table::Probe probe;
    for (size_t idx : members) {
      const PartitionState& p = *ver->partitions[part_of[idx]];
      LookupKey lkey(keys[idx], snapshot);
      bool found = false;
      Status s = GetFromUnsorted(p, candidates[idx], lkey, &(*values)[idx],
                                 &found, &pin);
      if (s.ok() && !found) {
        ValuePointer dptr;
        bool is_deferred = false;
        s = GetFromSorted(p, lkey, &(*values)[idx], &found, &pin, &dptr,
                          &is_deferred, &probe);
        if (s.ok() && is_deferred) {
          defer->push_back(Deferred{idx, dptr});
          continue;  // Status resolves when the log fetch completes.
        }
      }
      if (s.ok() && !found) s = Status::NotFound(Slice());
      (*statuses)[idx] = s;
    }
  };

  // Optionally fan partition groups across the reader pool. Tasks own
  // disjoint key indices, so they never write the same output slot.
  // PerfContext increments made on pool workers stay in those workers'
  // thread-local contexts (same caveat as parallel scan fetches); the
  // registry-wired vlog counters and the multiget_* counters below are
  // unaffected.
  const int parallelism =
      std::min({options.multiget_parallelism, static_cast<int>(groups.size()),
                fetch_pool_->num_threads()});
  if (parallelism > 1) {
    ThreadPool::TaskGroup tasks;
    const size_t chunk = (groups.size() + parallelism - 1) / parallelism;
    for (size_t begin = 0; begin < groups.size(); begin += chunk) {
      const size_t end = std::min(begin + chunk, groups.size());
      fetch_pool_->Schedule(&tasks, [&, begin, end] {
        for (size_t g = begin; g < end; g++) {
          resolve_group(groups[g], &deferred_per_group[g]);
        }
      });
    }
    tasks.Wait();
  } else {
    for (size_t g = 0; g < groups.size(); g++) {
      resolve_group(groups[g], &deferred_per_group[g]);
    }
  }

  // One sorted, coalesced fetch pass over every separated value the batch
  // needs. Sorting by (log, offset) turns random per-key preads into a
  // few span reads per log; ranges within multiget_coalesce_gap_bytes of
  // each other share one pread (the gap bytes are read and discarded).
  std::vector<Deferred> deferred;
  for (auto& d : deferred_per_group) {
    deferred.insert(deferred.end(), d.begin(), d.end());
  }

  if (!deferred.empty()) {
    std::sort(deferred.begin(), deferred.end(),
              [](const Deferred& a, const Deferred& b) {
                if (a.ptr.log_number != b.ptr.log_number) {
                  return a.ptr.log_number < b.ptr.log_number;
                }
                return a.ptr.offset < b.ptr.offset;
              });

    struct Span {
      std::vector<size_t> members;  // Indices into `deferred`.
      uint64_t log_number = 0;
      uint64_t begin = 0, end = 0;  // Byte span in the log.
    };
    constexpr uint64_t kMaxSpan = 1 << 20;
    const uint64_t gap = options_.multiget_coalesce_gap_bytes;
    std::vector<Span> spans;
    for (size_t i = 0; i < deferred.size(); i++) {
      const ValuePointer& ptr = deferred[i].ptr;
      const uint64_t pend = ptr.offset + ptr.size;
      if (!spans.empty()) {
        Span& last = spans.back();
        // Unlike the scan path, a batch may carry duplicate keys, so the
        // merge tolerates overlapping ranges (max-end extension) instead
        // of requiring disjoint ascending ones.
        if (last.log_number == ptr.log_number &&
            ptr.offset <= last.end + gap &&
            std::max(pend, last.end) - last.begin <= kMaxSpan) {
          last.members.push_back(i);
          last.end = std::max(last.end, pend);
          continue;
        }
      }
      Span next;
      next.log_number = ptr.log_number;
      next.begin = ptr.offset;
      next.end = pend;
      next.members.push_back(i);
      spans.push_back(std::move(next));
    }

    // Spans are fetched against a pinned RandomAccessFile handle, reused
    // across consecutive spans of the same log (spans arrive log-sorted).
    auto fetch_spans = [this, &spans, &deferred, &keys, values, statuses](
                           size_t begin, size_t end) {
      std::shared_ptr<RandomAccessFile> file;
      uint64_t file_log = 0;
      // Grow-only scratch reused across spans: a std::string would
      // zero-fill every resize, doubling the memory traffic of each read.
      std::unique_ptr<char[]> scratch;
      size_t scratch_cap = 0;
      for (size_t si = begin; si < end; si++) {
        const Span& sp = spans[si];
        Status s;
        if (file == nullptr || file_log != sp.log_number) {
          s = vlog_cache_->PinLog(sp.log_number, &file);
          file_log = sp.log_number;
          if (!s.ok()) file = nullptr;
        }
        Slice span_data;
        if (s.ok()) {
          const size_t len = static_cast<size_t>(sp.end - sp.begin);
          if (len > scratch_cap) {
            scratch_cap = std::max(len, scratch_cap * 2);
            scratch.reset(new char[scratch_cap]);
          }
          s = vlog_cache_->GetSpanPinned(file.get(), sp.begin, len,
                                         &span_data, scratch.get());
        }
        for (size_t mi : sp.members) {
          const Deferred& d = deferred[mi];
          Status rs = s;
          if (rs.ok()) {
            Slice record(span_data.data() + (d.ptr.offset - sp.begin),
                         d.ptr.size);
            Slice rkey, rvalue;
            rs = DecodeValueRecord(record, &rkey, &rvalue);
            if (rs.ok() && rkey != keys[d.key_idx]) {
              rs = Status::Corruption("value log key mismatch");
            }
            if (rs.ok()) {
              (*values)[d.key_idx].assign(rvalue.data(), rvalue.size());
            }
          }
          (*statuses)[d.key_idx] = rs;
        }
      }
    };

    if (parallelism > 1 && spans.size() > 1) {
      ThreadPool::TaskGroup tasks;
      const int fanout =
          std::min(parallelism, static_cast<int>(spans.size()));
      const size_t chunk = (spans.size() + fanout - 1) / fanout;
      for (size_t begin = 0; begin < spans.size(); begin += chunk) {
        const size_t end = std::min(begin + chunk, spans.size());
        fetch_pool_->Schedule(
            &tasks, [&fetch_spans, begin, end] { fetch_spans(begin, end); });
      }
      tasks.Wait();
    } else {
      fetch_spans(0, spans.size());
    }

    // Count the coalescing win on the calling thread so it reaches this
    // DB's registry (pool-thread PerfContexts are never folded here):
    // spans that served several pointers, and the record bytes the merged
    // members would have re-read as separate point preads.
    for (const Span& sp : spans) {
      if (sp.members.size() < 2) continue;
      perf->multiget_coalesced_reads++;
      for (size_t k = 1; k < sp.members.size(); k++) {
        perf->multiget_io_bytes_saved += deferred[sp.members[k]].ptr.size;
      }
    }
  }


  for (ShardPin& pin : pins) {
    if (pin.mem != nullptr) pin.mem->Unref();
    if (pin.imm != nullptr) pin.imm->Unref();
  }

  // Duplicate slots copy their representative's answer.
  for (size_t i = 0; i < n; i++) {
    if (rep[i] != i) {
      (*values)[i] = (*values)[rep[i]];
      (*statuses)[i] = (*statuses)[rep[i]];
    }
  }

  for (size_t i = 0; i < n; i++) {
    const Status& s = (*statuses)[i];
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  return Status::OK();
}

Status UniKVDB::GetFromUnsorted(const PartitionState& p,
                                std::vector<uint16_t> candidates,
                                const LookupKey& lkey, std::string* value,
                                bool* found, TableCache::BatchPin* pin) {
  *found = false;
  if (p.unsorted.empty()) return Status::OK();

  const Slice user_key = lkey.user_key();
  std::vector<const FileMeta*> probe_order;
  if (options_.enable_hash_index) {
    if (candidates.empty()) return Status::OK();
    // Newer tables have larger table ids within an epoch: probing ids in
    // descending order guarantees the newest version wins even under
    // keyTag collisions.
    std::sort(candidates.begin(), candidates.end(),
              std::greater<uint16_t>());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (uint16_t id : candidates) {
      for (const FileMeta& f : p.unsorted) {
        if (f.table_id == id) {
          probe_order.push_back(&f);
          break;
        }
      }
    }
  } else {
    // Ablation mode: probe every table newest-to-oldest with range checks.
    for (auto it = p.unsorted.rbegin(); it != p.unsorted.rend(); ++it) {
      if (user_key.compare(Slice(it->smallest)) >= 0 &&
          user_key.compare(Slice(it->largest)) <= 0) {
        probe_order.push_back(&*it);
      }
    }
  }

  std::string found_key, found_value;
  for (const FileMeta* f : probe_order) {
    GetPerfContext()->unsorted_tables_probed++;
    bool hit = false;
    Status s =
        pin != nullptr
            ? table_cache_->GetPinned(pin, f->number, f->size,
                                      lkey.internal_key(), &hit, &found_key,
                                      &found_value)
            : table_cache_->Get(f->number, f->size, lkey.internal_key(),
                                &hit, &found_key, &found_value);
    if (!s.ok()) return s;
    if (hit && ExtractUserKey(found_key) == user_key) {
      ValueType type = ExtractValueType(found_key);
      if (type == kTypeDeletion) {
        *found = true;
        return Status::NotFound(Slice());
      }
      *found = true;
      *value = std::move(found_value);
      return Status::OK();
    }
  }
  return Status::OK();
}

Status UniKVDB::GetFromSorted(const PartitionState& p, const LookupKey& lkey,
                              std::string* value, bool* found,
                              TableCache::BatchPin* pin, ValuePointer* dptr,
                              bool* deferred, Table::Probe* probe) {
  *found = false;
  if (deferred != nullptr) *deferred = false;
  const Slice user_key = lkey.user_key();
  // Binary search the sorted run by largest key (paper: compare boundary
  // keys kept in memory; at most one table can contain the key).
  const auto& files = p.sorted;
  int lo = 0, hi = static_cast<int>(files.size()) - 1;
  int target = -1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (Slice(files[mid].largest).compare(user_key) < 0) {
      lo = mid + 1;
    } else {
      target = mid;
      hi = mid - 1;
    }
  }
  if (target < 0 || user_key.compare(Slice(files[target].smallest)) < 0) {
    return Status::OK();
  }

  const FileMeta& f = files[target];
  GetPerfContext()->sorted_seeks++;
  bool hit = false;
  // Batched callers pass a probe whose scratch strings are reused across
  // the whole group, sparing two heap allocations per key.
  std::string local_key, local_value;
  std::string& found_key = probe != nullptr ? probe->key_scratch : local_key;
  std::string& found_value =
      probe != nullptr ? probe->value_scratch : local_value;
  Status s =
      pin != nullptr
          ? table_cache_->GetPinned(pin, f.number, f.size,
                                    lkey.internal_key(), &hit, &found_key,
                                    &found_value, probe)
          : table_cache_->Get(f.number, f.size, lkey.internal_key(), &hit,
                              &found_key, &found_value);
  if (!s.ok()) return s;
  if (!hit || ExtractUserKey(found_key) != user_key) {
    return Status::OK();
  }
  ValueType type = ExtractValueType(found_key);
  if (type == kTypeDeletion) {
    *found = true;
    return Status::NotFound(Slice());
  }
  if (type == kTypeValue) {
    *found = true;
    *value = std::move(found_value);
    return Status::OK();
  }
  // kTypeValuePointer: fetch from the value log and validate the key.
  ValuePointer ptr;
  Slice encoded(found_value);
  if (!ptr.DecodeFrom(&encoded)) {
    return Status::Corruption("bad value pointer in SortedStore");
  }
  if (deferred != nullptr) {
    // Batched caller: hand the pointer back instead of issuing a point
    // pread here, so the batch can sort and coalesce its log fetches.
    *dptr = ptr;
    *deferred = true;
    *found = true;
    return Status::OK();
  }
  std::string stored_key;
  s = vlog_cache_->Get(ptr, value, &stored_key);
  if (!s.ok()) return s;
  if (Slice(stored_key) != user_key) {
    return Status::Corruption("value log key mismatch");
  }
  *found = true;
  return Status::OK();
}

// ------------------------------------------------------------- iterators

Iterator* UniKVDB::NewInternalIterator(const ReadOptions& options,
                                       SequenceNumber* latest_seq) {
  // Same capture order as Get: published snapshot, then every shard's
  // memtables (one shard lock at a time), then the version — so an entry
  // flushed mid-capture is in a pinned imm or in the version's tables.
  *latest_seq = visible_seq_.load(std::memory_order_acquire);

  std::vector<Iterator*> children;
  for (auto& shard : shards_) {
    MemTable* mem;
    MemTable* imm = nullptr;
    {
      MutexLock shard_lock(&shard->mu);
      mem = shard->mem;
      mem->Ref();
      imm = shard->imm;
      if (imm != nullptr) imm->Ref();
    }
    Iterator* mem_iter = mem->NewIterator();
    mem_iter->RegisterCleanup([mem] { mem->Unref(); });
    children.push_back(mem_iter);
    if (imm != nullptr) {
      Iterator* imm_iter = imm->NewIterator();
      imm_iter->RegisterCleanup([imm] { imm->Unref(); });
      children.push_back(imm_iter);
    }
  }

  // Capture the version and the anchor-view snapshots under a short mu_
  // hold — no I/O. Table iterators (which can open files and read blocks
  // on a cache miss) are created only after mu_ is released; the pinned
  // version keeps every captured file live against RemoveObsoleteFiles,
  // exactly as the Get path relies on.
  VersionPtr ver;
  std::unordered_map<uint32_t, AnchorViewPtr> views;
  {
    MutexLock lock(&mu_);
    ver = versions_->current();
    if (options_.enable_anchor_view) views = anchor_views_;
  }

  const bool fill = options.fill_cache;
  for (const auto& p : ver->partitions) {
    AnchorViewPtr view;
    if (auto it = views.find(p->id); it != views.end()) view = it->second;
    if (view != nullptr && p->unsorted.size() >= 2 &&
        view->Covers(p->unsorted)) {
      // One anchor-guided child replaces one child per unsorted table:
      // Next() costs a view step + one cursor step instead of a k-way
      // heap pop (DESIGN.md §12).
      children.push_back(
          NewAnchorViewIterator(icmp_, view, table_cache_.get(), fill));
      metrics_.scan_anchor_hits->Inc();
    } else {
      for (const FileMeta& f : p->unsorted) {
        children.push_back(
            table_cache_->NewIterator(f.number, f.size, nullptr, fill));
      }
    }
    if (!p->sorted.empty()) {
      std::vector<Iterator*> run;
      run.reserve(p->sorted.size());
      for (const FileMeta& f : p->sorted) {
        run.push_back(table_cache_->NewIterator(f.number, f.size, nullptr,
                                                fill));
      }
      children.push_back(NewConcatenatingIterator(icmp_, std::move(run)));
    }
  }

  Iterator* merged = NewMergingIterator(icmp_, std::move(children));
  // Pin the version for the iterator's lifetime.
  merged->RegisterCleanup([ver] { (void)ver; });
  return merged;
}

Iterator* UniKVDB::NewIterator(const ReadOptions& options) {
  SequenceNumber seq;
  Iterator* internal = NewInternalIterator(options, &seq);
  // A caller-pinned snapshot reads point-in-time; clamp to the visible
  // ceiling so a stale or garbage snapshot can never surface unacked
  // writes.
  if (options.snapshot != 0 && options.snapshot < seq) {
    seq = options.snapshot;
  }
  return new DBIter(icmp_, internal, seq, vlog_cache_.get(),
                    options_.enable_scan_optimization);
}

Status UniKVDB::Scan(const ReadOptions& options, const Slice& start,
                     int count,
                     std::vector<std::pair<std::string, std::string>>* out) {
  PerfContext* perf = GetPerfContext();
  const uint64_t start_us = env_->NowMicros();
  perf->scans++;
  Status s = ScanImpl(options, start, count, out);
  const uint64_t dur = env_->NowMicros() - start_us;
  perf->scan_micros += dur;
  if (s.ok()) {
    metrics_.scan_entries->Add(out->size());
    metrics_.scan_latency->Add(dur == 0 ? 1 : dur);
  } else {
    // Failed scans neither count toward throughput metrics nor leave
    // half-filled results for the caller to mistake for data.
    out->clear();
  }
  PerfEndOp(perf);
  return s;
}

Status UniKVDB::ScanImpl(const ReadOptions& options, const Slice& start,
                         int count,
                         std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  // Match DB::Scan: non-positive counts are an empty scan. Without the
  // clamp a negative `count` flows into entries.reserve() below, where it
  // converts to a near-SIZE_MAX size_t.
  if (count <= 0) return Status::OK();
  if (!options_.enable_scan_optimization) {
    return DB::Scan(options, start, count, out);
  }

  // Paper scan workflow: (1) collect keys + pointers from the stores,
  // (2) issue readahead from the first value, (3) fetch values through
  // the thread pool in parallel.
  SequenceNumber seq;
  Iterator* internal = NewInternalIterator(options, &seq);
  if (options.snapshot != 0 && options.snapshot < seq) {
    seq = options.snapshot;
  }
  DBIter iter(icmp_, internal, seq, vlog_cache_.get(), true);

  struct PendingEntry {
    std::string key;
    std::string inline_value;  // Used when !is_pointer.
    ValuePointer ptr;
    bool is_pointer = false;
    Status status;
  };
  std::vector<PendingEntry> entries;
  // The reserve is a hint only: cap it so a huge requested count (larger
  // than the store) does not pre-allocate gigabytes.
  entries.reserve(std::min<size_t>(count, 4096));

  for (iter.Seek(start); iter.Valid() && count > 0; iter.Next(), count--) {
    PendingEntry e;
    e.key = iter.key().ToString();
    if (iter.raw_type() == kTypeValuePointer) {
      Slice encoded = iter.raw_value();
      if (!e.ptr.DecodeFrom(&encoded)) {
        return Status::Corruption("bad value pointer in scan");
      }
      e.is_pointer = true;
      if (entries.empty()) {
        vlog_cache_->Readahead(e.ptr, 1 << 20);
      }
    } else {
      e.inline_value = iter.raw_value().ToString();
    }
    entries.push_back(std::move(e));
  }
  Status s = iter.status();
  if (!s.ok()) return s;

  // Group consecutive pointer entries that land in a contiguous region of
  // the same log: merges and GC emit values in key order, so a sorted
  // scan usually dereferences an ascending run of offsets. Each group is
  // fetched with a single pread; groups are fetched in parallel through
  // the thread pool.
  struct Group {
    std::vector<size_t> members;  // Entry indices served by this span.
    uint64_t log_number = 0;
    uint64_t begin = 0, end = 0;  // Byte span in the log.
    Status status;
  };
  constexpr uint64_t kMaxSpan = 1 << 20;
  constexpr uint64_t kMaxGap = 64 * 1024;

  // Bucket the pointer entries per log, order each bucket by offset, and
  // coalesce offset-adjacent records (gap tolerance kMaxGap) into spans.
  // Pointers from several merge epochs interleave across logs, but within
  // one log a sorted scan touches ascending offsets, so a scan of N
  // entries typically needs only #logs-touched preads.
  std::unordered_map<uint64_t, std::vector<size_t>> by_log;
  for (size_t i = 0; i < entries.size(); i++) {
    if (entries[i].is_pointer) {
      by_log[entries[i].ptr.log_number].push_back(i);
    }
  }
  std::vector<Group> groups;
  for (auto& [log_number, indices] : by_log) {
    std::sort(indices.begin(), indices.end(), [&entries](size_t a, size_t b) {
      return entries[a].ptr.offset < entries[b].ptr.offset;
    });
    for (size_t i : indices) {
      const ValuePointer& ptr = entries[i].ptr;
      if (!groups.empty()) {
        Group& g = groups.back();
        if (g.log_number == log_number && ptr.offset >= g.end &&
            ptr.offset + ptr.size - g.begin <= kMaxSpan &&
            ptr.offset - g.end <= kMaxGap) {
          g.members.push_back(i);
          g.end = ptr.offset + ptr.size;
          continue;
        }
      }
      Group g;
      g.log_number = log_number;
      g.begin = ptr.offset;
      g.end = ptr.offset + ptr.size;
      g.members.push_back(i);
      groups.push_back(std::move(g));
    }
  }

  auto fetch_group = [this, &entries](Group* g) {
    std::string span;
    g->status = vlog_cache_->GetSpan(g->log_number, g->begin,
                                     static_cast<size_t>(g->end - g->begin),
                                     &span);
    if (!g->status.ok()) return;
    for (size_t i : g->members) {
      PendingEntry& e = entries[i];
      Slice record(span.data() + (e.ptr.offset - g->begin), e.ptr.size);
      Slice key, value;
      e.status = DecodeValueRecord(record, &key, &value);
      if (e.status.ok()) {
        e.inline_value.assign(value.data(), value.size());
      }
    }
  };

  // Fan the groups out over a bounded number of pool tasks (one chunk per
  // worker) so scheduling overhead stays constant regardless of how
  // fragmented the runs are.
  const int workers = fetch_pool_->num_threads();
  if (groups.size() > 8 && workers > 1) {
    // The pool is shared with background GC (and concurrent scans), so
    // wait on this call's own completion group — a global WaitIdle would
    // block this scan behind every other caller's outstanding fetches.
    ThreadPool::TaskGroup group;
    const size_t chunk = (groups.size() + workers - 1) / workers;
    for (size_t begin = 0; begin < groups.size(); begin += chunk) {
      size_t end = std::min(begin + chunk, groups.size());
      fetch_pool_->Schedule(&group, [&fetch_group, &groups, begin, end] {
        for (size_t i = begin; i < end; i++) {
          fetch_group(&groups[i]);
        }
      });
    }
    group.Wait();
  } else {
    for (Group& g : groups) {
      fetch_group(&g);
    }
  }

  out->reserve(entries.size());
  for (Group& g : groups) {
    if (!g.status.ok()) return g.status;
  }
  for (PendingEntry& e : entries) {
    if (!e.status.ok()) return e.status;
    out->emplace_back(std::move(e.key), std::move(e.inline_value));
  }
  return Status::OK();
}

// ------------------------------------------------------------ properties

Status UniKVDB::GetBackgroundError() {
  MutexLock lock(&err_mu_);
  return bg_error_;
}

bool UniKVDB::GetProperty(const Slice& property, std::string* value) {
  if (property == Slice("db.metrics") || property == Slice("db.metrics.json")) {
    // Push this thread's pending fold window into the registry so the
    // report reflects everything the calling thread has done (lock-free;
    // must happen before mu_ is taken only for tidiness).
    FlushPerfPending();
  }
  MutexLock lock(&mu_);
  VersionPtr ver = versions_->current();
  char buf[256];
  if (property == Slice("db.num-partitions")) {
    std::snprintf(buf, sizeof(buf), "%zu", ver->partitions.size());
    *value = buf;
    return true;
  }
  if (property == Slice("db.hash-index-bytes")) {
    size_t total = 0;
    for (const auto& [pid, index] : indexes_) total += index->MemoryUsage();
    std::snprintf(buf, sizeof(buf), "%zu", total);
    *value = buf;
    return true;
  }
  if (property == Slice("db.hash-index-entries")) {
    uint64_t total = 0;
    for (const auto& [pid, index] : indexes_) total += index->NumEntries();
    std::snprintf(buf, sizeof(buf), "%" PRIu64, total);
    *value = buf;
    return true;
  }
  if (property == Slice("db.num-files")) {
    size_t n = 0;
    for (const auto& p : ver->partitions) {
      n += p->unsorted.size() + p->sorted.size() + p->vlogs.size();
    }
    std::snprintf(buf, sizeof(buf), "%zu", n);
    *value = buf;
    return true;
  }
  if (property == Slice("db.last-sequence")) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64,
                  seq_alloc_.load(std::memory_order_acquire));
    *value = buf;
    return true;
  }
  if (property == Slice("db.visible-sequence")) {
    // The published read snapshot: every write at or below this sequence
    // is durable and visible. Pass it as ReadOptions::snapshot to pin
    // later iterators/scans to this point in time.
    std::snprintf(buf, sizeof(buf), "%" PRIu64,
                  visible_seq_.load(std::memory_order_acquire));
    *value = buf;
    return true;
  }
  if (property == Slice("db.stats")) {
    uint64_t stalls = 0, stall_us = 0;
    for (const auto& sh : shards_) {
      stalls += sh->write_stalls.load(std::memory_order_relaxed);
      stall_us += sh->stall_micros.load(std::memory_order_relaxed);
    }
    std::snprintf(
        buf, sizeof(buf),
        "flushes=%" PRIu64 " merges=%" PRIu64 " scan_merges=%" PRIu64
        " gcs=%" PRIu64 " splits=%" PRIu64 " merge_write_mb=%.1f"
        " gc_write_mb=%.1f write_stalls=%" PRIu64 " stall_micros=%" PRIu64,
        stats_.flushes, stats_.merges, stats_.scan_merges, stats_.gcs,
        stats_.splits, stats_.merge_bytes_written / 1048576.0,
        stats_.gc_bytes_written / 1048576.0, stalls, stall_us);
    *value = buf;
    return true;
  }
  if (property == Slice("db.metrics")) {
    *value = MetricsTextLocked(*ver);
    return true;
  }
  if (property == Slice("db.metrics.json")) {
    *value = MetricsJsonLocked(*ver);
    return true;
  }
  if (property == Slice("db.stats.history")) {
    *value = StatsHistoryJsonLocked();
    return true;
  }
  if (property == Slice("db.sstables")) {
    // Built with string appends: user keys have no length limit, so a
    // fixed snprintf buffer would silently truncate long lower bounds
    // (and everything after them on the line).
    std::string result;
    for (const auto& p : ver->partitions) {
      result += "partition ";
      result += std::to_string(p->id);
      result += " [";
      result += p->lower_bound.empty() ? std::string("-inf") : p->lower_bound;
      result += "..): unsorted=";
      result += std::to_string(p->unsorted.size());
      result += " sorted=";
      result += std::to_string(p->sorted.size());
      result += " vlogs=";
      result += std::to_string(p->vlogs.size());
      result += '\n';
    }
    *value = std::move(result);
    return true;
  }
  if (property == Slice("db.table-accesses")) {
    // One line per table: <kind> <file number> <access count>.
    std::string result;
    for (const auto& p : ver->partitions) {
      for (const FileMeta& f : p->unsorted) {
        std::snprintf(buf, sizeof(buf), "unsorted %llu %llu\n",
                      static_cast<unsigned long long>(f.number),
                      static_cast<unsigned long long>(
                          table_cache_->AccessCount(f.number, f.size)));
        result += buf;
      }
      for (const FileMeta& f : p->sorted) {
        std::snprintf(buf, sizeof(buf), "sorted %llu %llu\n",
                      static_cast<unsigned long long>(f.number),
                      static_cast<unsigned long long>(
                          table_cache_->AccessCount(f.number, f.size)));
        result += buf;
      }
    }
    *value = std::move(result);
    return true;
  }
  return false;
}

std::string UniKVDB::MetricsTextLocked(const VersionData& ver) {
  std::string result = metrics_.registry.ToString();
  uint64_t stalls = 0, stall_us = 0;
  for (const auto& sh : shards_) {
    stalls += sh->write_stalls.load(std::memory_order_relaxed);
    stall_us += sh->stall_micros.load(std::memory_order_relaxed);
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "-- background --\n"
                "flushes=%" PRIu64 " merges=%" PRIu64 " scan_merges=%" PRIu64
                " gcs=%" PRIu64 " splits=%" PRIu64 "\n"
                "flush_mb=%.1f merge_read_mb=%.1f merge_write_mb=%.1f"
                " gc_read_mb=%.1f gc_write_mb=%.1f\n"
                "write_stalls=%" PRIu64 " stall_micros=%" PRIu64 "\n",
                stats_.flushes, stats_.merges, stats_.scan_merges, stats_.gcs,
                stats_.splits, stats_.flush_bytes / 1048576.0,
                stats_.merge_bytes_read / 1048576.0,
                stats_.merge_bytes_written / 1048576.0,
                stats_.gc_bytes_read / 1048576.0,
                stats_.gc_bytes_written / 1048576.0, stalls, stall_us);
  result += buf;
  result += "-- partitions --\n";
  for (const auto& p : ver.partitions) {
    uint64_t garbage = 0;
    auto git = vlog_garbage_.find(p->id);
    if (git != vlog_garbage_.end()) garbage = git->second;
    const uint64_t vlog_bytes = p->VlogBytes();
    // The lower bound is an arbitrary user key and goes through string
    // appends; only the fixed-width numeric tail uses the snprintf buffer.
    PartitionCounters pc;
    auto cit = partition_stats_.find(p->id);
    if (cit != partition_stats_.end()) pc = cit->second;
    const uint64_t physical_written =
        pc.flush_bytes + pc.merge_bytes_written + pc.gc_bytes_written;
    const uint64_t logical = p->LogicalBytes();
    result += "partition ";
    result += std::to_string(p->id);
    result += " [";
    result += p->lower_bound.empty() ? std::string("-inf") : p->lower_bound;
    std::snprintf(
        buf, sizeof(buf),
        "..): unsorted=%zu/%.1fMB sorted=%zu/%.1fMB"
        " logical=%.1fMB vlogs=%zu/%.1fMB garbage=%.1fMB (%.0f%%)"
        " heat_r=%" PRIu64 " heat_w=%" PRIu64 " wamp=%.2f samp=%.2f\n",
        p->unsorted.size(), p->UnsortedBytes() / 1048576.0, p->sorted.size(),
        p->SortedBytes() / 1048576.0, p->LogicalBytes() / 1048576.0,
        p->vlogs.size(), vlog_bytes / 1048576.0, garbage / 1048576.0,
        vlog_bytes == 0 ? 0.0 : 100.0 * garbage / vlog_bytes, pc.heat_reads,
        pc.heat_writes,
        pc.user_bytes_flushed == 0
            ? 0.0
            : static_cast<double>(physical_written) / pc.user_bytes_flushed,
        logical == 0 ? 0.0
                     : static_cast<double>(p->TotalBytes()) / logical);
    result += buf;
  }
  return result;
}

std::string UniKVDB::MetricsJsonLocked(const VersionData& ver) {
  std::string partitions = "[";
  bool first = true;
  for (const auto& p : ver.partitions) {
    if (!first) partitions += ',';
    first = false;

    uint64_t garbage = 0;
    auto git = vlog_garbage_.find(p->id);
    if (git != vlog_garbage_.end()) garbage = git->second;
    const uint64_t vlog_bytes = p->VlogBytes();

    uint64_t index_entries = 0, index_bytes = 0;
    auto iit = indexes_.find(p->id);
    if (iit != indexes_.end()) {
      index_entries = iit->second->NumEntries();
      index_bytes = iit->second->MemoryUsage();
    }

    PartitionCounters pc;
    auto cit = partition_stats_.find(p->id);
    if (cit != partition_stats_.end()) pc = cit->second;

    JsonBuilder pj;
    pj.AddUint("id", p->id);
    pj.AddString("lower_bound", p->lower_bound);
    pj.AddUint("unsorted_tables", p->unsorted.size());
    pj.AddUint("unsorted_bytes", p->UnsortedBytes());
    pj.AddUint("sorted_tables", p->sorted.size());
    pj.AddUint("sorted_bytes", p->SortedBytes());
    pj.AddUint("logical_bytes", p->LogicalBytes());
    pj.AddUint("vlog_files", p->vlogs.size());
    pj.AddUint("vlog_bytes", vlog_bytes);
    pj.AddUint("vlog_garbage_bytes", garbage);
    pj.AddDouble("garbage_ratio",
                 vlog_bytes == 0 ? 0.0
                                 : static_cast<double>(garbage) / vlog_bytes);
    pj.AddUint("index_entries", index_entries);
    pj.AddUint("index_bytes", index_bytes);
    pj.AddUint("flushes", pc.flushes);
    pj.AddUint("merges", pc.merges);
    pj.AddUint("scan_merges", pc.scan_merges);
    pj.AddUint("gcs", pc.gcs);
    pj.AddUint("splits", pc.splits);
    // Heat and amplification gauges: the inputs hotness-aware GC
    // scheduling ranks partitions by.
    const uint64_t physical_written =
        pc.flush_bytes + pc.merge_bytes_written + pc.gc_bytes_written;
    const uint64_t logical = p->LogicalBytes();
    pj.AddUint("heat_reads", pc.heat_reads);
    pj.AddUint("heat_writes", pc.heat_writes);
    pj.AddUint("user_bytes_flushed", pc.user_bytes_flushed);
    pj.AddUint("flush_bytes", pc.flush_bytes);
    pj.AddUint("merge_bytes_written", pc.merge_bytes_written);
    pj.AddUint("gc_bytes_written", pc.gc_bytes_written);
    pj.AddDouble("write_amp",
                 pc.user_bytes_flushed == 0
                     ? 0.0
                     : static_cast<double>(physical_written) /
                           pc.user_bytes_flushed);
    pj.AddDouble("space_amp",
                 logical == 0 ? 0.0
                              : static_cast<double>(p->TotalBytes()) /
                                    logical);
    partitions += pj.Finish();
  }
  partitions += ']';

  uint64_t stalls = 0, stall_us = 0;
  for (const auto& sh : shards_) {
    stalls += sh->write_stalls.load(std::memory_order_relaxed);
    stall_us += sh->stall_micros.load(std::memory_order_relaxed);
  }
  JsonBuilder stats;
  stats.AddUint("flushes", stats_.flushes);
  stats.AddUint("merges", stats_.merges);
  stats.AddUint("scan_merges", stats_.scan_merges);
  stats.AddUint("gcs", stats_.gcs);
  stats.AddUint("splits", stats_.splits);
  stats.AddUint("flush_bytes", stats_.flush_bytes);
  stats.AddUint("merge_bytes_read", stats_.merge_bytes_read);
  stats.AddUint("merge_bytes_written", stats_.merge_bytes_written);
  stats.AddUint("gc_bytes_read", stats_.gc_bytes_read);
  stats.AddUint("gc_bytes_written", stats_.gc_bytes_written);
  stats.AddUint("write_stalls", stalls);
  stats.AddUint("stall_micros", stall_us);

  JsonBuilder root;
  root.AddRaw("engine", metrics_.registry.ToJson());
  root.AddRaw("stats", stats.Finish());
  root.AddRaw("partitions", partitions);
  return root.Finish();
}

}  // namespace unikv
