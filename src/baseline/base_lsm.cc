#include "baseline/base_lsm.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "baseline/baselines.h"
#include "core/db_iter.h"
#include "core/filename.h"
#include "core/merging_iterator.h"
#include "table/cache.h"
#include "util/coding.h"
#include "util/env.h"
#include "wal/log_reader.h"

namespace unikv {
namespace baseline {

Status OpenLeveledDB(const Options& options, const std::string& name,
                     DB** dbptr) {
  return BaseLsmDB::Open(options, name, BaseLsmDB::CompactionStyle::kLeveled,
                         dbptr);
}

Status OpenTieredDB(const Options& options, const std::string& name,
                    DB** dbptr) {
  return BaseLsmDB::Open(options, name, BaseLsmDB::CompactionStyle::kTiered,
                         dbptr);
}

BaseLsmDB::BaseLsmDB(const Options& options, const std::string& dbname,
                     CompactionStyle style)
    : options_(options), dbname_(dbname), style_(style) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  options_.env = env_;
  options_.table_options.bloom_bits_per_key =
      options_.baseline_bloom_bits_per_key;
  if (options_.block_cache_size > 0) {
    block_cache_.reset(NewLRUCache(options_.block_cache_size));
  }
  table_cache_ = std::make_unique<TableCache>(
      env_, dbname_, options_.table_options, block_cache_.get());
  levels_.resize(kNumLevels);
}

BaseLsmDB::~BaseLsmDB() {
  if (mem_ != nullptr) mem_->Unref();
}

Status BaseLsmDB::Open(const Options& options, const std::string& name,
                       CompactionStyle style, DB** dbptr) {
  *dbptr = nullptr;
  auto db = std::make_unique<BaseLsmDB>(options, name, style);
  Status s;
  {
    MutexLock lock(&db->mu_);
    s = db->Recover();
  }
  if (!s.ok()) return s;
  *dbptr = db.release();
  return Status::OK();
}

// ---------------------------------------------------------------- manifest

Status BaseLsmDB::PersistManifest() {
  std::string record;
  PutVarint64(&record, last_sequence_);
  PutVarint64(&record, next_file_number_);
  PutVarint64(&record, wal_number_);
  PutVarint32(&record, kNumLevels);
  for (const auto& runs : levels_) {
    PutVarint32(&record, static_cast<uint32_t>(runs.size()));
    for (const Run& run : runs) {
      PutVarint32(&record, static_cast<uint32_t>(run.size()));
      for (const FileMeta& f : run) {
        PutVarint64(&record, f.number);
        PutVarint64(&record, f.size);
        PutLengthPrefixedSlice(&record, Slice(f.smallest));
        PutLengthPrefixedSlice(&record, Slice(f.largest));
      }
    }
  }
  Status s = manifest_log_->AddRecord(record);
  if (s.ok()) s = manifest_file_->Sync();
  return s;
}

namespace {
struct NullReporter : public log::Reader::Reporter {
  void Corruption(size_t, const Status&) override {}
};

bool DecodeSnapshot(const Slice& record, SequenceNumber* last_seq,
                    uint64_t* next_file, uint64_t* wal_number,
                    std::vector<std::vector<std::vector<FileMeta>>>* levels) {
  Slice input = record;
  uint32_t num_levels;
  if (!GetVarint64(&input, last_seq) || !GetVarint64(&input, next_file) ||
      !GetVarint64(&input, wal_number) || !GetVarint32(&input, &num_levels)) {
    return false;
  }
  levels->assign(num_levels, {});
  for (uint32_t l = 0; l < num_levels; l++) {
    uint32_t num_runs;
    if (!GetVarint32(&input, &num_runs)) return false;
    (*levels)[l].resize(num_runs);
    for (uint32_t r = 0; r < num_runs; r++) {
      uint32_t num_files;
      if (!GetVarint32(&input, &num_files)) return false;
      (*levels)[l][r].resize(num_files);
      for (uint32_t i = 0; i < num_files; i++) {
        FileMeta& f = (*levels)[l][r][i];
        Slice smallest, largest;
        if (!GetVarint64(&input, &f.number) || !GetVarint64(&input, &f.size) ||
            !GetLengthPrefixedSlice(&input, &smallest) ||
            !GetLengthPrefixedSlice(&input, &largest)) {
          return false;
        }
        f.smallest = smallest.ToString();
        f.largest = largest.ToString();
      }
    }
  }
  return true;
}
}  // namespace

Status BaseLsmDB::Recover() {
  // The directory usually exists already; a real creation failure
  // surfaces on the first file open below with a better message.
  (void)env_->CreateDir(dbname_);
  const std::string manifest_name = dbname_ + "/BASELINE-MANIFEST";
  if (env_->FileExists(manifest_name)) {
    if (options_.error_if_exists) {
      return Status::InvalidArgument(dbname_, "exists");
    }
    std::unique_ptr<SequentialFile> file;
    Status s = env_->NewSequentialFile(manifest_name, &file);
    if (!s.ok()) return s;
    NullReporter reporter;
    log::Reader reader(file.get(), &reporter, true);
    Slice record;
    std::string scratch;
    bool any = false;
    // Use the newest intact snapshot record.
    while (reader.ReadRecord(&record, &scratch)) {
      SequenceNumber seq;
      uint64_t next_file, wal_number;
      std::vector<std::vector<Run>> levels;
      if (DecodeSnapshot(record, &seq, &next_file, &wal_number, &levels)) {
        last_sequence_ = seq;
        next_file_number_ = next_file;
        wal_number_ = wal_number;
        levels_ = std::move(levels);
        any = true;
      }
    }
    if (!any) return Status::Corruption("no usable baseline manifest record");
    if (levels_.size() < kNumLevels) levels_.resize(kNumLevels);
  } else if (!options_.create_if_missing) {
    return Status::InvalidArgument(dbname_, "does not exist");
  }

  mem_ = new MemTable(icmp_);
  mem_->Ref();

  // Replay WALs at/after the recorded number.
  std::vector<std::string> children;
  // A listing failure here is NOT ignorable: an empty listing would make
  // recovery silently skip every WAL — acknowledged writes vanish.
  Status ls = env_->GetChildren(dbname_, &children);
  if (!ls.ok()) return ls;
  std::vector<uint64_t> wals;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) && type == FileType::kWalFile &&
        number >= wal_number_) {
      wals.push_back(number);
    }
  }
  std::sort(wals.begin(), wals.end());
  SequenceNumber max_seq = last_sequence_;
  for (uint64_t number : wals) {
    Status s = ReplayWal(number, &max_seq);
    if (!s.ok()) return s;
  }
  last_sequence_ = max_seq;

  // Fresh WAL + manifest.
  wal_number_ = next_file_number_++;
  std::unique_ptr<WritableFile> lfile;
  Status s = env_->NewWritableFile(WalFileName(dbname_, wal_number_), &lfile);
  if (!s.ok()) return s;
  wal_file_ = std::move(lfile);
  wal_ = std::make_unique<log::Writer>(wal_file_.get());

  std::unique_ptr<WritableFile> mfile;
  s = env_->NewWritableFile(manifest_name, &mfile);  // Truncate + rewrite.
  if (!s.ok()) return s;
  manifest_file_ = std::move(mfile);
  manifest_log_ = std::make_unique<log::Writer>(manifest_file_.get());

  if (mem_->NumEntries() > 0) {
    s = FlushLocked();
    if (!s.ok()) return s;
  } else {
    s = PersistManifest();
    if (!s.ok()) return s;
  }
  RemoveObsoleteFiles();
  return Status::OK();
}

Status BaseLsmDB::ReplayWal(uint64_t number, SequenceNumber* max_seq) {
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(WalFileName(dbname_, number), &file);
  if (!s.ok()) return s;
  NullReporter reporter;
  log::Reader reader(file.get(), &reporter, true);
  Slice record;
  std::string scratch;
  WriteBatch batch;
  while (reader.ReadRecord(&record, &scratch)) {
    if (record.size() < 12) continue;
    batch.SetContents(record);
    s = batch.InsertInto(mem_);
    if (!s.ok()) return s;
    SequenceNumber last = batch.Sequence() + batch.Count() - 1;
    if (last > *max_seq) *max_seq = last;
  }
  return Status::OK();
}

Status BaseLsmDB::SwitchWal() {
  wal_number_ = next_file_number_++;
  std::unique_ptr<WritableFile> lfile;
  Status s = env_->NewWritableFile(WalFileName(dbname_, wal_number_), &lfile);
  if (!s.ok()) return s;
  wal_file_ = std::move(lfile);
  wal_ = std::make_unique<log::Writer>(wal_file_.get());
  return Status::OK();
}

// ------------------------------------------------------------- write path

Status BaseLsmDB::Put(const WriteOptions& options, const Slice& key,
                      const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status BaseLsmDB::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status BaseLsmDB::Write(const WriteOptions& options, WriteBatch* updates) {
  MutexLock lock(&mu_);
  updates->SetSequence(last_sequence_ + 1);
  last_sequence_ += updates->Count();

  Status s = wal_->AddRecord(updates->Contents());
  if (s.ok() && options.sync) {
    s = wal_file_->Sync();
  }
  if (s.ok()) {
    s = updates->InsertInto(mem_);
  }
  if (s.ok() && mem_->ApproximateMemoryUsage() > options_.write_buffer_size) {
    s = FlushLocked();
  }
  return s;
}

Status BaseLsmDB::FlushMemTable() {
  MutexLock lock(&mu_);
  if (mem_->NumEntries() == 0) return Status::OK();
  return FlushLocked();
}

Status BaseLsmDB::CompactAll() {
  MutexLock lock(&mu_);
  Status s;
  if (mem_->NumEntries() > 0) {
    s = FlushLocked();
    if (!s.ok()) return s;
  }
  // Push everything to a single run at the deepest populated level.
  std::vector<const Run*> runs;
  int deepest = 0;
  for (int l = 0; l < kNumLevels; l++) {
    for (const Run& run : levels_[l]) {
      runs.push_back(&run);
      deepest = l;
    }
  }
  if (runs.size() <= 1) return Status::OK();
  Run merged;
  s = MergeRuns(runs, true, &merged);
  if (!s.ok()) return s;
  for (auto& level : levels_) level.clear();
  int target = std::max(deepest, 1);
  levels_[target].push_back(std::move(merged));
  s = PersistManifest();
  RemoveObsoleteFiles();
  return s;
}

// ------------------------------------------------------------- compaction

uint64_t BaseLsmDB::LevelBytes(int level) const {
  uint64_t n = 0;
  for (const Run& run : levels_[level]) {
    for (const FileMeta& f : run) n += f.size;
  }
  return n;
}

uint64_t BaseLsmDB::LevelTarget(int level) const {
  uint64_t target = options_.max_bytes_for_level_base;
  for (int i = 1; i < level; i++) target *= 10;
  return target;
}

bool BaseLsmDB::NeedsCompaction(int* level) const {
  if (style_ == CompactionStyle::kLeveled) {
    if (static_cast<int>(levels_[0].size()) >=
        options_.l0_compaction_trigger) {
      *level = 0;
      return true;
    }
    for (int l = 1; l < kNumLevels - 1; l++) {
      if (!levels_[l].empty() && LevelBytes(l) > LevelTarget(l)) {
        *level = l;
        return true;
      }
    }
  } else {
    for (int l = 0; l < kNumLevels - 1; l++) {
      if (static_cast<int>(levels_[l].size()) >=
          options_.tiered_runs_per_level) {
        *level = l;
        return true;
      }
    }
  }
  return false;
}

Status BaseLsmDB::MergeRuns(const std::vector<const Run*>& runs,
                            bool to_last_level, Run* result) {
  std::vector<Iterator*> children;
  for (const Run* run : runs) {
    std::vector<Iterator*> iters;
    for (const FileMeta& f : *run) {
      iters.push_back(table_cache_->NewIterator(f.number, f.size));
      compact_bytes_read_ += f.size;
    }
    children.push_back(NewConcatenatingIterator(icmp_, std::move(iters)));
  }
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(icmp_, std::move(children)));

  std::unique_ptr<WritableFile> file;
  std::unique_ptr<TableBuilder> builder;
  Status s;

  auto rotate = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status rs = builder->Finish();
    if (rs.ok()) rs = file->Sync();
    if (rs.ok()) rs = file->Close();
    if (rs.ok()) {
      result->back().size = builder->FileSize();
      compact_bytes_written_ += builder->FileSize();
    }
    builder.reset();
    file.reset();
    return rs;
  };

  std::string current_user_key;
  bool has_current = false;
  for (merged->SeekToFirst(); s.ok() && merged->Valid(); merged->Next()) {
    Slice internal_key = merged->key();
    ParsedInternalKey ikey;
    if (!ParseInternalKey(internal_key, &ikey)) {
      s = Status::Corruption("corrupt key in baseline compaction");
      break;
    }
    if (has_current && ikey.user_key.compare(Slice(current_user_key)) == 0) {
      continue;  // Shadowed older version.
    }
    current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
    has_current = true;
    if (to_last_level && ikey.type == kTypeDeletion) {
      continue;  // Tombstone reaching the bottom dies.
    }
    if (builder == nullptr) {
      uint64_t number = next_file_number_++;
      result->emplace_back();
      result->back().number = number;
      s = env_->NewWritableFile(TableFileName(dbname_, number), &file);
      if (!s.ok()) break;
      builder = std::make_unique<TableBuilder>(options_.table_options,
                                               file.get());
    }
    builder->Add(internal_key, merged->value());
    if (result->back().smallest.empty()) {
      result->back().smallest = current_user_key;
    }
    result->back().largest = current_user_key;
    if (builder->FileSize() >= options_.sorted_table_size) {
      s = rotate();
      if (!s.ok()) break;
    }
  }
  if (s.ok()) s = merged->status();
  if (s.ok()) {
    s = rotate();
  } else if (builder != nullptr) {
    builder->Abandon();
  }
  if (s.ok()) compactions_++;
  return s;
}

Status BaseLsmDB::CompactLevel(int level) {
  // Is the output the deepest populated level (tombstones can die)?
  bool deeper_data = false;
  for (int l = level + 2; l < kNumLevels; l++) {
    if (!levels_[l].empty()) deeper_data = true;
  }

  std::vector<const Run*> inputs;
  if (style_ == CompactionStyle::kLeveled) {
    // Merge every run of `level` (newest first) plus the run below.
    for (const Run& run : levels_[level]) inputs.push_back(&run);
    for (const Run& run : levels_[level + 1]) inputs.push_back(&run);
  } else {
    // Tiered: merge this level's runs only; the next level just gains a
    // run (no rewrite of existing data below).
    for (const Run& run : levels_[level]) inputs.push_back(&run);
    if (!levels_[level + 1].empty()) deeper_data = true;
  }

  Run merged;
  Status s = MergeRuns(inputs, !deeper_data, &merged);
  if (!s.ok()) return s;

  levels_[level].clear();
  if (style_ == CompactionStyle::kLeveled) {
    levels_[level + 1].clear();
    levels_[level + 1].push_back(std::move(merged));
  } else {
    levels_[level + 1].insert(levels_[level + 1].begin(), std::move(merged));
  }
  return Status::OK();
}

Status BaseLsmDB::FlushLocked() {
  // Build one table run from the memtable.
  uint64_t number = next_file_number_++;
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(TableFileName(dbname_, number), &file);
  if (!s.ok()) return s;
  TableBuilder builder(options_.table_options, file.get());

  FileMeta meta;
  meta.number = number;
  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    builder.Add(iter->key(), iter->value());
    Slice user_key = ExtractUserKey(iter->key());
    if (meta.smallest.empty()) meta.smallest = user_key.ToString();
    meta.largest = user_key.ToString();
  }
  s = iter->status();
  if (s.ok()) {
    s = builder.Finish();
  } else {
    builder.Abandon();
  }
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) return s;
  meta.size = builder.FileSize();

  Run run;
  run.push_back(std::move(meta));
  levels_[0].insert(levels_[0].begin(), std::move(run));  // Newest first.

  mem_->Unref();
  mem_ = new MemTable(icmp_);
  mem_->Ref();
  s = SwitchWal();
  if (!s.ok()) return s;

  int level;
  while (s.ok() && NeedsCompaction(&level)) {
    s = CompactLevel(level);
  }
  if (s.ok()) s = PersistManifest();
  RemoveObsoleteFiles();
  return s;
}

// -------------------------------------------------------------- read path

Status BaseLsmDB::SearchRun(const Run& run, const LookupKey& lkey,
                            std::string* value, bool* found, Status* result) {
  const Slice user_key = lkey.user_key();
  // Binary search for the file that may contain user_key.
  int lo = 0, hi = static_cast<int>(run.size()) - 1, target = -1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (Slice(run[mid].largest).compare(user_key) < 0) {
      lo = mid + 1;
    } else {
      target = mid;
      hi = mid - 1;
    }
  }
  if (target < 0 || user_key.compare(Slice(run[target].smallest)) < 0) {
    return Status::OK();
  }
  const FileMeta& f = run[target];
  if (!table_cache_->KeyMayMatch(f.number, f.size, user_key)) {
    return Status::OK();  // Bloom says no.
  }
  bool hit = false;
  std::string found_key, found_value;
  Status s = table_cache_->Get(f.number, f.size, lkey.internal_key(), &hit,
                               &found_key, &found_value);
  if (!s.ok()) return s;
  if (hit && ExtractUserKey(found_key) == user_key) {
    *found = true;
    if (ExtractValueType(found_key) == kTypeDeletion) {
      *result = Status::NotFound(Slice());
    } else {
      *value = std::move(found_value);
      *result = Status::OK();
    }
  }
  return Status::OK();
}

Status BaseLsmDB::Get(const ReadOptions& /*options*/, const Slice& key,
                      std::string* value) {
  MutexLock lock(&mu_);
  LookupKey lkey(key, last_sequence_);
  Status s;
  if (mem_->Get(lkey, value, &s)) {
    return s;
  }
  for (const auto& runs : levels_) {
    for (const Run& run : runs) {
      bool found = false;
      Status result;
      s = SearchRun(run, lkey, value, &found, &result);
      if (!s.ok()) return s;
      if (found) return result;
    }
  }
  return Status::NotFound(Slice());
}

Iterator* BaseLsmDB::NewIterator(const ReadOptions& /*options*/) {
  MutexLock lock(&mu_);
  std::vector<Iterator*> children;
  mem_->Ref();
  Iterator* mem_iter = mem_->NewIterator();
  MemTable* mem = mem_;
  mem_iter->RegisterCleanup([mem] { mem->Unref(); });
  children.push_back(mem_iter);
  for (const auto& runs : levels_) {
    for (const Run& run : runs) {
      std::vector<Iterator*> iters;
      for (const FileMeta& f : run) {
        iters.push_back(table_cache_->NewIterator(f.number, f.size));
      }
      children.push_back(NewConcatenatingIterator(icmp_, std::move(iters)));
    }
  }
  Iterator* merged = NewMergingIterator(icmp_, std::move(children));
  return new DBIter(icmp_, merged, last_sequence_, nullptr, false);
}

// -------------------------------------------------------------- properties

bool BaseLsmDB::GetProperty(const Slice& property, std::string* value) {
  MutexLock lock(&mu_);
  char buf[200];
  if (property == Slice("db.stats")) {
    std::snprintf(buf, sizeof(buf),
                  "compactions=%" PRIu64 " compact_read_mb=%.1f"
                  " compact_write_mb=%.1f",
                  compactions_, compact_bytes_read_ / 1048576.0,
                  compact_bytes_written_ / 1048576.0);
    *value = buf;
    return true;
  }
  if (property == Slice("db.num-files")) {
    size_t n = 0;
    for (const auto& runs : levels_) {
      for (const Run& run : runs) n += run.size();
    }
    std::snprintf(buf, sizeof(buf), "%zu", n);
    *value = buf;
    return true;
  }
  if (property == Slice("db.sstables")) {
    std::string result;
    for (int l = 0; l < kNumLevels; l++) {
      if (levels_[l].empty()) continue;
      size_t files = 0;
      for (const Run& run : levels_[l]) files += run.size();
      std::snprintf(buf, sizeof(buf), "level %d: runs=%zu files=%zu mb=%.1f\n",
                    l, levels_[l].size(), files, LevelBytes(l) / 1048576.0);
      result += buf;
    }
    *value = std::move(result);
    return true;
  }
  if (property == Slice("db.table-accesses")) {
    std::string result;
    for (int l = 0; l < kNumLevels; l++) {
      for (const Run& run : levels_[l]) {
        for (const FileMeta& f : run) {
          std::snprintf(buf, sizeof(buf), "level%d %llu %llu\n", l,
                        static_cast<unsigned long long>(f.number),
                        static_cast<unsigned long long>(
                            table_cache_->AccessCount(f.number, f.size)));
          result += buf;
        }
      }
    }
    *value = std::move(result);
    return true;
  }
  return false;
}

void BaseLsmDB::RemoveObsoleteFiles() {
  std::set<uint64_t> live;
  for (const auto& runs : levels_) {
    for (const Run& run : runs) {
      for (const FileMeta& f : run) live.insert(f.number);
    }
  }
  std::vector<std::string> children;
  if (!env_->GetChildren(dbname_, &children).ok()) return;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    bool keep = true;
    if (type == FileType::kTableFile) {
      keep = live.count(number) > 0;
    } else if (type == FileType::kWalFile) {
      keep = number >= wal_number_;
    }
    if (!keep) {
      if (type == FileType::kTableFile) table_cache_->Evict(number);
      // Best-effort sweep: a leftover file wastes space but is re-swept
      // on the next pass; failing the job over it helps nobody.
      (void)env_->RemoveFile(dbname_ + "/" + child);
    }
  }
}

}  // namespace baseline
}  // namespace unikv
