// Randomized differential test for the two-level hash index: ~50k seeded
// insert/overwrite/lookup/clear operations checked against a reference
// unordered_map. The index's contract is one-sided — Lookup returns a
// *superset* of the true locations (keyTag collisions add false
// candidates, never false negatives) — so the invariant checked is that
// the latest table id recorded for a key always appears among its
// candidates. A 20k-key pool over 16-bit tags guarantees plenty of real
// tag collisions.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/hash_index.h"
#include "util/random.h"

namespace unikv {
namespace {

std::string FuzzKey(uint32_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "fz%07u", i);
  return buf;
}

class HashIndexFuzz {
 public:
  explicit HashIndexFuzz(uint32_t seed, size_t expected, int num_hashes)
      : rnd_(seed), index_(expected, num_hashes) {}

  void Run(int total_ops) {
    for (int op = 0; op < total_ops; op++) {
      const uint32_t dice = rnd_.Uniform(100);
      if (dice < 55) {
        InsertRandom();
      } else if (dice < 70) {
        OverwriteExisting();
      } else if (dice < 98) {
        LookupRandom();
      } else {
        // "Delete": the index has no per-key removal (entries only vanish
        // at Clear), so a delete only shrinks the reference — candidates
        // for the key may legally keep appearing.
        DeleteFromReference();
      }
      if (op > 0 && op % 1000 == 0 && rnd_.Uniform(4) == 0) {
        EndEpoch();
      }
      if (op > 0 && op % 10000 == 0) {
        CheckpointRoundTrip();
      }
    }
    VerifyAll();
  }

 private:
  void InsertRandom() {
    std::string key = FuzzKey(rnd_.Uniform(20000));
    uint16_t table_id = static_cast<uint16_t>(rnd_.Uniform(0xFFFF));
    index_.Insert(key, table_id);
    reference_[key] = table_id;
  }

  void OverwriteExisting() {
    if (reference_.empty()) return InsertRandom();
    // Re-inserting an existing key with a new table id models a newer
    // version landing in a newer UnsortedStore table.
    auto it = reference_.begin();
    std::advance(it, rnd_.Uniform(
                         static_cast<int>(std::min<size_t>(reference_.size(),
                                                           64))));
    uint16_t table_id = static_cast<uint16_t>(rnd_.Uniform(0xFFFF));
    index_.Insert(it->first, table_id);
    it->second = table_id;
  }

  void LookupRandom() {
    std::string key = FuzzKey(rnd_.Uniform(20000));
    CheckKey(key);
  }

  void DeleteFromReference() {
    if (reference_.empty()) return;
    auto it = reference_.begin();
    reference_.erase(it);
  }

  void EndEpoch() {
    // The UnsortedStore merged into the SortedStore: everything drops.
    index_.Clear();
    reference_.clear();
    ASSERT_EQ(0u, index_.NumEntries());
    std::vector<uint16_t> candidates;
    index_.Lookup(FuzzKey(rnd_.Uniform(20000)), &candidates);
    EXPECT_TRUE(candidates.empty()) << "candidates survived Clear()";
  }

  void CheckpointRoundTrip() {
    std::string image;
    index_.EncodeTo(&image);
    HashIndex restored(/*expected_entries=*/1, /*num_hashes=*/2);
    ASSERT_TRUE(restored.DecodeFrom(image).ok());
    EXPECT_EQ(index_.NumEntries(), restored.NumEntries());
    // Sample the reference: the restored index must serve the same
    // contract as the live one.
    int checked = 0;
    for (const auto& [key, table_id] : reference_) {
      std::vector<uint16_t> candidates;
      restored.Lookup(key, &candidates);
      EXPECT_NE(candidates.end(),
                std::find(candidates.begin(), candidates.end(), table_id))
          << "restored index lost " << key;
      if (++checked >= 500) break;
    }
  }

  void CheckKey(const std::string& key) {
    auto it = reference_.find(key);
    if (it == reference_.end()) return;  // Superset contract: nothing to say.
    std::vector<uint16_t> candidates;
    index_.Lookup(key, &candidates);
    EXPECT_NE(candidates.end(),
              std::find(candidates.begin(), candidates.end(), it->second))
        << "latest table id missing for " << key;
  }

  void VerifyAll() {
    for (const auto& [key, table_id] : reference_) {
      std::vector<uint16_t> candidates;
      index_.Lookup(key, &candidates);
      ASSERT_NE(candidates.end(),
                std::find(candidates.begin(), candidates.end(), table_id))
          << "final sweep: latest table id missing for " << key;
    }
  }

  Random rnd_;
  HashIndex index_;
  std::unordered_map<std::string, uint16_t> reference_;
};

TEST(HashIndexFuzzTest, FiftyThousandOpsSeed1) {
  HashIndexFuzz fuzz(/*seed=*/20260805, /*expected=*/16384, /*num_hashes=*/2);
  fuzz.Run(50000);
}

TEST(HashIndexFuzzTest, UndersizedIndexForcesOverflowChains) {
  // An index sized for 64 entries but fed thousands: nearly every insert
  // lands in an overflow chain, stressing chain order and traversal.
  HashIndexFuzz fuzz(/*seed=*/1234577, /*expected=*/64, /*num_hashes=*/2);
  fuzz.Run(20000);
}

TEST(HashIndexFuzzTest, SingleHashDegeneratesGracefully) {
  HashIndexFuzz fuzz(/*seed=*/42, /*expected=*/4096, /*num_hashes=*/1);
  fuzz.Run(20000);
}

}  // namespace
}  // namespace unikv
