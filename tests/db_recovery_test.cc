// Crash-consistency tests using the in-memory Env's power-failure
// simulation: WAL replay, torn tails, manifest atomicity across
// merge/GC/split, hash-index checkpoint recovery, orphan sweeping.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/db.h"
#include "test_util.h"
#include "util/random.h"

namespace unikv {
namespace {

Options CrashOptions(Env* env) {
  Options opt;
  opt.env = env;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.partition_size_limit = 512 * 1024;
  opt.sorted_table_size = 32 * 1024;
  opt.gc_garbage_threshold = 64 * 1024;
  return opt;
}

class DbRecoveryTest : public testing::Test {
 protected:
  DbRecoveryTest() : env_(NewMemEnv()) {}

  void Open() {
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(CrashOptions(env_.get()), "/db", &raw).ok());
    db_.reset(raw);
  }

  /// Simulates a hard crash: drop the DB object (without clean shutdown
  /// semantics mattering — unsynced bytes vanish first) and reopen.
  void Crash() {
    db_.reset();
    env_->DropUnsyncedData();
    Open();
  }

  std::string Get(const std::string& key) {
    std::string value;
    Status s = db_->Get(ReadOptions(), key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERR: " + s.ToString();
    return value;
  }

  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbRecoveryTest, SyncedWritesSurviveCrash) {
  Open();
  WriteOptions sync;
  sync.sync = true;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Put(sync, test::TestKey(i), test::TestValue(i)).ok());
  }
  Crash();
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ(test::TestValue(i), Get(test::TestKey(i))) << i;
  }
}

TEST_F(DbRecoveryTest, UnsyncedTailMayVanishButPrefixSurvives) {
  Open();
  WriteOptions sync;
  sync.sync = true;
  WriteOptions nosync;
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(db_->Put(sync, test::TestKey(i), "durable").ok());
  }
  for (int i = 30; i < 60; i++) {
    ASSERT_TRUE(db_->Put(nosync, test::TestKey(i), "volatile").ok());
  }
  Crash();
  for (int i = 0; i < 30; i++) {
    EXPECT_EQ("durable", Get(test::TestKey(i))) << i;
  }
  // Unsynced writes may or may not survive; they must never corrupt.
  for (int i = 30; i < 60; i++) {
    std::string r = Get(test::TestKey(i));
    EXPECT_TRUE(r == "volatile" || r == "NOT_FOUND") << i << " " << r;
  }
}

TEST_F(DbRecoveryTest, FlushedDataSurvivesWithoutWal) {
  Open();
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Crash();
  for (int i = 0; i < 500; i += 7) {
    EXPECT_EQ(test::TestValue(i), Get(test::TestKey(i))) << i;
  }
}

TEST_F(DbRecoveryTest, MergedStateSurvivesCrash) {
  Open();
  std::map<std::string, std::string> model;
  for (int i = 0; i < 800; i++) {
    std::string key = test::TestKey(i);
    std::string value = test::TestValue(i, 512);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(db_->CompactAll().ok());  // Data in SortedStore + vlogs.
  Crash();
  for (const auto& [key, value] : model) {
    EXPECT_EQ(value, Get(key)) << key;
  }
  // The recovered DB remains fully functional.
  ASSERT_TRUE(db_->Put(WriteOptions(), "post-crash", "ok").ok());
  EXPECT_EQ("ok", Get("post-crash"));
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ("ok", Get("post-crash"));
}

TEST_F(DbRecoveryTest, SplitSurvivesCrash) {
  Open();
  for (int i = 0; i < 2500; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 512))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string parts;
  ASSERT_TRUE(db_->GetProperty("db.num-partitions", &parts));
  ASSERT_GT(std::stoi(parts), 1);
  Crash();
  std::string parts_after;
  ASSERT_TRUE(db_->GetProperty("db.num-partitions", &parts_after));
  EXPECT_EQ(parts, parts_after);
  for (int i = 0; i < 2500; i += 31) {
    EXPECT_EQ(test::TestValue(i, 512), Get(test::TestKey(i))) << i;
  }
}

TEST_F(DbRecoveryTest, GcSurvivesCrash) {
  Open();
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 300; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                           test::TestValue(i + round * 31, 512))
                      .ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
  }
  Crash();
  for (int i = 0; i < 300; i++) {
    EXPECT_EQ(test::TestValue(i + 4 * 31, 512), Get(test::TestKey(i))) << i;
  }
}

TEST_F(DbRecoveryTest, RepeatedCrashesWithRandomWorkload) {
  Open();
  std::map<std::string, std::string> durable_model;
  Random rnd(2024);
  WriteOptions sync;
  sync.sync = true;
  for (int crash_round = 0; crash_round < 4; crash_round++) {
    for (int i = 0; i < 400; i++) {
      std::string key = test::TestKey(rnd.Uniform(300));
      if (rnd.OneIn(5)) {
        ASSERT_TRUE(db_->Delete(sync, key).ok());
        durable_model.erase(key);
      } else {
        std::string value = test::TestValue(crash_round * 1000 + i, 256);
        ASSERT_TRUE(db_->Put(sync, key, value).ok());
        durable_model[key] = value;
      }
    }
    if (crash_round % 2 == 0) {
      ASSERT_TRUE(db_->FlushMemTable().ok());
    }
    Crash();
    for (const auto& [key, value] : durable_model) {
      ASSERT_EQ(value, Get(key)) << key << " round " << crash_round;
    }
  }
}

TEST_F(DbRecoveryTest, CheckpointedIndexRecoversConsistently) {
  // Load with checkpointing enabled; crash; recovered reads must be
  // identical to a full-rescan recovery.
  Open();
  for (int i = 0; i < 600; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), test::TestKey(i), test::TestValue(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  // Overwrite a subset so the index has multi-version entries.
  for (int i = 0; i < 600; i += 3) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i), "newest").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Crash();
  for (int i = 0; i < 600; i++) {
    if (i % 3 == 0) {
      EXPECT_EQ("newest", Get(test::TestKey(i))) << i;
    } else {
      EXPECT_EQ(test::TestValue(i), Get(test::TestKey(i))) << i;
    }
  }
}

}  // namespace
}  // namespace unikv
