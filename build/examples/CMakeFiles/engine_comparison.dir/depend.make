# Empty dependencies file for engine_comparison.
# This may be replaced when dependencies are built.
