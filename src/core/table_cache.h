#ifndef UNIKV_CORE_TABLE_CACHE_H_
#define UNIKV_CORE_TABLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/iterator.h"
#include "core/options.h"
#include "table/table.h"
#include "util/status.h"

namespace unikv {

class Cache;
class Env;

/// Caches open Table readers keyed by file number. Thread-safe.
class TableCache {
 public:
  /// `block_cache` may be null. Both must outlive the cache.
  TableCache(Env* env, std::string dbname, const TableOptions& table_options,
             Cache* block_cache, int max_open_tables = 500);
  ~TableCache();

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  /// Returns an iterator over the named table. If `tableptr` is non-null,
  /// also stores the Table* backing the iterator (valid while the iterator
  /// lives). `fill_cache` false keeps blocks this iterator reads out of
  /// the block cache (ReadOptions::fill_cache).
  Iterator* NewIterator(uint64_t file_number, uint64_t file_size,
                        const Table** tableptr = nullptr,
                        bool fill_cache = true);

  /// Seeks `internal_key` in the named table; see Table::Get.
  Status Get(uint64_t file_number, uint64_t file_size,
             const Slice& internal_key, bool* found, std::string* key_out,
             std::string* value_out);

  /// Keeps the LRU handles of the tables one batched operation touches
  /// pinned until destruction, so N lookups of the same table inside one
  /// MultiGet batch cost one cache Lookup/Release pair instead of N
  /// (per-key handle churn is pure shared-LRU contention). Single-caller;
  /// must not outlive the TableCache.
  class BatchPin {
   public:
    explicit BatchPin(TableCache* cache) : cache_(cache) {}
    ~BatchPin();

    BatchPin(const BatchPin&) = delete;
    BatchPin& operator=(const BatchPin&) = delete;

   private:
    friend class TableCache;
    TableCache* const cache_;
    /// file_number -> pinned handle (release deferred to ~BatchPin).
    std::unordered_map<uint64_t, void*> handles_;
  };

  /// Get through `pin`: the table handle is resolved via the pin's local
  /// map first and stays pinned for the pin's lifetime. `probe` (optional)
  /// additionally carries the last resolved data block between calls; it
  /// must be released before `pin` is destroyed.
  Status GetPinned(BatchPin* pin, uint64_t file_number, uint64_t file_size,
                   const Slice& internal_key, bool* found,
                   std::string* key_out, std::string* value_out,
                   Table::Probe* probe = nullptr);

  /// Bloom pre-check for a user key (always true if no filter).
  bool KeyMayMatch(uint64_t file_number, uint64_t file_size,
                   const Slice& user_key);

  /// Per-table access count (Fig. 2 instrumentation); 0 if not open.
  uint64_t AccessCount(uint64_t file_number, uint64_t file_size);

  /// Drops the cached reader for a deleted file.
  void Evict(uint64_t file_number);

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size,
                   void** handle_out);

  Env* const env_;
  const std::string dbname_;
  const TableOptions table_options_;
  Cache* const block_cache_;
  std::unique_ptr<Cache> cache_;
};

}  // namespace unikv

#endif  // UNIKV_CORE_TABLE_CACHE_H_
