// Value-log garbage collection tests: space is reclaimed, pointers are
// rewritten correctly, shared logs after a split are lazily segregated,
// and the store stays correct through many update/GC cycles.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/db.h"
#include "core/filename.h"
#include "test_util.h"
#include "util/fault_injection_env.h"
#include "util/random.h"

namespace unikv {
namespace {

Options GcOptions() {
  Options opt;
  opt.write_buffer_size = 32 * 1024;
  opt.unsorted_limit = 128 * 1024;
  opt.partition_size_limit = 8 * 1024 * 1024;
  opt.sorted_table_size = 32 * 1024;
  opt.gc_garbage_threshold = 64 * 1024;  // Aggressive GC.
  return opt;
}

uint64_t DirBytes(const std::string& dir, FileType want) {
  std::vector<std::string> children;
  // Empty-on-failure: the byte totals then read 0 and the assertions
  // comparing before/after sizes fail loudly.
  (void)Env::Default()->GetChildren(dir, &children);
  uint64_t total = 0;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) && type == want) {
      uint64_t size = 0;
      (void)Env::Default()->GetFileSize(dir + "/" + child, &size);
      total += size;
    }
  }
  return total;
}

class DbGcTest : public testing::Test {
 protected:
  void Open(const Options& opt, const std::string& name) {
    dir_ = test::NewTestDir(name);
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(opt, dir_, &raw).ok());
    db_.reset(raw);
  }

  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbGcTest, GcReclaimsOverwrittenValues) {
  Open(GcOptions(), "gc_reclaim");
  const int kKeys = 300;
  const int kValueSize = 1024;

  // Overwrite the same keys many times: without GC the logs would hold
  // every version.
  for (int round = 0; round < 8; round++) {
    for (int i = 0; i < kKeys; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                           test::TestValue(i * 1000 + round, kValueSize))
                      .ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
  }

  std::string stats;
  ASSERT_TRUE(db_->GetProperty("db.stats", &stats));
  EXPECT_NE(stats.find("gcs="), std::string::npos);
  // GC must have run at least once under this churn.
  EXPECT_EQ(stats.find("gcs=0 "), std::string::npos) << stats;

  // Live data is ~300 KiB; the value logs must be nowhere near the
  // 8 rounds x 300 KiB of total writes.
  uint64_t vlog_bytes = DirBytes(dir_, FileType::kValueLogFile);
  EXPECT_LT(vlog_bytes, 3u * kKeys * kValueSize) << "GC failed to reclaim";

  // And everything still reads back the newest version.
  for (int i = 0; i < kKeys; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i * 1000 + 7, kValueSize), value);
  }
}

TEST_F(DbGcTest, DeletedValuesAreCollected) {
  Open(GcOptions(), "gc_deletes");
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                         test::TestValue(i, 1024))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  // Delete 90% of the data.
  for (int i = 0; i < 400; i++) {
    if (i % 10 != 0) {
      ASSERT_TRUE(db_->Delete(WriteOptions(), test::TestKey(i)).ok());
    }
  }
  ASSERT_TRUE(db_->CompactAll().ok());

  uint64_t vlog_bytes = DirBytes(dir_, FileType::kValueLogFile);
  EXPECT_LT(vlog_bytes, 200u * 1024) << "dead values not reclaimed";
  for (int i = 0; i < 400; i++) {
    std::string value;
    Status s = db_->Get(ReadOptions(), test::TestKey(i), &value);
    if (i % 10 == 0) {
      ASSERT_TRUE(s.ok()) << i;
      EXPECT_EQ(test::TestValue(i, 1024), value);
    } else {
      EXPECT_TRUE(s.IsNotFound()) << i;
    }
  }
}

TEST_F(DbGcTest, SharedLogsAfterSplitAreLazilySegregated) {
  Options opt = GcOptions();
  opt.partition_size_limit = 512 * 1024;  // Force splits.
  Open(opt, "gc_split");
  std::map<std::string, std::string> model;
  for (int i = 0; i < 2000; i++) {
    std::string key = test::TestKey(i);
    std::string value = test::TestValue(i, 512);
    ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
    model[key] = value;
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string parts;
  ASSERT_TRUE(db_->GetProperty("db.num-partitions", &parts));
  ASSERT_GT(std::stoi(parts), 1);

  // Churn one half of the key space so its partition GCs; the shared old
  // logs must survive until both sides have collected, and reads from
  // the *other* partition must keep working throughout.
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < 1000; i++) {
      std::string key = test::TestKey(i);
      std::string value = test::TestValue(i + round * 7777, 512);
      ASSERT_TRUE(db_->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    }
    ASSERT_TRUE(db_->CompactAll().ok());
    for (int i = 1000; i < 2000; i += 97) {
      std::string key = test::TestKey(i);
      std::string value;
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok())
          << key << " lost after GC round " << round;
      EXPECT_EQ(model[key], value);
    }
  }
  for (const auto& [key, expected] : model) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
    EXPECT_EQ(expected, value);
  }
}

TEST_F(DbGcTest, NoKvSeparationMeansNoVlogs) {
  Options opt = GcOptions();
  opt.enable_kv_separation = false;
  Open(opt, "gc_nosep");
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                         test::TestValue(i, 1024))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ(0u, DirBytes(dir_, FileType::kValueLogFile));
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), test::TestKey(5), &value).ok());
  EXPECT_EQ(test::TestValue(5, 1024), value);
}

TEST_F(DbGcTest, ObsoleteFilesAreDeleted) {
  Open(GcOptions(), "gc_files");
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), test::TestKey(i),
                           test::TestValue(i + round, 1024))
                      .ok());
    }
    ASSERT_TRUE(db_->CompactAll().ok());
  }
  // After settling, the directory holds only the live file set: no temp
  // files and no orphaned WALs.
  std::vector<std::string> children;
  ASSERT_TRUE(Env::Default()->GetChildren(dir_, &children).ok());
  int wals = 0, tmps = 0;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) continue;
    if (type == FileType::kWalFile || type == FileType::kShardWalFile) {
      wals++;
    }
    if (type == FileType::kTempFile) tmps++;
  }
  EXPECT_LE(wals, 2);
  EXPECT_EQ(0, tmps);
}

// ----------------------------------------------------------- GC + crashes

namespace {

int CountVlogs(Env* env, const std::string& dir) {
  std::vector<std::string> children;
  // Empty-on-failure: a zero vlog count fails the caller's assertion.
  (void)env->GetChildren(dir, &children);
  int n = 0;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) &&
        type == FileType::kValueLogFile) {
      n++;
    }
  }
  return n;
}

}  // namespace

// Crash in the window between the GC install (pointer-rewrite merge +
// manifest sync) and the deletion of the old value logs. Reopen must
// neither lose live values nor double-free the leftover log files.
TEST_F(DbGcTest, CrashBetweenGcInstallAndOldLogDeletion) {
  std::unique_ptr<MemEnv> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  Options opt = GcOptions();
  opt.env = &fenv;
  const std::string name = "/gc_crash";
  const int kKeys = 300;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(opt, name, &raw).ok());
  std::unique_ptr<DB> db(raw);
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), test::TestKey(i),
                        test::TestValue(i, 1024))
                    .ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());
  // Overwrites make the first vlog's records garbage, arming GC.
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), test::TestKey(i),
                        test::TestValue(i + 5000, 1024))
                    .ok());
  }
  // The first value-log deletion happens in the obsolete-file sweep right
  // after the GC's manifest install — exactly the target window.
  fenv.CrashAt(FaultOp::kRemoveFile, ".vlog", 0);
  (void)db->CompactAll();  // The sweep tolerates the frozen filesystem.
  ASSERT_TRUE(fenv.crashed());
  db.reset();

  fenv.ClearFaults();
  ASSERT_TRUE(fenv.RecoverAfterCrash().ok());
  raw = nullptr;
  ASSERT_TRUE(DB::Open(opt, name, &raw).ok());
  db.reset(raw);

  // No live value lost: the GC install was durable, so every pointer
  // resolves into the rewritten log.
  for (int i = 0; i < kKeys; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i + 5000, 1024), value);
  }
  // No double-free: the leftover old logs are swept exactly once (a
  // second sweep finding them already gone must not fail the engine),
  // and the store keeps working afterwards.
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_TRUE(db->GetBackgroundError().ok());
  for (int i = 0; i < kKeys; i += 37) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
  }
}

// Crash right before the GC's manifest sync: the install is not durable,
// so reopen must come back in the pre-GC state — with the old logs still
// present and every live value still readable through the old pointers.
TEST_F(DbGcTest, CrashBeforeGcInstallKeepsOldLogs) {
  const std::string name = "/gc_crash2";
  const int kKeys = 300;
  auto workload = [&](FaultInjectionEnv* fenv, std::unique_ptr<DB>* out) {
    Options opt = GcOptions();
    opt.env = fenv;
    DB* raw = nullptr;
    Status s = DB::Open(opt, name, &raw);
    out->reset(raw);
    if (!s.ok()) return s;
    DB* db = out->get();
    for (int i = 0; i < kKeys; i++) {
      s = db->Put(WriteOptions(), test::TestKey(i), test::TestValue(i, 1024));
      if (!s.ok()) return s;
    }
    s = db->CompactAll();
    if (!s.ok()) return s;
    for (int i = 0; i < kKeys; i++) {
      s = db->Put(WriteOptions(), test::TestKey(i),
                  test::TestValue(i + 5000, 1024));
      if (!s.ok()) return s;
    }
    return db->CompactAll();
  };

  // Twin run #1: profile the clean call sequence to count the manifest
  // syncs; the last one is the GC install. The count is keyed to the
  // MANIFEST file, not the global call index: how background-job env
  // calls interleave with foreground ones varies with scheduling, but
  // the number of installs is data-driven and stable.
  uint64_t manifest_syncs = 0;
  {
    std::unique_ptr<MemEnv> base(NewMemEnv());
    FaultInjectionEnv fenv(base.get());
    fenv.EnableTrace(true);
    std::unique_ptr<DB> db;
    ASSERT_TRUE(workload(&fenv, &db).ok());
    for (const auto& ev : fenv.Trace()) {
      if (ev.op == FaultOp::kSync &&
          ev.filename.find("MANIFEST") != std::string::npos) {
        manifest_syncs++;
      }
    }
    ASSERT_GT(manifest_syncs, 0u);
  }

  // Twin run #2: same workload, crash at that (0-based) manifest sync.
  std::unique_ptr<MemEnv> base(NewMemEnv());
  FaultInjectionEnv fenv(base.get());
  fenv.CrashAt(FaultOp::kSync, "MANIFEST", manifest_syncs - 1);
  std::unique_ptr<DB> db;
  Status s = workload(&fenv, &db);
  EXPECT_FALSE(s.ok());
  ASSERT_TRUE(fenv.crashed());
  db.reset();

  fenv.ClearFaults();
  ASSERT_TRUE(fenv.RecoverAfterCrash().ok());
  int vlogs_after_crash = CountVlogs(&fenv, name);
  EXPECT_GE(vlogs_after_crash, 2) << "old value logs were lost";

  Options opt = GcOptions();
  opt.env = &fenv;
  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(opt, name, &raw).ok());
  db.reset(raw);
  for (int i = 0; i < kKeys; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i + 5000, 1024), value);
  }
  // The interrupted GC can be completed now and the store stays correct.
  ASSERT_TRUE(db->CompactAll().ok());
  for (int i = 0; i < kKeys; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), test::TestKey(i), &value).ok()) << i;
    EXPECT_EQ(test::TestValue(i + 5000, 1024), value);
  }
}

}  // namespace
}  // namespace unikv
