#ifndef UNIKV_VLOG_VALUE_LOG_H_
#define UNIKV_VLOG_VALUE_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/env.h"
#include "util/metrics.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/sync.h"

namespace unikv {

/// Location of a value stored in an append-only value log after partial KV
/// separation (paper: <partition, logNumber, offset, length>).
struct ValuePointer {
  uint32_t partition = 0;
  uint64_t log_number = 0;
  uint64_t offset = 0;
  uint32_t size = 0;  // Full record length, so one pread fetches it.

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice* input);

  bool operator==(const ValuePointer& o) const {
    return partition == o.partition && log_number == o.log_number &&
           offset == o.offset && size == o.size;
  }
};

/// Appends value records to a log file. Record format:
///   crc32c(4B, masked, over the rest) key_len(varint) val_len(varint)
///   key value
/// The key is stored alongside the value (as in WiscKey) so GC and
/// recovery can validate records independently of the SortedStore.
class ValueLogWriter {
 public:
  /// Takes ownership of `file`; `log_number` is recorded in the pointers.
  ValueLogWriter(std::unique_ptr<WritableFile> file, uint32_t partition,
                 uint64_t log_number);

  ValueLogWriter(const ValueLogWriter&) = delete;
  ValueLogWriter& operator=(const ValueLogWriter&) = delete;

  /// Appends a record; on success fills *ptr with its location.
  Status Add(const Slice& key, const Slice& value, ValuePointer* ptr);

  Status Flush() { return file_->Flush(); }
  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

  uint64_t CurrentOffset() const { return offset_; }
  uint64_t log_number() const { return log_number_; }

 private:
  std::unique_ptr<WritableFile> file_;
  uint32_t partition_;
  uint64_t log_number_;
  uint64_t offset_ = 0;
  std::string scratch_;
};

/// Parses one value-log record out of `record` bytes (as read from a file
/// at a ValuePointer). Verifies the checksum.
Status DecodeValueRecord(const Slice& record, Slice* key, Slice* value);

/// Caches open read handles for value log files and serves point fetches
/// by ValuePointer. Thread-safe.
class ValueLogCache {
 public:
  /// `dir_for_partition(p)` maps a partition id to its directory.
  ValueLogCache(Env* env, std::string dbname);

  /// Wires engine-wide read counters (owned by the DB's MetricsRegistry).
  /// Unlike the thread-local PerfContext — which only sees the calling
  /// thread — these capture fetches issued from thread-pool workers during
  /// scans and GC. All three may be null (counting disabled).
  void SetCounters(Counter* reads, Counter* span_reads, Counter* read_bytes,
                   Counter* mmap_reads = nullptr) {
    reads_counter_ = reads;
    span_reads_counter_ = span_reads;
    read_bytes_counter_ = read_bytes;
    mmap_reads_counter_ = mmap_reads;
  }

  /// Fetches the record at *ptr, verifies it, and stores the value bytes
  /// in *value (and optionally the stored key for validation).
  Status Get(const ValuePointer& ptr, std::string* value,
             std::string* stored_key = nullptr);

  /// Issues a readahead hint on the log for a scan starting at `ptr`.
  void Readahead(const ValuePointer& ptr, size_t bytes);

  /// Reads the byte span [offset, offset+size) of a log file in one I/O.
  /// Scans use this to fetch runs of adjacent values (merges and GC write
  /// values in key order, so consecutive scan pointers usually touch a
  /// contiguous region). *buffer is resized to hold the span.
  Status GetSpan(uint64_t log_number, uint64_t offset, size_t size,
                 std::string* buffer);

  /// Pins the shared read handle of one log (opening the file if needed)
  /// so a batched caller can issue several span reads against it without
  /// re-taking the cache mutex per read. The handle stays valid even if
  /// the log is Evicted while pinned.
  Status PinLog(uint64_t log_number,
                std::shared_ptr<RandomAccessFile>* file);

  /// GetSpan against a handle previously pinned with PinLog (same
  /// counting and short-read checks, no cache-mutex acquisition).
  Status GetSpanPinned(RandomAccessFile* file, uint64_t offset, size_t size,
                       std::string* buffer);

  /// Zero-copy-friendly variant: reads into caller-owned `scratch` (which
  /// must hold `size` bytes) and points *result at the bytes — either
  /// scratch or the file's own mapping. Avoids std::string's zero-fill on
  /// hot batched-read paths that reuse one scratch buffer across spans.
  Status GetSpanPinned(RandomAccessFile* file, uint64_t offset, size_t size,
                       Slice* result, char* scratch);

  /// Drops the cached handle for a deleted log file.
  void Evict(uint32_t partition, uint64_t log_number);

 private:
  Status GetFile(const ValuePointer& ptr,
                 std::shared_ptr<RandomAccessFile>* file);

  Env* env_;
  std::string dbname_;
  Counter* reads_counter_ = nullptr;
  Counter* span_reads_counter_ = nullptr;
  Counter* mmap_reads_counter_ = nullptr;
  Counter* read_bytes_counter_ = nullptr;
  // mu_ guards the handle map. Held across the open syscall in GetFile
  // (first access to a log serializes openers); reads through a handle
  // never take it.
  Mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<RandomAccessFile>> files_
      GUARDED_BY(mu_);
};

/// Sequentially scans a value log file, invoking `fn(offset, record_size,
/// key, value)` for each valid record; stops at the first corrupt/torn
/// record (the tail after a crash).
Status ScanValueLog(
    Env* env, const std::string& fname,
    const std::function<void(uint64_t, uint32_t, const Slice&, const Slice&)>&
        fn);

}  // namespace unikv

#endif  // UNIKV_VLOG_VALUE_LOG_H_
