#include "benchutil/driver.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "baseline/baselines.h"
#include "util/metrics.h"

namespace unikv {
namespace bench {

const char* EngineName(Engine e) {
  switch (e) {
    case Engine::kUniKV:
      return "UniKV";
    case Engine::kLeveled:
      return "LeveledLSM";
    case Engine::kTiered:
      return "TieredLSM";
    case Engine::kHashLog:
      return "HashLog";
  }
  return "?";
}

BenchDb::BenchDb(Engine engine, const Options& base_options,
                 const std::string& root, bool keep_existing)
    : engine_(engine), options_(base_options) {
  Env* base_env =
      base_options.env != nullptr ? base_options.env : Env::Default();
  env_ = std::make_unique<InstrumentedEnv>(base_env);
  options_.env = env_.get();
  (void)base_env->CreateDir(root);  // Usually exists across runs.
  path_ = root + "/" + EngineName(engine);
  if (!keep_existing) {
    // Best-effort scratch cleanup; a survivor only skews disk accounting.
    (void)RemoveDirRecursively(env_.get(), path_);
  }

  DB* raw = nullptr;
  Status s;
  switch (engine) {
    case Engine::kUniKV:
      s = DB::Open(options_, path_, &raw);
      break;
    case Engine::kLeveled:
      s = baseline::OpenLeveledDB(options_, path_, &raw);
      break;
    case Engine::kTiered:
      s = baseline::OpenTieredDB(options_, path_, &raw);
      break;
    case Engine::kHashLog:
      s = baseline::OpenHashLogDB(options_, path_, &raw);
      break;
  }
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL: cannot open %s at %s: %s\n",
                 EngineName(engine), path_.c_str(), s.ToString().c_str());
    std::abort();
  }
  db_.reset(raw);
}

BenchDb::~BenchDb() = default;

double BenchDb::Reopen() {
  db_.reset();
  Env* env = options_.env;
  uint64_t start = env->NowMicros();
  DB* raw = nullptr;
  Status s;
  switch (engine_) {
    case Engine::kUniKV:
      s = DB::Open(options_, path_, &raw);
      break;
    case Engine::kLeveled:
      s = baseline::OpenLeveledDB(options_, path_, &raw);
      break;
    case Engine::kTiered:
      s = baseline::OpenTieredDB(options_, path_, &raw);
      break;
    case Engine::kHashLog:
      s = baseline::OpenHashLogDB(options_, path_, &raw);
      break;
  }
  uint64_t elapsed = env->NowMicros() - start;
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL: reopen failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  db_.reset(raw);
  return elapsed / 1e6;
}

namespace {

struct PhaseTimer {
  BenchDb* bdb;
  PhaseResult* result;
  uint64_t start_us;
  uint64_t start_written, start_read;
  PerfContext start_perf;

  PhaseTimer(BenchDb* b, PhaseResult* r) : bdb(b), result(r) {
    start_us = Env::Default()->NowMicros();
    start_written = bdb->io()->bytes_written.load();
    start_read = bdb->io()->bytes_read.load();
    start_perf = *GetPerfContext();
  }

  void Finish(uint64_t ops) {
    result->seconds = (Env::Default()->NowMicros() - start_us) / 1e6;
    result->ops = ops;
    result->kops_per_sec =
        result->seconds > 0 ? ops / result->seconds / 1000.0 : 0;
    result->bytes_written = bdb->io()->bytes_written.load() - start_written;
    result->bytes_read = bdb->io()->bytes_read.load() - start_read;
    result->perf = GetPerfContext()->DeltaSince(start_perf);
  }
};

}  // namespace

PhaseResult RunLoad(BenchDb* bdb, const LoadSpec& spec) {
  PhaseResult r;
  r.phase = "load";
  PhaseTimer timer(bdb, &r);
  Env* env = Env::Default();
  Random shuffle_rnd(spec.seed);

  // A permuted id sequence for random loads.
  std::vector<uint32_t> order;
  if (!spec.sequential) {
    order.resize(spec.num_keys);
    for (uint64_t i = 0; i < spec.num_keys; i++) order[i] = i;
    for (uint64_t i = spec.num_keys; i > 1; i--) {
      std::swap(order[i - 1], order[shuffle_rnd.Next64() % i]);
    }
  }

  WriteOptions wo;
  wo.sync = spec.sync_every;
  uint64_t user_bytes = 0;
  for (uint64_t i = 0; i < spec.num_keys; i++) {
    uint64_t id = spec.sequential ? i : order[i];
    std::string key = KeyGenerator::Key(id);
    std::string value = MakeValue(id, spec.value_size);
    user_bytes += key.size() + value.size();
    uint64_t t0 = env->NowMicros();
    Status s = bdb->db()->Put(wo, key, value);
    r.latency_us.Add(env->NowMicros() - t0);
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
  // Settle all background work so write amplification is fully counted
  // (the paper counts GC cost in write performance).
  OrDie(bdb->db()->CompactAll(), "CompactAll");
  timer.Finish(spec.num_keys);
  r.user_bytes = user_bytes;
  r.write_amp = user_bytes > 0
                    ? static_cast<double>(r.bytes_written) / user_bytes
                    : 0;
  return r;
}

PhaseResult RunPointReads(BenchDb* bdb, const PointReadSpec& spec) {
  PhaseResult r;
  r.phase = spec.phase;
  // Keys are drawn and formatted before the timer starts: the phase
  // measures the DB, not snprintf and the zipfian generator's pow().
  KeyGenerator gen(spec.dist, spec.key_space, spec.seed);
  std::vector<std::string> key_bufs(spec.num_ops);
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    key_bufs[i] = KeyGenerator::Key(gen.NextId());
  }
  PhaseTimer timer(bdb, &r);
  Env* env = Env::Default();
  std::string value;
  uint64_t found = 0, logical = 0;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    const std::string& key = key_bufs[i];
    uint64_t t0 = env->NowMicros();
    Status s = bdb->db()->Get(ReadOptions(), key, &value);
    r.latency_us.Add(env->NowMicros() - t0);
    if (s.ok()) {
      found++;
      logical += key.size() + value.size();
    }
  }
  timer.Finish(spec.num_ops);
  r.user_bytes = logical;
  r.read_amp =
      logical > 0 ? static_cast<double>(r.bytes_read) / logical : 0;
  (void)found;
  return r;
}

PhaseResult RunMultiGet(BenchDb* bdb, const MultiGetSpec& spec) {
  PhaseResult r;
  r.phase = spec.phase;
  r.batch = spec.batch < 1 ? 1 : spec.batch;
  // Same methodology as RunPointReads: all batches' keys are drawn and
  // formatted before the timer starts, so the two phases compare DB time
  // against DB time.
  KeyGenerator gen(spec.dist, spec.key_space, spec.seed);
  const uint64_t batches =
      (spec.num_keys + r.batch - 1) / static_cast<uint64_t>(r.batch);
  std::vector<std::string> key_bufs(batches * r.batch);
  for (uint64_t i = 0; i < batches * r.batch; i++) {
    key_bufs[i] = KeyGenerator::Key(gen.NextId());
  }
  PhaseTimer timer(bdb, &r);
  Env* env = Env::Default();
  ReadOptions ro;
  ro.multiget_parallelism = spec.parallelism;
  std::vector<Slice> keys(r.batch);
  std::vector<std::string> values;
  std::vector<Status> statuses;
  uint64_t logical = 0, keys_fetched = 0;
  for (uint64_t b = 0; b < batches; b++) {
    for (int i = 0; i < r.batch; i++) {
      keys[i] = Slice(key_bufs[b * r.batch + i]);
    }
    uint64_t t0 = env->NowMicros();
    Status s = bdb->db()->MultiGet(ro, keys, &values, &statuses);
    r.latency_us.Add(env->NowMicros() - t0);
    if (!s.ok()) {
      std::fprintf(stderr, "multiget failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    keys_fetched += keys.size();
    for (size_t i = 0; i < statuses.size(); i++) {
      if (statuses[i].ok()) logical += keys[i].size() + values[i].size();
    }
  }
  timer.Finish(keys_fetched);
  r.user_bytes = logical;
  r.read_amp =
      logical > 0 ? static_cast<double>(r.bytes_read) / logical : 0;
  return r;
}

namespace {

// Folds one interleaved slice into its phase's running total. Rates and
// amplification are recomputed from the accumulated sums, so the merged
// result weighs every slice by its actual duration.
void MergePhaseSlice(const PhaseResult& slice, PhaseResult* into) {
  if (into->phase.empty()) {
    *into = slice;
    return;
  }
  into->seconds += slice.seconds;
  into->ops += slice.ops;
  into->latency_us.Merge(slice.latency_us);
  into->bytes_written += slice.bytes_written;
  into->bytes_read += slice.bytes_read;
  into->user_bytes += slice.user_bytes;
  into->perf.Add(slice.perf);
  into->kops_per_sec =
      into->seconds > 0 ? into->ops / into->seconds / 1000.0 : 0;
  into->read_amp =
      into->user_bytes > 0
          ? static_cast<double>(into->bytes_read) / into->user_bytes
          : 0;
}

}  // namespace

std::vector<PhaseResult> RunInterleavedBatchedReads(
    BenchDb* bdb, const PointReadSpec& get_spec,
    const std::vector<MultiGetSpec>& mget_specs, int rounds) {
  if (rounds < 1) rounds = 1;
  std::vector<PhaseResult> out(1 + mget_specs.size());
  for (int r = 0; r < rounds; r++) {
    PointReadSpec g = get_spec;
    g.num_ops = get_spec.num_ops / rounds;
    g.seed = get_spec.seed + static_cast<uint32_t>(r) * 1000003u;
    MergePhaseSlice(RunPointReads(bdb, g), &out[0]);
    for (size_t m = 0; m < mget_specs.size(); m++) {
      MultiGetSpec s = mget_specs[m];
      s.num_keys = mget_specs[m].num_keys / rounds;
      s.seed = mget_specs[m].seed + static_cast<uint32_t>(r) * 1000003u;
      MergePhaseSlice(RunMultiGet(bdb, s), &out[1 + m]);
    }
  }
  return out;
}

PhaseResult RunScans(BenchDb* bdb, const ScanSpec& spec) {
  PhaseResult r;
  r.phase = spec.phase;
  PhaseTimer timer(bdb, &r);
  Env* env = Env::Default();
  Random rnd(spec.seed);
  uint64_t entries = 0;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    uint64_t start_id = rnd.Next64() % spec.key_space;
    std::string start = KeyGenerator::Key(start_id);
    uint64_t t0 = env->NowMicros();
    if (spec.use_optimized_scan) {
      std::vector<std::pair<std::string, std::string>> out;
      OrDie(bdb->db()->Scan(ReadOptions(), start, spec.scan_len, &out),
            "Scan");
      entries += out.size();
    } else {
      std::unique_ptr<Iterator> iter(bdb->db()->NewIterator(ReadOptions()));
      int left = spec.scan_len;
      for (iter->Seek(start); iter->Valid() && left > 0;
           iter->Next(), left--) {
        entries += 1;
        // Touch the value as a consumer would.
        volatile size_t sink = iter->value().size();
        (void)sink;
      }
    }
    r.latency_us.Add(env->NowMicros() - t0);
  }
  timer.Finish(entries);  // Throughput = entries/sec for scans.
  return r;
}

PhaseResult RunUpdates(BenchDb* bdb, const UpdateSpec& spec) {
  PhaseResult r;
  r.phase = "update";
  PhaseTimer timer(bdb, &r);
  Env* env = Env::Default();
  KeyGenerator gen(spec.dist, spec.key_space, spec.seed);
  uint64_t user_bytes = 0;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    uint64_t id = gen.NextId();
    std::string key = KeyGenerator::Key(id);
    std::string value = MakeValue(id ^ i, spec.value_size);
    user_bytes += key.size() + value.size();
    uint64_t t0 = env->NowMicros();
    Status s = bdb->db()->Put(WriteOptions(), key, value);
    r.latency_us.Add(env->NowMicros() - t0);
    if (!s.ok()) {
      std::fprintf(stderr, "update failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
  OrDie(bdb->db()->CompactAll(), "CompactAll");  // GC cost is part of
                                                 // write performance.
  timer.Finish(spec.num_ops);
  r.user_bytes = user_bytes;
  r.write_amp = user_bytes > 0
                    ? static_cast<double>(r.bytes_written) / user_bytes
                    : 0;
  return r;
}

PhaseResult RunMixed(BenchDb* bdb, const MixedSpec& spec) {
  PhaseResult r;
  r.phase = "mixed";
  PhaseTimer timer(bdb, &r);
  Env* env = Env::Default();
  KeyGenerator gen(spec.dist, spec.key_space, spec.seed);
  Random rnd(spec.seed * 31 + 7);
  std::string value;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    uint64_t id = gen.NextId();
    std::string key = KeyGenerator::Key(id);
    bool is_read = (rnd.Next() % 1000) < spec.read_fraction * 1000;
    uint64_t t0 = env->NowMicros();
    if (is_read) {
      // NotFound is a legitimate mixed-workload outcome (random key).
      (void)bdb->db()->Get(ReadOptions(), key, &value);
    } else {
      OrDie(bdb->db()->Put(WriteOptions(), key,
                           MakeValue(id ^ i, spec.value_size)),
            "Put");
    }
    r.latency_us.Add(env->NowMicros() - t0);
  }
  timer.Finish(spec.num_ops);
  return r;
}

PhaseResult RunConcurrentWrites(BenchDb* bdb,
                                const ConcurrentWriteSpec& spec) {
  PhaseResult r;
  r.phase = spec.phase;
  r.threads = spec.threads > 0 ? spec.threads : 1;
  PhaseTimer timer(bdb, &r);
  Env* env = Env::Default();

  const uint64_t per_thread = spec.total_ops / r.threads;
  std::vector<Histogram> latencies(r.threads);
  std::vector<uint64_t> thread_bytes(r.threads, 0);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(r.threads);
  for (int t = 0; t < r.threads; t++) {
    workers.emplace_back([&, t] {
      WriteOptions wo;
      wo.sync = spec.sync;
      for (uint64_t i = 0; i < per_thread; i++) {
        const uint64_t id =
            spec.key_base + static_cast<uint64_t>(t) * per_thread + i;
        std::string key = KeyGenerator::Key(id);
        std::string value = MakeValue(id, spec.value_size);
        thread_bytes[t] += key.size() + value.size();
        const uint64_t t0 = env->NowMicros();
        Status s = bdb->db()->Put(wo, key, value);
        latencies[t].Add(env->NowMicros() - t0);
        if (!s.ok()) {
          failures.fetch_add(1);
          break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "concurrent write phase %s failed\n",
                 spec.phase.c_str());
    std::abort();
  }
  timer.Finish(per_thread * r.threads);
  uint64_t user_bytes = 0;
  for (int t = 0; t < r.threads; t++) {
    r.latency_us.Merge(latencies[t]);
    user_bytes += thread_bytes[t];
  }
  r.user_bytes = user_bytes;
  r.write_amp = user_bytes > 0
                    ? static_cast<double>(r.bytes_written) / user_bytes
                    : 0;
  return r;
}

PhaseResult RunYcsb(BenchDb* bdb, const YcsbRunSpec& spec) {
  PhaseResult r;
  r.phase = std::string("ycsb-") + spec.workload;
  const YcsbSpec* ycsb = GetYcsbSpec(spec.workload);
  if (ycsb == nullptr) {
    std::fprintf(stderr, "unknown YCSB workload %c\n", spec.workload);
    std::abort();
  }
  PhaseTimer timer(bdb, &r);
  Env* env = Env::Default();
  KeyGenerator gen(ycsb->dist, spec.key_space, spec.seed);
  Random rnd(spec.seed * 131 + 13);
  uint64_t insert_frontier = spec.key_space;
  std::string value;

  for (uint64_t i = 0; i < spec.num_ops; i++) {
    double dice = (rnd.Next() % 1000000) / 1e6;
    uint64_t t0 = env->NowMicros();
    if (dice < ycsb->read_ratio) {
      // NotFound is a legitimate YCSB outcome (zipfian tail key).
      (void)bdb->db()->Get(ReadOptions(), KeyGenerator::Key(gen.NextId()),
                           &value);
    } else if (dice < ycsb->read_ratio + ycsb->update_ratio) {
      uint64_t id = gen.NextId();
      OrDie(bdb->db()->Put(WriteOptions(), KeyGenerator::Key(id),
                           MakeValue(id ^ i, spec.value_size)),
            "Put");
    } else if (dice < ycsb->read_ratio + ycsb->update_ratio +
                          ycsb->insert_ratio) {
      uint64_t id = insert_frontier++;
      gen.SetFrontier(insert_frontier);
      OrDie(bdb->db()->Put(WriteOptions(), KeyGenerator::Key(id),
                           MakeValue(id, spec.value_size)),
            "Put");
    } else if (dice < ycsb->read_ratio + ycsb->update_ratio +
                          ycsb->insert_ratio + ycsb->scan_ratio) {
      int len = 1 + static_cast<int>(rnd.Uniform(ycsb->scan_max_len));
      std::vector<std::pair<std::string, std::string>> out;
      OrDie(bdb->db()->Scan(ReadOptions(), KeyGenerator::Key(gen.NextId()),
                            len, &out),
            "Scan");
    } else {
      // Read-modify-write.
      uint64_t id = gen.NextId();
      std::string key = KeyGenerator::Key(id);
      (void)bdb->db()->Get(ReadOptions(), key, &value);  // May be absent.
      OrDie(bdb->db()->Put(WriteOptions(), key,
                           MakeValue(id ^ i, spec.value_size)),
            "Put");
    }
    r.latency_us.Add(env->NowMicros() - t0);
  }
  timer.Finish(spec.num_ops);
  return r;
}

void PrintPhasePerf(const char* engine, const PhaseResult& r) {
  std::string s = r.perf.ToString();
  if (s.empty()) return;
  std::printf("  [perf %s/%s] %s\n", engine, r.phase.c_str(), s.c_str());
  std::fflush(stdout);
}

namespace {

/// Writes `contents` to `path`, replacing it. fwrite/fclose results are
/// checked: a short write yields a loud warning rather than a silently
/// truncated artifact that looks complete.
bool WriteFileWarnOnError(const std::string& path,
                          const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool write_ok = (n == contents.size());
  const bool close_ok = (std::fclose(f) == 0);
  if (!write_ok || !close_ok) {
    std::fprintf(stderr,
                 "warning: truncated write to %s (%zu/%zu bytes%s)\n",
                 path.c_str(), n, contents.size(),
                 close_ok ? "" : ", close failed");
    return false;
  }
  return true;
}

}  // namespace

std::string DumpMetricsJson(BenchDb* bdb) {
  std::string json;
  if (!bdb->db()->GetProperty("db.metrics.json", &json)) return "";
  json.push_back('\n');
  std::string path = bdb->path() + ".metrics.json";
  return WriteFileWarnOnError(path, json) ? path : "";
}

// --------------------------------------------- benchmark trajectory JSON

namespace {

std::string HistogramJson(const Histogram& h) {
  JsonBuilder j;
  j.AddUint("count", h.Count());
  j.AddDouble("avg", h.Average());
  j.AddDouble("p50", h.Percentile(50));
  j.AddDouble("p95", h.Percentile(95));
  j.AddDouble("p99", h.Percentile(99));
  j.AddDouble("p999", h.Percentile(99.9));
  j.AddDouble("min", h.Count() > 0 ? h.Min() : 0);
  j.AddDouble("max", h.Count() > 0 ? h.Max() : 0);
  return j.Finish();
}

const char* SanitizerState() {
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

const char* BuildType() {
#if defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

/// Extracts `field=<number>` from the db.stats text property (0 when the
/// engine lacks the property or the field).
uint64_t StatsFieldValue(DB* db, const std::string& field) {
  std::string stats;
  if (!db->GetProperty("db.stats", &stats)) return 0;
  const size_t pos = stats.find(field + "=");
  if (pos == std::string::npos) return 0;
  return std::strtoull(stats.c_str() + pos + field.size() + 1, nullptr, 10);
}

}  // namespace

std::string BenchTrajectoryJson(const std::string& workload, BenchDb* bdb,
                                const std::vector<PhaseResult>& phases) {
  JsonBuilder root;
  root.AddUint("schema_version", kBenchJsonSchemaVersion);
  root.AddString("workload", workload);
  root.AddString("engine", EngineName(bdb->engine()));
  root.AddUint("ts_micros", Env::Default()->NowMicros());

  JsonBuilder environment;
  environment.AddUint("cores", std::thread::hardware_concurrency());
  environment.AddString("build_type", BuildType());
  environment.AddString("sanitizer", SanitizerState());
  environment.AddDouble("bench_scale", BenchScale());
  environment.AddUint("pointer_bits", sizeof(void*) * 8);
  root.AddRaw("environment", environment.Finish());

  const Options& opt = bdb->options();
  JsonBuilder params;
  params.AddUint("write_buffer_size", opt.write_buffer_size);
  params.AddUint("block_cache_size", opt.block_cache_size);
  params.AddUint("unsorted_limit", opt.unsorted_limit);
  params.AddUint("partition_size_limit", opt.partition_size_limit);
  params.AddUint("sorted_table_size", opt.sorted_table_size);
  params.AddUint("gc_garbage_threshold", opt.gc_garbage_threshold);
  params.AddUint("value_separation_threshold",
                 opt.value_separation_threshold);
  params.AddInt("value_fetch_threads", opt.value_fetch_threads);
  params.AddInt("background_threads", opt.background_threads);
  params.AddInt("write_shards", opt.write_shards);
  params.AddInt("scan_merge_limit", opt.scan_merge_limit);
  params.AddBool("enable_anchor_view", opt.enable_anchor_view);
  root.AddRaw("params", params.Finish());

  std::string phase_array = "[";
  double total_seconds = 0;
  uint64_t total_ops = 0, total_written = 0, total_read = 0;
  bool first = true;
  for (const PhaseResult& r : phases) {
    total_seconds += r.seconds;
    total_ops += r.ops;
    total_written += r.bytes_written;
    total_read += r.bytes_read;
    JsonBuilder pj;
    pj.AddString("phase", r.phase);
    pj.AddInt("threads", r.threads);
    pj.AddInt("batch", r.batch);
    pj.AddUint("ops", r.ops);
    pj.AddDouble("seconds", r.seconds);
    pj.AddDouble("kops_per_sec", r.kops_per_sec);
    pj.AddRaw("latency_us", HistogramJson(r.latency_us));
    pj.AddUint("bytes_written", r.bytes_written);
    pj.AddUint("bytes_read", r.bytes_read);
    pj.AddUint("user_bytes", r.user_bytes);
    pj.AddDouble("write_amp", r.write_amp);
    pj.AddDouble("read_amp", r.read_amp);
    if (!first) phase_array += ',';
    first = false;
    phase_array += pj.Finish();
  }
  phase_array += ']';
  root.AddRaw("phases", phase_array);

  JsonBuilder totals;
  totals.AddUint("ops", total_ops);
  totals.AddDouble("seconds", total_seconds);
  totals.AddDouble("ops_per_sec",
                   total_seconds > 0 ? total_ops / total_seconds : 0);
  totals.AddUint("bytes_written", total_written);
  totals.AddUint("bytes_read", total_read);
  root.AddRaw("totals", totals.Finish());

  JsonBuilder stalls;
  stalls.AddUint("write_stalls", StatsFieldValue(bdb->db(), "write_stalls"));
  stalls.AddUint("stall_micros", StatsFieldValue(bdb->db(), "stall_micros"));
  root.AddRaw("stalls", stalls.Finish());

  // The live engine's full metrics surface — the in-engine latency
  // histograms (get/write/scan/..., with p50..p999) live here under
  // engine_metrics.engine.histograms. null for engines without the
  // property (baselines).
  std::string engine_json;
  if (!bdb->db()->GetProperty("db.metrics.json", &engine_json)) {
    engine_json = "null";
  }
  root.AddRaw("engine_metrics", engine_json);
  return root.Finish();
}

std::string WriteBenchTrajectory(const std::string& workload, BenchDb* bdb,
                                 const std::vector<PhaseResult>& phases,
                                 const std::string& out_dir) {
  std::string dir = out_dir;
  if (dir.empty()) {
    const char* env_dir = std::getenv("UNIKV_BENCH_OUT");
    dir = (env_dir != nullptr && env_dir[0] != '\0') ? env_dir : ".";
  }
  std::string json = BenchTrajectoryJson(workload, bdb, phases);
  json.push_back('\n');
  const std::string path = dir + "/BENCH_" + workload + ".json";
  if (!WriteFileWarnOnError(path, json)) return "";
  std::printf("wrote %s\n", path.c_str());
  std::fflush(stdout);
  return path;
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const std::string& col : columns) {
    std::printf("%-16s", col.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); i++) {
    std::printf("%-16s", "---------------");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-16s", cell.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

double BenchScale() {
  const char* s = std::getenv("UNIKV_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

}  // namespace bench
}  // namespace unikv
