#ifndef UNIKV_CORE_ANCHOR_VIEW_H_
#define UNIKV_CORE_ANCHOR_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "core/iterator.h"
#include "core/version.h"
#include "util/status.h"

namespace unikv {

class Block;
class Env;
class TableCache;

/// A REMIX-style sorted view over one partition's UnsortedStore
/// (DESIGN.md §12). The view is a single prefix-compressed block holding
/// every internal key of the partition's unsorted tables in global sorted
/// order; each entry's value is a compact anchor
///
///   varint32 ordinal        index into `covered` (which table owns it)
///   varint64 block_offset   file offset of the data block holding it
///   varint32 restart_index  restart slot of the entry within that block
///
/// Scans binary-search the view once (restart-array binary search, like
/// any table block) and then stream forward or backward, advancing one
/// per-table cursor in lockstep with the view instead of popping a k-way
/// merge heap per Next(). block_offset/restart_index are advisory
/// accelerators: the iterator always verifies cursor alignment by key, so
/// correctness never depends on them.
///
/// Views are immutable. The UnsortedStore is bounded by
/// Options::unsorted_limit, so a view's key material is a small fraction
/// of that; flush installs extend it with a single merge pass and
/// merge/scan-merge installs rebuild or retire it.
struct AnchorView {
  /// Descriptor of one unsorted table the view covers, in the partition's
  /// table order (oldest first, table_id ascending).
  struct CoveredTable {
    uint64_t number = 0;
    uint64_t size = 0;
    uint16_t table_id = 0;
  };

  std::vector<CoveredTable> covered;
  /// Raw block image (entries + restart trailer). Owns the bytes `block`
  /// points into; declared first so it outlives `block` on destruction.
  std::shared_ptr<const std::string> image;
  /// Sorted (internal key -> anchor) entries, parsed over `image`.
  std::shared_ptr<Block> block;
  /// Backing <file_number>.anchors file; 0 when the view only lives in
  /// memory (e.g. rebuilt during recovery and not yet re-persisted).
  uint64_t file_number = 0;
  uint64_t entry_count = 0;
  /// Size of the block image in bytes (the view's memory footprint).
  uint64_t byte_size = 0;

  /// True iff the view covers exactly `unsorted` (same file numbers, same
  /// order). Anything else is stale: scans must fall back to the merging
  /// iterator.
  bool Covers(const std::vector<FileMeta>& unsorted) const;
};

using AnchorViewPtr = std::shared_ptr<const AnchorView>;

/// Builds a view from scratch by walking every table in `tables` (block
/// by block, so anchors carry real block offsets) and merging the k
/// streams. `restart_interval` is the data-block restart interval the
/// tables were written with (used to derive restart_index hints).
Status BuildAnchorView(const InternalKeyComparator& icmp, TableCache* cache,
                       const std::vector<FileMeta>& tables,
                       int restart_interval, AnchorView* out);

/// Flush-install maintenance: merges `added` (the freshly flushed table,
/// already internally sorted) into `base` in a single pass. `base` must
/// cover the partition's unsorted tables as they were before the flush;
/// the result covers them plus `added` (appended, preserving order).
Status MergeAnchorView(const InternalKeyComparator& icmp, TableCache* cache,
                       const AnchorView& base, const FileMeta& added,
                       int restart_interval, AnchorView* out);

/// Persists `view` to `fname` (<number>.anchors layout: magic, version,
/// pid, covered tables, entry count, block image, crc32c trailer).
Status WriteAnchorViewFile(Env* env, const std::string& fname, uint32_t pid,
                           const AnchorView& view);

/// Loads a persisted view. Fails (Corruption) on any structural or crc
/// mismatch, or when the file was written for a different partition;
/// callers fall back to BuildAnchorView.
Status LoadAnchorViewFile(Env* env, const std::string& fname,
                          uint32_t expected_pid, AnchorView* out);

/// Returns an internal-key iterator over the view: yields every entry of
/// the covered tables in global sorted order, resolving values through
/// one lazily opened cursor per table. Seek/Next/Prev/SeekToFirst/
/// SeekToLast all work; Next()/Prev() cost one view-block step plus one
/// cursor step (no heap). The iterator shares ownership of `view`.
Iterator* NewAnchorViewIterator(const InternalKeyComparator& icmp,
                                AnchorViewPtr view, TableCache* cache,
                                bool fill_cache);

}  // namespace unikv

#endif  // UNIKV_CORE_ANCHOR_VIEW_H_
